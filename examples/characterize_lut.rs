//! Reproduces the paper's characterization flow end to end: run the directed
//! plus semi-random characterization workload through the gate-level
//! simulation substitute, perform dynamic timing analysis, extract the delay
//! LUT (Table II) and export it as JSON.
//!
//! Run with: `cargo run --release --example characterize_lut`

use idca::prelude::*;
use idca::timing::Histogram;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized);
    let characterization = characterization_workload(0xC0DE);
    let trace = Simulator::new(SimConfig::default())
        .run(&characterization.program)?
        .trace;
    println!(
        "characterization: {} cycles, {} retired instructions",
        trace.cycle_count(),
        trace.retired()
    );

    // Gate-level-simulation substitute -> endpoint event log -> DTA.
    let event_log = model.event_log(&trace);
    println!(
        "event log: {} events over {} endpoints, worst slack {:.0} ps",
        event_log.len(),
        event_log.endpoints().len(),
        event_log.worst_slack_ps().unwrap_or(f64::NAN)
    );
    let dta = DynamicTimingAnalysis::from_event_log(&event_log, &trace, model.static_period_ps());

    println!(
        "\nper-cycle dynamic delay: mean {:.0} ps vs static {:.0} ps  (genie speedup {:.0} %)",
        dta.mean_cycle_delay_ps(),
        dta.static_period_ps(),
        (dta.genie_speedup() - 1.0) * 100.0
    );
    println!("\nhistogram of per-cycle maximum delays (Fig. 5):");
    print!("{}", downsample(dta.cycle_histogram()));

    // The delay LUT / Table II.
    let lut = DelayLut::from_dta(&dta, 8);
    println!("\nTable II — dynamic instruction delay worst-cases:");
    println!(
        "{:<16} {:>12} {:>8} {:>14}",
        "instruction", "max delay", "stage", "observations"
    );
    for row in lut.table2_rows() {
        println!(
            "{:<16} {:>9.0} ps {:>8} {:>14}",
            row.class.label(),
            row.max_delay_ps,
            row.stage.label(),
            row.observations
        );
    }

    let json = lut.to_json()?;
    let path = std::env::temp_dir().join("idca_delay_lut.json");
    std::fs::write(&path, &json)?;
    println!("\ndelay LUT exported to {}", path.display());
    Ok(())
}

/// Renders a histogram with a coarser bar so the example output stays short.
fn downsample(histogram: &Histogram) -> String {
    histogram.to_ascii(40)
}
