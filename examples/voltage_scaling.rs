//! Trading the frequency gain for power: find the lowest supply voltage at
//! which the dynamically-clocked core still matches the conventional core's
//! throughput, and report the energy-efficiency improvement (§IV-B of the
//! paper: ~70 mV lower supply, 13.7 → 11.0 µW/MHz, 24 %).
//!
//! Run with: `cargo run --release --example voltage_scaling`

use idca::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Use a benchmark whose speedup sits near the middle of the Fig. 8 suite.
    let workload = benchmark_suite()
        .into_iter()
        .find(|w| w.name == "beebs_dijkstra")
        .expect("the Dijkstra kernel is part of the suite");
    let trace = Simulator::new(SimConfig::default())
        .run(&workload.program)?
        .trace;

    let library = CellLibrary::fdsoi28();
    let power = PowerModel::new(library.clone());

    let result = vfs::scale_for_iso_throughput(
        ProfileKind::CriticalRangeOptimized,
        &library,
        &power,
        &trace,
        &|model| Box::new(InstructionBased::from_model(model)),
        &ClockGenerator::Ideal,
    )?;

    println!("workload: {}", workload.name);
    println!(
        "baseline  : {:>4} mV  {:>7.1} MHz  {:>6.2} µW/MHz",
        result.baseline.voltage_mv, result.baseline.frequency_mhz, result.baseline.uw_per_mhz
    );
    println!(
        "scaled    : {:>4} mV  {:>7.1} MHz  {:>6.2} µW/MHz",
        result.scaled.voltage_mv, result.scaled.frequency_mhz, result.scaled.uw_per_mhz
    );
    println!(
        "\nsupply reduction      : {} mV   (paper: ~70 mV)",
        result.voltage_reduction_mv
    );
    println!(
        "energy-efficiency gain: {:.1} %  (paper: 24 %, 13.7 -> 11.0 µW/MHz)",
        result.efficiency_gain_percent()
    );
    Ok(())
}
