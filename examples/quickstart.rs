//! Quickstart: assemble a small program, run it on the 6-stage pipeline and
//! compare conventional clocking against instruction-based dynamic clock
//! adjustment.
//!
//! Run with: `cargo run --example quickstart`

use idca::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small kernel: sum of squares of 1..=50, with a multiply, a store and
    // a load in every iteration.
    let program = Assembler::new().with_name("sum-of-squares").assemble(
        r#"
                l.addi  r1, r0, 0x100     # scratch pointer
                l.addi  r3, r0, 50        # loop counter
                l.addi  r4, r0, 0         # accumulator
        loop:
                l.mul   r5, r3, r3
                l.sw    0(r1), r5
                l.lwz   r6, 0(r1)
                l.add   r4, r4, r6
                l.addi  r3, r3, -1
                l.sfne  r3, r0
                l.bf    loop
                l.nop   0
                l.nop   1                 # exit marker
        "#,
    )?;

    // The synthetic post-layout timing model at the nominal 0.70 V point.
    let model = TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized);

    // Single-pass evaluation: conventional synchronous clocking, the paper's
    // instruction-based technique and the genie-aided oracle all observe the
    // same cycle stream while the program is simulated exactly once.
    let static_policy = StaticClock::of_model(&model);
    let lut_policy = InstructionBased::new(DelayLut::from_model(&model));
    let genie_policy = GenieOracle::new(model.clone());
    let mut baseline_obs = PolicyObserver::new(&model, &static_policy, &ClockGenerator::Ideal);
    let mut dynamic_obs = PolicyObserver::new(&model, &lut_policy, &ClockGenerator::Ideal);
    let mut genie_obs = PolicyObserver::new(&model, &genie_policy, &ClockGenerator::Ideal);
    let run = Simulator::new(SimConfig::default()).run_observed(
        &program,
        &mut [&mut baseline_obs, &mut dynamic_obs, &mut genie_obs],
    )?;

    println!("program `{}`", program.name());
    println!("  retired instructions : {}", run.summary.retired);
    println!("  cycles               : {}", run.summary.cycles);
    println!(
        "  IPC                  : {:.3}",
        run.summary.retired as f64 / run.summary.cycles as f64
    );
    println!("  r4 (sum of squares)  : {}", run.state.reg(Reg::r(4)));
    println!(
        "\nstatic timing limit      : {:.0} ps  ({:.1} MHz)",
        model.static_period_ps(),
        1.0e6 / model.static_period_ps()
    );

    let baseline = baseline_obs.into_outcome();
    let dynamic = dynamic_obs.into_outcome();
    let genie = genie_obs.into_outcome();

    println!("\nclocking policy comparison:");
    for outcome in [&baseline, &dynamic, &genie] {
        println!(
            "  {:<18} {:>7.1} MHz   avg period {:>7.1} ps   violations {}",
            outcome.policy,
            outcome.effective_frequency_mhz,
            outcome.avg_period_ps,
            outcome.violations
        );
    }
    println!(
        "\ninstruction-based speedup: {:.1} %  (genie bound {:.1} %)",
        (dynamic.speedup_over(&baseline) - 1.0) * 100.0,
        (genie.speedup_over(&baseline) - 1.0) * 100.0
    );
    Ok(())
}
