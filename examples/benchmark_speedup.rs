//! Per-benchmark effective clock frequency under conventional clocking and
//! under instruction-based dynamic clock adjustment — the experiment behind
//! Fig. 8 of the paper, on the CoreMark-like and BEEBS-like suites.
//!
//! Run with: `cargo run --release --example benchmark_speedup`

use idca::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized);

    // Build the delay LUT the way the paper does: characterize the core with
    // the directed + semi-random workload, run dynamic timing analysis and
    // extract the per-instruction worst-case delays.
    let characterization = characterization_workload(0xC0DE);
    let char_trace = Simulator::new(SimConfig::default())
        .run(&characterization.program)?
        .trace;
    let dta = DynamicTimingAnalysis::run(&model, &char_trace);
    // Raw observed worst-cases plus a 1.5 % guardband for data conditions
    // the characterization stimuli did not produce (see DESIGN.md).
    let lut = DelayLut::from_dta(&dta, 8).with_guardband(0.015);
    let policy = InstructionBased::new(lut);

    println!(
        "{:<22} {:>12} {:>12} {:>9} {:>11}",
        "benchmark", "static MHz", "dynamic MHz", "speedup", "violations"
    );
    let mut summary = eval::SuiteSummary::new();
    let simulator = Simulator::new(SimConfig::default());
    for workload in benchmark_suite() {
        let trace = simulator.run(&workload.program)?.trace;
        let comparison = eval::compare(
            &model,
            workload.name.clone(),
            &trace,
            &policy,
            &ClockGenerator::Ideal,
        );
        println!(
            "{:<22} {:>12.1} {:>12.1} {:>8.1}% {:>11}",
            comparison.benchmark,
            comparison.baseline.effective_frequency_mhz,
            comparison.dynamic.effective_frequency_mhz,
            (comparison.speedup() - 1.0) * 100.0,
            comparison.dynamic.violations
        );
        summary.push(comparison);
    }

    println!(
        "\naverage: {:.1} MHz -> {:.1} MHz  (+{:.1} %, paper: 494 -> 680 MHz, +38 %)",
        summary.mean_baseline_frequency_mhz(),
        summary.mean_dynamic_frequency_mhz(),
        (summary.mean_speedup() - 1.0) * 100.0
    );
    Ok(())
}
