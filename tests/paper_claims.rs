//! Integration tests that check the headline quantitative claims of the
//! paper against the reproduction, with tolerance bands. The exact measured
//! values are recorded in `EXPERIMENTS.md`; these tests guard the *shape* of
//! the results (who wins, by roughly what factor).

use idca::prelude::*;

fn nominal_model() -> TimingModel {
    TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized)
}

fn characterization_dta(model: &TimingModel) -> DynamicTimingAnalysis {
    let workload = characterization_workload(0xC0DE);
    let trace = Simulator::new(SimConfig::default())
        .run(&workload.program)
        .expect("characterization runs")
        .trace;
    DynamicTimingAnalysis::run(model, &trace)
}

/// The static timing limit of the optimized core is 2026 ps / 494 MHz at
/// 0.70 V (paper §IV).
#[test]
fn static_timing_limit_matches_paper() {
    let model = nominal_model();
    assert_eq!(model.static_period_ps().round(), 2026.0);
    let mhz = 1.0e6 / model.static_period_ps();
    assert!((mhz - 493.6).abs() < 1.0);
}

/// Fig. 5: the mean per-cycle dynamic delay is far below the static limit
/// (paper: 1334 ps vs 2026 ps, a ~50 % genie speedup).
#[test]
fn fig5_mean_dynamic_delay_and_genie_speedup() {
    let model = nominal_model();
    let dta = characterization_dta(&model);
    let mean = dta.mean_cycle_delay_ps();
    assert!(
        (1200.0..1500.0).contains(&mean),
        "mean per-cycle delay {mean} ps is far from the paper's 1334 ps"
    );
    let genie = (dta.genie_speedup() - 1.0) * 100.0;
    assert!(
        (30.0..70.0).contains(&genie),
        "genie speedup {genie} % is far from the paper's ~50 %"
    );
}

/// Fig. 6: the execute stage owns the limiting path in the vast majority of
/// cycles (93 % in the paper), the address stage in most of the remainder.
#[test]
fn fig6_execute_stage_dominates() {
    let model = nominal_model();
    let dta = characterization_dta(&model);
    let ex = dta.limiting_fraction(Stage::Execute);
    let adr = dta.limiting_fraction(Stage::Address);
    let others: f64 = [
        Stage::Fetch,
        Stage::Decode,
        Stage::Control,
        Stage::Writeback,
    ]
    .iter()
    .map(|s| dta.limiting_fraction(*s))
    .sum();
    assert!(ex > 0.75, "execute-stage dominance {ex}");
    assert!(adr < 0.25, "address-stage share {adr}");
    assert!(others < 0.10, "remaining stages share {others}");
}

/// Table I: the critical-range optimization shortens the worst-case delay of
/// most instruction classes (factors < 1) while the multiplier gets slightly
/// slower (factor > 1), and costs ~9 % of static frequency.
#[test]
fn table1_critical_range_factors() {
    let paper = [
        (TimingClass::Add, 0.92),
        (TimingClass::BranchCond, 0.78),
        (TimingClass::Jump, 0.74),
        (TimingClass::Load, 0.85),
        (TimingClass::Mul, 1.10),
        (TimingClass::Nop, 0.78),
        (TimingClass::Store, 0.85),
    ];
    for (class, expected) in paper {
        let measured = TimingProfile::max_delay_factor(class);
        assert!(
            (measured - expected).abs() < 0.05,
            "{class}: measured factor {measured:.3}, paper {expected}"
        );
    }
    let optimized = TimingProfile::new(ProfileKind::CriticalRangeOptimized);
    let conventional = TimingProfile::new(ProfileKind::Conventional);
    let sta_penalty = optimized.static_period_ps() / conventional.static_period_ps();
    assert!(
        (sta_penalty - 1.09).abs() < 0.02,
        "STA penalty {sta_penalty}"
    );
}

/// Table II: characterized per-instruction worst-case delays land close to
/// the paper's numbers and identify the same limiting stages.
#[test]
fn table2_characterized_delays_and_limiting_stages() {
    let model = nominal_model();
    let dta = characterization_dta(&model);
    let lut = DelayLut::from_dta(&dta, 8);
    let paper = [
        (TimingClass::Add, 1467.0, Stage::Execute),
        (TimingClass::And, 1482.0, Stage::Execute),
        (TimingClass::BranchCond, 1470.0, Stage::Execute),
        (TimingClass::Jump, 1172.0, Stage::Address),
        (TimingClass::Load, 1391.0, Stage::Execute),
        (TimingClass::Mul, 1899.0, Stage::Execute),
        (TimingClass::Shift, 1270.0, Stage::Execute),
        (TimingClass::Xor, 1514.0, Stage::Execute),
    ];
    for (class, expected_ps, expected_stage) in paper {
        let (stage, measured) = lut.class_worst_case(class);
        assert_eq!(stage, expected_stage, "limiting stage of {class}");
        let deviation = (measured - expected_ps).abs() / expected_ps;
        assert!(
            deviation < 0.06,
            "{class}: measured {measured:.0} ps, paper {expected_ps} ps"
        );
    }
}

/// Fig. 8 + headline claim: the instruction-based adjustment gains a large
/// fraction of the genie bound on the benchmark suites (paper: +38 % vs the
/// +50 % bound) with zero timing violations.
#[test]
fn fig8_suite_speedup_within_band() {
    let model = nominal_model();
    let dta = characterization_dta(&model);
    // A 1.5 % guardband covers data conditions the finite characterization
    // run did not excite (see DESIGN.md), preserving the zero-violation
    // property on workloads the LUT has never seen.
    let lut = DelayLut::from_dta(&dta, 8).with_guardband(0.015);
    let policy = InstructionBased::new(lut);
    let simulator = Simulator::new(SimConfig::default());

    let mut summary = eval::SuiteSummary::new();
    for workload in benchmark_suite() {
        let trace = simulator.run(&workload.program).unwrap().trace;
        summary.push(eval::compare(
            &model,
            workload.name,
            &trace,
            &policy,
            &ClockGenerator::Ideal,
        ));
    }
    let gain_percent = (summary.mean_speedup() - 1.0) * 100.0;
    assert!(
        (25.0..55.0).contains(&gain_percent),
        "suite speedup {gain_percent:.1} % is far from the paper's 38 %"
    );
    assert!(
        summary.mean_baseline_frequency_mhz() > 480.0
            && summary.mean_baseline_frequency_mhz() < 500.0
    );
    assert!(summary.mean_dynamic_frequency_mhz() > 600.0);
    assert_eq!(summary.total_violations(), 0);
}

/// §IV-B: the frequency gain converts into a supply-voltage reduction of
/// roughly 70 mV and an energy-efficiency improvement of roughly 24 %.
#[test]
fn power_voltage_scaling_band() {
    let model = nominal_model();
    let dta = characterization_dta(&model);
    let lut = DelayLut::from_dta(&dta, 8).with_guardband(0.015);
    let library = CellLibrary::fdsoi28();
    let power = PowerModel::new(library.clone());
    let workload = benchmark_suite()
        .into_iter()
        .find(|w| w.name == "beebs_dijkstra")
        .unwrap();
    let trace = Simulator::new(SimConfig::default())
        .run(&workload.program)
        .unwrap()
        .trace;

    let result = vfs::scale_for_iso_throughput(
        ProfileKind::CriticalRangeOptimized,
        &library,
        &power,
        &trace,
        &|m| {
            Box::new(InstructionBased::new(
                lut.scaled(m.operating_point().delay_scale),
            ))
        },
        &ClockGenerator::Ideal,
    )
    .expect("a feasible operating point exists");

    assert!(
        (40..=110).contains(&result.voltage_reduction_mv),
        "voltage reduction {} mV vs the paper's ~70 mV",
        result.voltage_reduction_mv
    );
    let gain = result.efficiency_gain_percent();
    assert!(
        (12.0..35.0).contains(&gain),
        "efficiency gain {gain:.1} % vs the paper's 24 %"
    );
    // Baseline efficiency should be in the neighbourhood of 13.7 µW/MHz.
    assert!(
        (11.5..16.0).contains(&result.baseline.uw_per_mhz),
        "baseline {:.2} µW/MHz",
        result.baseline.uw_per_mhz
    );
}
