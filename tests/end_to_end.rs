//! End-to-end integration test: the full paper flow from characterization to
//! benchmark evaluation, spanning every workspace crate.

use idca::prelude::*;

/// Runs the complete flow once and checks the structural relationships the
/// paper's evaluation relies on.
#[test]
fn full_flow_characterize_then_evaluate() {
    let model = TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized);
    let simulator = Simulator::new(SimConfig::default());

    // 1. Characterization: directed + semi-random workload, DTA, delay LUT.
    let characterization = characterization_workload(2025);
    let char_trace = simulator
        .run(&characterization.program)
        .expect("characterization runs");
    let dta = DynamicTimingAnalysis::run(&model, &char_trace.trace);
    assert!(dta.cycles() > 5_000);
    assert!(dta.mean_cycle_delay_ps() < dta.static_period_ps());

    let lut = DelayLut::from_dta(&dta, 8);
    // Frequently-characterized classes must have real (sub-static) entries.
    assert!(
        lut.delay_ps(Stage::Execute, TimingClass::Add) < lut.static_period_ps(),
        "characterization must tighten the Add entry"
    );

    // 2. Evaluation on a few benchmarks with three policies.
    let policy = InstructionBased::new(lut);
    let genie = GenieOracle::new(model.clone());
    let baseline_policy = StaticClock::of_model(&model);

    let mut summary = eval::SuiteSummary::new();
    for workload in benchmark_suite().into_iter().take(6) {
        let trace = simulator
            .run(&workload.program)
            .expect("benchmark runs")
            .trace;
        let baseline = run_with_policy(&model, &trace, &baseline_policy, &ClockGenerator::Ideal);
        let dynamic = run_with_policy(&model, &trace, &policy, &ClockGenerator::Ideal);
        let oracle = run_with_policy(&model, &trace, &genie, &ClockGenerator::Ideal);

        // Ordering: static <= instruction-based <= genie (in frequency).
        assert!(
            dynamic.effective_frequency_mhz >= baseline.effective_frequency_mhz,
            "{}: dynamic slower than static",
            workload.name
        );
        assert!(
            oracle.effective_frequency_mhz + 1e-6 >= dynamic.effective_frequency_mhz,
            "{}: LUT policy beats the oracle",
            workload.name
        );
        summary.push(eval::PolicyComparison {
            benchmark: workload.name,
            baseline,
            dynamic,
        });
    }
    // The benchmark mix must gain a substantial fraction of the static period.
    let mean = summary.mean_speedup();
    assert!(mean > 1.15, "mean speedup {mean}");
}

#[test]
fn profile_lut_guarantees_zero_violations_on_every_benchmark() {
    let model = TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized);
    let policy = InstructionBased::from_model(&model);
    let simulator = Simulator::new(SimConfig::default());
    for workload in benchmark_suite() {
        let trace = simulator
            .run(&workload.program)
            .expect("benchmark runs")
            .trace;
        let outcome = run_with_policy(&model, &trace, &policy, &ClockGenerator::Ideal);
        assert_eq!(
            outcome.violations, 0,
            "{} suffered timing violations under the worst-case LUT",
            workload.name
        );
    }
}

#[test]
fn quantized_clock_generator_preserves_correctness_and_most_of_the_gain() {
    let model = TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized);
    let policy = InstructionBased::from_model(&model);
    let simulator = Simulator::new(SimConfig::default());
    let workload = benchmark_suite()
        .into_iter()
        .find(|w| w.name == "core_crc16")
        .expect("crc16 exists");
    let trace = simulator.run(&workload.program).unwrap().trace;

    let baseline = run_with_policy(
        &model,
        &trace,
        &StaticClock::of_model(&model),
        &ClockGenerator::Ideal,
    );
    let ideal = run_with_policy(&model, &trace, &policy, &ClockGenerator::Ideal);
    let quantized = run_with_policy(&model, &trace, &policy, &ClockGenerator::quantized_50ps());
    let discrete = run_with_policy(
        &model,
        &trace,
        &policy,
        &ClockGenerator::discrete(8, 900.0, 2100.0),
    );

    for outcome in [&ideal, &quantized, &discrete] {
        assert_eq!(outcome.violations, 0);
    }
    assert!(quantized.effective_frequency_mhz <= ideal.effective_frequency_mhz + 1e-9);
    assert!(quantized.speedup_over(&baseline) > 1.1);
    assert!(discrete.speedup_over(&baseline) > 1.05);
}

#[test]
fn execute_only_controller_loses_little_versus_full_monitoring() {
    let model = TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized);
    let lut = DelayLut::from_model(&model);
    let full = InstructionBased::new(lut.clone());
    let simplified = ExecuteOnly::new(lut);
    let simulator = Simulator::new(SimConfig::default());

    let mut full_total = 0.0;
    let mut simplified_total = 0.0;
    for workload in benchmark_suite().into_iter().take(5) {
        let trace = simulator.run(&workload.program).unwrap().trace;
        let a = run_with_policy(&model, &trace, &full, &ClockGenerator::Ideal);
        let b = run_with_policy(&model, &trace, &simplified, &ClockGenerator::Ideal);
        assert_eq!(b.violations, 0, "{}", workload.name);
        full_total += a.total_time_ps;
        simplified_total += b.total_time_ps;
    }
    // §IV-A: monitoring only the execute stage (with the address-stage guard)
    // sacrifices only a small part of the gain.
    let penalty = simplified_total / full_total;
    assert!(
        (1.0..1.15).contains(&penalty),
        "execute-only penalty {penalty}"
    );
}

#[test]
fn lut_json_roundtrip_through_filesystem_artifacts() {
    let model = TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized);
    let lut = DelayLut::from_model(&model);
    let json = lut.to_json().expect("serializes");
    let path = std::env::temp_dir().join("idca_integration_lut.json");
    std::fs::write(&path, &json).expect("writes");
    let loaded =
        DelayLut::from_json(&std::fs::read_to_string(&path).expect("reads")).expect("parses");
    assert_eq!(loaded, lut);
    std::fs::remove_file(&path).ok();
}
