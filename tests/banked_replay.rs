//! Equivalence contract of the corner-batched replay kernel and the digest
//! binary codec, over *random* inputs:
//!
//! * replaying a digest against `M` corner-varied models through the SIMD
//!   [`CornerBank`] lanes must be **bit-identical** to the retained
//!   lane-by-lane scalar replay, for every policy, for corner counts on
//!   both sides of (and straddling) the lane width — padding lanes must be
//!   inert;
//! * serializing a digest and loading it back must reproduce the identical
//!   digest, the identical bytes, and the identical replay outcomes;
//! * no corruption of serialized bytes may panic the loader.

use idca::core::{
    replay_adaptive_digest, replay_adaptive_digest_banked, replay_digest, replay_digest_banked,
    AdaptiveBank, AdaptiveConfig, AdaptiveObserver, Drift, PolicyBank, PolicyObserver,
};
use idca::pipeline::{DigestObserver, TimingDigest};
use idca::prelude::*;
use proptest::prelude::*;

fn nominal() -> TimingModel {
    TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized)
}

/// Generates and simulates the `master_seed`-derived program, capturing its
/// timing digest.
fn digest_of(master_seed: u64) -> TimingDigest {
    let program = generate_program(nth_seed(master_seed, 0), &GenConfig::default());
    let mut observer = DigestObserver::new();
    Simulator::new(SimConfig::default())
        .run_observed(&program, &mut [&mut observer])
        .expect("generated programs terminate");
    observer.into_digest()
}

/// Samples `corners` PVT-varied models from the default variation model.
fn varied_models(corners: u32, master_seed: u64) -> Vec<TimingModel> {
    let base = nominal();
    let vm = VariationModel::default();
    (0..corners)
        .map(|i| vm.apply(&base, &vm.sample_corner(master_seed, i)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn banked_replay_is_bit_identical_to_lane_by_lane(
        corners in 1u32..=9,
        master_seed in any::<u64>(),
    ) {
        let digest = digest_of(master_seed);
        let models = varied_models(corners, master_seed);
        let base = nominal();
        let policies: [&dyn ClockPolicy; 3] = [
            &StaticClock::of_model(&base),
            &InstructionBased::from_model(&base),
            &ExecuteOnly::new(DelayLut::from_model(&base)),
        ];
        for policy in policies {
            let banked =
                replay_digest_banked(&models, &digest, policy, &ClockGenerator::Ideal);
            prop_assert_eq!(banked.len(), models.len());
            for (model, outcome) in models.iter().zip(&banked) {
                let scalar = replay_digest(model, &digest, policy, &ClockGenerator::Ideal);
                // Field-for-field f64 equality, not tolerance: the banked
                // lanes perform the identical arithmetic, so violations,
                // realized periods and the activity statistics must match
                // to the last bit.
                prop_assert_eq!(outcome, &scalar, "policy {}", policy.name());
            }
        }
    }

    #[test]
    fn banked_adaptive_replay_is_bit_identical_to_scalar_observers(
        corners in 1u32..=9,
        master_seed in any::<u64>(),
        seeded in any::<bool>(),
        drift_centikilo in 0u32..=3,
    ) {
        let digest = digest_of(master_seed);
        let models = varied_models(corners, master_seed);
        let config = AdaptiveConfig::default();
        let seed_lut = DelayLut::from_model(&nominal());
        let seed_lut = seeded.then_some(&seed_lut);
        // Include drifting runs: drift exercises the violation-backoff
        // branch of the learned-table update, which a drift-free replay of
        // a margin-guarded table never takes.
        let drift = if drift_centikilo == 0 {
            Drift::None
        } else {
            Drift::LinearSlowdown {
                fraction_per_kilocycle: f64::from(drift_centikilo) * 0.01,
            }
        };
        let banked = replay_adaptive_digest_banked(
            &models,
            &digest,
            &config,
            &ClockGenerator::Ideal,
            seed_lut,
            drift,
        );
        prop_assert_eq!(banked.len(), models.len());
        for (model, outcome) in models.iter().zip(&banked) {
            let scalar = replay_adaptive_digest(
                model,
                &digest,
                &config,
                &ClockGenerator::Ideal,
                seed_lut,
                drift,
            );
            // Field-for-field f64 equality: the SoA adaptive bank performs
            // the identical predict/realize/observe/adapt arithmetic per
            // lane, so learned periods, violations and warmup counts must
            // match to the last bit.
            prop_assert_eq!(outcome, &scalar, "corners {}", corners);
        }
    }

    #[test]
    fn soa_lanes_kernel_is_bit_identical_to_scalar_observers(
        corners in 1u32..=9,
        master_seed in any::<u64>(),
        quantized in any::<bool>(),
        seeded in any::<bool>(),
        drifting in any::<bool>(),
    ) {
        // Pins the sweep's actual phase-2 kernel: the [`CycleLanes`]
        // structure-of-arrays evaluation feeding the three [`PolicyBank`]s
        // (one block decision, one contiguous compare per cycle) and the
        // [`AdaptiveBank`]'s lanes path — not the AoS
        // `observe_digest_timed` fallback the other properties cover.
        let digest = digest_of(master_seed);
        let models = varied_models(corners, master_seed);
        let base = nominal();
        let generator = if quantized {
            ClockGenerator::quantized_50ps()
        } else {
            ClockGenerator::Ideal
        };
        let config = AdaptiveConfig::default();
        let seed_lut = DelayLut::from_model(&base);
        let seed_lut = seeded.then_some(&seed_lut);
        let drift = if drifting {
            Drift::LinearSlowdown { fraction_per_kilocycle: 0.02 }
        } else {
            Drift::None
        };
        // The sweep deploys one margin-guarded LUT across every corner, so
        // the table-driven decisions are corner-invariant: shared policies.
        let lut_policy = InstructionBased::from_model(&base);
        let exec_policy = ExecuteOnly::new(DelayLut::from_model(&base));
        let static_requests: Vec<idca::timing::Ps> = models
            .iter()
            .map(|m| StaticClock::of_model(m).period())
            .collect();

        // Banked: one digest walk, all corners in SoA lanes.
        let bank = CornerBank::from_models(&models);
        let mut bank_static = PolicyBank::new("static", models.len(), &generator);
        let mut bank_lut = PolicyBank::new("instruction-based", models.len(), &generator);
        let mut bank_exec = PolicyBank::new("execute-only", models.len(), &generator);
        let mut adaptive = AdaptiveBank::new(&models, &config, &generator, seed_lut, drift);
        let mut evaluator = bank.evaluator();
        digest.for_each_run(|start, len, dc| {
            bank_lut.begin_block(lut_policy.digest_period_ps(start, dc));
            bank_exec.begin_block(exec_policy.digest_period_ps(start, dc));
            bank_static.begin_block_per_corner(&static_requests);
            for cycle in start..start + u64::from(len) {
                let lanes = &*evaluator.cycle_lanes(cycle, dc);
                bank_static.observe_actuals(lanes.max_lanes());
                bank_lut.observe_actuals(lanes.max_lanes());
                bank_exec.observe_actuals(lanes.max_lanes());
                adaptive.observe_cycle_lanes(cycle, dc, lanes);
            }
        });
        let summary = digest.summary();
        bank_static.finish(&summary);
        bank_lut.finish(&summary);
        bank_exec.finish(&summary);
        adaptive.finish(&summary);
        let out_static = bank_static.into_outcomes();
        let out_lut = bank_lut.into_outcomes();
        let out_exec = bank_exec.into_outcomes();
        let out_adaptive = adaptive.into_outcomes();

        // Scalar reference: per corner, the prepared-timing observers the
        // lane-by-lane engine runs.
        for (corner, model) in models.iter().enumerate() {
            let static_policy = StaticClock::new(static_requests[corner]);
            let mut ob_static = PolicyObserver::new(model, &static_policy, &generator);
            let mut ob_lut = PolicyObserver::new(model, &lut_policy, &generator);
            let mut ob_exec = PolicyObserver::new(model, &exec_policy, &generator);
            let mut ob_adaptive =
                AdaptiveObserver::new(model, &config, &generator, seed_lut, drift);
            digest.for_each_cycle(|cycle, dc| {
                let timing = model.digest_cycle_timing(cycle, dc);
                ob_static.observe_digest_timed(cycle, dc, &timing);
                ob_lut.observe_digest_timed(cycle, dc, &timing);
                ob_exec.observe_digest_timed(cycle, dc, &timing);
                ob_adaptive.observe_digest_timed(cycle, dc, &timing);
            });
            ob_static.finish(&summary);
            ob_lut.finish(&summary);
            ob_exec.finish(&summary);
            ob_adaptive.finish(&summary);
            // Field-for-field f64 equality, not tolerance — including the
            // learned tables and warmup counts of the adaptive outcome. The
            // activity summary is the one documented exception: the banks
            // leave it empty-finished (the sweep folds activity once,
            // outside the banks, and its rows never carry it), so align it
            // before the whole-struct compare.
            let mut scalar_static = ob_static.into_outcome();
            let mut scalar_lut = ob_lut.into_outcome();
            let mut scalar_exec = ob_exec.into_outcome();
            scalar_static.activity = out_static[corner].activity;
            scalar_lut.activity = out_lut[corner].activity;
            scalar_exec.activity = out_exec[corner].activity;
            prop_assert_eq!(&out_static[corner], &scalar_static, "corner {}", corner);
            prop_assert_eq!(&out_lut[corner], &scalar_lut, "corner {}", corner);
            prop_assert_eq!(&out_exec[corner], &scalar_exec, "corner {}", corner);
            prop_assert_eq!(&out_adaptive[corner], &ob_adaptive.into_outcome(), "corner {}", corner);
        }
    }

    #[test]
    fn banked_cycle_timings_match_the_scalar_model(
        corners in 1u32..=9,
        master_seed in any::<u64>(),
    ) {
        let digest = digest_of(master_seed);
        let models = varied_models(corners, master_seed);
        let bank = CornerBank::from_models(&models);
        let mut mismatches = 0u64;
        bank.replay_digest(&digest, |cycle, dc, timings| {
            for (model, banked) in models.iter().zip(timings) {
                if model.digest_cycle_timing(cycle, dc) != *banked {
                    mismatches += 1;
                }
            }
        });
        prop_assert_eq!(mismatches, 0);
    }

    #[test]
    fn digest_binary_round_trip_is_byte_exact_and_replay_identical(
        master_seed in any::<u64>(),
    ) {
        let digest = digest_of(master_seed);
        let bytes = digest.to_bytes();
        let back = TimingDigest::from_bytes(&bytes).expect("round-trips");
        prop_assert_eq!(&back, &digest);
        prop_assert_eq!(back.to_bytes(), bytes);
        // A reloaded digest replays to the identical outcome.
        let model = nominal();
        let policy = InstructionBased::from_model(&model);
        prop_assert_eq!(
            replay_digest(&model, &back, &policy, &ClockGenerator::Ideal),
            replay_digest(&model, &digest, &policy, &ClockGenerator::Ideal)
        );
    }

    #[test]
    fn corrupted_digest_bytes_error_without_panicking(
        master_seed in any::<u64>(),
        position in any::<u64>(),
        mask in 1u8..=255u8,
    ) {
        let bytes = digest_of(master_seed).to_bytes();
        // Single-byte corruption anywhere is rejected (checksummed), and
        // truncation to any length errors instead of panicking.
        let at = (position % bytes.len() as u64) as usize;
        let mut bad = bytes.clone();
        bad[at] ^= mask;
        prop_assert!(TimingDigest::from_bytes(&bad).is_err(), "flip at {}", at);
        let cut = at; // reuse the position as an arbitrary truncation point
        prop_assert!(TimingDigest::from_bytes(&bytes[..cut]).is_err());
    }
}
