//! Equivalence contract of the corner-batched replay kernel and the digest
//! binary codec, over *random* inputs:
//!
//! * replaying a digest against `M` corner-varied models through the SIMD
//!   [`CornerBank`] lanes must be **bit-identical** to the retained
//!   lane-by-lane scalar replay, for every policy, for corner counts on
//!   both sides of (and straddling) the lane width — padding lanes must be
//!   inert;
//! * serializing a digest and loading it back must reproduce the identical
//!   digest, the identical bytes, and the identical replay outcomes;
//! * no corruption of serialized bytes may panic the loader.

use idca::core::{
    replay_adaptive_digest, replay_adaptive_digest_banked, replay_digest, replay_digest_banked,
    AdaptiveConfig, Drift,
};
use idca::pipeline::{DigestObserver, TimingDigest};
use idca::prelude::*;
use proptest::prelude::*;

fn nominal() -> TimingModel {
    TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized)
}

/// Generates and simulates the `master_seed`-derived program, capturing its
/// timing digest.
fn digest_of(master_seed: u64) -> TimingDigest {
    let program = generate_program(nth_seed(master_seed, 0), &GenConfig::default());
    let mut observer = DigestObserver::new();
    Simulator::new(SimConfig::default())
        .run_observed(&program, &mut [&mut observer])
        .expect("generated programs terminate");
    observer.into_digest()
}

/// Samples `corners` PVT-varied models from the default variation model.
fn varied_models(corners: u32, master_seed: u64) -> Vec<TimingModel> {
    let base = nominal();
    let vm = VariationModel::default();
    (0..corners)
        .map(|i| vm.apply(&base, &vm.sample_corner(master_seed, i)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn banked_replay_is_bit_identical_to_lane_by_lane(
        corners in 1u32..=9,
        master_seed in any::<u64>(),
    ) {
        let digest = digest_of(master_seed);
        let models = varied_models(corners, master_seed);
        let base = nominal();
        let policies: [&dyn ClockPolicy; 3] = [
            &StaticClock::of_model(&base),
            &InstructionBased::from_model(&base),
            &ExecuteOnly::new(DelayLut::from_model(&base)),
        ];
        for policy in policies {
            let banked =
                replay_digest_banked(&models, &digest, policy, &ClockGenerator::Ideal);
            prop_assert_eq!(banked.len(), models.len());
            for (model, outcome) in models.iter().zip(&banked) {
                let scalar = replay_digest(model, &digest, policy, &ClockGenerator::Ideal);
                // Field-for-field f64 equality, not tolerance: the banked
                // lanes perform the identical arithmetic, so violations,
                // realized periods and the activity statistics must match
                // to the last bit.
                prop_assert_eq!(outcome, &scalar, "policy {}", policy.name());
            }
        }
    }

    #[test]
    fn banked_adaptive_replay_is_bit_identical_to_scalar_observers(
        corners in 1u32..=9,
        master_seed in any::<u64>(),
        seeded in any::<bool>(),
        drift_centikilo in 0u32..=3,
    ) {
        let digest = digest_of(master_seed);
        let models = varied_models(corners, master_seed);
        let config = AdaptiveConfig::default();
        let seed_lut = DelayLut::from_model(&nominal());
        let seed_lut = seeded.then_some(&seed_lut);
        // Include drifting runs: drift exercises the violation-backoff
        // branch of the learned-table update, which a drift-free replay of
        // a margin-guarded table never takes.
        let drift = if drift_centikilo == 0 {
            Drift::None
        } else {
            Drift::LinearSlowdown {
                fraction_per_kilocycle: f64::from(drift_centikilo) * 0.01,
            }
        };
        let banked = replay_adaptive_digest_banked(
            &models,
            &digest,
            &config,
            &ClockGenerator::Ideal,
            seed_lut,
            drift,
        );
        prop_assert_eq!(banked.len(), models.len());
        for (model, outcome) in models.iter().zip(&banked) {
            let scalar = replay_adaptive_digest(
                model,
                &digest,
                &config,
                &ClockGenerator::Ideal,
                seed_lut,
                drift,
            );
            // Field-for-field f64 equality: the SoA adaptive bank performs
            // the identical predict/realize/observe/adapt arithmetic per
            // lane, so learned periods, violations and warmup counts must
            // match to the last bit.
            prop_assert_eq!(outcome, &scalar, "corners {}", corners);
        }
    }

    #[test]
    fn banked_cycle_timings_match_the_scalar_model(
        corners in 1u32..=9,
        master_seed in any::<u64>(),
    ) {
        let digest = digest_of(master_seed);
        let models = varied_models(corners, master_seed);
        let bank = CornerBank::from_models(&models);
        let mut mismatches = 0u64;
        bank.replay_digest(&digest, |cycle, dc, timings| {
            for (model, banked) in models.iter().zip(timings) {
                if model.digest_cycle_timing(cycle, dc) != *banked {
                    mismatches += 1;
                }
            }
        });
        prop_assert_eq!(mismatches, 0);
    }

    #[test]
    fn digest_binary_round_trip_is_byte_exact_and_replay_identical(
        master_seed in any::<u64>(),
    ) {
        let digest = digest_of(master_seed);
        let bytes = digest.to_bytes();
        let back = TimingDigest::from_bytes(&bytes).expect("round-trips");
        prop_assert_eq!(&back, &digest);
        prop_assert_eq!(back.to_bytes(), bytes);
        // A reloaded digest replays to the identical outcome.
        let model = nominal();
        let policy = InstructionBased::from_model(&model);
        prop_assert_eq!(
            replay_digest(&model, &back, &policy, &ClockGenerator::Ideal),
            replay_digest(&model, &digest, &policy, &ClockGenerator::Ideal)
        );
    }

    #[test]
    fn corrupted_digest_bytes_error_without_panicking(
        master_seed in any::<u64>(),
        position in any::<u64>(),
        mask in 1u8..=255u8,
    ) {
        let bytes = digest_of(master_seed).to_bytes();
        // Single-byte corruption anywhere is rejected (checksummed), and
        // truncation to any length errors instead of panicking.
        let at = (position % bytes.len() as u64) as usize;
        let mut bad = bytes.clone();
        bad[at] ^= mask;
        prop_assert!(TimingDigest::from_bytes(&bad).is_err(), "flip at {}", at);
        let cut = at; // reuse the position as an arbitrary truncation point
        prop_assert!(TimingDigest::from_bytes(&bytes[..cut]).is_err());
    }
}
