//! Property-based tests on the core invariants of the reproduction:
//! instruction encoding round-trips, pipeline-vs-interpreter equivalence on
//! random programs, the no-timing-violation guarantee of the worst-case LUT
//! (at the nominal corner and across sampled PVT corners within the LUT
//! margin), the clock-generator safety property, and the convergence
//! invariants of the online-adaptive delay table.

use idca::core::{AdaptiveConfig, AdaptiveObserver, Drift};
use idca::isa::disasm;
use idca::pipeline::Interpreter;
use idca::prelude::*;
use proptest::prelude::*;

fn reg_strategy() -> impl Strategy<Value = Reg> {
    (0u32..32).prop_map(Reg::r)
}

/// A strategy over arbitrary (valid) instructions of the modelled subset,
/// built through the typed constructors so operand ranges are respected.
fn insn_strategy() -> impl Strategy<Value = Insn> {
    let r = reg_strategy;
    prop_oneof![
        (r(), r(), r()).prop_map(|(d, a, b)| Insn::add(d, a, b)),
        (r(), r(), r()).prop_map(|(d, a, b)| Insn::sub(d, a, b)),
        (r(), r(), r()).prop_map(|(d, a, b)| Insn::and(d, a, b)),
        (r(), r(), r()).prop_map(|(d, a, b)| Insn::or(d, a, b)),
        (r(), r(), r()).prop_map(|(d, a, b)| Insn::xor(d, a, b)),
        (r(), r(), r()).prop_map(|(d, a, b)| Insn::mul(d, a, b)),
        (r(), r(), r()).prop_map(|(d, a, b)| Insn::cmov(d, a, b)),
        (r(), r(), -32768i32..=32767).prop_map(|(d, a, i)| Insn::addi(d, a, i).unwrap()),
        (r(), r(), 0u32..=65535).prop_map(|(d, a, i)| Insn::andi(d, a, i).unwrap()),
        (r(), r(), 0u32..=65535).prop_map(|(d, a, i)| Insn::ori(d, a, i).unwrap()),
        (r(), r(), -32768i32..=32767).prop_map(|(d, a, i)| Insn::xori(d, a, i).unwrap()),
        (r(), r(), 0u32..32).prop_map(|(d, a, s)| Insn::slli(d, a, s).unwrap()),
        (r(), r(), 0u32..32).prop_map(|(d, a, s)| Insn::srli(d, a, s).unwrap()),
        (r(), r(), 0u32..32).prop_map(|(d, a, s)| Insn::srai(d, a, s).unwrap()),
        (r(), 0u32..=65535).prop_map(|(d, k)| Insn::movhi(d, k).unwrap()),
        (r(), r()).prop_map(|(a, b)| Insn::sf(idca::isa::SetFlagCond::Gtu, a, b)),
        (r(), -32768i32..=32767)
            .prop_map(|(a, i)| Insn::sfi(idca::isa::SetFlagCond::Lts, a, i).unwrap()),
        (r(), -8192i32..=8191, r()).prop_map(|(d, off, a)| Insn::lwz(d, off & !3, a).unwrap()),
        (-8192i32..=8191, r(), r()).prop_map(|(off, a, b)| Insn::sw(off & !3, a, b).unwrap()),
        (-33_000_000i32 / 4..=33_000_000 / 4).prop_map(|off| Insn::j(off).unwrap()),
        (-100i32..=100).prop_map(|off| Insn::bf(off).unwrap()),
        r().prop_map(Insn::jr),
        (0u16..100).prop_map(Insn::nop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every instruction encodes to a 32-bit word that decodes back to the
    /// identical instruction.
    #[test]
    fn encode_decode_roundtrip(insn in insn_strategy()) {
        let word = insn.encode();
        let decoded = Insn::decode(word).expect("decodes");
        prop_assert_eq!(decoded, insn);
    }

    /// Disassembled text of a non-control-flow instruction re-assembles to
    /// the identical instruction (the assembler and disassembler agree).
    #[test]
    fn disassemble_reassemble_roundtrip(insn in insn_strategy()) {
        // PC-relative instructions print raw word offsets which the
        // assembler interprets relative to the instruction address, so they
        // round-trip only at address 0 — which is where we place them.
        let text = disasm::format_insn(&insn);
        let program = Assembler::new().assemble(&text).expect("re-assembles");
        prop_assert_eq!(program.insns()[0], insn);
    }
}

/// A strategy over safe straight-line ALU/memory programs: registers are
/// preloaded with random values, memory accesses stay inside a scratch
/// window, and the program ends with the exit marker.
fn straight_line_program() -> impl Strategy<Value = Program> {
    let step = prop_oneof![
        (2u32..16, 2u32..16, 2u32..16).prop_map(|(d, a, b)| vec![Insn::add(
            Reg::r(d),
            Reg::r(a),
            Reg::r(b)
        )]),
        (2u32..16, 2u32..16, 2u32..16).prop_map(|(d, a, b)| vec![Insn::sub(
            Reg::r(d),
            Reg::r(a),
            Reg::r(b)
        )]),
        (2u32..16, 2u32..16, 2u32..16).prop_map(|(d, a, b)| vec![Insn::xor(
            Reg::r(d),
            Reg::r(a),
            Reg::r(b)
        )]),
        (2u32..16, 2u32..16, 2u32..16).prop_map(|(d, a, b)| vec![Insn::mul(
            Reg::r(d),
            Reg::r(a),
            Reg::r(b)
        )]),
        (2u32..16, 2u32..16, -2048i32..2048).prop_map(|(d, a, i)| vec![Insn::addi(
            Reg::r(d),
            Reg::r(a),
            i
        )
        .unwrap()]),
        (2u32..16, 2u32..16, 0u32..32).prop_map(|(d, a, s)| vec![Insn::slli(
            Reg::r(d),
            Reg::r(a),
            s
        )
        .unwrap()]),
        (2u32..16, 2u32..16).prop_map(|(a, b)| vec![Insn::sf(
            idca::isa::SetFlagCond::Ltu,
            Reg::r(a),
            Reg::r(b)
        )]),
        (2u32..16, 0i32..64, 2u32..16).prop_map(|(d, off, b)| vec![
            Insn::sw(off * 4, Reg::r(1), Reg::r(b)).unwrap(),
            Insn::lwz(Reg::r(d), off * 4, Reg::r(1)).unwrap(),
        ]),
    ];
    (
        proptest::collection::vec(step, 1..40),
        proptest::collection::vec(any::<u16>(), 14),
    )
        .prop_map(|(steps, seeds)| {
            let mut builder = ProgramBuilder::named("proptest-program");
            // Scratch memory base in r1, random initial register values.
            builder.push(Insn::addi(Reg::r(1), Reg::R0, 0x400).unwrap());
            for (i, seed) in seeds.iter().enumerate() {
                builder.push(Insn::ori(Reg::r(i as u32 + 2), Reg::R0, u32::from(*seed)).unwrap());
            }
            for step in steps {
                builder.extend(step);
            }
            builder.push(Insn::nop(1));
            builder.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The pipelined core and the sequential interpreter agree on the final
    /// architectural state of arbitrary straight-line programs (forwarding,
    /// hazards and memory ordering introduce no divergence).
    #[test]
    fn pipeline_equals_interpreter(program in straight_line_program()) {
        let pipelined = Simulator::new(SimConfig::default()).run(&program).expect("pipeline runs");
        let golden = Interpreter::new().run(&program).expect("interpreter runs");
        prop_assert_eq!(pipelined.state.regs.as_array(), golden.regs.as_array());
        prop_assert_eq!(pipelined.state.flag, golden.flag);
        prop_assert_eq!(pipelined.trace.retired(), golden.retired);
    }

    /// With the analytic worst-case LUT, the instruction-based policy never
    /// requests a period shorter than the actual dynamic delay of any cycle.
    #[test]
    fn worst_case_lut_never_violates_timing(program in straight_line_program()) {
        let model = TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized);
        let trace = Simulator::new(SimConfig::default()).run(&program).expect("runs").trace;
        let outcome = run_with_policy(
            &model,
            &trace,
            &InstructionBased::from_model(&model),
            &ClockGenerator::Ideal,
        );
        prop_assert_eq!(outcome.violations, 0);
        // And the genie oracle can never be slower than the LUT policy.
        let genie = run_with_policy(&model, &trace, &GenieOracle::new(model.clone()), &ClockGenerator::Ideal);
        prop_assert!(genie.total_time_ps <= outcome.total_time_ps + 1e-6);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// PVT safety: every non-genie policy whose LUT carries the variation
    /// margin stays violation-free at any corner the [`VariationModel`] can
    /// sample — the static baseline because the varied model re-derives its
    /// (derated) static period, the LUT policies because their entries are
    /// inflated by exactly the worst samplable slowdown.
    #[test]
    fn margin_guarded_policies_survive_sampled_pvt_corners(
        master_seed in any::<u64>(),
        corner_index in 0u32..256,
        program_seed in any::<u64>(),
    ) {
        let variation = VariationModel::default();
        let corner = variation.sample_corner(master_seed, corner_index);
        let nominal = TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized);
        let varied = variation.apply(&nominal, &corner);
        let guarded = DelayLut::from_model(&nominal).scaled(1.0 + variation.margin());

        let config = GenConfig { blocks: 2, block_len: 8, ..GenConfig::default() };
        let program = generate_program(program_seed, &config);

        let static_policy = StaticClock::of_model(&varied);
        let lut_policy = InstructionBased::new(guarded.clone());
        let exec_only = ExecuteOnly::new(guarded);
        let mut observers = [
            PolicyObserver::new(&varied, &static_policy, &ClockGenerator::Ideal),
            PolicyObserver::new(&varied, &lut_policy, &ClockGenerator::Ideal),
            PolicyObserver::new(&varied, &exec_only, &ClockGenerator::Ideal),
        ];
        {
            let mut refs: Vec<&mut dyn CycleObserver> =
                observers.iter_mut().map(|o| o as &mut dyn CycleObserver).collect();
            Simulator::new(SimConfig::default())
                .run_observed(&program, &mut refs)
                .expect("generated program runs");
        }
        for observer in observers {
            let outcome = observer.into_outcome();
            prop_assert_eq!(
                outcome.violations, 0,
                "policy {} violated at corner {} ({})",
                outcome.policy, corner.index, corner.describe()
            );
        }
    }

    /// Adaptive-LUT convergence invariants: after every observed cycle, each
    /// in-flight entry covers that cycle's observed delay plus the safety
    /// margin, and entries tighten monotonically (they never decrease) all
    /// the way through warmup and steady state.
    #[test]
    fn adaptive_entries_cover_observations_and_tighten_monotonically(program_seed in any::<u64>()) {
        let model = TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized);
        let config = GenConfig { blocks: 2, block_len: 8, ..GenConfig::default() };
        let program = generate_program(program_seed, &config);
        let trace = Simulator::new(SimConfig::default())
            .run(&program)
            .expect("generated program runs")
            .trace;

        let mut controller = AdaptiveObserver::new(
            &model,
            &AdaptiveConfig::default(),
            &ClockGenerator::Ideal,
            None,
            Drift::None,
        );
        let margin = controller.config().margin;
        let mut previous = vec![0.0f64; Stage::COUNT * TimingClass::COUNT];
        for record in trace.cycles() {
            controller.observe_cycle(record);
            let timing = model.cycle_timing(record);
            for stage in Stage::ALL {
                let class = record.timing_class(stage);
                let learned = controller.learned_ps(stage, class);
                let required = timing.stage(stage) * (1.0 + margin);
                prop_assert!(
                    learned + 1e-9 >= required,
                    "cycle {}: entry {stage}/{class} = {learned} ps dropped below \
                     observed delay + margin = {required} ps",
                    record.cycle
                );
            }
            for stage in Stage::ALL {
                for class in TimingClass::ALL {
                    let idx = stage.index() * TimingClass::COUNT + class.index();
                    let learned = controller.learned_ps(stage, class);
                    prop_assert!(
                        learned + 1e-12 >= previous[idx],
                        "cycle {}: entry {stage}/{class} loosened from {} to {learned}",
                        record.cycle,
                        previous[idx]
                    );
                    previous[idx] = learned;
                }
            }
        }
        // Bookkeeping sanity: each cycle observes exactly one (stage, class)
        // pair per stage, so the observation counts sum to cycles × stages.
        let mut total_observations = 0u64;
        for stage in Stage::ALL {
            for class in TimingClass::ALL {
                total_observations += controller.observation_count(stage, class);
            }
        }
        prop_assert_eq!(
            total_observations,
            trace.cycle_count() * Stage::COUNT as u64
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Clock generators never realize a period shorter than requested, as
    /// long as the request is within their range.
    #[test]
    fn clock_generators_never_undercut(request in 600.0f64..2400.0) {
        for generator in [
            ClockGenerator::Ideal,
            ClockGenerator::quantized_50ps(),
            ClockGenerator::discrete(16, 600.0, 2400.0),
        ] {
            prop_assert!(generator.realize(request) + 1e-9 >= request);
        }
    }

    /// The per-cycle LUT period is monotone: it always covers the LUT entry
    /// of every stage's class.
    #[test]
    fn lut_period_covers_each_stage(class_indices in proptest::collection::vec(0usize..TimingClass::COUNT, 6)) {
        let model = TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized);
        let lut = DelayLut::from_model(&model);
        let classes: [TimingClass; 6] = std::array::from_fn(|i| TimingClass::ALL[class_indices[i]]);
        let period = lut.period_for(&classes);
        for stage in Stage::ALL {
            prop_assert!(period >= lut.delay_ps(stage, classes[stage.index()]));
        }
    }
}
