//! Property-based tests on the core invariants of the reproduction:
//! instruction encoding round-trips, pipeline-vs-interpreter equivalence on
//! random programs, the no-timing-violation guarantee of the worst-case LUT
//! and the clock-generator safety property.

use idca::isa::disasm;
use idca::pipeline::Interpreter;
use idca::prelude::*;
use proptest::prelude::*;

fn reg_strategy() -> impl Strategy<Value = Reg> {
    (0u32..32).prop_map(Reg::r)
}

/// A strategy over arbitrary (valid) instructions of the modelled subset,
/// built through the typed constructors so operand ranges are respected.
fn insn_strategy() -> impl Strategy<Value = Insn> {
    let r = reg_strategy;
    prop_oneof![
        (r(), r(), r()).prop_map(|(d, a, b)| Insn::add(d, a, b)),
        (r(), r(), r()).prop_map(|(d, a, b)| Insn::sub(d, a, b)),
        (r(), r(), r()).prop_map(|(d, a, b)| Insn::and(d, a, b)),
        (r(), r(), r()).prop_map(|(d, a, b)| Insn::or(d, a, b)),
        (r(), r(), r()).prop_map(|(d, a, b)| Insn::xor(d, a, b)),
        (r(), r(), r()).prop_map(|(d, a, b)| Insn::mul(d, a, b)),
        (r(), r(), r()).prop_map(|(d, a, b)| Insn::cmov(d, a, b)),
        (r(), r(), -32768i32..=32767).prop_map(|(d, a, i)| Insn::addi(d, a, i).unwrap()),
        (r(), r(), 0u32..=65535).prop_map(|(d, a, i)| Insn::andi(d, a, i).unwrap()),
        (r(), r(), 0u32..=65535).prop_map(|(d, a, i)| Insn::ori(d, a, i).unwrap()),
        (r(), r(), -32768i32..=32767).prop_map(|(d, a, i)| Insn::xori(d, a, i).unwrap()),
        (r(), r(), 0u32..32).prop_map(|(d, a, s)| Insn::slli(d, a, s).unwrap()),
        (r(), r(), 0u32..32).prop_map(|(d, a, s)| Insn::srli(d, a, s).unwrap()),
        (r(), r(), 0u32..32).prop_map(|(d, a, s)| Insn::srai(d, a, s).unwrap()),
        (r(), 0u32..=65535).prop_map(|(d, k)| Insn::movhi(d, k).unwrap()),
        (r(), r()).prop_map(|(a, b)| Insn::sf(idca::isa::SetFlagCond::Gtu, a, b)),
        (r(), -32768i32..=32767)
            .prop_map(|(a, i)| Insn::sfi(idca::isa::SetFlagCond::Lts, a, i).unwrap()),
        (r(), -8192i32..=8191, r()).prop_map(|(d, off, a)| Insn::lwz(d, off & !3, a).unwrap()),
        (-8192i32..=8191, r(), r()).prop_map(|(off, a, b)| Insn::sw(off & !3, a, b).unwrap()),
        (-33_000_000i32 / 4..=33_000_000 / 4).prop_map(|off| Insn::j(off).unwrap()),
        (-100i32..=100).prop_map(|off| Insn::bf(off).unwrap()),
        r().prop_map(Insn::jr),
        (0u16..100).prop_map(Insn::nop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every instruction encodes to a 32-bit word that decodes back to the
    /// identical instruction.
    #[test]
    fn encode_decode_roundtrip(insn in insn_strategy()) {
        let word = insn.encode();
        let decoded = Insn::decode(word).expect("decodes");
        prop_assert_eq!(decoded, insn);
    }

    /// Disassembled text of a non-control-flow instruction re-assembles to
    /// the identical instruction (the assembler and disassembler agree).
    #[test]
    fn disassemble_reassemble_roundtrip(insn in insn_strategy()) {
        // PC-relative instructions print raw word offsets which the
        // assembler interprets relative to the instruction address, so they
        // round-trip only at address 0 — which is where we place them.
        let text = disasm::format_insn(&insn);
        let program = Assembler::new().assemble(&text).expect("re-assembles");
        prop_assert_eq!(program.insns()[0], insn);
    }
}

/// A strategy over safe straight-line ALU/memory programs: registers are
/// preloaded with random values, memory accesses stay inside a scratch
/// window, and the program ends with the exit marker.
fn straight_line_program() -> impl Strategy<Value = Program> {
    let step = prop_oneof![
        (2u32..16, 2u32..16, 2u32..16).prop_map(|(d, a, b)| vec![Insn::add(
            Reg::r(d),
            Reg::r(a),
            Reg::r(b)
        )]),
        (2u32..16, 2u32..16, 2u32..16).prop_map(|(d, a, b)| vec![Insn::sub(
            Reg::r(d),
            Reg::r(a),
            Reg::r(b)
        )]),
        (2u32..16, 2u32..16, 2u32..16).prop_map(|(d, a, b)| vec![Insn::xor(
            Reg::r(d),
            Reg::r(a),
            Reg::r(b)
        )]),
        (2u32..16, 2u32..16, 2u32..16).prop_map(|(d, a, b)| vec![Insn::mul(
            Reg::r(d),
            Reg::r(a),
            Reg::r(b)
        )]),
        (2u32..16, 2u32..16, -2048i32..2048).prop_map(|(d, a, i)| vec![Insn::addi(
            Reg::r(d),
            Reg::r(a),
            i
        )
        .unwrap()]),
        (2u32..16, 2u32..16, 0u32..32).prop_map(|(d, a, s)| vec![Insn::slli(
            Reg::r(d),
            Reg::r(a),
            s
        )
        .unwrap()]),
        (2u32..16, 2u32..16).prop_map(|(a, b)| vec![Insn::sf(
            idca::isa::SetFlagCond::Ltu,
            Reg::r(a),
            Reg::r(b)
        )]),
        (2u32..16, 0i32..64, 2u32..16).prop_map(|(d, off, b)| vec![
            Insn::sw(off * 4, Reg::r(1), Reg::r(b)).unwrap(),
            Insn::lwz(Reg::r(d), off * 4, Reg::r(1)).unwrap(),
        ]),
    ];
    (
        proptest::collection::vec(step, 1..40),
        proptest::collection::vec(any::<u16>(), 14),
    )
        .prop_map(|(steps, seeds)| {
            let mut builder = ProgramBuilder::named("proptest-program");
            // Scratch memory base in r1, random initial register values.
            builder.push(Insn::addi(Reg::r(1), Reg::R0, 0x400).unwrap());
            for (i, seed) in seeds.iter().enumerate() {
                builder.push(Insn::ori(Reg::r(i as u32 + 2), Reg::R0, u32::from(*seed)).unwrap());
            }
            for step in steps {
                builder.extend(step);
            }
            builder.push(Insn::nop(1));
            builder.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The pipelined core and the sequential interpreter agree on the final
    /// architectural state of arbitrary straight-line programs (forwarding,
    /// hazards and memory ordering introduce no divergence).
    #[test]
    fn pipeline_equals_interpreter(program in straight_line_program()) {
        let pipelined = Simulator::new(SimConfig::default()).run(&program).expect("pipeline runs");
        let golden = Interpreter::new().run(&program).expect("interpreter runs");
        prop_assert_eq!(pipelined.state.regs.as_array(), golden.regs.as_array());
        prop_assert_eq!(pipelined.state.flag, golden.flag);
        prop_assert_eq!(pipelined.trace.retired(), golden.retired);
    }

    /// With the analytic worst-case LUT, the instruction-based policy never
    /// requests a period shorter than the actual dynamic delay of any cycle.
    #[test]
    fn worst_case_lut_never_violates_timing(program in straight_line_program()) {
        let model = TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized);
        let trace = Simulator::new(SimConfig::default()).run(&program).expect("runs").trace;
        let outcome = run_with_policy(
            &model,
            &trace,
            &InstructionBased::from_model(&model),
            &ClockGenerator::Ideal,
        );
        prop_assert_eq!(outcome.violations, 0);
        // And the genie oracle can never be slower than the LUT policy.
        let genie = run_with_policy(&model, &trace, &GenieOracle::new(model.clone()), &ClockGenerator::Ideal);
        prop_assert!(genie.total_time_ps <= outcome.total_time_ps + 1e-6);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Clock generators never realize a period shorter than requested, as
    /// long as the request is within their range.
    #[test]
    fn clock_generators_never_undercut(request in 600.0f64..2400.0) {
        for generator in [
            ClockGenerator::Ideal,
            ClockGenerator::quantized_50ps(),
            ClockGenerator::discrete(16, 600.0, 2400.0),
        ] {
            prop_assert!(generator.realize(request) + 1e-9 >= request);
        }
    }

    /// The per-cycle LUT period is monotone: it always covers the LUT entry
    /// of every stage's class.
    #[test]
    fn lut_period_covers_each_stage(class_indices in proptest::collection::vec(0usize..TimingClass::COUNT, 6)) {
        let model = TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized);
        let lut = DelayLut::from_model(&model);
        let classes: [TimingClass; 6] = std::array::from_fn(|i| TimingClass::ALL[class_indices[i]]);
        let period = lut.period_for(&classes);
        for stage in Stage::ALL {
            prop_assert!(period >= lut.delay_ps(stage, classes[stage.index()]));
        }
    }
}
