//! Fault-injection equivalence contract at the observer level: a seeded
//! [`FaultPlan`] perturbs each cycle's timing through a pure function of
//! `(fault seed, cycle)`, so the **live** simulation pass, the **digest
//! replay** that recomputes timing per cycle, and the **prepared-timing**
//! replay path (where the caller applies [`FaultPlan::faulted`] once and
//! shares the perturbed timing across observers) must all produce
//! bit-identical outcomes — violations, recovery accounting, frequencies —
//! for every clock policy and the adaptive controller.

use idca::core::{
    AdaptiveBank, AdaptiveConfig, AdaptiveObserver, Drift, PolicyBank, PolicyObserver,
};
use idca::pipeline::{DigestObserver, TimingDigest};
use idca::prelude::*;
use idca::timing::{FaultPlan, FaultSpec};
use proptest::prelude::*;

fn model() -> TimingModel {
    TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized)
}

/// Simulates one generated program with faulted live observers riding the
/// pass, capturing the digest from the same run.
fn live_outcomes(
    m: &TimingModel,
    program: &Program,
    plan: &FaultPlan,
) -> (TimingDigest, [RunOutcome; 3], idca::core::AdaptiveOutcome) {
    let static_policy = StaticClock::of_model(m);
    let lut_policy = InstructionBased::from_model(m);
    let exec_policy = ExecuteOnly::new(DelayLut::from_model(m));
    let mut digest = DigestObserver::new();
    let mut ob_static =
        PolicyObserver::new(m, &static_policy, &ClockGenerator::Ideal).with_faults(plan);
    let mut ob_lut = PolicyObserver::new(m, &lut_policy, &ClockGenerator::Ideal).with_faults(plan);
    let mut ob_exec =
        PolicyObserver::new(m, &exec_policy, &ClockGenerator::Ideal).with_faults(plan);
    let mut ob_adaptive = AdaptiveObserver::new(
        m,
        &AdaptiveConfig::default(),
        &ClockGenerator::Ideal,
        None,
        Drift::None,
    )
    .with_faults(plan);
    Simulator::new(SimConfig::default())
        .run_observed(
            program,
            &mut [
                &mut digest,
                &mut ob_static,
                &mut ob_lut,
                &mut ob_exec,
                &mut ob_adaptive,
            ],
        )
        .expect("generated programs terminate");
    (
        digest.into_digest(),
        [
            ob_static.into_outcome(),
            ob_lut.into_outcome(),
            ob_exec.into_outcome(),
        ],
        ob_adaptive.into_outcome(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn faulted_outcomes_are_bit_identical_live_vs_digest_vs_prepared(
        master_seed in any::<u64>(),
        fault_seed in any::<u64>(),
        droop_rate_pct in 0u32..=100,
        spike_rate_pm in 0u32..=50,
        replay_penalty in 0u32..=16,
    ) {
        let m = model();
        let spec = FaultSpec {
            seed: fault_seed,
            droop_rate: f64::from(droop_rate_pct) / 100.0,
            spike_rate: f64::from(spike_rate_pm) / 1000.0,
            shift_mag: 0.05,
            replay_penalty,
            ..FaultSpec::default()
        };
        let plan = FaultPlan::new(&spec);
        let program = generate_program(nth_seed(master_seed, 0), &GenConfig::default());
        let (digest, live, live_adaptive) = live_outcomes(&m, &program, &plan);

        let static_policy = StaticClock::of_model(&m);
        let lut_policy = InstructionBased::from_model(&m);
        let exec_policy = ExecuteOnly::new(DelayLut::from_model(&m));
        let policies: [&dyn ClockPolicy; 3] = [&static_policy, &lut_policy, &exec_policy];

        // Digest replay, letting each observer recompute-and-perturb.
        let mut replay: Vec<RunOutcome> = Vec::new();
        for policy in policies {
            let mut ob =
                PolicyObserver::new(&m, policy, &ClockGenerator::Ideal).with_faults(&plan);
            digest.for_each_cycle(|cycle, dc| ob.observe_digest(cycle, dc));
            ob.finish(&digest.summary());
            replay.push(ob.into_outcome());
        }
        let mut ob_adaptive = AdaptiveObserver::new(
            &m,
            &AdaptiveConfig::default(),
            &ClockGenerator::Ideal,
            None,
            Drift::None,
        )
        .with_faults(&plan);
        digest.for_each_cycle(|cycle, dc| ob_adaptive.observe_digest(cycle, dc));
        ob_adaptive.finish(&digest.summary());
        let replay_adaptive = ob_adaptive.into_outcome();

        // Prepared-timing replay: the caller perturbs once per cycle and
        // shares the faulted timing across all observers (the sweep's
        // fan-out shape).
        let mut prepared: Vec<PolicyObserver> = policies
            .iter()
            .map(|p| PolicyObserver::new(&m, *p, &ClockGenerator::Ideal).with_faults(&plan))
            .collect();
        let mut prepared_adaptive = AdaptiveObserver::new(
            &m,
            &AdaptiveConfig::default(),
            &ClockGenerator::Ideal,
            None,
            Drift::None,
        )
        .with_faults(&plan);
        digest.for_each_cycle(|cycle, dc| {
            let timing = m.digest_cycle_timing(cycle, dc);
            let timing = plan.faulted(cycle, &timing);
            for ob in &mut prepared {
                ob.observe_digest_timed(cycle, dc, &timing);
            }
            prepared_adaptive.observe_digest_timed(cycle, dc, &timing);
        });
        let summary = digest.summary();
        let prepared: Vec<RunOutcome> = prepared
            .into_iter()
            .map(|mut ob| {
                ob.finish(&summary);
                ob.into_outcome()
            })
            .collect();
        prepared_adaptive.finish(&summary);
        let prepared_adaptive = prepared_adaptive.into_outcome();

        for ((live, replayed), shared) in live.iter().zip(&replay).zip(&prepared) {
            // Field-for-field f64 equality, not tolerance: every path runs
            // the identical perturbed arithmetic.
            prop_assert_eq!(live, replayed);
            prop_assert_eq!(live, shared);
        }
        prop_assert_eq!(&live_adaptive, &replay_adaptive);
        prop_assert_eq!(&live_adaptive, &prepared_adaptive);

        // Recovery bookkeeping is conserved on every outcome.
        for outcome in &live {
            prop_assert_eq!(
                outcome.recovered_cycles + outcome.silent_risk_cycles,
                outcome.violations
            );
            prop_assert_eq!(
                outcome.replay_penalty_cycles,
                outcome.recovered_cycles * u64::from(replay_penalty)
            );
            prop_assert!(outcome.recovery_frequency_mhz <= outcome.effective_frequency_mhz);
        }
    }

    #[test]
    fn faulted_soa_lanes_kernel_is_bit_identical_to_prepared_observers(
        corners in 1u32..=9,
        master_seed in any::<u64>(),
        fault_seed in any::<u64>(),
        droop_rate_pct in 0u32..=100,
        replay_penalty in 0u32..=16,
        drifting in any::<bool>(),
    ) {
        // The faulted counterpart of the lanes-kernel pin in
        // `banked_replay.rs`: the in-lane [`CycleLanes::apply_fault`]
        // perturbation plus the banks' recovery classification must match
        // the scalar observers fed caller-perturbed timing, bit for bit.
        let spec = FaultSpec {
            seed: fault_seed,
            droop_rate: f64::from(droop_rate_pct) / 100.0,
            spike_rate: 0.02,
            shift_mag: 0.05,
            replay_penalty,
            ..FaultSpec::default()
        };
        let plan = FaultPlan::new(&spec);
        let base = model();
        let vm = VariationModel::default();
        let models: Vec<TimingModel> = (0..corners)
            .map(|i| vm.apply(&base, &vm.sample_corner(master_seed, i)))
            .collect();
        let program = generate_program(nth_seed(master_seed, 0), &GenConfig::default());
        let mut digest_ob = DigestObserver::new();
        Simulator::new(SimConfig::default())
            .run_observed(&program, &mut [&mut digest_ob])
            .expect("generated programs terminate");
        let digest = digest_ob.into_digest();
        let config = AdaptiveConfig::default();
        let drift = if drifting {
            Drift::LinearSlowdown { fraction_per_kilocycle: 0.02 }
        } else {
            Drift::None
        };
        let lut_policy = InstructionBased::from_model(&base);
        let exec_policy = ExecuteOnly::new(DelayLut::from_model(&base));
        let static_requests: Vec<idca::timing::Ps> = models
            .iter()
            .map(|m| StaticClock::of_model(m).period())
            .collect();

        // Banked walk: lanes perturbed in place, banks classify recovery.
        let bank = CornerBank::from_models(&models);
        let mut bank_static =
            PolicyBank::new("static", models.len(), &ClockGenerator::Ideal).with_faults(plan);
        let mut bank_lut = PolicyBank::new("instruction-based", models.len(), &ClockGenerator::Ideal)
            .with_faults(plan);
        let mut bank_exec = PolicyBank::new("execute-only", models.len(), &ClockGenerator::Ideal)
            .with_faults(plan);
        let mut adaptive =
            AdaptiveBank::new(&models, &config, &ClockGenerator::Ideal, None, drift)
                .with_faults(plan);
        let mut evaluator = bank.evaluator();
        digest.for_each_run(|start, len, dc| {
            bank_lut.begin_block(lut_policy.digest_period_ps(start, dc));
            bank_exec.begin_block(exec_policy.digest_period_ps(start, dc));
            bank_static.begin_block_per_corner(&static_requests);
            for cycle in start..start + u64::from(len) {
                let lanes = evaluator.cycle_lanes(cycle, dc);
                lanes.apply_fault(&plan, cycle);
                let lanes = &*lanes;
                bank_static.observe_actuals(lanes.max_lanes());
                bank_lut.observe_actuals(lanes.max_lanes());
                bank_exec.observe_actuals(lanes.max_lanes());
                adaptive.observe_cycle_lanes(cycle, dc, lanes);
            }
        });
        let summary = digest.summary();
        bank_static.finish(&summary);
        bank_lut.finish(&summary);
        bank_exec.finish(&summary);
        adaptive.finish(&summary);
        let out_static = bank_static.into_outcomes();
        let out_lut = bank_lut.into_outcomes();
        let out_exec = bank_exec.into_outcomes();
        let out_adaptive = adaptive.into_outcomes();

        for (corner, varied) in models.iter().enumerate() {
            let static_policy = StaticClock::new(static_requests[corner]);
            let mut ob_static =
                PolicyObserver::new(varied, &static_policy, &ClockGenerator::Ideal)
                    .with_faults(&plan);
            let mut ob_lut = PolicyObserver::new(varied, &lut_policy, &ClockGenerator::Ideal)
                .with_faults(&plan);
            let mut ob_exec = PolicyObserver::new(varied, &exec_policy, &ClockGenerator::Ideal)
                .with_faults(&plan);
            let mut ob_adaptive =
                AdaptiveObserver::new(varied, &config, &ClockGenerator::Ideal, None, drift)
                    .with_faults(&plan);
            digest.for_each_cycle(|cycle, dc| {
                let timing = varied.digest_cycle_timing(cycle, dc);
                let timing = plan.faulted(cycle, &timing);
                ob_static.observe_digest_timed(cycle, dc, &timing);
                ob_lut.observe_digest_timed(cycle, dc, &timing);
                ob_exec.observe_digest_timed(cycle, dc, &timing);
                ob_adaptive.observe_digest_timed(cycle, dc, &timing);
            });
            ob_static.finish(&summary);
            ob_lut.finish(&summary);
            ob_exec.finish(&summary);
            ob_adaptive.finish(&summary);
            // Whole-struct bit equality, modulo the documented
            // empty-finished activity of the banks (the sweep folds
            // activity outside them).
            let mut scalar_static = ob_static.into_outcome();
            let mut scalar_lut = ob_lut.into_outcome();
            let mut scalar_exec = ob_exec.into_outcome();
            scalar_static.activity = out_static[corner].activity;
            scalar_lut.activity = out_lut[corner].activity;
            scalar_exec.activity = out_exec[corner].activity;
            prop_assert_eq!(&out_static[corner], &scalar_static, "corner {}", corner);
            prop_assert_eq!(&out_lut[corner], &scalar_lut, "corner {}", corner);
            prop_assert_eq!(&out_exec[corner], &scalar_exec, "corner {}", corner);
            prop_assert_eq!(&out_adaptive[corner], &ob_adaptive.into_outcome(), "corner {}", corner);
        }
    }

    #[test]
    fn a_quiet_fault_plan_is_bit_identical_to_no_plan(
        master_seed in any::<u64>(),
        fault_seed in any::<u64>(),
    ) {
        // All event rates zero: the plan must not change a single bit of
        // the outcome relative to running without one.
        let m = model();
        let spec = FaultSpec {
            seed: fault_seed,
            droop_rate: 0.0,
            spike_rate: 0.0,
            shift_mag: 0.0,
            ..FaultSpec::default()
        };
        let plan = FaultPlan::new(&spec);
        let program = generate_program(nth_seed(master_seed, 0), &GenConfig::default());
        let lut_policy = InstructionBased::from_model(&m);

        let mut quiet =
            PolicyObserver::new(&m, &lut_policy, &ClockGenerator::Ideal).with_faults(&plan);
        let mut bare = PolicyObserver::new(&m, &lut_policy, &ClockGenerator::Ideal);
        let mut digest = DigestObserver::new();
        Simulator::new(SimConfig::default())
            .run_observed(&program, &mut [&mut digest, &mut quiet, &mut bare])
            .expect("generated programs terminate");
        let quiet = quiet.into_outcome();
        let bare = bare.into_outcome();
        prop_assert_eq!(quiet.violations, bare.violations);
        prop_assert_eq!(
            quiet.effective_frequency_mhz.to_bits(),
            bare.effective_frequency_mhz.to_bits()
        );
        // With zero penalties charged, the recovery-adjusted clock equals
        // the effective clock bit-exactly.
        prop_assert_eq!(
            quiet.recovery_frequency_mhz.to_bits(),
            quiet.effective_frequency_mhz.to_bits()
        );
    }
}
