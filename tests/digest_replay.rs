//! Digest-equivalence tests: replaying a [`TimingDigest`] against a timing
//! model must be **bit-identical** to running the corresponding streaming
//! observers on the live simulation pass — for the DTA, all clock policies,
//! the adaptive controller and the activity statistics, at the nominal
//! corner and across sampled PVT corners. This is the correctness contract
//! of the simulate-once / evaluate-many sweep architecture.

use idca::core::{
    replay_adaptive_digest, replay_digest, run_adaptive, AdaptiveConfig, AdaptiveObserver, Drift,
};
use idca::pipeline::{DigestCycle, DigestObserver, TimingDigest};
use idca::prelude::*;
use proptest::prelude::*;

fn model() -> TimingModel {
    TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized)
}

/// Simulates one generated program, capturing the digest and the
/// materialized trace from the same pass.
fn digest_and_trace(program: &Program) -> (TimingDigest, PipelineTrace) {
    let mut digest = DigestObserver::new();
    let mut trace = PipelineTrace::default();
    Simulator::new(SimConfig::default())
        .run_observed(program, &mut [&mut digest, &mut trace])
        .expect("generated programs terminate");
    (digest.into_digest(), trace)
}

#[test]
fn rle_round_trip_reproduces_every_cycle() {
    let program = generate_program(nth_seed(0xD16E57, 3), &GenConfig::default());
    let (digest, trace) = digest_and_trace(&program);
    assert_eq!(digest.cycles(), trace.cycle_count());
    assert_eq!(digest.retired(), trace.retired());
    let mut i = 0usize;
    digest.for_each_cycle(|cycle, dc| {
        let record = &trace.cycles()[i];
        assert_eq!(record.cycle, cycle);
        assert_eq!(&DigestCycle::of_record(record), dc, "cycle {cycle}");
        i += 1;
    });
    assert_eq!(i as u64, trace.cycle_count());
    // The encoding must actually deduplicate something on a loopy program.
    assert!(digest.unique_cycles() as u64 <= digest.cycles());
}

#[test]
fn dta_replay_is_bit_identical_to_streaming() {
    let m = model();
    let program = generate_program(nth_seed(0xD16E57, 5), &GenConfig::default());
    let (digest, trace) = digest_and_trace(&program);
    let direct = DynamicTimingAnalysis::run(&m, &trace);
    let replayed = DynamicTimingAnalysis::replay_digest(&m, &digest);
    assert_eq!(direct.cycles(), replayed.cycles());
    assert_eq!(direct.mean_cycle_delay_ps(), replayed.mean_cycle_delay_ps());
    assert_eq!(direct.max_cycle_delay_ps(), replayed.max_cycle_delay_ps());
    assert_eq!(direct.limiting_counts(), replayed.limiting_counts());
    for stage in Stage::ALL {
        for class in TimingClass::ALL {
            assert_eq!(
                direct.observed_worst_ps(stage, class),
                replayed.observed_worst_ps(stage, class),
                "{stage}/{class}"
            );
            assert_eq!(
                direct.observations(stage, class),
                replayed.observations(stage, class)
            );
        }
    }
}

/// Every policy's replayed outcome (including the embedded activity
/// summary) must equal the live outcome field for field.
fn assert_policies_replay_identically(
    m: &TimingModel,
    digest: &TimingDigest,
    trace: &PipelineTrace,
) {
    let static_policy = StaticClock::of_model(m);
    let lut_policy = InstructionBased::from_model(m);
    let exec_policy = ExecuteOnly::new(DelayLut::from_model(m));
    let genie = GenieOracle::new(m.clone());
    let policies: [&dyn ClockPolicy; 4] = [&static_policy, &lut_policy, &exec_policy, &genie];
    for (generator, policy) in [ClockGenerator::Ideal, ClockGenerator::quantized_50ps()]
        .iter()
        .flat_map(|g| policies.iter().map(move |p| (g, *p)))
    {
        let direct = run_with_policy(m, trace, policy, generator);
        let replayed = replay_digest(m, digest, policy, generator);
        assert_eq!(direct, replayed, "policy {}", policy.name());
    }
}

#[test]
fn policy_replay_is_bit_identical_at_nominal() {
    let m = model();
    let program = generate_program(nth_seed(0xD16E57, 7), &GenConfig::default());
    let (digest, trace) = digest_and_trace(&program);
    assert_policies_replay_identically(&m, &digest, &trace);
}

#[test]
fn adaptive_replay_is_bit_identical_including_learned_table() {
    let m = model();
    let program = generate_program(nth_seed(0xD16E57, 11), &GenConfig::default());
    let (digest, trace) = digest_and_trace(&program);
    let config = AdaptiveConfig::default();
    for drift in [
        Drift::None,
        Drift::LinearSlowdown {
            fraction_per_kilocycle: 0.01,
        },
    ] {
        let direct = run_adaptive(&m, &trace, &config, &ClockGenerator::Ideal, None, drift);
        let replayed =
            replay_adaptive_digest(&m, &digest, &config, &ClockGenerator::Ideal, None, drift);
        assert_eq!(direct, replayed, "drift {drift:?}");
        // The learned tables themselves must agree entry for entry.
        let mut live = AdaptiveObserver::new(&m, &config, &ClockGenerator::Ideal, None, drift);
        for record in trace.cycles() {
            live.observe_cycle(record);
        }
        let mut replay = AdaptiveObserver::new(&m, &config, &ClockGenerator::Ideal, None, drift);
        digest.for_each_cycle(|cycle, dc| replay.observe_digest(cycle, dc));
        for stage in Stage::ALL {
            for class in TimingClass::ALL {
                assert_eq!(
                    live.learned_ps(stage, class),
                    replay.learned_ps(stage, class)
                );
                assert_eq!(
                    live.observation_count(stage, class),
                    replay.observation_count(stage, class)
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For random generated programs and random PVT corners, replaying the
    /// digest against the corner-varied model is bit-identical to live
    /// observation of a fresh simulation — policies and adaptive alike.
    #[test]
    fn digest_replay_matches_direct_across_corners(
        seed in any::<u64>(),
        corner_index in 0u32..32,
        corner_seed in any::<u64>(),
    ) {
        let nominal = model();
        let variation = VariationModel::default();
        let corner = variation.sample_corner(corner_seed, corner_index);
        let varied = variation.apply(&nominal, &corner);

        let program = generate_program(seed, &GenConfig::default());
        let (digest, trace) = digest_and_trace(&program);

        let lut_policy = InstructionBased::from_model(&varied);
        let direct = run_with_policy(&varied, &trace, &lut_policy, &ClockGenerator::Ideal);
        let replayed = replay_digest(&varied, &digest, &lut_policy, &ClockGenerator::Ideal);
        prop_assert_eq!(&direct, &replayed);

        let config = AdaptiveConfig::default();
        let direct_adaptive =
            run_adaptive(&varied, &trace, &config, &ClockGenerator::Ideal, None, Drift::None);
        let replayed_adaptive = replay_adaptive_digest(
            &varied, &digest, &config, &ClockGenerator::Ideal, None, Drift::None,
        );
        prop_assert_eq!(&direct_adaptive, &replayed_adaptive);
    }
}
