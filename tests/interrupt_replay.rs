//! Asynchronous-scenario equivalence contract: a seeded interrupt storm
//! (plus an optional timer and fault plan) drives exception entries,
//! handler execution and MMIO traffic through the live pipeline; the
//! captured [`TimingDigest`] carries the scenario as a codec-v3 event
//! stream. The **live** pass (phases read off each `CycleRecord`), the
//! **digest replay** (phases recomputed from the event stream through an
//! [`IrqTimeline`]) and the **banked SoA replay** (per-call entry flags,
//! in-lane surge) must all produce bit-identical outcomes — violations,
//! entry violations, recovery accounting, frequencies — for every clock
//! policy and the adaptive controller. Composition order is part of the
//! contract: fault factors first, then the entry surge.

use idca::core::{
    AdaptiveBank, AdaptiveConfig, AdaptiveObserver, AdaptiveOutcome, Drift, PolicyBank,
    PolicyObserver,
};
use idca::pipeline::{DigestObserver, InterruptPlan, InterruptSpec, IrqPhase, TimingDigest};
use idca::prelude::*;
use idca::timing::{surged, FaultPlan, FaultSpec, IrqTimeline};
use proptest::prelude::*;

fn model() -> TimingModel {
    TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized)
}

/// Draws an interrupt spec whose storm rate, timer period and entry
/// penalty vary; `rate_pm == 0 && timer == 0` yields an *inactive* spec,
/// exercising the no-interrupt degenerate case through the same paths.
fn spec_of(irq_seed: u64, rate_pm: u32, timer: u32, penalty: u32) -> InterruptSpec {
    InterruptSpec {
        seed: irq_seed,
        rate: f64::from(rate_pm) / 1000.0,
        timer,
        penalty,
        ..InterruptSpec::default()
    }
}

/// Arms a scalar observer with the replay-side interrupt timeline (or the
/// live-side `None`) and an optional fault plan, in one place so every
/// path in this file composes the two identically.
fn with_scenario<'a>(
    ob: PolicyObserver<'a>,
    timeline: Option<&'a IrqTimeline>,
    surge_factor: f64,
    plan: Option<&'a FaultPlan>,
) -> PolicyObserver<'a> {
    let ob = ob.with_interrupts(timeline, surge_factor);
    match plan {
        Some(plan) => ob.with_faults(plan),
        None => ob,
    }
}

fn bank_with_faults<'a>(bank: PolicyBank<'a>, plan: Option<&FaultPlan>) -> PolicyBank<'a> {
    match plan {
        Some(plan) => bank.with_faults(*plan),
        None => bank,
    }
}

/// Simulates one generated program under the interrupt scenario with the
/// full live observer stack riding the pass, capturing the digest (and its
/// event stream) from the same run.
#[allow(clippy::type_complexity)]
fn live_outcomes(
    m: &TimingModel,
    program: &Program,
    spec: &InterruptSpec,
    faults: Option<&FaultPlan>,
) -> (TimingDigest, [RunOutcome; 3], AdaptiveOutcome) {
    let surge_factor = 1.0 + spec.surge;
    let static_policy = StaticClock::of_model(m);
    let lut_policy = InstructionBased::from_model(m);
    let exec_policy = ExecuteOnly::new(DelayLut::from_model(m));
    let mut digest = DigestObserver::new();
    let mut ob_static = with_scenario(
        PolicyObserver::new(m, &static_policy, &ClockGenerator::Ideal),
        None,
        surge_factor,
        faults,
    );
    let mut ob_lut = with_scenario(
        PolicyObserver::new(m, &lut_policy, &ClockGenerator::Ideal),
        None,
        surge_factor,
        faults,
    );
    let mut ob_exec = with_scenario(
        PolicyObserver::new(m, &exec_policy, &ClockGenerator::Ideal),
        None,
        surge_factor,
        faults,
    );
    let mut ob_adaptive = AdaptiveObserver::new(
        m,
        &AdaptiveConfig::default(),
        &ClockGenerator::Ideal,
        None,
        Drift::None,
    )
    .with_interrupts(None, surge_factor);
    if let Some(plan) = faults {
        ob_adaptive = ob_adaptive.with_faults(plan);
    }

    // Inactive specs never attach the handler: appending unreachable code
    // would still shift the memory image and change the digest.
    if spec.active() {
        let (program, plan) = InterruptPlan::attach(program, spec);
        Simulator::new(SimConfig::default())
            .with_interrupts(plan)
            .run_observed(
                &program,
                &mut [
                    &mut digest,
                    &mut ob_static,
                    &mut ob_lut,
                    &mut ob_exec,
                    &mut ob_adaptive,
                ],
            )
            .expect("interrupt scenarios terminate");
    } else {
        Simulator::new(SimConfig::default())
            .run_observed(
                program,
                &mut [
                    &mut digest,
                    &mut ob_static,
                    &mut ob_lut,
                    &mut ob_exec,
                    &mut ob_adaptive,
                ],
            )
            .expect("generated programs terminate");
    }
    (
        digest.into_digest(),
        [
            ob_static.into_outcome(),
            ob_lut.into_outcome(),
            ob_exec.into_outcome(),
        ],
        ob_adaptive.into_outcome(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn interrupt_outcomes_are_bit_identical_live_vs_digest_vs_prepared(
        master_seed in any::<u64>(),
        irq_seed in any::<u64>(),
        rate_pm in 0u32..=8,
        timer in prop_oneof![Just(0u32), 97u32..=301],
        penalty in 1u32..=8,
        with_faults in any::<bool>(),
        fault_seed in any::<u64>(),
    ) {
        let m = model();
        let spec = spec_of(irq_seed, rate_pm, timer, penalty);
        let surge_factor = 1.0 + spec.surge;
        let plan = with_faults.then(|| {
            FaultPlan::new(&FaultSpec {
                seed: fault_seed,
                droop_rate: 0.3,
                spike_rate: 0.01,
                shift_mag: 0.05,
                replay_penalty: 4,
                ..FaultSpec::default()
            })
        });
        let program = generate_program(nth_seed(master_seed, 0), &GenConfig::default());
        let (digest, live, live_adaptive) = live_outcomes(&m, &program, &spec, plan.as_ref());

        // The replay-side phase source: the timeline rebuilt from the
        // digest's event stream. An inactive spec has no events — the
        // timeline is empty and every cycle replays as steady state.
        let timeline = IrqTimeline::from_events(digest.events(), spec.penalty);
        if spec.active() && timeline.entries() > 0 {
            prop_assert!(timeline.handler_cycles(digest.summary().cycles) > 0);
        }

        let static_policy = StaticClock::of_model(&m);
        let lut_policy = InstructionBased::from_model(&m);
        let exec_policy = ExecuteOnly::new(DelayLut::from_model(&m));
        let policies: [&dyn ClockPolicy; 3] = [&static_policy, &lut_policy, &exec_policy];

        // Digest replay: each observer recomputes timing, fault and surge
        // itself, deriving phases from its own timeline cursor.
        let mut replay: Vec<RunOutcome> = Vec::new();
        for policy in policies {
            let mut ob = with_scenario(
                PolicyObserver::new(&m, policy, &ClockGenerator::Ideal),
                Some(&timeline),
                surge_factor,
                plan.as_ref(),
            );
            digest.for_each_cycle(|cycle, dc| ob.observe_digest(cycle, dc));
            ob.finish(&digest.summary());
            replay.push(ob.into_outcome());
        }
        let mut ob_adaptive = AdaptiveObserver::new(
            &m,
            &AdaptiveConfig::default(),
            &ClockGenerator::Ideal,
            None,
            Drift::None,
        )
        .with_interrupts(Some(&timeline), surge_factor);
        if let Some(plan) = plan.as_ref() {
            ob_adaptive = ob_adaptive.with_faults(plan);
        }
        digest.for_each_cycle(|cycle, dc| ob_adaptive.observe_digest(cycle, dc));
        ob_adaptive.finish(&digest.summary());
        let replay_adaptive = ob_adaptive.into_outcome();

        // Prepared-timing replay (the sweep's fan-out shape): the caller
        // perturbs once per cycle — faults first, then the entry surge —
        // and shares the timing across all observers.
        let mut prepared: Vec<PolicyObserver> = policies
            .iter()
            .map(|p| {
                with_scenario(
                    PolicyObserver::new(&m, *p, &ClockGenerator::Ideal),
                    Some(&timeline),
                    surge_factor,
                    plan.as_ref(),
                )
            })
            .collect();
        let mut prepared_adaptive = AdaptiveObserver::new(
            &m,
            &AdaptiveConfig::default(),
            &ClockGenerator::Ideal,
            None,
            Drift::None,
        )
        .with_interrupts(Some(&timeline), surge_factor);
        if let Some(plan) = plan.as_ref() {
            prepared_adaptive = prepared_adaptive.with_faults(plan);
        }
        let mut cursor = timeline.cursor();
        digest.for_each_cycle(|cycle, dc| {
            let timing = m.digest_cycle_timing(cycle, dc);
            let timing = match plan.as_ref() {
                Some(plan) => plan.faulted(cycle, &timing),
                None => timing,
            };
            let timing = if cursor.phase(cycle) == IrqPhase::Entry {
                surged(&timing, surge_factor)
            } else {
                timing
            };
            for ob in &mut prepared {
                ob.observe_digest_timed(cycle, dc, &timing);
            }
            prepared_adaptive.observe_digest_timed(cycle, dc, &timing);
        });
        let summary = digest.summary();
        let prepared: Vec<RunOutcome> = prepared
            .into_iter()
            .map(|mut ob| {
                ob.finish(&summary);
                ob.into_outcome()
            })
            .collect();
        prepared_adaptive.finish(&summary);
        let prepared_adaptive = prepared_adaptive.into_outcome();

        for ((live, replayed), shared) in live.iter().zip(&replay).zip(&prepared) {
            // Field-for-field f64 equality, not tolerance — and the
            // entry-violation column rides inside the outcome, so the
            // live-vs-timeline phase agreement is pinned bit-exactly too.
            prop_assert_eq!(live, replayed);
            prop_assert_eq!(live, shared);
            prop_assert!(live.entry_violations <= live.violations);
        }
        prop_assert_eq!(&live_adaptive, &replay_adaptive);
        prop_assert_eq!(&live_adaptive, &prepared_adaptive);

        // An inactive scenario must stay bit-identical to never having
        // heard of interrupts at all.
        if !spec.active() {
            let mut bare = PolicyObserver::new(&m, &lut_policy, &ClockGenerator::Ideal);
            if let Some(plan) = plan.as_ref() {
                bare = bare.with_faults(plan);
            }
            digest.for_each_cycle(|cycle, dc| bare.observe_digest(cycle, dc));
            bare.finish(&summary);
            prop_assert_eq!(&live[1], &bare.into_outcome());
        }
    }

    #[test]
    fn interrupt_soa_lanes_kernel_is_bit_identical_to_prepared_observers(
        corners in 1u32..=9,
        master_seed in any::<u64>(),
        irq_seed in any::<u64>(),
        rate_pm in 1u32..=8,
        penalty in 1u32..=8,
        with_faults in any::<bool>(),
    ) {
        // The interrupt counterpart of the faulted lanes-kernel pin: the
        // in-lane fault-then-surge perturbation plus the banks' per-call
        // entry flags must match scalar observers fed caller-perturbed
        // timing, bit for bit, at every corner.
        let spec = spec_of(irq_seed, rate_pm, 151, penalty);
        let surge_factor = 1.0 + spec.surge;
        let plan = with_faults.then(|| {
            FaultPlan::new(&FaultSpec {
                seed: irq_seed ^ 0xF00D,
                droop_rate: 0.25,
                spike_rate: 0.01,
                shift_mag: 0.05,
                replay_penalty: 4,
                ..FaultSpec::default()
            })
        });
        let base = model();
        let vm = VariationModel::default();
        let models: Vec<TimingModel> = (0..corners)
            .map(|i| vm.apply(&base, &vm.sample_corner(master_seed, i)))
            .collect();
        let program = generate_program(nth_seed(master_seed, 0), &GenConfig::default());
        let (attached, irq_plan) = InterruptPlan::attach(&program, &spec);
        let mut digest_ob = DigestObserver::new();
        Simulator::new(SimConfig::default())
            .with_interrupts(irq_plan)
            .run_observed(&attached, &mut [&mut digest_ob])
            .expect("interrupt scenarios terminate");
        let digest = digest_ob.into_digest();
        let timeline = IrqTimeline::from_events(digest.events(), spec.penalty);
        let config = AdaptiveConfig::default();
        let lut_policy = InstructionBased::from_model(&base);
        let exec_policy = ExecuteOnly::new(DelayLut::from_model(&base));
        let static_requests: Vec<idca::timing::Ps> = models
            .iter()
            .map(|m| StaticClock::of_model(m).period())
            .collect();

        // Banked walk: lanes perturbed in place (faults first, then the
        // entry surge), banks fed the per-cycle entry flag.
        let bank = CornerBank::from_models(&models);
        let mut bank_static = bank_with_faults(
            PolicyBank::new("static", models.len(), &ClockGenerator::Ideal),
            plan.as_ref(),
        );
        let mut bank_lut = bank_with_faults(
            PolicyBank::new("instruction-based", models.len(), &ClockGenerator::Ideal),
            plan.as_ref(),
        );
        let mut bank_exec = bank_with_faults(
            PolicyBank::new("execute-only", models.len(), &ClockGenerator::Ideal),
            plan.as_ref(),
        );
        let mut adaptive =
            AdaptiveBank::new(&models, &config, &ClockGenerator::Ideal, None, Drift::None);
        if let Some(plan) = plan.as_ref() {
            adaptive = adaptive.with_faults(*plan);
        }
        let mut evaluator = bank.evaluator();
        let mut cursor = timeline.cursor();
        digest.for_each_run(|start, len, dc| {
            bank_lut.begin_block(lut_policy.digest_period_ps(start, dc));
            bank_exec.begin_block(exec_policy.digest_period_ps(start, dc));
            bank_static.begin_block_per_corner(&static_requests);
            for cycle in start..start + u64::from(len) {
                let entry = cursor.phase(cycle) == IrqPhase::Entry;
                let lanes = evaluator.cycle_lanes(cycle, dc);
                if let Some(plan) = plan.as_ref() {
                    lanes.apply_fault(plan, cycle);
                }
                if entry {
                    lanes.apply_surge(surge_factor);
                }
                let lanes = &*lanes;
                if entry {
                    bank_static.observe_actuals_entry(lanes.max_lanes());
                    bank_lut.observe_actuals_entry(lanes.max_lanes());
                    bank_exec.observe_actuals_entry(lanes.max_lanes());
                } else {
                    bank_static.observe_actuals(lanes.max_lanes());
                    bank_lut.observe_actuals(lanes.max_lanes());
                    bank_exec.observe_actuals(lanes.max_lanes());
                }
                adaptive.observe_cycle_lanes_phased(cycle, dc, lanes, entry);
            }
        });
        let summary = digest.summary();
        bank_static.finish(&summary);
        bank_lut.finish(&summary);
        bank_exec.finish(&summary);
        adaptive.finish(&summary);
        let out_static = bank_static.into_outcomes();
        let out_lut = bank_lut.into_outcomes();
        let out_exec = bank_exec.into_outcomes();
        let out_adaptive = adaptive.into_outcomes();

        for (corner, varied) in models.iter().enumerate() {
            let static_policy = StaticClock::new(static_requests[corner]);
            let mut ob_static = with_scenario(
                PolicyObserver::new(varied, &static_policy, &ClockGenerator::Ideal),
                Some(&timeline),
                surge_factor,
                plan.as_ref(),
            );
            let mut ob_lut = with_scenario(
                PolicyObserver::new(varied, &lut_policy, &ClockGenerator::Ideal),
                Some(&timeline),
                surge_factor,
                plan.as_ref(),
            );
            let mut ob_exec = with_scenario(
                PolicyObserver::new(varied, &exec_policy, &ClockGenerator::Ideal),
                Some(&timeline),
                surge_factor,
                plan.as_ref(),
            );
            let mut ob_adaptive =
                AdaptiveObserver::new(varied, &config, &ClockGenerator::Ideal, None, Drift::None)
                    .with_interrupts(Some(&timeline), surge_factor);
            if let Some(plan) = plan.as_ref() {
                ob_adaptive = ob_adaptive.with_faults(plan);
            }
            let mut cursor = timeline.cursor();
            digest.for_each_cycle(|cycle, dc| {
                let timing = varied.digest_cycle_timing(cycle, dc);
                let timing = match plan.as_ref() {
                    Some(plan) => plan.faulted(cycle, &timing),
                    None => timing,
                };
                let timing = if cursor.phase(cycle) == IrqPhase::Entry {
                    surged(&timing, surge_factor)
                } else {
                    timing
                };
                ob_static.observe_digest_timed(cycle, dc, &timing);
                ob_lut.observe_digest_timed(cycle, dc, &timing);
                ob_exec.observe_digest_timed(cycle, dc, &timing);
                ob_adaptive.observe_digest_timed(cycle, dc, &timing);
            });
            ob_static.finish(&summary);
            ob_lut.finish(&summary);
            ob_exec.finish(&summary);
            ob_adaptive.finish(&summary);
            // Whole-struct bit equality, modulo the documented
            // empty-finished activity of the banks.
            let mut scalar_static = ob_static.into_outcome();
            let mut scalar_lut = ob_lut.into_outcome();
            let mut scalar_exec = ob_exec.into_outcome();
            scalar_static.activity = out_static[corner].activity;
            scalar_lut.activity = out_lut[corner].activity;
            scalar_exec.activity = out_exec[corner].activity;
            prop_assert_eq!(&out_static[corner], &scalar_static, "corner {}", corner);
            prop_assert_eq!(&out_lut[corner], &scalar_lut, "corner {}", corner);
            prop_assert_eq!(&out_exec[corner], &scalar_exec, "corner {}", corner);
            prop_assert_eq!(
                &out_adaptive[corner],
                &ob_adaptive.into_outcome(),
                "corner {}",
                corner
            );
        }
    }
}
