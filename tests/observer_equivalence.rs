//! Differential tests for the streaming observer architecture: every
//! analysis that rides on `Simulator::run_observed` (dynamic timing
//! analysis, clock-policy evaluation, switching-activity accumulation, the
//! adaptive controller) must be **bit-identical** to replaying a
//! materialized `PipelineTrace` through the corresponding trace-based entry
//! point. Checked on several workloads spanning all three suite categories.

use idca::core::{run_adaptive, AdaptiveConfig, AdaptiveObserver, Drift};
use idca::prelude::*;

/// The workloads the equivalence is checked on: two CoreMark-like kernels,
/// one BEEBS-like kernel and the characterization program (directed plus
/// semi-random code) — at least three distinct workloads as required, with
/// very different instruction mixes.
fn workloads() -> Vec<Workload> {
    let mut picks: Vec<Workload> = benchmark_suite()
        .into_iter()
        .filter(|w| ["core_list_search", "core_crc16", "beebs_crc32"].contains(&w.name.as_str()))
        .collect();
    assert_eq!(picks.len(), 3, "expected the three named suite kernels");
    picks.push(characterization_workload(0xD1FF));
    picks
}

/// Runs one workload once with every streaming observer attached and
/// returns the materialized trace alongside the streamed results.
struct Streamed {
    trace: PipelineTrace,
    dta: DynamicTimingAnalysis,
    baseline: RunOutcome,
    dynamic: RunOutcome,
    activity: ActivitySummary,
    summary: RunSummary,
}

fn stream(model: &TimingModel, workload: &Workload) -> Streamed {
    let static_policy = StaticClock::of_model(model);
    let dynamic_policy = InstructionBased::from_model(model);
    let mut trace = PipelineTrace::default();
    let mut dta = DynamicTimingAnalysis::streaming(model);
    let mut baseline = PolicyObserver::new(model, &static_policy, &ClockGenerator::Ideal);
    let mut dynamic = PolicyObserver::new(model, &dynamic_policy, &ClockGenerator::Ideal);
    let mut activity = ActivityObserver::new();
    let run = Simulator::new(SimConfig::default())
        .run_observed(
            &workload.program,
            &mut [
                &mut trace,
                &mut dta,
                &mut baseline,
                &mut dynamic,
                &mut activity,
            ],
        )
        .unwrap_or_else(|e| panic!("{} failed to simulate: {e}", workload.name));
    Streamed {
        trace,
        dta: dta.into_analysis(),
        baseline: baseline.into_outcome(),
        dynamic: dynamic.into_outcome(),
        activity: activity.summary(),
        summary: run.summary,
    }
}

#[test]
fn streaming_trace_observer_matches_materializing_run() {
    let model = TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized);
    for workload in workloads() {
        let streamed = stream(&model, &workload);
        let replayed = Simulator::new(SimConfig::default())
            .run(&workload.program)
            .unwrap_or_else(|e| panic!("{} failed to simulate: {e}", workload.name));
        assert_eq!(
            streamed.trace, replayed.trace,
            "{}: observer-built trace diverges from Simulator::run",
            workload.name
        );
        assert_eq!(streamed.summary.cycles, replayed.trace.cycle_count());
        assert_eq!(streamed.summary.retired, replayed.trace.retired());
    }
}

#[test]
fn streaming_dta_is_bit_identical_to_trace_replay() {
    let model = TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized);
    for workload in workloads() {
        let streamed = stream(&model, &workload);
        let replayed = DynamicTimingAnalysis::run(&model, &streamed.trace);
        let name = &workload.name;
        assert_eq!(streamed.dta.cycles(), replayed.cycles(), "{name}");
        assert_eq!(
            streamed.dta.mean_cycle_delay_ps(),
            replayed.mean_cycle_delay_ps(),
            "{name}: mean per-cycle delay must match bit for bit"
        );
        assert_eq!(
            streamed.dta.max_cycle_delay_ps(),
            replayed.max_cycle_delay_ps(),
            "{name}"
        );
        assert_eq!(
            streamed.dta.limiting_counts(),
            replayed.limiting_counts(),
            "{name}"
        );
        assert_eq!(
            streamed.dta.cycle_histogram(),
            replayed.cycle_histogram(),
            "{name}"
        );
        for stage in Stage::ALL {
            for class in TimingClass::ALL {
                assert_eq!(
                    streamed.dta.observed_worst_ps(stage, class),
                    replayed.observed_worst_ps(stage, class),
                    "{name}: {stage}/{class} worst-case"
                );
                assert_eq!(
                    streamed.dta.observations(stage, class),
                    replayed.observations(stage, class),
                    "{name}: {stage}/{class} observations"
                );
                assert_eq!(
                    streamed.dta.stage_histogram(stage, class),
                    replayed.stage_histogram(stage, class),
                    "{name}: {stage}/{class} histogram"
                );
            }
        }
    }
}

#[test]
fn streaming_policy_outcomes_are_bit_identical_to_trace_replay() {
    let model = TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized);
    for workload in workloads() {
        let streamed = stream(&model, &workload);
        let static_policy = StaticClock::of_model(&model);
        let dynamic_policy = InstructionBased::from_model(&model);
        let baseline_replay = run_with_policy(
            &model,
            &streamed.trace,
            &static_policy,
            &ClockGenerator::Ideal,
        );
        let dynamic_replay = run_with_policy(
            &model,
            &streamed.trace,
            &dynamic_policy,
            &ClockGenerator::Ideal,
        );
        // `RunOutcome` derives `PartialEq`, so this compares every field —
        // accumulated times, periods, violation counts and the embedded
        // activity summary — with exact (bit-level) float equality.
        assert_eq!(streamed.baseline, baseline_replay, "{}", workload.name);
        assert_eq!(streamed.dynamic, dynamic_replay, "{}", workload.name);
    }
}

#[test]
fn streaming_activity_matches_trace_stats() {
    let model = TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized);
    for workload in workloads() {
        let streamed = stream(&model, &workload);
        let from_trace = ActivitySummary::from_trace(&streamed.trace);
        assert_eq!(streamed.activity, from_trace, "{}", workload.name);
        // And the power model consequently reports identical numbers.
        let power = PowerModel::new(CellLibrary::fdsoi28());
        let point = power.library().operating_point(700).unwrap();
        let streamed_report = power.report(&streamed.activity, &point, 2026.0);
        let replayed_report = power.report(&from_trace, &point, 2026.0);
        assert_eq!(streamed_report, replayed_report, "{}", workload.name);
    }
}

#[test]
fn streaming_adaptive_controller_matches_trace_replay() {
    let model = TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized);
    let config = AdaptiveConfig::default();
    let drift = Drift::LinearSlowdown {
        fraction_per_kilocycle: 0.004,
    };
    for workload in workloads() {
        let mut observer =
            AdaptiveObserver::new(&model, &config, &ClockGenerator::Ideal, None, drift);
        let mut trace = PipelineTrace::default();
        Simulator::new(SimConfig::default())
            .run_observed(&workload.program, &mut [&mut observer, &mut trace])
            .unwrap_or_else(|e| panic!("{} failed to simulate: {e}", workload.name));
        let streamed = observer.into_outcome();
        let replayed = run_adaptive(&model, &trace, &config, &ClockGenerator::Ideal, None, drift);
        assert_eq!(streamed, replayed, "{}", workload.name);
    }
}
