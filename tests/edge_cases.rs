//! Regression tests for edge cases audited while building the sweep/fuzz
//! layer: empty-trace handling in the histogram percentiles and speedup
//! evaluation on zero-cycle programs must return *defined* results (NaN or
//! neutral values) instead of panicking. The behaviours below were verified
//! correct at audit time; these tests pin them down.

use idca::prelude::*;
use idca::timing::Histogram;

#[test]
fn empty_histogram_percentiles_are_defined_not_panicking() {
    let h = Histogram::new(0.0, 2000.0, 25.0);
    assert_eq!(h.count(), 0);
    // Every statistic of an empty histogram is a defined value.
    for q in [0.0, 0.05, 0.5, 0.95, 1.0] {
        assert!(
            h.percentile(q).is_nan(),
            "percentile({q}) must be NaN when empty"
        );
    }
    assert!(h.observed_min().is_nan());
    assert!(h.observed_max().is_nan());
    assert_eq!(h.mean(), 0.0);
    assert_eq!(h.to_ascii(40), "");
}

#[test]
fn histogram_percentile_tolerates_degenerate_quantiles() {
    let mut h = Histogram::new(0.0, 100.0, 10.0);
    h.add(42.0);
    // Out-of-range and NaN quantile requests clamp instead of panicking.
    let lo = h.percentile(-3.0);
    let hi = h.percentile(7.0);
    let nan_q = h.percentile(f64::NAN);
    assert!(lo.is_finite());
    assert!(hi.is_finite());
    assert!(nan_q.is_finite());
}

#[test]
fn speedup_on_zero_cycle_trace_is_neutral() {
    let model = TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized);
    let empty = PipelineTrace::from_parts(vec![], 0);
    let policy = InstructionBased::from_model(&model);
    let comparison = eval::compare(&model, "empty", &empty, &policy, &ClockGenerator::Ideal);
    // Both outcomes have zero cycles and zero frequency; the speedup must be
    // the neutral 1.0, not a 0/0 panic or NaN.
    assert_eq!(comparison.baseline.cycles, 0);
    assert_eq!(comparison.speedup(), 1.0);
    assert_eq!(comparison.frequency_gain_mhz(), 0.0);
    assert_eq!(comparison.dynamic.violations, 0);
}

#[test]
fn empty_program_evaluates_to_a_defined_comparison() {
    // A program with no instructions drains immediately; the evaluation
    // pipeline must stay defined end to end.
    let program = ProgramBuilder::named("empty").build();
    let model = TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized);
    let policy = InstructionBased::from_model(&model);
    let comparison = eval::compare_program(
        &model,
        "empty",
        &Simulator::new(SimConfig::default()),
        &program,
        &policy,
        &ClockGenerator::Ideal,
    )
    .expect("empty program simulates");
    assert!(comparison.speedup().is_finite());
    assert_eq!(comparison.dynamic.violations, 0);

    let mut suite = eval::SuiteSummary::new();
    suite.push(comparison);
    assert!(suite.mean_speedup().is_finite());
    assert!(suite.geometric_mean_speedup().is_finite());
}

#[test]
fn adaptive_run_on_zero_cycle_trace_is_neutral() {
    use idca::core::{run_adaptive, AdaptiveConfig, Drift};
    let model = TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized);
    let empty = PipelineTrace::from_parts(vec![], 0);
    let outcome = run_adaptive(
        &model,
        &empty,
        &AdaptiveConfig::default(),
        &ClockGenerator::Ideal,
        None,
        Drift::None,
    );
    assert_eq!(outcome.cycles, 0);
    assert_eq!(outcome.speedup_over_static, 1.0);
    assert_eq!(outcome.violations, 0);
}

/// A register jump that leaves the program image entirely must *drain* the
/// pipeline (mirroring what real fetch hardware sees: no more instructions),
/// not panic or error — and the predecoded fast-path engine, the per-cycle
/// reference loop, and the sequential interpreter must all agree on the
/// resulting architectural state.
#[test]
fn register_jump_outside_the_image_drains_cleanly_on_every_engine() {
    use idca::pipeline::Interpreter;
    let program = Assembler::new()
        .assemble(
            "l.movhi r5, 0x4000\n\
             l.addi  r3, r0, 7\n\
             l.jr    r5\n\
             l.addi  r3, r3, 1\n\
             l.addi  r3, r3, 100\n\
             l.nop   1\n",
        )
        .expect("assembles");

    let simulator = Simulator::new(SimConfig::default());
    let fast = simulator
        .run_observed(&program, &mut [])
        .expect("predecoded engine drains cleanly");
    let reference = simulator
        .run_observed_reference(&program, &mut [])
        .expect("reference engine drains cleanly");
    let golden = Interpreter::new()
        .run(&program)
        .expect("interpreter drains cleanly");

    // The delay slot executes before the jump leaves the image; the
    // instructions after it never do.
    assert_eq!(fast.state.regs.read(Reg::r(3)), 8);
    assert_eq!(fast.state.regs.as_array(), reference.state.regs.as_array());
    assert_eq!(fast.state.regs.as_array(), golden.regs.as_array());
    assert_eq!(fast.state.flag, golden.flag);
    assert_eq!(fast.summary, reference.summary);
    // movhi, addi, jr, delay-slot addi.
    assert_eq!(fast.summary.retired, 4);
    assert_eq!(golden.retired, 4);
}

/// A register jump to a *misaligned* address inside the image is a
/// structured [`PipelineError::PcOutOfRange`] — never a panic — and all
/// three engines report the same offending pc.
#[test]
fn register_jump_to_misaligned_pc_is_a_structured_error_on_every_engine() {
    use idca::pipeline::{Interpreter, PipelineError};
    let program = Assembler::new()
        .assemble(
            "l.addi r5, r0, 6\n\
             l.jr   r5\n\
             l.nop  0\n\
             l.nop  1\n",
        )
        .expect("assembles");

    let simulator = Simulator::new(SimConfig::default());
    let expected = PipelineError::PcOutOfRange { pc: 6 };
    assert_eq!(
        simulator.run_observed(&program, &mut []).unwrap_err(),
        expected
    );
    assert_eq!(
        simulator
            .run_observed_reference(&program, &mut [])
            .unwrap_err(),
        expected
    );
    assert_eq!(Interpreter::new().run(&program).unwrap_err(), expected);
}
