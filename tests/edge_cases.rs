//! Regression tests for edge cases audited while building the sweep/fuzz
//! layer: empty-trace handling in the histogram percentiles and speedup
//! evaluation on zero-cycle programs must return *defined* results (NaN or
//! neutral values) instead of panicking. The behaviours below were verified
//! correct at audit time; these tests pin them down.

use idca::prelude::*;
use idca::timing::Histogram;

#[test]
fn empty_histogram_percentiles_are_defined_not_panicking() {
    let h = Histogram::new(0.0, 2000.0, 25.0);
    assert_eq!(h.count(), 0);
    // Every statistic of an empty histogram is a defined value.
    for q in [0.0, 0.05, 0.5, 0.95, 1.0] {
        assert!(
            h.percentile(q).is_nan(),
            "percentile({q}) must be NaN when empty"
        );
    }
    assert!(h.observed_min().is_nan());
    assert!(h.observed_max().is_nan());
    assert_eq!(h.mean(), 0.0);
    assert_eq!(h.to_ascii(40), "");
}

#[test]
fn histogram_percentile_tolerates_degenerate_quantiles() {
    let mut h = Histogram::new(0.0, 100.0, 10.0);
    h.add(42.0);
    // Out-of-range and NaN quantile requests clamp instead of panicking.
    let lo = h.percentile(-3.0);
    let hi = h.percentile(7.0);
    let nan_q = h.percentile(f64::NAN);
    assert!(lo.is_finite());
    assert!(hi.is_finite());
    assert!(nan_q.is_finite());
}

#[test]
fn speedup_on_zero_cycle_trace_is_neutral() {
    let model = TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized);
    let empty = PipelineTrace::from_parts(vec![], 0);
    let policy = InstructionBased::from_model(&model);
    let comparison = eval::compare(&model, "empty", &empty, &policy, &ClockGenerator::Ideal);
    // Both outcomes have zero cycles and zero frequency; the speedup must be
    // the neutral 1.0, not a 0/0 panic or NaN.
    assert_eq!(comparison.baseline.cycles, 0);
    assert_eq!(comparison.speedup(), 1.0);
    assert_eq!(comparison.frequency_gain_mhz(), 0.0);
    assert_eq!(comparison.dynamic.violations, 0);
}

#[test]
fn empty_program_evaluates_to_a_defined_comparison() {
    // A program with no instructions drains immediately; the evaluation
    // pipeline must stay defined end to end.
    let program = ProgramBuilder::named("empty").build();
    let model = TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized);
    let policy = InstructionBased::from_model(&model);
    let comparison = eval::compare_program(
        &model,
        "empty",
        &Simulator::new(SimConfig::default()),
        &program,
        &policy,
        &ClockGenerator::Ideal,
    )
    .expect("empty program simulates");
    assert!(comparison.speedup().is_finite());
    assert_eq!(comparison.dynamic.violations, 0);

    let mut suite = eval::SuiteSummary::new();
    suite.push(comparison);
    assert!(suite.mean_speedup().is_finite());
    assert!(suite.geometric_mean_speedup().is_finite());
}

#[test]
fn adaptive_run_on_zero_cycle_trace_is_neutral() {
    use idca::core::{run_adaptive, AdaptiveConfig, Drift};
    let model = TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized);
    let empty = PipelineTrace::from_parts(vec![], 0);
    let outcome = run_adaptive(
        &model,
        &empty,
        &AdaptiveConfig::default(),
        &ClockGenerator::Ideal,
        None,
        Drift::None,
    );
    assert_eq!(outcome.cycles, 0);
    assert_eq!(outcome.speedup_over_static, 1.0);
    assert_eq!(outcome.violations, 0);
}

/// A register jump that leaves the program image entirely must *drain* the
/// pipeline (mirroring what real fetch hardware sees: no more instructions),
/// not panic or error — and the predecoded fast-path engine, the per-cycle
/// reference loop, and the sequential interpreter must all agree on the
/// resulting architectural state.
#[test]
fn register_jump_outside_the_image_drains_cleanly_on_every_engine() {
    use idca::pipeline::Interpreter;
    let program = Assembler::new()
        .assemble(
            "l.movhi r5, 0x4000\n\
             l.addi  r3, r0, 7\n\
             l.jr    r5\n\
             l.addi  r3, r3, 1\n\
             l.addi  r3, r3, 100\n\
             l.nop   1\n",
        )
        .expect("assembles");

    let simulator = Simulator::new(SimConfig::default());
    let fast = simulator
        .run_observed(&program, &mut [])
        .expect("predecoded engine drains cleanly");
    let reference = simulator
        .run_observed_reference(&program, &mut [])
        .expect("reference engine drains cleanly");
    let golden = Interpreter::new()
        .run(&program)
        .expect("interpreter drains cleanly");

    // The delay slot executes before the jump leaves the image; the
    // instructions after it never do.
    assert_eq!(fast.state.regs.read(Reg::r(3)), 8);
    assert_eq!(fast.state.regs.as_array(), reference.state.regs.as_array());
    assert_eq!(fast.state.regs.as_array(), golden.regs.as_array());
    assert_eq!(fast.state.flag, golden.flag);
    assert_eq!(fast.summary, reference.summary);
    // movhi, addi, jr, delay-slot addi.
    assert_eq!(fast.summary.retired, 4);
    assert_eq!(golden.retired, 4);
}

/// An interrupt raised *during* an exception-entry flush must stay pending
/// — the controller never nests entries — and the full-system event stream
/// must show strictly alternating entry/return pairs with the late raise
/// serviced as its own entry after the first handler returns.
#[test]
fn interrupt_raised_during_exception_entry_stays_pending_and_never_nests() {
    use idca::pipeline::{
        DigestEventKind, DigestObserver, InterruptController, InterruptPlan, InterruptSpec,
        LINE_TIMER, MMIO_IRQ_ACK, MMIO_IRQ_PENDING,
    };

    // Controller level, fully deterministic: with `timer=1` the timer line
    // fires on every cycle, so fires land inside the 3-cycle entry flush of
    // the first acceptance. They must set pending without re-entering or
    // disturbing the flush countdown.
    let spec = InterruptSpec::parse("timer=1,penalty=3").unwrap();
    let (_, plan) = InterruptPlan::attach(&ProgramBuilder::named("t").build(), &spec);
    let mut ctl = InterruptController::new(&plan);
    ctl.begin_cycle(0);
    assert!(ctl.takeable());
    ctl.accept(0x100);
    assert!(ctl.in_handler() && ctl.entry_pending());
    ctl.begin_cycle(1); // fires mid-entry
    assert!(!ctl.takeable(), "nested entry during entry flush");
    assert!(ctl.entry_pending());
    ctl.entry_tick();
    ctl.begin_cycle(2); // fires mid-entry again
    assert!(!ctl.takeable());
    ctl.entry_tick();
    assert!(!ctl.entry_pending());
    let pending = ctl.mmio_load(MMIO_IRQ_PENDING).unwrap();
    assert_ne!(
        pending & (1 << LINE_TIMER),
        0,
        "mid-entry raise went pending"
    );
    ctl.mmio_store(MMIO_IRQ_ACK, pending).unwrap();
    assert_eq!(ctl.rfe_retire(), Some(0x100));
    // After the return the next raise is a *fresh* entry, not a nested one.
    ctl.begin_cycle(3);
    assert!(ctl.takeable());

    // Full system: find a storm seed whose schedule drops a timer fire
    // inside an active entry/handler span (the schedule is a pure function
    // of the seed, so the scan is deterministic), then check the recorded
    // event stream never nests and both pipeline engines agree bit-exactly.
    let program = generate_program(nth_seed(3, 0), &GenConfig::default());
    let mut witnessed = false;
    for storm_seed in 1..64u64 {
        let spec =
            InterruptSpec::parse(&format!("seed={storm_seed},rate=0.005,timer=29,penalty=12"))
                .unwrap();
        let (attached, plan) = InterruptPlan::attach(&program, &spec);
        let simulator = Simulator::new(SimConfig::default()).with_interrupts(plan);
        let mut fast_digest = DigestObserver::new();
        let fast = simulator
            .run_observed(&attached, &mut [&mut fast_digest])
            .expect("storm scenario drains");
        let mut reference_digest = DigestObserver::new();
        let reference = simulator
            .run_observed_reference(&attached, &mut [&mut reference_digest])
            .expect("storm scenario drains");
        assert_eq!(fast.summary, reference.summary, "seed {storm_seed}");
        let fast_digest = fast_digest.into_digest();
        assert_eq!(
            fast_digest.events(),
            reference_digest.into_digest().events(),
            "seed {storm_seed}"
        );

        let mut open_entry: Option<u64> = None;
        for event in fast_digest.events() {
            match event.kind {
                DigestEventKind::IrqEntry { .. } => {
                    assert!(
                        open_entry.is_none(),
                        "nested IrqEntry at cycle {} (seed {storm_seed})",
                        event.cycle
                    );
                    open_entry = Some(event.cycle);
                }
                DigestEventKind::IrqReturn => {
                    assert!(open_entry.is_some(), "IrqReturn without entry");
                    open_entry = None;
                }
                DigestEventKind::TimerFire if open_entry.is_some() => witnessed = true,
                _ => {}
            }
        }
        if witnessed {
            break;
        }
    }
    assert!(
        witnessed,
        "no seed in the scan produced a timer fire during an entry/handler span"
    );
}

/// A timer fire landing on the very last cycle before [`SimConfig::max_cycles`]
/// must end in the ordinary structured [`PipelineError::CycleLimitExceeded`]
/// — not a panic, not an accepted-but-truncated entry — identically on both
/// pipeline engines.
#[test]
fn timer_fire_on_the_final_cycle_before_the_limit_stops_with_a_structured_error() {
    use idca::pipeline::{InterruptPlan, InterruptSpec, PipelineError};

    let program = generate_program(nth_seed(11, 0), &GenConfig::default());
    // `timer=50` fires for the first time on cycle 49 — exactly the final
    // cycle the 50-cycle budget admits, so acceptance has no room to run.
    let spec = InterruptSpec::parse("timer=50,penalty=4").unwrap();
    let (attached, plan) = InterruptPlan::attach(&program, &spec);
    let config = SimConfig {
        max_cycles: 50,
        ..SimConfig::default()
    };
    let simulator = Simulator::new(config).with_interrupts(plan);
    let expected = PipelineError::CycleLimitExceeded { limit: 50 };
    assert_eq!(
        simulator.run_observed(&attached, &mut []).unwrap_err(),
        expected
    );
    assert_eq!(
        simulator
            .run_observed_reference(&attached, &mut [])
            .unwrap_err(),
        expected
    );
}

/// A store to a read-only MMIO register is the structured
/// [`PipelineError::MmioReadOnly`] on both pipeline engines — never a
/// panic — and without an interrupt controller attached the same word
/// address falls through to plain SRAM bounds checking, which rejects it
/// with its own structured error.
#[test]
fn mmio_store_to_a_read_only_register_is_a_structured_error_on_every_engine() {
    use idca::pipeline::{InterruptPlan, InterruptSpec, PipelineError, MMIO_TIMER_COUNT};

    let program = Assembler::new()
        .assemble(
            "l.movhi r31, 0xffff\n\
             l.sw    0(r31), r0\n\
             l.nop   1\n",
        )
        .expect("assembles");
    let (attached, plan) = InterruptPlan::attach(&program, &InterruptSpec::default());
    let simulator = Simulator::new(SimConfig::default()).with_interrupts(plan);
    let expected = PipelineError::MmioReadOnly {
        address: MMIO_TIMER_COUNT,
    };
    assert_eq!(
        simulator.run_observed(&attached, &mut []).unwrap_err(),
        expected
    );
    assert_eq!(
        simulator
            .run_observed_reference(&attached, &mut [])
            .unwrap_err(),
        expected
    );

    // No controller attached: the address is ordinary (out-of-range) data
    // memory, and both engines report the same bounds error.
    let bare = Simulator::new(SimConfig::default());
    let fast = bare.run_observed(&program, &mut []).unwrap_err();
    assert!(
        matches!(fast, PipelineError::DataAccessOutOfRange { address, .. }
            if address == MMIO_TIMER_COUNT),
        "unexpected error without controller: {fast:?}"
    );
    assert_eq!(
        fast,
        bare.run_observed_reference(&program, &mut []).unwrap_err()
    );
}

/// A register jump to a *misaligned* address inside the image is a
/// structured [`PipelineError::PcOutOfRange`] — never a panic — and all
/// three engines report the same offending pc.
#[test]
fn register_jump_to_misaligned_pc_is_a_structured_error_on_every_engine() {
    use idca::pipeline::{Interpreter, PipelineError};
    let program = Assembler::new()
        .assemble(
            "l.addi r5, r0, 6\n\
             l.jr   r5\n\
             l.nop  0\n\
             l.nop  1\n",
        )
        .expect("assembles");

    let simulator = Simulator::new(SimConfig::default());
    let expected = PipelineError::PcOutOfRange { pc: 6 };
    assert_eq!(
        simulator.run_observed(&program, &mut []).unwrap_err(),
        expected
    );
    assert_eq!(
        simulator
            .run_observed_reference(&program, &mut [])
            .unwrap_err(),
        expected
    );
    assert_eq!(Interpreter::new().run(&program).unwrap_err(), expected);
}
