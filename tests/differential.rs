//! Differential testing: the cycle-accurate pipeline simulator must produce
//! exactly the same architectural results as the sequential reference
//! interpreter — on every benchmark workload, and on a fuzzed population of
//! seed-generated programs (`idca_gen`). The fuzz budget is bounded (200
//! seeds by default) and overridable via `IDCA_FUZZ_SEEDS`, so CI runtime
//! stays predictable; a failing seed is shrunk to a minimal configuration
//! before it is reported.

use idca::gen::ClassMix;
use idca::pipeline::{Interpreter, SimConfig, Simulator};
use idca::prelude::*;

#[test]
fn pipeline_matches_interpreter_on_every_benchmark() {
    let simulator = Simulator::new(SimConfig::default());
    let interpreter = Interpreter::new();
    for workload in benchmark_suite() {
        let pipelined = simulator
            .run(&workload.program)
            .unwrap_or_else(|e| panic!("{}: pipeline failed: {e}", workload.name));
        let golden = interpreter
            .run(&workload.program)
            .unwrap_or_else(|e| panic!("{}: interpreter failed: {e}", workload.name));

        assert_eq!(
            pipelined.state.regs.as_array(),
            golden.regs.as_array(),
            "{}: register files diverge",
            workload.name
        );
        assert_eq!(
            pipelined.state.flag, golden.flag,
            "{}: flag diverges",
            workload.name
        );
        // Compare the data-memory regions the kernels actually use.
        for address in (0..0x8000u32).step_by(4) {
            let a = pipelined.state.memory.load_word(address).unwrap();
            let b = golden.memory.load_word(address).unwrap();
            assert_eq!(a, b, "{}: memory diverges at {address:#06x}", workload.name);
        }
    }
}

#[test]
fn pipeline_matches_interpreter_on_characterization_workloads() {
    let simulator = Simulator::new(SimConfig::default());
    let interpreter = Interpreter::new();
    for seed in [1u64, 0xC0DE, 987_654_321] {
        let workload = characterization_workload(seed);
        let pipelined = simulator.run(&workload.program).expect("pipeline runs");
        let golden = interpreter
            .run(&workload.program)
            .expect("interpreter runs");
        assert_eq!(
            pipelined.state.regs.as_array(),
            golden.regs.as_array(),
            "seed {seed}: register files diverge"
        );
    }
}

/// Compares the pipeline and the interpreter on one generated program.
/// Returns a human-readable divergence description, or `None` on agreement.
fn divergence(seed: u64, config: &GenConfig) -> Option<String> {
    let program = generate_program(seed, config);
    let pipelined = match Simulator::new(SimConfig::default()).run_observed(&program, &mut []) {
        Ok(run) => run,
        Err(e) => return Some(format!("pipeline failed: {e}")),
    };
    let golden = match Interpreter::new().run(&program) {
        Ok(result) => result,
        Err(e) => return Some(format!("interpreter failed: {e}")),
    };
    if pipelined.state.regs.as_array() != golden.regs.as_array() {
        for r in 0..32u32 {
            let (a, b) = (
                pipelined.state.regs.read(Reg::r(r)),
                golden.regs.read(Reg::r(r)),
            );
            if a != b {
                return Some(format!(
                    "r{r} diverges: pipeline {a:#010x}, interpreter {b:#010x}"
                ));
            }
        }
    }
    if pipelined.state.flag != golden.flag {
        return Some(format!(
            "flag diverges: pipeline {}, interpreter {}",
            pipelined.state.flag, golden.flag
        ));
    }
    if pipelined.summary.retired != golden.retired {
        return Some(format!(
            "retired counts diverge: pipeline {}, interpreter {}",
            pipelined.summary.retired, golden.retired
        ));
    }
    // The generator confines every access to its scratch window; compare the
    // whole window plus a guard band.
    let window_end = idca::gen::MEM_BASE + 2048 * 4 + 64;
    for address in (0..window_end).step_by(4) {
        let a = pipelined.state.memory.load_word(address).expect("in range");
        let b = golden.memory.load_word(address).expect("in range");
        if a != b {
            return Some(format!(
                "memory diverges at {address:#06x}: pipeline {a:#010x}, interpreter {b:#010x}"
            ));
        }
    }
    None
}

/// Shrinks a failing configuration: repeatedly tries structurally smaller
/// variants (fewer blocks, shorter bodies, shallower loops, fewer
/// iterations, no memory, single-class mixes) and keeps any that still
/// fails, until no reduction reproduces the divergence.
fn shrink(seed: u64, config: &GenConfig) -> (GenConfig, String) {
    let mut current = *config;
    let mut message = divergence(seed, &current).expect("shrink starts from a failing config");
    loop {
        let mut candidates = vec![
            GenConfig {
                blocks: (current.blocks / 2).max(1),
                ..current
            },
            GenConfig {
                block_len: (current.block_len / 2).max(1),
                ..current
            },
            GenConfig {
                max_loop_depth: current.max_loop_depth.saturating_sub(1),
                ..current
            },
            GenConfig {
                max_loop_iters: (current.max_loop_iters / 2).max(1),
                ..current
            },
        ];
        // Try muting whole instruction classes.
        for mute in [
            ClassMix {
                load: 0,
                store: 0,
                ..current.mix
            },
            ClassMix {
                branch: 0,
                jump: 0,
                ..current.mix
            },
            ClassMix {
                mul: 0,
                shift: 0,
                ..current.mix
            },
        ] {
            candidates.push(GenConfig {
                mix: mute,
                ..current
            });
        }
        let mut reduced = false;
        for candidate in candidates {
            if candidate == current {
                continue;
            }
            if let Some(msg) = divergence(seed, &candidate) {
                current = candidate;
                message = msg;
                reduced = true;
                break;
            }
        }
        if !reduced {
            return (current, message);
        }
    }
}

/// The bounded differential fuzz: every generated seed must leave the
/// pipeline and the reference interpreter in identical architectural state
/// (registers, flag, retirement count and data memory). Mismatches are
/// shrunk to a minimal failing configuration and reported with the seed so
/// the failure is a one-liner to reproduce.
#[test]
fn generated_programs_match_the_reference_interpreter() {
    let budget: u64 = std::env::var("IDCA_FUZZ_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    const MASTER_SEED: u64 = 0xD1FF;
    let config = GenConfig::default();
    let mut checked = 0u64;
    for index in 0..budget {
        let seed = nth_seed(MASTER_SEED, index);
        if let Some(message) = divergence(seed, &config) {
            let (minimal, minimal_message) = shrink(seed, &config);
            panic!(
                "differential fuzz failure at seed {seed:#018x} (index {index}): {message}\n\
                 shrunk to {minimal:?}\n\
                 minimal divergence: {minimal_message}\n\
                 reproduce with: generate_program({seed:#x}, &config)"
            );
        }
        checked += 1;
    }
    assert_eq!(checked, budget, "every budgeted seed must be exercised");
}

/// A second fuzz population with a deliberately hostile mix: dense control
/// flow and memory traffic, the constructs most likely to expose
/// forwarding/flush bugs in the pipeline.
#[test]
fn control_and_memory_heavy_programs_match_the_reference_interpreter() {
    // A quarter of the main fuzz budget (at least one seed), so
    // IDCA_FUZZ_SEEDS scales both populations together.
    let budget: u64 = (std::env::var("IDCA_FUZZ_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200)
        / 4)
    .max(1);
    let config = GenConfig {
        blocks: 4,
        block_len: 10,
        max_loop_depth: 3,
        max_loop_iters: 4,
        mem_window_words: 32,
        mix: ClassMix {
            alu: 8,
            logic: 4,
            shift: 2,
            mul: 2,
            set_flag: 10,
            mov: 4,
            load: 16,
            store: 16,
            branch: 14,
            jump: 6,
        },
    };
    for index in 0..budget {
        let seed = nth_seed(0xB00B5, index);
        if let Some(message) = divergence(seed, &config) {
            let (minimal, minimal_message) = shrink(seed, &config);
            panic!(
                "hostile-mix fuzz failure at seed {seed:#018x} (index {index}): {message}\n\
                 shrunk to {minimal:?}\nminimal divergence: {minimal_message}"
            );
        }
    }
}

#[test]
fn retired_instruction_counts_match_between_models() {
    // The pipeline retires exactly the architecturally executed instructions
    // (bubbles and flushed wrong-path fetches never retire).
    let simulator = Simulator::new(SimConfig::default());
    let interpreter = Interpreter::new();
    for workload in benchmark_suite().into_iter().take(6) {
        let pipelined = simulator.run(&workload.program).unwrap();
        let golden = interpreter.run(&workload.program).unwrap();
        assert_eq!(
            pipelined.trace.retired(),
            golden.retired,
            "{}: retirement counts diverge",
            workload.name
        );
    }
}

/// The predecoded fast-path engine is pinned **bit-identical** to the
/// retained per-cycle reference loop: same `RunSummary`, same architectural
/// state, same `CycleRecord` stream, and same timing-digest bytes (hinted
/// capture on the fast path vs unhinted capture on the reference loop —
/// which also exercises the fused burst→digest path, since a lone hinted
/// observer takes it).
///
/// The population is a deliberately hostile mix — branch/jump and
/// load/store heavy with nested short loops — so bursts stay short and
/// every fast-path entry/exit edge (hazard bail-out, control handoff,
/// drain) is crossed many times per program.
#[test]
fn predecoded_engine_is_bit_identical_to_reference_loop_on_hostile_mix() {
    use idca::pipeline::{DigestObserver, PipelineTrace, PredecodedProgram};

    let config = GenConfig {
        blocks: 4,
        block_len: 10,
        max_loop_depth: 3,
        max_loop_iters: 4,
        mem_window_words: 32,
        mix: ClassMix {
            alu: 8,
            logic: 4,
            shift: 2,
            mul: 2,
            set_flag: 10,
            mov: 4,
            load: 16,
            store: 16,
            branch: 14,
            jump: 6,
        },
    };
    let simulator = Simulator::new(SimConfig::default());
    for index in 0..40u64 {
        let seed = nth_seed(0xB00B5, index);
        let program = generate_program(seed, &config);
        let pre = PredecodedProgram::lower(&program);

        // Reference loop: unhinted digest capture plus a full trace.
        let mut ref_digest = DigestObserver::new();
        let mut ref_trace = PipelineTrace::default();
        let reference = simulator
            .run_observed_reference(&program, &mut [&mut ref_digest, &mut ref_trace])
            .unwrap_or_else(|e| panic!("seed {seed:#x}: reference engine failed: {e}"));

        // Predecoded engine, digest-only (lone hinted observer → fused
        // burst capture).
        let mut fast_digest = DigestObserver::with_hints(pre.digest_hints());
        let fused = simulator
            .run_observed_predecoded(&pre, &mut [&mut fast_digest])
            .unwrap_or_else(|e| panic!("seed {seed:#x}: predecoded engine failed: {e}"));

        // Predecoded engine again with a trace observer (record path).
        let mut fast_trace = PipelineTrace::default();
        let recorded = simulator
            .run_observed_predecoded(&pre, &mut [&mut fast_trace])
            .unwrap_or_else(|e| panic!("seed {seed:#x}: predecoded engine failed: {e}"));

        assert_eq!(
            fused.summary, reference.summary,
            "seed {seed:#x}: run summaries diverge"
        );
        assert_eq!(recorded.summary, reference.summary);
        assert_eq!(
            fused.state.regs.as_array(),
            reference.state.regs.as_array(),
            "seed {seed:#x}: register files diverge"
        );
        assert_eq!(fused.state.flag, reference.state.flag);
        assert_eq!(fused.state.carry, reference.state.carry);
        assert_eq!(
            fast_trace, ref_trace,
            "seed {seed:#x}: cycle-record streams diverge"
        );
        assert_eq!(
            fast_digest.into_digest().to_bytes(),
            ref_digest.into_digest().to_bytes(),
            "seed {seed:#x}: timing-digest bytes diverge"
        );
    }
}
