//! Differential testing: the cycle-accurate pipeline simulator must produce
//! exactly the same architectural results as the sequential reference
//! interpreter on every benchmark workload.

use idca::pipeline::{Interpreter, SimConfig, Simulator};
use idca::prelude::*;

#[test]
fn pipeline_matches_interpreter_on_every_benchmark() {
    let simulator = Simulator::new(SimConfig::default());
    let interpreter = Interpreter::new();
    for workload in benchmark_suite() {
        let pipelined = simulator
            .run(&workload.program)
            .unwrap_or_else(|e| panic!("{}: pipeline failed: {e}", workload.name));
        let golden = interpreter
            .run(&workload.program)
            .unwrap_or_else(|e| panic!("{}: interpreter failed: {e}", workload.name));

        assert_eq!(
            pipelined.state.regs.as_array(),
            golden.regs.as_array(),
            "{}: register files diverge",
            workload.name
        );
        assert_eq!(
            pipelined.state.flag, golden.flag,
            "{}: flag diverges",
            workload.name
        );
        // Compare the data-memory regions the kernels actually use.
        for address in (0..0x8000u32).step_by(4) {
            let a = pipelined.state.memory.load_word(address).unwrap();
            let b = golden.memory.load_word(address).unwrap();
            assert_eq!(a, b, "{}: memory diverges at {address:#06x}", workload.name);
        }
    }
}

#[test]
fn pipeline_matches_interpreter_on_characterization_workloads() {
    let simulator = Simulator::new(SimConfig::default());
    let interpreter = Interpreter::new();
    for seed in [1u64, 0xC0DE, 987_654_321] {
        let workload = characterization_workload(seed);
        let pipelined = simulator.run(&workload.program).expect("pipeline runs");
        let golden = interpreter
            .run(&workload.program)
            .expect("interpreter runs");
        assert_eq!(
            pipelined.state.regs.as_array(),
            golden.regs.as_array(),
            "seed {seed}: register files diverge"
        );
    }
}

#[test]
fn retired_instruction_counts_match_between_models() {
    // The pipeline retires exactly the architecturally executed instructions
    // (bubbles and flushed wrong-path fetches never retire).
    let simulator = Simulator::new(SimConfig::default());
    let interpreter = Interpreter::new();
    for workload in benchmark_suite().into_iter().take(6) {
        let pipelined = simulator.run(&workload.program).unwrap();
        let golden = interpreter.run(&workload.program).unwrap();
        assert_eq!(
            pipelined.trace.retired(),
            golden.retired,
            "{}: retirement counts diverge",
            workload.name
        );
    }
}
