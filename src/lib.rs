//! # idca — instruction-based dynamic clock adjustment (umbrella crate)
//!
//! Reproduction of *"Exploiting dynamic timing margins in microprocessors
//! for frequency-over-scaling with instruction-based clock adjustment"*
//! (Constantin, Wang, Karakonstantis, Chattopadhyay, Burg — DATE 2015).
//!
//! This crate re-exports the individual workspace crates under one roof:
//!
//! * [`isa`] — the OpenRISC ORBIS32 subset (instructions, assembler).
//! * [`pipeline`] — the cycle-accurate 6-stage pipeline simulator.
//! * [`timing`] — the synthetic post-layout timing model, dynamic timing
//!   analysis and power model.
//! * [`core`] — the delay LUT, clock-adjustment policies, dynamic-clock
//!   simulation, evaluation and voltage-frequency scaling.
//! * [`workloads`] — CoreMark-like and BEEBS-like benchmark kernels plus
//!   the characterization workload.
//!
//! The most common entry points are also re-exported in the [`prelude`].
//!
//! # Quickstart
//!
//! ```
//! use idca::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. Assemble and run a program on the 6-stage pipeline.
//! let program = Assembler::new().assemble(
//!     "l.addi r3, r0, 100\nloop: l.addi r3, r3, -1\n l.sfne r3, r0\n l.bf loop\n l.nop 0\n l.nop 1\n",
//! )?;
//! let trace = Simulator::new(SimConfig::default()).run(&program)?.trace;
//!
//! // 2. Evaluate conventional vs instruction-based dynamic clocking.
//! let model = TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized);
//! let baseline = run_with_policy(&model, &trace, &StaticClock::of_model(&model), &ClockGenerator::Ideal);
//! let dynamic = run_with_policy(&model, &trace, &InstructionBased::from_model(&model), &ClockGenerator::Ideal);
//! assert!(dynamic.speedup_over(&baseline) > 1.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use idca_core as core;
pub use idca_isa as isa;
pub use idca_pipeline as pipeline;
pub use idca_timing as timing;
pub use idca_workloads as workloads;

/// Convenient glob-import of the most frequently used types.
pub mod prelude {
    pub use idca_core::{
        eval, policy::ExecuteOnly, policy::GenieOracle, policy::InstructionBased,
        policy::StaticClock, run_with_policy, vfs, ClockGenerator, ClockPolicy, DelayLut,
        RunOutcome,
    };
    pub use idca_isa::{asm::Assembler, Insn, Opcode, Program, ProgramBuilder, Reg, TimingClass};
    pub use idca_pipeline::{PipelineTrace, SimConfig, SimResult, Simulator, Stage};
    pub use idca_timing::{
        dta::DynamicTimingAnalysis, ActivitySummary, CellLibrary, PowerModel, ProfileKind,
        TimingModel, TimingProfile,
    };
    pub use idca_workloads::{benchmark_suite, suite::characterization_workload, Workload};
}
