//! # idca — instruction-based dynamic clock adjustment (umbrella crate)
//!
//! Reproduction of *"Exploiting dynamic timing margins in microprocessors
//! for frequency-over-scaling with instruction-based clock adjustment"*
//! (Constantin, Wang, Karakonstantis, Chattopadhyay, Burg — DATE 2015).
//!
//! This crate re-exports the individual workspace crates under one roof:
//!
//! * [`isa`] — the OpenRISC ORBIS32 subset (instructions, assembler).
//! * [`gen`] — deterministic seeded program generator (fuzzing, sweeps).
//! * [`pipeline`] — the cycle-accurate 6-stage pipeline simulator.
//! * [`timing`] — the synthetic post-layout timing model, dynamic timing
//!   analysis and power model.
//! * [`core`] — the delay LUT, clock-adjustment policies, dynamic-clock
//!   simulation, evaluation and voltage-frequency scaling.
//! * [`workloads`] — CoreMark-like and BEEBS-like benchmark kernels plus
//!   the characterization workload.
//!
//! The most common entry points are also re-exported in the [`prelude`].
//!
//! # Quickstart
//!
//! The single-pass entry point is `Simulator::run_observed`: the program is
//! simulated **once**, and every analysis — here the static-clocking
//! baseline and the paper's instruction-based adjustment — rides along as a
//! streaming [`CycleObserver`](idca_pipeline::CycleObserver) on the same
//! pass, with no per-cycle trace materialized.
//!
//! ```
//! use idca::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. Assemble a program for the 6-stage pipeline.
//! let program = Assembler::new().assemble(
//!     "l.addi r3, r0, 100\nloop: l.addi r3, r3, -1\n l.sfne r3, r0\n l.bf loop\n l.nop 0\n l.nop 1\n",
//! )?;
//!
//! // 2. Evaluate conventional vs instruction-based dynamic clocking in one
//! //    fused simulation pass.
//! let model = TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized);
//! let static_policy = StaticClock::of_model(&model);
//! let dynamic_policy = InstructionBased::from_model(&model);
//! let mut baseline = PolicyObserver::new(&model, &static_policy, &ClockGenerator::Ideal);
//! let mut dynamic = PolicyObserver::new(&model, &dynamic_policy, &ClockGenerator::Ideal);
//! Simulator::new(SimConfig::default())
//!     .run_observed(&program, &mut [&mut baseline, &mut dynamic])?;
//!
//! let (baseline, dynamic) = (baseline.into_outcome(), dynamic.into_outcome());
//! assert!(dynamic.speedup_over(&baseline) > 1.0);
//! assert_eq!(dynamic.violations, 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use idca_core as core;
pub use idca_gen as gen;
pub use idca_isa as isa;
pub use idca_pipeline as pipeline;
pub use idca_timing as timing;
pub use idca_workloads as workloads;

/// Convenient glob-import of the most frequently used types.
pub mod prelude {
    pub use idca_core::{
        eval, policy::ExecuteOnly, policy::GenieOracle, policy::InstructionBased,
        policy::StaticClock, run_with_policy, vfs, ClockGenerator, ClockPolicy, DelayLut,
        PolicyObserver, RunOutcome,
    };
    pub use idca_gen::{generate_program, nth_seed, ClassMix, GenConfig};
    pub use idca_isa::{asm::Assembler, Insn, Opcode, Program, ProgramBuilder, Reg, TimingClass};
    pub use idca_pipeline::{
        CycleObserver, ObservedRun, PipelineTrace, RunSummary, SimConfig, SimResult, Simulator,
        Stage,
    };
    pub use idca_timing::{
        dta::DynamicTimingAnalysis, ActivityObserver, ActivitySummary, CellLibrary, CornerBank,
        PowerModel, ProfileKind, PvtCorner, TimingModel, TimingProfile, VariationModel,
    };
    pub use idca_workloads::{
        benchmark_suite, suite::characterization_workload, synthetic_suite, synthetic_workload,
        Workload,
    };
}
