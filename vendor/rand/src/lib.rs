//! Minimal offline substitute for the `rand` crate.
//!
//! Provides exactly the subset the workspace uses: [`rngs::SmallRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`] and [`Rng::gen_range`] over
//! integer ranges. The generator is a SplitMix64-seeded xorshift64*, which
//! is more than adequate for the semi-random workload generation it backs
//! (reproducibility per seed is the only property the callers rely on).
//! Swapping in the real `rand` crate requires no source changes.

/// Types that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface over a raw 64-bit generator.
pub trait Rng {
    /// The next raw 64 bits of the stream.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniformly distributed value inside `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

/// Types with a natural "uniform over the whole domain" distribution.
pub trait Standard {
    /// Draws one value from `rng`.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u16 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value from `rng` inside the range.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range called with empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u16, u32, u64, usize, i16, i32, i64);

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, deterministic generator (xorshift64* seeded through
    /// SplitMix64), mirroring the role of `rand::rngs::SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 scramble so consecutive seeds land far apart.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            SmallRng {
                state: z.max(1), // xorshift state must be non-zero
            }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v: i32 = rng.gen_range(-2048..2048);
            assert!((-2048..2048).contains(&v));
            let u: usize = rng.gen_range(0..10);
            assert!(u < 10);
            let w: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn full_width_values_vary() {
        let mut rng = SmallRng::seed_from_u64(1);
        let a: u32 = rng.gen();
        let b: u32 = rng.gen();
        assert_ne!(a, b);
    }
}
