//! No-op substitute for the real `serde_derive` macros.
//!
//! This workspace builds in a fully offline environment, so the real serde
//! crates cannot be fetched. The workspace crates only use
//! `#[derive(Serialize, Deserialize)]` as declarative markers (no code path
//! performs serde-based serialization; the delay-LUT JSON format is
//! hand-rolled in `idca-core`), so the derives can safely expand to nothing.
//! Swapping in the real `serde`/`serde_derive` requires no source changes.

use proc_macro::TokenStream;

/// Accepts and discards a `#[derive(Serialize)]` invocation.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts and discards a `#[derive(Deserialize)]` invocation.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
