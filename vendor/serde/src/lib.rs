//! Marker-trait substitute for the real `serde` crate.
//!
//! This workspace builds in a fully offline environment, so the real serde
//! cannot be fetched from crates.io. The workspace crates use
//! `#[derive(Serialize, Deserialize)]` purely as forward-looking markers —
//! nothing in the codebase drives a serde `Serializer`/`Deserializer` (the
//! delay-LUT JSON format is hand-rolled in `idca-core`). The traits here are
//! therefore empty markers and the re-exported derives expand to nothing.
//! Replacing this stub with the real crate requires no source changes.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
