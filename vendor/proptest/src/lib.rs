//! Offline substitute for the subset of `proptest` this workspace uses.
//!
//! The workspace builds without network access, so the real proptest cannot
//! be fetched. This crate implements the pieces the property tests rely on —
//! [`strategy::Strategy`] with `prop_map`, range and tuple strategies,
//! [`collection::vec`], [`prelude::any`], `prop_oneof!`, the `proptest!`
//! macro and the `prop_assert*` macros — generating cases from a
//! deterministic per-test RNG. Shrinking and failure persistence of the real
//! proptest are intentionally out of scope: a failing case panics with the
//! generated inputs' debug output instead. Swapping in the real proptest
//! requires no source changes.

pub mod test_runner {
    //! Deterministic case generation.

    /// Per-test deterministic RNG (xorshift64*, seeded from the test name).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator whose stream depends only on `salt`.
        #[must_use]
        pub fn deterministic(salt: &str) -> Self {
            let mut state: u64 = 0x6A09_E667_F3BC_C909;
            for byte in salt.bytes() {
                state = state.rotate_left(7) ^ u64::from(byte);
                state = state.wrapping_mul(0x100_0000_01B3);
            }
            TestRng {
                state: state.max(1),
            }
        }

        /// The next raw 64 bits of the stream.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// A uniform value in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty sampling bound");
            self.next_u64() % bound
        }
    }

    /// Run configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Generates one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Post-processes generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng| self.new_value(rng)))
        }
    }

    /// A strategy mapped through a function.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Uniform choice between equally likely alternative strategies
    /// (the engine behind `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Creates a union over `options` (must be non-empty).
        #[must_use]
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let index = rng.below(self.options.len() as u64) as usize;
            self.options[index].new_value(rng)
        }
    }

    /// Strategy yielding a single constant value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u64 + 1;
                    (start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let unit = rng.next_u64() as f64 / (u64::MAX as f64 + 1.0);
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy!(
        (A.0),
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
    );
}

pub mod arbitrary {
    //! Default strategies per type, backing [`crate::prelude::any`].

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, i8, i16, i32, i64, usize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`crate::prelude::any`].
    pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

    impl<T> Default for AnyStrategy<T> {
        fn default() -> Self {
            AnyStrategy(core::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A size specification: an exact length or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                min: exact,
                max_exclusive: exact + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(range: core::ops::Range<usize>) -> Self {
            assert!(range.start < range.end, "empty vec size range");
            SizeRange {
                min: range.start,
                max_exclusive: range.end,
            }
        }
    }

    /// Strategy generating vectors of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::arbitrary::{AnyStrategy, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The canonical strategy over the whole domain of `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy::default()
    }
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Property assertion; panics with context on failure (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Property equality assertion; panics with context on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Property inequality assertion; panics with context on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn name(pattern in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@config ($config) $($rest)*);
    };
    (@config ($config:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        $(let $arg = $crate::strategy::Strategy::new_value(&$strategy, &mut rng);)+
                        $body
                    }));
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest case {case}/{} of `{}` failed",
                            config.cases,
                            stringify!($name),
                        );
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("unit");
        let strat = (0u32..10, -5i32..=5).prop_map(|(a, b)| (a, b));
        for _ in 0..500 {
            let (a, b) = strat.new_value(&mut rng);
            assert!(a < 10);
            assert!((-5..=5).contains(&b));
        }
    }

    #[test]
    fn oneof_uses_every_arm() {
        let mut rng = crate::test_runner::TestRng::deterministic("arms");
        let strat = prop_oneof![(0u32..1).prop_map(|_| 1u8), (0u32..1).prop_map(|_| 2u8)];
        let mut seen = [false; 3];
        for _ in 0..64 {
            seen[strat.new_value(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn vec_sizes_respect_spec() {
        let mut rng = crate::test_runner::TestRng::deterministic("vec");
        let exact = crate::collection::vec(0u32..5, 14);
        assert_eq!(exact.new_value(&mut rng).len(), 14);
        let ranged = crate::collection::vec(0u32..5, 1..40);
        for _ in 0..100 {
            let len = ranged.new_value(&mut rng).len();
            assert!((1..40).contains(&len));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_cases(value in 0u32..100) {
            prop_assert!(value < 100);
        }
    }
}
