//! Offline substitute for the subset of `rayon` this workspace uses.
//!
//! The workspace builds without network access, so the real rayon cannot be
//! fetched. This crate implements the same surface the suite runner relies
//! on — `into_par_iter()` / `par_iter()` followed by `map(...).collect()` —
//! with genuine data parallelism on `std::thread::scope`: items are pulled
//! from a shared atomic cursor by one worker per available core, and
//! `collect()` preserves input order. Swapping in the real rayon requires no
//! source changes.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod prelude {
    //! Glob-import surface mirroring `rayon::prelude`.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// Number of worker threads used for a parallel region. Like the real
/// rayon, an explicit `RAYON_NUM_THREADS` environment variable overrides
/// the detected core count (used e.g. to prove sweep reports are
/// byte-identical across thread counts).
fn thread_count(items: usize) -> usize {
    let configured = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0);
    configured
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
        .min(items.max(1))
}

/// Runs `f` over `items`, in parallel, preserving input order in the result.
fn parallel_map<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    let workers = thread_count(items.len());
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = slots.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                if index >= slots.len() {
                    break;
                }
                let item = slots[index]
                    .lock()
                    .expect("item slot poisoned")
                    .take()
                    .expect("each slot is claimed exactly once");
                let output = f(item);
                *results[index].lock().expect("result slot poisoned") = Some(output);
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every claimed slot")
        })
        .collect()
}

/// A value convertible into a parallel iterator over owned items.
pub trait IntoParallelIterator {
    /// The item type produced.
    type Item: Send;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// A value whose references can be iterated in parallel.
pub trait IntoParallelRefIterator<'a> {
    /// The reference item type produced.
    type Item: Send;
    /// Produces a parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        self.as_slice().par_iter()
    }
}

/// Operations available on parallel iterators.
pub trait ParallelIterator: Sized {
    /// The item type flowing through the pipeline.
    type Item: Send;

    /// Maps every item through `f` (evaluated in parallel at `collect`).
    fn map<R: Send, F: Fn(Self::Item) -> R + Sync>(self, f: F) -> ParMap<Self, F>;

    /// Executes the pipeline and gathers the results in input order.
    fn collect<C: FromParallelOutput<Self::Item>>(self) -> C;
}

/// The root parallel iterator over a list of items.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;

    fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParMap<Self, F> {
        ParMap { inner: self, f }
    }

    fn collect<C: FromParallelOutput<T>>(self) -> C {
        C::from_vec(self.items)
    }
}

/// A mapped parallel iterator.
pub struct ParMap<I, F> {
    inner: I,
    f: F,
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> ParallelIterator for ParMap<ParIter<T>, F> {
    type Item = R;

    fn map<R2: Send, F2: Fn(R) -> R2 + Sync>(self, f: F2) -> ParMap<Self, F2> {
        ParMap { inner: self, f }
    }

    fn collect<C: FromParallelOutput<R>>(self) -> C {
        C::from_vec(parallel_map(self.inner.items, self.f))
    }
}

impl<I, R: Send, F, R2: Send, F2> ParallelIterator for ParMap<ParMap<I, F>, F2>
where
    ParMap<I, F>: ParallelIterator<Item = R>,
    F2: Fn(R) -> R2 + Sync,
{
    type Item = R2;

    fn map<R3: Send, F3: Fn(R2) -> R3 + Sync>(self, f: F3) -> ParMap<Self, F3> {
        ParMap { inner: self, f }
    }

    fn collect<C: FromParallelOutput<R2>>(self) -> C {
        // Inner stages collapse to a Vec first; the outer map is the one
        // that fans out across threads.
        let inner: Vec<R> = self.inner.collect();
        C::from_vec(parallel_map(inner, self.f))
    }
}

/// Collection types a parallel pipeline can gather into.
pub trait FromParallelOutput<T> {
    /// Builds the collection from the ordered results.
    fn from_vec(items: Vec<T>) -> Self;
}

impl<T> FromParallelOutput<T> for Vec<T> {
    fn from_vec(items: Vec<T>) -> Self {
        items
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..100).collect();
        let doubled: Vec<u64> = input.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_over_references() {
        let input: Vec<String> = (0..20).map(|i| format!("w{i}")).collect();
        let lens: Vec<usize> = input.par_iter().map(|s| s.len()).collect();
        assert_eq!(lens.len(), 20);
        assert_eq!(lens[0], 2);
    }

    #[test]
    fn chained_maps_compose() {
        let input: Vec<i64> = (0..50).collect();
        let out: Vec<i64> = input
            .into_par_iter()
            .map(|x| x + 1)
            .map(|x| x * 3)
            .collect();
        assert_eq!(out[49], 150);
    }

    #[test]
    fn work_actually_runs_on_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let input: Vec<u32> = (0..64).collect();
        let _: Vec<()> = input
            .into_par_iter()
            .map(|_| {
                std::thread::sleep(std::time::Duration::from_millis(1));
                seen.lock().unwrap().insert(std::thread::current().id());
            })
            .collect();
        let threads = seen.lock().unwrap().len();
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        assert!(threads >= cores.min(2), "expected parallel execution");
    }
}
