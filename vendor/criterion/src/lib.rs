//! Offline substitute for the subset of `criterion` this workspace uses.
//!
//! The workspace builds without network access, so the real criterion cannot
//! be fetched. The benches only need `Criterion::benchmark_group`,
//! `sample_size`, `measurement_time`, `bench_function`, `Bencher::iter` and
//! the `criterion_group!` / `criterion_main!` macros; this crate implements
//! them as a small wall-clock harness that reports mean iteration time.
//! Statistical analysis, plots and regressions of the real criterion are
//! intentionally out of scope. Swapping in the real crate requires no source
//! changes.

use std::time::{Duration, Instant};

/// Entry point handed to every bench function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            _criterion: self,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark("", id, 10, Duration::from_secs(1), f);
        self
    }
}

/// A group of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the wall-clock time spent measuring each benchmark.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(&self.name, id, self.sample_size, self.measurement_time, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    group: &str,
    id: &str,
    sample_size: usize,
    measurement_time: Duration,
    mut f: F,
) {
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
    };
    let deadline = Instant::now() + measurement_time;
    for _ in 0..sample_size {
        f(&mut bencher);
        if Instant::now() >= deadline {
            break;
        }
    }
    let total: Duration = bencher.samples.iter().sum();
    let count = bencher.samples.len().max(1);
    println!(
        "bench: {label:<56} {:>12.3?} /iter ({count} samples)",
        total / count as u32
    );
}

/// Times individual iterations of the benchmarked routine.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one call of `routine` (one sample per `iter` call).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        let output = routine();
        self.samples.push(start.elapsed());
        std::hint::black_box(output);
    }
}

/// Re-export mirroring `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Harness flags (e.g. `--bench`, filters) configure the real
            // criterion; this substitute accepts and ignores them.
            $($group();)+
        }
    };
}
