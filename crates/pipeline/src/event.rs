//! Per-cycle activity descriptors recorded by the pipeline simulator.
//!
//! These descriptors are the interface between the micro-architectural
//! simulation and the timing model: they carry exactly the information the
//! paper's gate-level simulation exposes to its dynamic timing analysis —
//! which instruction is in flight in which stage and which data-dependent
//! conditions (operand values, carry chains, multiplier activity, memory
//! requests, forwarding) it excites.

use crate::Stage;
use idca_isa::{Insn, TimingClass};
use serde::{Deserialize, Serialize};

/// Why a stage holds no instruction in a given cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BubbleKind {
    /// Pipeline not yet filled after reset.
    Reset,
    /// Bubble inserted by a hazard-induced stall.
    Stall,
    /// Instruction squashed by a control-flow redirect.
    Flush,
    /// Pipeline draining after the exit marker.
    Drain,
    /// Fetch slot killed by the modeled exception-entry flush: the cycles
    /// between an interrupt being accepted and the first handler fetch.
    IrqEntry,
}

/// Which part of an interrupt episode a cycle belongs to.
///
/// `Entry` covers the accept cycle and the modeled entry-flush penalty
/// cycles; `Handler` covers every subsequent cycle up to and including the
/// cycle in which `l.rfe` resolves. The same classification is recomputed
/// from the digest event stream during replay
/// (`idca-timing`'s `IrqTimeline`), and the differential tests pin the two
/// derivations bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum IrqPhase {
    /// Ordinary user-code cycle.
    #[default]
    None,
    /// Exception-entry flush in progress (accept cycle + penalty cycles).
    Entry,
    /// Handler code in flight (after entry, through the `l.rfe` redirect).
    Handler,
}

/// One entry of the digest's asynchronous-event stream (codec v3).
///
/// Events carry everything replay needs to reconstruct interrupt phases and
/// peripheral activity without re-simulating: entries/returns rebuild the
/// [`IrqPhase`] timeline, timer fires and MMIO touches pin peripheral
/// traffic. Events are recorded in cycle order; within a cycle the order is
/// timer fire → MMIO touches → interrupt return → interrupt entry (the
/// pipeline's stage-evaluation order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DigestEvent {
    /// Cycle index the event occurred in.
    pub cycle: u64,
    /// What happened.
    pub kind: DigestEventKind,
}

/// The kind of an asynchronous [`DigestEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DigestEventKind {
    /// An interrupt was accepted and exception entry began.
    IrqEntry {
        /// Interrupt line that was taken (lowest pending unmasked line).
        line: u8,
    },
    /// `l.rfe` resolved and the handler returned to the saved PC.
    IrqReturn,
    /// The cycle-driven timer wrapped and raised its interrupt line.
    TimerFire,
    /// A load hit the MMIO window.
    MmioLoad {
        /// Register byte address that was read.
        address: u32,
    },
    /// A store hit the MMIO window.
    MmioStore {
        /// Register byte address that was written.
        address: u32,
    },
}

/// The content of one pipeline stage during one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Occupant {
    /// A real instruction is in flight.
    Insn {
        /// Byte address of the instruction.
        pc: u32,
        /// The instruction itself.
        insn: Insn,
        /// Dynamic sequence number (retirement order).
        seq: u64,
    },
    /// No instruction (bubble).
    Bubble(BubbleKind),
}

impl Occupant {
    /// The timing class of the occupant ([`TimingClass::Bubble`] for bubbles).
    #[must_use]
    pub fn timing_class(&self) -> TimingClass {
        match self {
            Occupant::Insn { insn, .. } => insn.timing_class(),
            Occupant::Bubble(_) => TimingClass::Bubble,
        }
    }

    /// The instruction, if the stage holds one.
    #[must_use]
    pub fn insn(&self) -> Option<&Insn> {
        match self {
            Occupant::Insn { insn, .. } => Some(insn),
            Occupant::Bubble(_) => None,
        }
    }

    /// `true` when the stage holds a real instruction.
    #[must_use]
    pub fn is_insn(&self) -> bool {
        matches!(self, Occupant::Insn { .. })
    }
}

/// Where a forwarded operand came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ForwardSource {
    /// Result forwarded from the instruction currently in the control stage.
    Control,
    /// Result forwarded from the instruction currently in writeback.
    Writeback,
}

/// A data-memory request issued by the execute stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemRequest {
    /// Byte address of the access.
    pub address: u32,
    /// Access width in bytes (1, 2 or 4).
    pub width: u32,
    /// `true` for stores, `false` for loads.
    pub is_store: bool,
    /// The value written (stores) or returned (loads).
    pub value: u32,
}

/// Control-flow activity of the instruction in the execute or decode stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchActivity {
    /// `true` if the branch/jump redirected the fetch address.
    pub taken: bool,
    /// Target byte address when taken.
    pub target: u32,
    /// Stage in which the control transfer was resolved
    /// (`Decode` for immediate jumps/branches, `Execute` for register jumps).
    pub resolved_in: Stage,
}

/// Detailed activity of the instruction occupying the execute stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecActivity {
    /// Byte address of the executing instruction.
    pub pc: u32,
    /// The executing instruction.
    pub insn: Insn,
    /// Resolved first operand (after forwarding).
    pub op_a: u32,
    /// Resolved second operand (after forwarding / immediate selection).
    pub op_b: u32,
    /// Primary result produced in the execute stage.
    pub result: u32,
    /// Length of the longest carry-propagation run in the main adder
    /// (0 when the adder is idle). Drives the data-dependent delay of
    /// add/sub/compare/memory-address paths.
    pub carry_chain: u8,
    /// `true` when the shielded multiplier is active this cycle.
    pub mul_active: bool,
    /// Significant operand width seen by the multiplier (max of both
    /// operands, in bits); 0 when the multiplier is idle.
    pub mul_bits: u8,
    /// Shift amount applied by the barrel shifter (0 when idle).
    pub shift_amount: u8,
    /// Forwarding source used for operand A, if any.
    pub forward_a: Option<ForwardSource>,
    /// Forwarding source used for operand B, if any.
    pub forward_b: Option<ForwardSource>,
    /// New flag value if the instruction writes the compare flag.
    pub flag_written: Option<bool>,
    /// Control-flow activity, if the instruction is a branch or jump.
    pub branch: Option<BranchActivity>,
    /// Data-memory request issued this cycle, if any.
    pub mem_request: Option<MemRequest>,
}

/// Activity of the writeback stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WbActivity {
    /// Destination register being written.
    pub rd: idca_isa::Reg,
    /// Value written to the register file.
    pub value: u32,
}

/// Everything the simulator observed during one clock cycle.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleRecord {
    /// Cycle index, starting at 0.
    pub cycle: u64,
    /// Stage occupancy in pipeline order (`[Stage::Address]` ... `[Stage::Writeback]`).
    pub stages: [Occupant; Stage::COUNT],
    /// Execute-stage activity (present when the execute stage holds an
    /// instruction).
    pub exec: Option<ExecActivity>,
    /// Load data returned by the control stage this cycle, if any.
    pub mem_return: Option<u32>,
    /// Writeback activity, if a register is written this cycle.
    pub writeback: Option<WbActivity>,
    /// Instruction-memory address presented by the address stage.
    pub fetch_address: u32,
    /// `true` when the fetch address was redirected by a branch or jump
    /// resolved during this cycle.
    pub fetch_redirected: bool,
    /// `true` when the pipeline was stalled this cycle (front stages held).
    pub stalled: bool,
    /// Interrupt phase of this cycle (ground truth for the replay-derived
    /// timeline; `IrqPhase::None` for interrupt-free runs).
    #[serde(default)]
    pub irq_phase: IrqPhase,
}

impl CycleRecord {
    /// The occupant of a given stage.
    #[must_use]
    pub fn occupant(&self, stage: Stage) -> &Occupant {
        &self.stages[stage.index()]
    }

    /// The timing class present in a given stage.
    #[must_use]
    pub fn timing_class(&self, stage: Stage) -> TimingClass {
        self.occupant(stage).timing_class()
    }
}

/// The boolean activity facts of one cycle, packed into a byte — everything
/// the occupancy/power statistics ([`crate::TraceStats`]) need beyond the
/// per-stage timing classes. Part of the timing digest
/// ([`crate::DigestCycle`]), so digest replay reproduces the same activity
/// accounting as the direct simulation pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CycleRecordFlags(u8);

impl CycleRecordFlags {
    /// The execute stage holds a real instruction.
    pub const EXECUTE_INSN: u8 = 1 << 0;
    /// A data-memory request was issued this cycle.
    pub const MEM_ACCESS: u8 = 1 << 1;
    /// The shielded multiplier was active this cycle.
    pub const MUL_ACTIVE: u8 = 1 << 2;
    /// A branch/jump resolved this cycle.
    pub const BRANCH: u8 = 1 << 3;
    /// The resolved branch/jump was taken.
    pub const BRANCH_TAKEN: u8 = 1 << 4;
    /// At least one execute operand was forwarded.
    pub const FORWARDED: u8 = 1 << 5;
    /// The pipeline was stalled this cycle.
    pub const STALLED: u8 = 1 << 6;

    /// Extracts the flags of one cycle record.
    #[must_use]
    pub fn of_record(record: &CycleRecord) -> CycleRecordFlags {
        let mut bits = 0u8;
        if record.occupant(Stage::Execute).is_insn() {
            bits |= Self::EXECUTE_INSN;
        }
        if let Some(exec) = &record.exec {
            if exec.mem_request.is_some() {
                bits |= Self::MEM_ACCESS;
            }
            if exec.mul_active {
                bits |= Self::MUL_ACTIVE;
            }
            if let Some(branch) = &exec.branch {
                bits |= Self::BRANCH;
                if branch.taken {
                    bits |= Self::BRANCH_TAKEN;
                }
            }
            if exec.forward_a.is_some() || exec.forward_b.is_some() {
                bits |= Self::FORWARDED;
            }
        }
        if record.stalled {
            bits |= Self::STALLED;
        }
        CycleRecordFlags(bits)
    }

    /// The raw bit pattern.
    #[must_use]
    pub fn bits(self) -> u8 {
        self.0
    }

    /// Reconstructs flags from a raw bit pattern (digest deserialization).
    /// Bits outside the defined flag set are rejected so a corrupt byte
    /// cannot smuggle undefined activity into the power accounting.
    #[must_use]
    pub fn from_bits(bits: u8) -> Option<CycleRecordFlags> {
        const ALL: u8 = CycleRecordFlags::EXECUTE_INSN
            | CycleRecordFlags::MEM_ACCESS
            | CycleRecordFlags::MUL_ACTIVE
            | CycleRecordFlags::BRANCH
            | CycleRecordFlags::BRANCH_TAKEN
            | CycleRecordFlags::FORWARDED
            | CycleRecordFlags::STALLED;
        (bits & !ALL == 0).then_some(CycleRecordFlags(bits))
    }

    /// Tests one of the flag constants.
    #[must_use]
    pub fn contains(self, flag: u8) -> bool {
        self.0 & flag != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idca_isa::Reg;

    #[test]
    fn occupant_timing_class_for_bubble_and_insn() {
        let bubble = Occupant::Bubble(BubbleKind::Stall);
        assert_eq!(bubble.timing_class(), TimingClass::Bubble);
        assert!(!bubble.is_insn());
        let insn = Occupant::Insn {
            pc: 0,
            insn: Insn::add(Reg::r(1), Reg::r(2), Reg::r(3)),
            seq: 0,
        };
        assert_eq!(insn.timing_class(), TimingClass::Add);
        assert!(insn.is_insn());
    }

    #[test]
    fn cycle_record_stage_lookup() {
        let record = CycleRecord {
            cycle: 7,
            stages: [Occupant::Bubble(BubbleKind::Reset); Stage::COUNT],
            exec: None,
            mem_return: None,
            writeback: None,
            fetch_address: 0x40,
            fetch_redirected: false,
            stalled: false,
            irq_phase: IrqPhase::None,
        };
        assert_eq!(record.timing_class(Stage::Execute), TimingClass::Bubble);
        assert_eq!(
            record.occupant(Stage::Address).timing_class(),
            TimingClass::Bubble
        );
    }
}
