use std::fmt;

/// Errors reported by the pipeline simulator and the reference interpreter.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PipelineError {
    /// The program counter left the program image.
    PcOutOfRange {
        /// The offending program counter value (byte address).
        pc: u32,
    },
    /// A data memory access touched an address outside the configured SRAM.
    DataAccessOutOfRange {
        /// The offending byte address.
        address: u32,
        /// Size of the data memory in bytes.
        size: u32,
    },
    /// A load/store address was not aligned to the access width.
    UnalignedAccess {
        /// The offending byte address.
        address: u32,
        /// The access width in bytes.
        width: u32,
    },
    /// The simulation exceeded the configured cycle budget without reaching
    /// the exit marker (`l.nop 1`).
    CycleLimitExceeded {
        /// The configured limit.
        limit: u64,
    },
    /// The program image does not fit the configured instruction memory.
    ProgramTooLarge {
        /// Number of instructions in the program.
        words: usize,
        /// Instruction memory capacity in words.
        capacity: usize,
    },
    /// A store targeted a read-only MMIO register (timer state, pending
    /// lines). Reported as a structured error, never a panic.
    MmioReadOnly {
        /// Byte address of the read-only register.
        address: u32,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::PcOutOfRange { pc } => {
                write!(f, "program counter {pc:#010x} is outside the program image")
            }
            PipelineError::DataAccessOutOfRange { address, size } => write!(
                f,
                "data access at {address:#010x} is outside the {size}-byte data memory"
            ),
            PipelineError::UnalignedAccess { address, width } => {
                write!(f, "unaligned {width}-byte access at {address:#010x}")
            }
            PipelineError::CycleLimitExceeded { limit } => {
                write!(f, "cycle limit of {limit} cycles exceeded before program exit")
            }
            PipelineError::ProgramTooLarge { words, capacity } => write!(
                f,
                "program of {words} instructions exceeds instruction memory capacity of {capacity} words"
            ),
            PipelineError::MmioReadOnly { address } => {
                write!(f, "store to read-only MMIO register at {address:#010x}")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_send_sync_and_display() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PipelineError>();
        let e = PipelineError::CycleLimitExceeded { limit: 10 };
        assert!(e.to_string().contains("10"));
    }
}
