use crate::PipelineError;
use serde::{Deserialize, Serialize};

/// A tightly-coupled, byte-addressable data SRAM with single-cycle access.
///
/// The modelled core uses separate instruction and data memories (Harvard
/// organisation with fast SRAM macros, §III-A of the paper); this type is
/// the data side. Loads and stores are big-endian, matching the OpenRISC
/// architecture.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Memory {
    bytes: Vec<u8>,
}

impl Memory {
    /// Creates a zero-initialized memory of `size` bytes.
    #[must_use]
    pub fn new(size: usize) -> Self {
        Memory {
            bytes: vec![0; size],
        }
    }

    /// Size of the memory in bytes.
    #[must_use]
    pub fn size(&self) -> u32 {
        self.bytes.len() as u32
    }

    /// Clears the memory back to all-zeroes, resizing to `size` bytes if the
    /// current capacity differs. Lets a long-running worker reuse one
    /// allocation across many simulations instead of constructing a fresh
    /// image per run.
    pub fn reset(&mut self, size: usize) {
        if self.bytes.len() == size {
            self.bytes.fill(0);
        } else {
            self.bytes.clear();
            self.bytes.resize(size, 0);
        }
    }

    fn check(&self, address: u32, width: u32) -> Result<usize, PipelineError> {
        if !address.is_multiple_of(width) {
            return Err(PipelineError::UnalignedAccess { address, width });
        }
        let end = address as u64 + u64::from(width);
        if end > self.bytes.len() as u64 {
            return Err(PipelineError::DataAccessOutOfRange {
                address,
                size: self.size(),
            });
        }
        Ok(address as usize)
    }

    /// Loads a 32-bit word (big-endian).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::UnalignedAccess`] or
    /// [`PipelineError::DataAccessOutOfRange`].
    pub fn load_word(&self, address: u32) -> Result<u32, PipelineError> {
        let i = self.check(address, 4)?;
        Ok(u32::from_be_bytes([
            self.bytes[i],
            self.bytes[i + 1],
            self.bytes[i + 2],
            self.bytes[i + 3],
        ]))
    }

    /// Loads a 16-bit half-word (big-endian, zero-extended).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::UnalignedAccess`] or
    /// [`PipelineError::DataAccessOutOfRange`].
    pub fn load_half(&self, address: u32) -> Result<u16, PipelineError> {
        let i = self.check(address, 2)?;
        Ok(u16::from_be_bytes([self.bytes[i], self.bytes[i + 1]]))
    }

    /// Loads a byte.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::DataAccessOutOfRange`] when out of bounds.
    pub fn load_byte(&self, address: u32) -> Result<u8, PipelineError> {
        let i = self.check(address, 1)?;
        Ok(self.bytes[i])
    }

    /// Stores a 32-bit word (big-endian).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::UnalignedAccess`] or
    /// [`PipelineError::DataAccessOutOfRange`].
    pub fn store_word(&mut self, address: u32, value: u32) -> Result<(), PipelineError> {
        let i = self.check(address, 4)?;
        self.bytes[i..i + 4].copy_from_slice(&value.to_be_bytes());
        Ok(())
    }

    /// Stores a 16-bit half-word (big-endian).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::UnalignedAccess`] or
    /// [`PipelineError::DataAccessOutOfRange`].
    pub fn store_half(&mut self, address: u32, value: u16) -> Result<(), PipelineError> {
        let i = self.check(address, 2)?;
        self.bytes[i..i + 2].copy_from_slice(&value.to_be_bytes());
        Ok(())
    }

    /// Stores a byte.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::DataAccessOutOfRange`] when out of bounds.
    pub fn store_byte(&mut self, address: u32, value: u8) -> Result<(), PipelineError> {
        let i = self.check(address, 1)?;
        self.bytes[i] = value;
        Ok(())
    }

    /// Initializes memory from `(byte_address, word)` pairs, as produced by
    /// [`idca_isa::Program::data`].
    ///
    /// # Errors
    ///
    /// Propagates the first store error encountered.
    pub fn load_image(&mut self, words: &[(u32, u32)]) -> Result<(), PipelineError> {
        for &(address, value) in words {
            self.store_word(address, value)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_roundtrip_is_big_endian() {
        let mut mem = Memory::new(64);
        mem.store_word(8, 0x1122_3344).unwrap();
        assert_eq!(mem.load_word(8).unwrap(), 0x1122_3344);
        assert_eq!(mem.load_byte(8).unwrap(), 0x11);
        assert_eq!(mem.load_byte(11).unwrap(), 0x44);
        assert_eq!(mem.load_half(10).unwrap(), 0x3344);
    }

    #[test]
    fn alignment_is_enforced() {
        let mut mem = Memory::new(64);
        assert!(matches!(
            mem.store_word(2, 0),
            Err(PipelineError::UnalignedAccess { .. })
        ));
        assert!(matches!(
            mem.load_half(1),
            Err(PipelineError::UnalignedAccess { .. })
        ));
    }

    #[test]
    fn bounds_are_enforced() {
        let mem = Memory::new(16);
        assert!(matches!(
            mem.load_word(16),
            Err(PipelineError::DataAccessOutOfRange { .. })
        ));
        assert!(mem.load_word(12).is_ok());
    }

    #[test]
    fn image_loading_places_words() {
        let mut mem = Memory::new(64);
        mem.load_image(&[(0, 1), (4, 2), (8, 0xFFFF_FFFF)]).unwrap();
        assert_eq!(mem.load_word(4).unwrap(), 2);
        assert_eq!(mem.load_word(8).unwrap(), 0xFFFF_FFFF);
    }
}
