use crate::{CycleObserver, CycleRecord, Occupant, RunSummary, Stage};
use idca_isa::TimingClass;
use serde::{Deserialize, Serialize};

/// The full per-cycle record of one program execution on the pipeline.
///
/// A `PipelineTrace` is the software equivalent of the paper's gate-level
/// simulation dump: it contains, for every clock cycle, the instruction in
/// flight in every stage plus the activity descriptors needed to derive
/// dynamic path delays.
///
/// Materialization is deliberately *opt-in*: the trace is itself a
/// [`CycleObserver`], so callers that need the full record sequence (tests,
/// serialization, file-based replay) pass an empty trace to
/// [`crate::Simulator::run_observed`], while the hot analysis path composes
/// streaming observers instead and never allocates per-cycle storage.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PipelineTrace {
    cycles: Vec<CycleRecord>,
    retired: u64,
}

impl PipelineTrace {
    /// Creates a trace from raw parts (used by the simulator).
    #[must_use]
    pub fn from_parts(cycles: Vec<CycleRecord>, retired: u64) -> Self {
        PipelineTrace { cycles, retired }
    }

    /// Number of simulated cycles.
    #[must_use]
    pub fn cycle_count(&self) -> u64 {
        self.cycles.len() as u64
    }

    /// Number of architecturally retired instructions.
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Retired instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles.is_empty() {
            0.0
        } else {
            self.retired as f64 / self.cycles.len() as f64
        }
    }

    /// The per-cycle records in execution order.
    #[must_use]
    pub fn cycles(&self) -> &[CycleRecord] {
        &self.cycles
    }

    /// Iterates over the per-cycle records.
    pub fn iter(&self) -> std::slice::Iter<'_, CycleRecord> {
        self.cycles.iter()
    }

    /// Aggregates occupancy statistics over the whole trace.
    #[must_use]
    pub fn stats(&self) -> TraceStats {
        let mut stats = TraceStats::default();
        for record in &self.cycles {
            stats.observe(record);
        }
        stats.retired = self.retired;
        stats
    }
}

impl CycleObserver for PipelineTrace {
    fn observe_cycle(&mut self, record: &CycleRecord) {
        self.cycles.push(record.clone());
    }

    fn finish(&mut self, summary: &RunSummary) {
        self.retired = summary.retired;
    }
}

impl<'a> IntoIterator for &'a PipelineTrace {
    type Item = &'a CycleRecord;
    type IntoIter = std::slice::Iter<'a, CycleRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.cycles.iter()
    }
}

/// Aggregate statistics of a [`PipelineTrace`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Architecturally retired instructions.
    pub retired: u64,
    /// Cycles in which the execute stage held each timing class
    /// (indexed by [`TimingClass::index`]).
    pub execute_class_counts: [u64; TimingClass::COUNT],
    /// Cycles in which the execute stage held a bubble.
    pub execute_bubbles: u64,
    /// Data-memory accesses issued.
    pub memory_accesses: u64,
    /// Branch/jump instructions executed.
    pub branches: u64,
    /// Taken branches/jumps.
    pub taken_branches: u64,
    /// Multiplications executed.
    pub multiplications: u64,
    /// Cycles in which at least one operand was forwarded.
    pub forwarded_cycles: u64,
    /// Cycles lost to stalls.
    pub stall_cycles: u64,
}

impl TraceStats {
    /// Accumulates one cycle record into the statistics. This is the single
    /// counting rule shared by [`PipelineTrace::stats`] and by streaming
    /// consumers that use `TraceStats` as a [`CycleObserver`], so the two
    /// paths cannot drift apart.
    pub fn observe(&mut self, record: &CycleRecord) {
        self.cycles += 1;
        let occupant = record.occupant(Stage::Execute);
        self.execute_class_counts[occupant.timing_class().index()] += 1;
        if !occupant.is_insn() {
            self.execute_bubbles += 1;
        }
        if let Some(exec) = &record.exec {
            if exec.mem_request.is_some() {
                self.memory_accesses += 1;
            }
            if let Some(branch) = &exec.branch {
                self.branches += 1;
                if branch.taken {
                    self.taken_branches += 1;
                }
            }
            if exec.mul_active {
                self.multiplications += 1;
            }
            if exec.forward_a.is_some() || exec.forward_b.is_some() {
                self.forwarded_cycles += 1;
            }
        }
        if record.stalled {
            self.stall_cycles += 1;
        }
    }

    /// Accumulates one digest cycle into the statistics — the digest-replay
    /// counterpart of [`TraceStats::observe`]. Both paths count from the
    /// same facts (the digest's classes and activity flags are extracted
    /// from the records this method's sibling consumes), so a replayed
    /// digest yields the identical statistics.
    pub fn observe_digest(&mut self, digest_cycle: &crate::DigestCycle) {
        use crate::CycleRecordFlags as F;
        self.cycles += 1;
        let class = digest_cycle.classes[Stage::Execute.index()];
        self.execute_class_counts[class.index()] += 1;
        let flags = digest_cycle.flags;
        if !flags.contains(F::EXECUTE_INSN) {
            self.execute_bubbles += 1;
        }
        if flags.contains(F::MEM_ACCESS) {
            self.memory_accesses += 1;
        }
        if flags.contains(F::BRANCH) {
            self.branches += 1;
            if flags.contains(F::BRANCH_TAKEN) {
                self.taken_branches += 1;
            }
        }
        if flags.contains(F::MUL_ACTIVE) {
            self.multiplications += 1;
        }
        if flags.contains(F::FORWARDED) {
            self.forwarded_cycles += 1;
        }
        if flags.contains(F::STALLED) {
            self.stall_cycles += 1;
        }
    }

    /// Number of execute-stage cycles occupied by a given timing class.
    #[must_use]
    pub fn class_count(&self, class: TimingClass) -> u64 {
        self.execute_class_counts[class.index()]
    }

    /// Fraction of cycles whose execute stage held a real instruction.
    #[must_use]
    pub fn execute_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            1.0 - self.execute_bubbles as f64 / self.cycles as f64
        }
    }
}

impl CycleObserver for TraceStats {
    fn observe_cycle(&mut self, record: &CycleRecord) {
        self.observe(record);
    }

    fn finish(&mut self, summary: &RunSummary) {
        self.retired = summary.retired;
    }
}

/// Convenience helper for tests and reports: the timing class present in a
/// given stage at a given cycle, or `Bubble` when the index is out of range.
#[must_use]
pub fn class_at(trace: &PipelineTrace, cycle: usize, stage: Stage) -> TimingClass {
    trace
        .cycles()
        .get(cycle)
        .map_or(TimingClass::Bubble, |c| c.timing_class(stage))
}

/// Returns the occupant of a stage at a given cycle (test helper).
#[must_use]
pub fn occupant_at(trace: &PipelineTrace, cycle: usize, stage: Stage) -> Option<Occupant> {
    trace.cycles().get(cycle).map(|c| *c.occupant(stage))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BubbleKind;

    fn empty_record(cycle: u64) -> CycleRecord {
        CycleRecord {
            cycle,
            stages: [Occupant::Bubble(BubbleKind::Reset); Stage::COUNT],
            exec: None,
            mem_return: None,
            writeback: None,
            fetch_address: 0,
            fetch_redirected: false,
            stalled: false,
            irq_phase: crate::IrqPhase::None,
        }
    }

    #[test]
    fn empty_trace_has_zero_ipc() {
        let trace = PipelineTrace::from_parts(vec![], 0);
        assert_eq!(trace.ipc(), 0.0);
        assert_eq!(trace.cycle_count(), 0);
    }

    #[test]
    fn stats_count_bubbles() {
        let trace = PipelineTrace::from_parts(vec![empty_record(0), empty_record(1)], 0);
        let stats = trace.stats();
        assert_eq!(stats.cycles, 2);
        assert_eq!(stats.execute_bubbles, 2);
        assert_eq!(stats.class_count(TimingClass::Bubble), 2);
        assert_eq!(stats.execute_occupancy(), 0.0);
    }
}
