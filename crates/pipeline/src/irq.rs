//! Asynchronous-event layer: interrupt-storm scenarios, the
//! cycle-deterministic interrupt controller, the cycle-driven timer
//! peripheral and the memory-mapped register window that exposes both.
//!
//! The steady-state sweep only ever executes straight-line user code; this
//! module adds the workload class it cannot see — exception entry flushes
//! landing mid-learning, handler code displacing the user instruction mix,
//! peripheral traffic on the memory port — while preserving the
//! repository's bit-identity contract:
//!
//! * Every interrupt raise is a pure function of `(interrupt seed, cycle)`
//!   (storm line) or of the cycle index alone (timer line), sampled with
//!   the same split-mix hash family as the timing model's dithers. There
//!   is no RNG state, so the reference loop, the predecoded/burst engine
//!   and the digest-replay path all reconstruct the **identical** schedule.
//! * Unlike fault factors (which leave the digest untouched), interrupts
//!   change the executed cycle stream itself — so a digest captured under
//!   an [`InterruptSpec`] is *scenario-variant* and carries the spec's
//!   [`InterruptSpec::fingerprint`] in its cache identity. The digest's
//!   event stream (codec v3) records entries, returns, timer fires and
//!   MMIO touches so replay recomputes per-cycle interrupt phases without
//!   re-simulating.
//!
//! The intended call pattern: parse an [`InterruptSpec`] once (`repro
//! sweep --interrupts SPEC`), call [`InterruptPlan::attach`] to append the
//! acknowledge-and-return handler to the program image and resolve the
//! vector, hand the plan to [`crate::Simulator::with_interrupts`], and let
//! the simulator drive one [`InterruptController`] per run.

use crate::{DigestEvent, DigestEventKind, PipelineError};
use idca_isa::{Insn, Program, ProgramBuilder, Reg};

/// Base byte address of the MMIO register window. Lies far above any
/// configurable data-memory size, so plain SRAM traffic can never alias a
/// peripheral register.
pub const MMIO_BASE: u32 = 0xFFFF_0000;
/// Length of the MMIO window in bytes (five word registers).
pub const MMIO_LEN: u32 = 20;
/// Current timer count (read-only).
pub const MMIO_TIMER_COUNT: u32 = MMIO_BASE;
/// Configured timer period in cycles (read-only; 0 = timer disabled).
pub const MMIO_TIMER_PERIOD: u32 = MMIO_BASE + 4;
/// Pending interrupt lines, one bit per line (read-only).
pub const MMIO_IRQ_PENDING: u32 = MMIO_BASE + 8;
/// Acknowledge register: storing value `v` clears the pending bits in `v`
/// (write-only; loads return 0).
pub const MMIO_IRQ_ACK: u32 = MMIO_BASE + 12;
/// Interrupt mask, one bit per line; set bits disable acceptance (read/write).
pub const MMIO_IRQ_MASK: u32 = MMIO_BASE + 16;

/// Interrupt line raised by the seeded storm schedule.
pub const LINE_STORM: u32 = 0;
/// Interrupt line raised by the cycle-driven timer.
pub const LINE_TIMER: u32 = 1;

/// `true` when a *word* access at `address` targets an MMIO register.
/// Sub-word and unaligned accesses inside the window deliberately fall
/// through to [`crate::Memory`], whose bounds/alignment checks turn them
/// into structured errors.
#[must_use]
pub fn is_mmio(address: u32) -> bool {
    address.is_multiple_of(4) && (MMIO_BASE..MMIO_BASE + MMIO_LEN).contains(&address)
}

/// Salt distinguishing the storm-raise hash from every other consumer of
/// the split-mix family.
const STORM_SALT: u64 = 0x1247_5101;

// The split-mix hash family shared (by construction, not by dependency —
// `idca-pipeline` sits below `idca-timing`) with the timing model's
// per-stage dithers and the PVT corner sampler.
const HASH_SALT_A: u64 = 0x9E37_79B9_7F4A_7C15;
const HASH_SALT_B: u64 = 0xBF58_476D_1CE4_E5B9;
const HASH_SALT_C: u64 = 0x94D0_49BB_1331_11EB;

/// Deterministic pseudo-random value in `[0, 1)` — the storm schedule is a
/// pure function of `(seed, cycle)`, so every engine recomputes it
/// identically with no RNG state to thread.
fn hash01(a: u64, b: u64, c: u64) -> f64 {
    let mut x = a
        .wrapping_mul(HASH_SALT_A)
        .wrapping_add(b.wrapping_mul(HASH_SALT_B))
        .wrapping_add(c.wrapping_mul(HASH_SALT_C));
    x ^= x >> 30;
    x = x.wrapping_mul(HASH_SALT_B);
    x ^= x >> 27;
    x = x.wrapping_mul(HASH_SALT_C);
    x ^= x >> 31;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// A parsed, validated interrupt scenario.
///
/// The spec is plain data: two runs with equal specs raise, enter and
/// return identically, and the spec's [`InterruptSpec::fingerprint`] ships
/// inside sweep reports and digest-cache identities so mixed-scenario
/// merges are rejected bit-exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterruptSpec {
    /// Seed of the storm schedule. Independent of the sweep's master seed:
    /// the same workloads can be re-swept under a different storm draw.
    pub seed: u64,
    /// Per-cycle probability that the storm line raises (`0.0` disables
    /// the storm).
    pub rate: f64,
    /// Timer period in cycles; the timer line raises every `timer` cycles
    /// (`0` disables the timer).
    pub timer: u32,
    /// Handler vector byte address; `0` (the default) resolves to the
    /// acknowledge-and-return handler [`InterruptPlan::attach`] appends at
    /// the program's end address.
    pub vector: u32,
    /// Exception-entry flush penalty in cycles (the accept cycle plus
    /// `penalty - 1` further fetch-dead cycles). At least 1.
    pub penalty: u32,
    /// Extra fractional delay excitation during entry-flush cycles — the
    /// modeled di/dt droop of redirect-and-flush activity. Consumed by the
    /// timing layer (`idca-timing`), which composes it multiplicatively
    /// with any fault factors; the pipeline only transports it.
    pub surge: f64,
}

impl Default for InterruptSpec {
    fn default() -> Self {
        InterruptSpec {
            seed: 1,
            rate: 0.0,
            timer: 0,
            vector: 0,
            penalty: 4,
            surge: 0.25,
        }
    }
}

impl InterruptSpec {
    /// Parses a `key=value,key=value` interrupt spec, e.g.
    /// `seed=7,rate=0.002,timer=150,penalty=6,surge=0.3`.
    ///
    /// Accepted keys: `seed`, `rate`, `timer`, `vector`, `penalty`,
    /// `surge`; unspecified keys keep the [`InterruptSpec::default`]
    /// values. `rate` must lie in `[0, 1]`, `surge` in `[0, 4]`, `penalty`
    /// in `[1, 1024]`, and `vector` must be word-aligned.
    ///
    /// # Errors
    ///
    /// Returns an [`InterruptSpecError`] naming the first malformed pair,
    /// unknown key or out-of-range value.
    pub fn parse(spec: &str) -> Result<InterruptSpec, InterruptSpecError> {
        let mut parsed = InterruptSpec::default();
        for pair in spec.split(',') {
            let pair = pair.trim();
            if pair.is_empty() {
                continue;
            }
            let Some((key, value)) = pair.split_once('=') else {
                return Err(InterruptSpecError::MalformedPair(pair.to_string()));
            };
            let bad = |key: &'static str| InterruptSpecError::BadValue {
                key,
                value: value.to_string(),
            };
            match key {
                "seed" => parsed.seed = value.parse().map_err(|_| bad("seed"))?,
                "rate" => {
                    parsed.rate = value
                        .parse::<f64>()
                        .ok()
                        .filter(|v| v.is_finite() && (0.0..=1.0).contains(v))
                        .ok_or_else(|| bad("rate"))?;
                }
                "timer" => parsed.timer = value.parse().map_err(|_| bad("timer"))?,
                "vector" => {
                    parsed.vector = value
                        .parse::<u32>()
                        .ok()
                        .filter(|v| v.is_multiple_of(4))
                        .ok_or_else(|| bad("vector"))?;
                }
                "penalty" => {
                    parsed.penalty = value
                        .parse::<u32>()
                        .ok()
                        .filter(|p| (1..=1024).contains(p))
                        .ok_or_else(|| bad("penalty"))?;
                }
                "surge" => {
                    parsed.surge = value
                        .parse::<f64>()
                        .ok()
                        .filter(|v| v.is_finite() && (0.0..=4.0).contains(v))
                        .ok_or_else(|| bad("surge"))?;
                }
                other => return Err(InterruptSpecError::UnknownKey(other.to_string())),
            }
        }
        Ok(parsed)
    }

    /// Canonical one-line rendering of the spec (stable across runs, used
    /// in sweep-report headers). Parsing the result reproduces the spec.
    #[must_use]
    pub fn describe(&self) -> String {
        format!(
            "seed={},rate={},timer={},vector={},penalty={},surge={}",
            self.seed, self.rate, self.timer, self.vector, self.penalty, self.surge
        )
    }

    /// 64-bit fingerprint over the exact field bits — the cache and merge
    /// identity of an interrupt scenario (two specs collide only if every
    /// field is bit-identical).
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        let mut fold = |word: u64| {
            hash ^= word;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        };
        fold(self.seed);
        fold(self.rate.to_bits());
        fold(u64::from(self.timer));
        fold(u64::from(self.vector));
        fold(u64::from(self.penalty));
        fold(self.surge.to_bits());
        hash
    }

    /// Whether the scenario can raise an interrupt at all.
    #[must_use]
    pub fn active(&self) -> bool {
        self.rate > 0.0 || self.timer > 0
    }
}

/// Errors of [`InterruptSpec::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum InterruptSpecError {
    /// A comma-separated element is not a `key=value` pair.
    MalformedPair(
        /// The offending element.
        String,
    ),
    /// The key is not a recognized interrupt parameter.
    UnknownKey(
        /// The offending key.
        String,
    ),
    /// The value does not parse, or falls outside the key's valid range.
    BadValue {
        /// The key whose value was rejected.
        key: &'static str,
        /// The offending value.
        value: String,
    },
}

impl std::fmt::Display for InterruptSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterruptSpecError::MalformedPair(pair) => {
                write!(f, "interrupt spec element `{pair}` is not a key=value pair")
            }
            InterruptSpecError::UnknownKey(key) => write!(
                f,
                "unknown interrupt key `{key}` (keys: seed, rate, timer, vector, penalty, surge)"
            ),
            InterruptSpecError::BadValue { key, value } => {
                write!(f, "interrupt key `{key}` has invalid value `{value}`")
            }
        }
    }
}

impl std::error::Error for InterruptSpecError {}

/// The resolved interrupt scenario of one program: the spec plus the
/// handler vector, produced together with the handler-augmented program
/// image by [`InterruptPlan::attach`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterruptPlan {
    spec: InterruptSpec,
    vector: u32,
}

impl InterruptPlan {
    /// Appends the canonical acknowledge-and-return handler to `program`
    /// and resolves the vector.
    ///
    /// The handler reads the pending lines, acknowledges exactly what it
    /// read, and returns (clobbering `r30`/`r31` as dedicated scratch):
    ///
    /// ```text
    /// l.movhi r31, 0xffff      # r31 = MMIO window base
    /// l.lwz   r30, 8(r31)      # read IRQ_PENDING
    /// l.sw    12(r31), r30     # acknowledge those lines
    /// l.rfe                    # return to the saved PC
    /// l.nop   0                # delay slot
    /// ```
    ///
    /// The handler must be part of the image *before* predecode lowering
    /// so the micro-op table, runway hints and fetch index cover it — which
    /// is why this augmentation runs at plan-construction time, not inside
    /// the simulator. `spec.vector == 0` resolves to the appended handler's
    /// address; a nonzero vector is honored verbatim (the handler is still
    /// appended, and pointing the vector elsewhere is the caller's
    /// responsibility).
    #[must_use]
    pub fn attach(program: &Program, spec: &InterruptSpec) -> (Program, InterruptPlan) {
        let mut builder = ProgramBuilder::named(program.name());
        builder.set_base_address(program.base_address());
        builder.extend(program.insns().iter().copied());
        for (name, &address) in program.symbols() {
            builder.insert_symbol(name.clone(), address);
        }
        for &(address, value) in program.data() {
            builder.push_data_word(address, value);
        }
        let handler = builder.bind_label("__irq_handler");
        let _ = handler;
        let handler_address = builder.current_address();
        let scratch_base = Reg::r(31);
        let scratch_val = Reg::r(30);
        builder.push(Insn::movhi(scratch_base, MMIO_BASE >> 16).expect("16-bit immediate"));
        builder.push(
            Insn::lwz(
                scratch_val,
                (MMIO_IRQ_PENDING - MMIO_BASE) as i32,
                scratch_base,
            )
            .expect("small offset"),
        );
        builder.push(
            Insn::sw((MMIO_IRQ_ACK - MMIO_BASE) as i32, scratch_base, scratch_val)
                .expect("small offset"),
        );
        builder.push(Insn::rfe());
        builder.push(Insn::nop(0));
        let vector = if spec.vector == 0 {
            handler_address
        } else {
            spec.vector
        };
        (
            builder.build(),
            InterruptPlan {
                spec: *spec,
                vector,
            },
        )
    }

    /// The spec this plan was built from.
    #[must_use]
    pub fn spec(&self) -> &InterruptSpec {
        &self.spec
    }

    /// The resolved handler vector (byte address).
    #[must_use]
    pub fn vector(&self) -> u32 {
        self.vector
    }
}

/// The cycle-deterministic interrupt controller plus timer peripheral —
/// one per run, driven by the simulator.
///
/// All state transitions are pure functions of the cycle index and the MMIO
/// traffic the pipeline itself issues, so the reference loop and the
/// predecoded/burst engine march it through identical states.
#[derive(Debug, Clone)]
pub struct InterruptController {
    seed: u64,
    rate: f64,
    timer_period: u32,
    vector: u32,
    penalty: u32,
    pending: u32,
    mask: u32,
    in_handler: bool,
    epcr: u32,
    entry_left: u32,
    timer_count: u32,
    cycle: u64,
    returned_this_cycle: bool,
    events: Vec<DigestEvent>,
}

impl InterruptController {
    /// Builds the reset-state controller for one run of `plan`.
    #[must_use]
    pub fn new(plan: &InterruptPlan) -> InterruptController {
        InterruptController {
            seed: plan.spec.seed,
            rate: plan.spec.rate,
            timer_period: plan.spec.timer,
            vector: plan.vector,
            penalty: plan.spec.penalty,
            pending: 0,
            mask: 0,
            in_handler: false,
            epcr: 0,
            entry_left: 0,
            timer_count: 0,
            cycle: 0,
            returned_this_cycle: false,
            events: Vec::new(),
        }
    }

    /// Advances peripheral state at the start of a cycle: ticks the timer
    /// (recording a [`DigestEventKind::TimerFire`] on wrap) and samples the
    /// storm schedule. Must be called exactly once per simulated cycle, in
    /// cycle order — the burst fast path calls it per burst cycle.
    pub fn begin_cycle(&mut self, cycle: u64) {
        self.cycle = cycle;
        self.returned_this_cycle = false;
        if self.timer_period > 0 {
            self.timer_count += 1;
            if self.timer_count >= self.timer_period {
                self.timer_count = 0;
                self.pending |= 1 << LINE_TIMER;
                self.events.push(DigestEvent {
                    cycle,
                    kind: DigestEventKind::TimerFire,
                });
            }
        }
        if self.rate > 0.0 && hash01(self.seed, cycle, STORM_SALT) < self.rate {
            self.pending |= 1 << LINE_STORM;
        }
    }

    /// `true` when an unmasked line is pending and no handler is active.
    #[must_use]
    pub fn takeable(&self) -> bool {
        !self.in_handler && self.pending & !self.mask != 0
    }

    /// Accepts the highest-priority (lowest-numbered) pending unmasked
    /// line: saves `epcr`, enters the handler and starts the entry flush.
    /// The caller redirects fetch to [`InterruptController::vector`] and
    /// injects `penalty` entry-bubble cycles (this one plus
    /// [`InterruptController::entry_pending`] further ones).
    pub fn accept(&mut self, epcr: u32) {
        debug_assert!(self.takeable());
        let line = (self.pending & !self.mask).trailing_zeros() as u8;
        self.in_handler = true;
        self.epcr = epcr;
        self.entry_left = self.penalty - 1;
        self.events.push(DigestEvent {
            cycle: self.cycle,
            kind: DigestEventKind::IrqEntry { line },
        });
    }

    /// `true` while entry-flush bubble cycles remain to be injected.
    #[must_use]
    pub fn entry_pending(&self) -> bool {
        self.entry_left > 0
    }

    /// Consumes one remaining entry-flush cycle.
    pub fn entry_tick(&mut self) {
        debug_assert!(self.entry_left > 0);
        self.entry_left -= 1;
    }

    /// Resolves `l.rfe` in the execute stage: leaves the handler and
    /// returns the saved PC to redirect to. A stray `l.rfe` outside an
    /// active handler is a no-op (`None`) — identically in every engine.
    pub fn rfe_retire(&mut self) -> Option<u32> {
        if !self.in_handler {
            return None;
        }
        self.in_handler = false;
        self.returned_this_cycle = true;
        self.events.push(DigestEvent {
            cycle: self.cycle,
            kind: DigestEventKind::IrqReturn,
        });
        Some(self.epcr)
    }

    /// The resolved handler vector.
    #[must_use]
    pub fn vector(&self) -> u32 {
        self.vector
    }

    /// `true` while handler code is in flight (set at accept, cleared by
    /// [`InterruptController::rfe_retire`]).
    #[must_use]
    pub fn in_handler(&self) -> bool {
        self.in_handler
    }

    /// `true` when `l.rfe` resolved during the current cycle — the last
    /// cycle still classified as [`crate::IrqPhase::Handler`].
    #[must_use]
    pub fn returned_this_cycle(&self) -> bool {
        self.returned_this_cycle
    }

    /// MMIO register read (word access). Records the touch in the event
    /// stream.
    ///
    /// # Errors
    ///
    /// [`PipelineError::UnalignedAccess`] for unaligned word addresses
    /// (defensive; [`is_mmio`] already excludes them).
    pub fn mmio_load(&mut self, address: u32) -> Result<u32, PipelineError> {
        if !address.is_multiple_of(4) {
            return Err(PipelineError::UnalignedAccess { address, width: 4 });
        }
        let value = match address {
            MMIO_TIMER_COUNT => self.timer_count,
            MMIO_TIMER_PERIOD => self.timer_period,
            MMIO_IRQ_PENDING => self.pending,
            MMIO_IRQ_ACK => 0,
            MMIO_IRQ_MASK => self.mask,
            _ => unreachable!("is_mmio() admits exactly the five registers"),
        };
        self.events.push(DigestEvent {
            cycle: self.cycle,
            kind: DigestEventKind::MmioLoad { address },
        });
        Ok(value)
    }

    /// MMIO register write (word access). Records the touch in the event
    /// stream on success.
    ///
    /// # Errors
    ///
    /// [`PipelineError::MmioReadOnly`] for stores to `TIMER_COUNT`,
    /// `TIMER_PERIOD` or `IRQ_PENDING`;
    /// [`PipelineError::UnalignedAccess`] for unaligned word addresses.
    pub fn mmio_store(&mut self, address: u32, value: u32) -> Result<(), PipelineError> {
        if !address.is_multiple_of(4) {
            return Err(PipelineError::UnalignedAccess { address, width: 4 });
        }
        match address {
            MMIO_IRQ_ACK => self.pending &= !value,
            MMIO_IRQ_MASK => self.mask = value,
            MMIO_TIMER_COUNT | MMIO_TIMER_PERIOD | MMIO_IRQ_PENDING => {
                return Err(PipelineError::MmioReadOnly { address });
            }
            _ => unreachable!("is_mmio() admits exactly the five registers"),
        }
        self.events.push(DigestEvent {
            cycle: self.cycle,
            kind: DigestEventKind::MmioStore { address },
        });
        Ok(())
    }

    /// How many of the next `want` cycles starting at `start_cycle` the
    /// burst fast path may execute without an interrupt acceptance becoming
    /// possible. Conservative: a capped burst merely falls back to the
    /// reference-structured cycle, which makes the identical decision —
    /// the cap only has to guarantee no acceptance point lands *inside* a
    /// burst. Inside a handler bursts are always safe (no nested entry).
    #[must_use]
    pub fn burst_allowance(&self, start_cycle: u64, want: u64) -> u64 {
        if self.in_handler {
            return want;
        }
        if self.pending & !self.mask != 0 {
            return 0;
        }
        let mut allowed = want;
        if self.timer_period > 0 {
            // The fire lands on the burst cycle whose begin_cycle() brings
            // the count to the period; everything before it is safe.
            let until_fire = u64::from(self.timer_period - self.timer_count);
            allowed = allowed.min(until_fire.saturating_sub(1));
        }
        if self.rate > 0.0 {
            for j in 0..allowed {
                if hash01(self.seed, start_cycle + j, STORM_SALT) < self.rate {
                    allowed = j;
                    break;
                }
            }
        }
        allowed
    }

    /// The events recorded since the last [`InterruptController::clear_cycle_events`]
    /// (the simulator drains them to observers once per cycle).
    #[must_use]
    pub fn cycle_events(&self) -> &[DigestEvent] {
        &self.events
    }

    /// Clears the drained per-cycle events.
    pub fn clear_cycle_events(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parse_describe_roundtrip() {
        let spec = InterruptSpec::parse("seed=9,rate=0.01,timer=200,penalty=6,surge=0.5").unwrap();
        assert_eq!(spec.seed, 9);
        assert_eq!(spec.timer, 200);
        assert_eq!(spec.penalty, 6);
        assert!(spec.active());
        let reparsed = InterruptSpec::parse(&spec.describe()).unwrap();
        assert_eq!(spec, reparsed);
        assert_eq!(spec.fingerprint(), reparsed.fingerprint());
    }

    #[test]
    fn spec_parse_rejects_bad_input() {
        assert!(matches!(
            InterruptSpec::parse("bogus"),
            Err(InterruptSpecError::MalformedPair(_))
        ));
        assert!(matches!(
            InterruptSpec::parse("warp=1"),
            Err(InterruptSpecError::UnknownKey(_))
        ));
        assert!(matches!(
            InterruptSpec::parse("rate=1.5"),
            Err(InterruptSpecError::BadValue { key: "rate", .. })
        ));
        assert!(matches!(
            InterruptSpec::parse("penalty=0"),
            Err(InterruptSpecError::BadValue { key: "penalty", .. })
        ));
        assert!(matches!(
            InterruptSpec::parse("vector=6"),
            Err(InterruptSpecError::BadValue { key: "vector", .. })
        ));
    }

    #[test]
    fn fingerprint_distinguishes_specs() {
        let a = InterruptSpec::parse("rate=0.01").unwrap();
        let b = InterruptSpec::parse("rate=0.02").unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), InterruptSpec::default().fingerprint());
    }

    #[test]
    fn attach_appends_handler_and_resolves_vector() {
        let mut b = ProgramBuilder::named("p");
        b.push(Insn::nop(0));
        b.push(Insn::nop(crate::NOP_EXIT));
        let program = b.build();
        let end = program.end_address();
        let (augmented, plan) = InterruptPlan::attach(&program, &InterruptSpec::default());
        assert_eq!(plan.vector(), end);
        assert_eq!(augmented.len(), program.len() + 5);
        assert_eq!(augmented.symbol("__irq_handler"), Some(end));
        assert_eq!(
            augmented.insns()[augmented.len() - 2].opcode(),
            idca_isa::Opcode::Rfe
        );
    }

    #[test]
    fn timer_fires_on_period_and_records_event() {
        let spec = InterruptSpec::parse("timer=3").unwrap();
        let (_, plan) = InterruptPlan::attach(&ProgramBuilder::named("t").build(), &spec);
        let mut ctl = InterruptController::new(&plan);
        for cycle in 0..2 {
            ctl.begin_cycle(cycle);
            assert!(!ctl.takeable(), "cycle {cycle}");
        }
        ctl.begin_cycle(2);
        assert!(ctl.takeable());
        assert_eq!(ctl.cycle_events().len(), 1);
        assert_eq!(ctl.cycle_events()[0].kind, DigestEventKind::TimerFire);
        assert_eq!(ctl.cycle_events()[0].cycle, 2);
    }

    #[test]
    fn accept_ack_and_return_cycle() {
        let spec = InterruptSpec::parse("timer=1,penalty=2").unwrap();
        let (_, plan) = InterruptPlan::attach(&ProgramBuilder::named("t").build(), &spec);
        let mut ctl = InterruptController::new(&plan);
        ctl.begin_cycle(0);
        assert!(ctl.takeable());
        ctl.accept(0x40);
        assert!(ctl.in_handler());
        assert!(ctl.entry_pending());
        ctl.entry_tick();
        assert!(!ctl.entry_pending());
        // Raises during the handler stay pending and do not re-enter.
        ctl.begin_cycle(1);
        assert!(!ctl.takeable());
        let pending = ctl.mmio_load(MMIO_IRQ_PENDING).unwrap();
        assert_ne!(pending & (1 << LINE_TIMER), 0);
        ctl.mmio_store(MMIO_IRQ_ACK, pending).unwrap();
        assert_eq!(ctl.mmio_load(MMIO_IRQ_PENDING).unwrap(), 0);
        assert_eq!(ctl.rfe_retire(), Some(0x40));
        assert!(ctl.returned_this_cycle());
        assert!(!ctl.in_handler());
        // Stray rfe outside a handler is a no-op.
        assert_eq!(ctl.rfe_retire(), None);
    }

    #[test]
    fn read_only_registers_reject_stores() {
        let (_, plan) = InterruptPlan::attach(
            &ProgramBuilder::named("t").build(),
            &InterruptSpec::default(),
        );
        let mut ctl = InterruptController::new(&plan);
        for address in [MMIO_TIMER_COUNT, MMIO_TIMER_PERIOD, MMIO_IRQ_PENDING] {
            assert_eq!(
                ctl.mmio_store(address, 1),
                Err(PipelineError::MmioReadOnly { address })
            );
        }
        ctl.mmio_store(MMIO_IRQ_MASK, 0b10).unwrap();
        assert_eq!(ctl.mmio_load(MMIO_IRQ_MASK).unwrap(), 0b10);
    }

    #[test]
    fn burst_allowance_stops_before_any_raise() {
        let spec = InterruptSpec::parse("timer=10,rate=0.05,seed=3").unwrap();
        let (_, plan) = InterruptPlan::attach(&ProgramBuilder::named("t").build(), &spec);
        let mut ctl = InterruptController::new(&plan);
        let want = 64;
        let allowed = ctl.burst_allowance(0, want);
        assert!(allowed < want);
        // Replaying begin_cycle over the allowance must not make the
        // controller takeable before the predicted boundary.
        for cycle in 0..allowed {
            ctl.begin_cycle(cycle);
            assert!(!ctl.takeable(), "raise inside allowance at cycle {cycle}");
        }
    }

    #[test]
    fn storm_schedule_is_a_pure_function_of_seed_and_cycle() {
        let spec = InterruptSpec::parse("rate=0.1,seed=42").unwrap();
        let (_, plan) = InterruptPlan::attach(&ProgramBuilder::named("t").build(), &spec);
        let mut a = InterruptController::new(&plan);
        let mut b = InterruptController::new(&plan);
        for cycle in 0..256 {
            a.begin_cycle(cycle);
            b.begin_cycle(cycle);
            assert_eq!(a.takeable(), b.takeable(), "cycle {cycle}");
            if a.takeable() {
                a.accept(0);
                b.accept(0);
                assert_eq!(a.rfe_retire(), b.rfe_retire());
            }
        }
    }
}
