//! # idca-pipeline — cycle-accurate 6-stage OpenRISC-like pipeline model
//!
//! This crate models the customized `mor1kx cappuccino` micro-architecture
//! used as the case study of the DATE 2015 paper: a 32-bit in-order pipeline
//! with the six stages *Address*, *Fetch*, *Decode*, *Execute*,
//! *Mem/Control* and *Writeback*, tightly-coupled single-cycle instruction
//! and data SRAMs, full forwarding, one architectural delay slot after every
//! branch/jump, and a multiplier that is shielded from the other ALU inputs
//! (operand isolation) exactly as described in §III-A of the paper.
//!
//! Besides architecturally-correct execution the simulator emits, for every
//! cycle, a [`CycleRecord`]: the instruction occupying each stage plus
//! detailed *activity descriptors* (operand values, carry-chain length,
//! multiplier activity, memory requests, forwarding sources, branch
//! decisions). The `idca-timing` crate turns this activity into dynamic path
//! delays — the equivalent of the paper's post-layout gate-level simulation.
//!
//! Records are delivered through the streaming [`CycleObserver`] interface
//! ([`Simulator::run_observed`]): downstream analyses consume each cycle as
//! it is produced, so one simulation pass feeds them all and nothing is
//! materialized on the hot path. A full [`PipelineTrace`] is just one
//! possible observer (kept for tests, serialization and file-based replay),
//! produced by the convenience wrapper [`Simulator::run`].
//!
//! # Example
//!
//! ```
//! use idca_isa::asm::Assembler;
//! use idca_pipeline::{Simulator, SimConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = Assembler::new().assemble(
//!     "        l.addi r3, r0, 5
//!              l.addi r4, r0, 0
//!      loop:   l.add  r4, r4, r3
//!              l.addi r3, r3, -1
//!              l.sfne r3, r0
//!              l.bf   loop
//!              l.nop  0
//!              l.nop  1          # exit
//! ",
//! )?;
//! let result = Simulator::new(SimConfig::default()).run(&program)?;
//! assert_eq!(result.state.reg(idca_isa::Reg::r(4)), 5 + 4 + 3 + 2 + 1);
//! assert!(result.trace.ipc() > 0.5);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod digest;
mod error;
mod event;
mod interp;
mod irq;
mod memory;
mod observer;
mod predecode;
mod regfile;
mod simulator;
mod stage;
mod trace;

pub use digest::{
    DigestCycle, DigestFormatError, DigestHints, DigestObserver, StageExcitation, TimingDigest,
};
pub use error::PipelineError;
pub use event::{
    BranchActivity, BubbleKind, CycleRecord, CycleRecordFlags, DigestEvent, DigestEventKind,
    ExecActivity, ForwardSource, IrqPhase, MemRequest, Occupant, WbActivity,
};
pub use interp::{Interpreter, InterpreterResult};
pub use irq::{
    is_mmio, InterruptController, InterruptPlan, InterruptSpec, InterruptSpecError, LINE_STORM,
    LINE_TIMER, MMIO_BASE, MMIO_IRQ_ACK, MMIO_IRQ_MASK, MMIO_IRQ_PENDING, MMIO_LEN,
    MMIO_TIMER_COUNT, MMIO_TIMER_PERIOD,
};
pub use memory::Memory;
pub use observer::{CycleObserver, RunSummary, TakeObserver};
pub use predecode::{AdderKind, AluKind, CtlKind, MemKind, MicroOp, PredecodedProgram};
pub use regfile::RegisterFile;
pub use simulator::{ArchState, ObservedRun, SimBuffers, SimConfig, SimResult, Simulator};
pub use stage::Stage;
pub use trace::{class_at, occupant_at, PipelineTrace, TraceStats};

/// The `l.nop` immediate that requests simulation exit, following the
/// convention of the OpenRISC architectural simulator (`NOP_EXIT`).
pub const NOP_EXIT: u16 = 1;

/// Version of the simulator's observable behaviour: bump whenever a change
/// can alter the [`CycleRecord`]s (and therefore the [`TimingDigest`]) a
/// program produces. Persistent digest caches key on this so digests
/// captured by an older simulator are re-simulated instead of trusted.
/// Version 2 added the asynchronous-event layer (interrupts, timer, MMIO).
pub const SIMULATOR_VERSION: u32 = 2;
