use idca_isa::{Reg, NUM_GPRS};
use serde::{Deserialize, Serialize};

/// The 32-entry, two-read-port / one-write-port general purpose register
/// file of the core.
///
/// Register `r0` is hard-wired to zero: writes to it are ignored, reads
/// always return `0`, matching the convention used by the modelled core.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegisterFile {
    regs: [u32; NUM_GPRS],
}

impl RegisterFile {
    /// Creates a register file with every register cleared to zero.
    #[must_use]
    pub fn new() -> Self {
        RegisterFile {
            regs: [0; NUM_GPRS],
        }
    }

    /// Clears every register back to zero (reset state), in place.
    pub fn clear(&mut self) {
        self.regs = [0; NUM_GPRS];
    }

    /// Reads a register (`r0` always reads zero).
    #[must_use]
    pub fn read(&self, reg: Reg) -> u32 {
        if reg.is_zero() {
            0
        } else {
            self.regs[usize::from(reg)]
        }
    }

    /// Writes a register; writes to `r0` are ignored.
    pub fn write(&mut self, reg: Reg, value: u32) {
        if !reg.is_zero() {
            self.regs[usize::from(reg)] = value;
        }
    }

    /// Returns the raw register array (index 0 is always zero).
    #[must_use]
    pub fn as_array(&self) -> [u32; NUM_GPRS] {
        let mut copy = self.regs;
        copy[0] = 0;
        copy
    }
}

impl Default for RegisterFile {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r0_is_hardwired_to_zero() {
        let mut rf = RegisterFile::new();
        rf.write(Reg::R0, 0xDEAD_BEEF);
        assert_eq!(rf.read(Reg::R0), 0);
        assert_eq!(rf.as_array()[0], 0);
    }

    #[test]
    fn other_registers_hold_values() {
        let mut rf = RegisterFile::new();
        for reg in Reg::all().skip(1) {
            rf.write(reg, u32::from(reg.index()) * 3);
        }
        for reg in Reg::all().skip(1) {
            assert_eq!(rf.read(reg), u32::from(reg.index()) * 3);
        }
    }
}
