//! The cycle-accurate 6-stage pipeline simulator.
//!
//! Micro-architectural model (mirroring the customized `mor1kx cappuccino`
//! of the paper's Fig. 4):
//!
//! * Six stages: Address, Fetch, Decode, Execute, Mem/Control, Writeback.
//! * Tightly-coupled single-cycle instruction and data SRAMs.
//! * Full operand forwarding (Control → Execute and Writeback → Execute);
//!   load results are forwarded from the control stage, which makes the
//!   data-SRAM → forwarding → ALU path one of the longest in the design —
//!   exactly the path the paper identifies as dominating the execute/control
//!   endpoint group.
//! * One architectural delay slot after every branch and jump.
//! * PC-relative jumps and conditional branches redirect the fetch address
//!   while they are in the decode stage (the branch-target feed-forward into
//!   the address-stage PC mux visible in Fig. 4), so taken branches cost no
//!   bubbles beyond the delay slot. Register-indirect jumps resolve in the
//!   execute stage and squash the two youngest fetch stages.
//! * The multiplier is shielded by operand-isolation registers: its inputs
//!   only toggle for multiply instructions.

use crate::digest::FastCycleFacts;
use crate::interp::alu;
use crate::irq::{is_mmio, InterruptController, InterruptPlan};
use crate::predecode::{self, CtlKind, MicroOp, PredecodedProgram};
use crate::{
    BranchActivity, BubbleKind, CycleObserver, CycleRecord, DigestObserver, ExecActivity,
    ForwardSource, IrqPhase, MemRequest, Memory, Occupant, PipelineError, PipelineTrace,
    RegisterFile, RunSummary, Stage, WbActivity, NOP_EXIT,
};
use idca_isa::{Insn, Opcode, Program, Reg, INSN_BYTES};
use serde::{Deserialize, Serialize};

/// Configuration of the pipeline simulator.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Size of the tightly-coupled data SRAM in bytes.
    pub data_memory_size: usize,
    /// Hard limit on simulated cycles (guards against runaway programs).
    pub max_cycles: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            data_memory_size: 64 * 1024,
            max_cycles: 4_000_000,
        }
    }
}

/// Architectural state at the end of a simulation.
#[derive(Debug, Clone)]
pub struct ArchState {
    /// Final register-file contents.
    pub regs: RegisterFile,
    /// Final data-memory contents.
    pub memory: Memory,
    /// Final compare-flag value.
    pub flag: bool,
    /// Final carry-flag value.
    pub carry: bool,
}

impl ArchState {
    /// Convenience accessor for one register.
    #[must_use]
    pub fn reg(&self, reg: Reg) -> u32 {
        self.regs.read(reg)
    }
}

/// The outcome of running a program on the pipeline.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Final architectural state.
    pub state: ArchState,
    /// Per-cycle pipeline trace.
    pub trace: PipelineTrace,
}

/// The outcome of an observed (streaming) run: the final architectural state
/// plus the run totals. The per-cycle records went to the observers.
#[derive(Debug, Clone)]
pub struct ObservedRun {
    /// Final architectural state.
    pub state: ArchState,
    /// Run totals (cycles simulated, instructions retired).
    pub summary: RunSummary,
}

/// Reusable per-worker simulation state: the register file and the data
/// memory image. Constructing these — in particular the 64 KiB memory —
/// from scratch for every simulated program is pure allocation churn on
/// sweep workers; a worker allocates one `SimBuffers` and passes it to
/// [`Simulator::run_observed_with_buffers`] for every job instead.
#[derive(Debug, Clone)]
pub struct SimBuffers {
    regs: RegisterFile,
    memory: Memory,
    flag: bool,
    carry: bool,
}

impl SimBuffers {
    /// Creates buffers sized for `config`'s data memory.
    #[must_use]
    pub fn for_config(config: &SimConfig) -> Self {
        SimBuffers {
            regs: RegisterFile::new(),
            memory: Memory::new(config.data_memory_size),
            flag: false,
            carry: false,
        }
    }

    /// Resets the buffers to the architectural reset state (all registers
    /// and memory zero), resizing the memory if `config` changed.
    fn reset_for(&mut self, config: &SimConfig) {
        self.regs.clear();
        self.memory.reset(config.data_memory_size);
        self.flag = false;
        self.carry = false;
    }

    /// The register file after the most recent **successful** run. After an
    /// erroring run the buffers hold the partially-executed state (see
    /// [`SimBuffers::flag`]).
    #[must_use]
    pub fn regs(&self) -> &RegisterFile {
        &self.regs
    }

    /// The data memory after the most recent **successful** run (partial
    /// state after an error, see [`SimBuffers::flag`]).
    #[must_use]
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// The compare flag after the most recent **successful** run. When
    /// [`Simulator::run_observed_with_buffers`] returns an error the
    /// accessors are not a consistent architectural snapshot: registers and
    /// memory reflect the partial execution while the flags stay at their
    /// reset values.
    #[must_use]
    pub fn flag(&self) -> bool {
        self.flag
    }

    /// The carry flag after the most recent **successful** run (see
    /// [`SimBuffers::flag`] for the error-path caveat).
    #[must_use]
    pub fn carry(&self) -> bool {
        self.carry
    }
}

/// The cycle-accurate pipeline simulator.
///
/// See the crate-level documentation for an end-to-end example.
#[derive(Debug, Clone, Default)]
pub struct Simulator {
    config: SimConfig,
    interrupts: Option<InterruptPlan>,
}

#[derive(Debug, Clone, Copy)]
struct Fetched {
    pc: u32,
    insn: Insn,
    seq: u64,
    /// Branch resolution attached while the instruction was in decode, so
    /// that the execute-stage activity record can report it.
    resolution: Option<BranchActivity>,
}

#[derive(Debug, Clone, Copy)]
enum MemOp {
    Load { address: u32 },
    Store { address: u32, value: u32 },
}

#[derive(Debug, Clone, Copy)]
struct CtrlEntry {
    pc: u32,
    insn: Insn,
    seq: u64,
    rd: Option<Reg>,
    value: u32,
    mem: Option<MemOp>,
}

#[derive(Debug, Clone, Copy)]
struct WbEntry {
    pc: u32,
    insn: Insn,
    seq: u64,
    rd: Option<Reg>,
    value: u32,
}

/// Predecoded-engine twin of [`Fetched`]: stages carry the micro-op table
/// index instead of the instruction word (the word is recovered from the
/// table only when a [`CycleRecord`] is materialized).
#[derive(Debug, Clone, Copy)]
struct FetchedOp {
    pc: u32,
    idx: u32,
    seq: u64,
    resolution: Option<BranchActivity>,
}

/// Predecoded-engine twin of [`CtrlEntry`].
#[derive(Debug, Clone, Copy)]
struct CtrlOp {
    pc: u32,
    idx: u32,
    seq: u64,
    rd: Option<Reg>,
    value: u32,
    mem: Option<MemOp>,
}

/// Predecoded-engine twin of [`WbEntry`].
#[derive(Debug, Clone, Copy)]
struct WbOp {
    pc: u32,
    idx: u32,
    seq: u64,
    rd: Option<Reg>,
    value: u32,
}

#[derive(Debug, Clone, Copy)]
enum Slot<T> {
    Insn(T),
    Bubble(BubbleKind),
}

impl<T> Slot<T> {
    fn as_ref(&self) -> Option<&T> {
        match self {
            Slot::Insn(t) => Some(t),
            Slot::Bubble(_) => None,
        }
    }

    fn is_bubble(&self) -> bool {
        matches!(self, Slot::Bubble(_))
    }
}

/// Where a basic-block burst delivers its per-cycle observations: either a
/// lone hinted [`DigestObserver`] consuming compact [`FastCycleFacts`]
/// directly, or the generic observer slice consuming full, freshly
/// materialized [`CycleRecord`]s. Both deliveries are bit-identical from
/// the digest's point of view (pinned by the differential suite); the
/// compact one exists because record materialization dominates phase-1
/// digest capture.
enum BurstSink<'a, 'b> {
    Digest(&'a mut DigestObserver),
    Records(&'a mut [&'b mut dyn CycleObserver]),
}

impl Simulator {
    /// Creates a simulator with the given configuration.
    #[must_use]
    pub fn new(config: SimConfig) -> Self {
        Simulator {
            config,
            interrupts: None,
        }
    }

    /// Attaches an interrupt scenario: every run drives one
    /// [`InterruptController`] built from `plan`, accepting storm/timer
    /// raises at the fetch boundary, injecting the modeled entry-flush
    /// bubbles, routing word accesses inside the MMIO window to the
    /// peripheral registers and resolving `l.rfe` back to the saved PC.
    ///
    /// The caller must run the handler-augmented program returned by the
    /// same [`InterruptPlan::attach`] call that produced `plan` — the plan's
    /// vector points into that image.
    #[must_use]
    pub fn with_interrupts(mut self, plan: InterruptPlan) -> Self {
        self.interrupts = Some(plan);
        self
    }

    /// The attached interrupt scenario, if any.
    #[must_use]
    pub fn interrupts(&self) -> Option<&InterruptPlan> {
        self.interrupts.as_ref()
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs `program` to completion and returns the final architectural
    /// state together with the full per-cycle trace.
    ///
    /// This is a convenience wrapper around [`Simulator::run_observed`] with
    /// a single materializing [`PipelineTrace`] observer; analysis pipelines
    /// that do not need the materialized records should call
    /// [`Simulator::run_observed`] with streaming observers instead.
    ///
    /// A program terminates when the exit marker `l.nop 1` retires, or when
    /// the pipeline drains after the program counter runs past the end of
    /// the image.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError`] for invalid memory accesses or when
    /// [`SimConfig::max_cycles`] is exceeded.
    pub fn run(&self, program: &Program) -> Result<SimResult, PipelineError> {
        let mut trace = PipelineTrace::default();
        let run = self.run_observed(program, &mut [&mut trace])?;
        Ok(SimResult {
            state: run.state,
            trace,
        })
    }

    /// Runs `program` to completion, streaming every [`CycleRecord`] to the
    /// given observers as it is produced — the single-pass entry point of
    /// the analysis pipeline. No per-cycle storage is allocated; composing
    /// observers (timing analysis, clock-policy evaluation, power activity,
    /// trace materialization, ...) makes one simulation serve them all.
    ///
    /// Each observer receives one [`CycleObserver::observe_cycle`] call per
    /// simulated cycle in execution order, then exactly one
    /// [`CycleObserver::finish`] call with the run totals.
    ///
    /// # Example
    ///
    /// Run one simulation with two observers riding the same pass — a
    /// digest capture and a full trace — and check they saw the same run:
    ///
    /// ```
    /// use idca_isa::asm::Assembler;
    /// use idca_pipeline::{DigestObserver, PipelineTrace, SimConfig, Simulator};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let program = Assembler::new().assemble(
    ///     "l.addi r3, r0, 5\nloop: l.addi r3, r3, -1\n l.sfne r3, r0\n l.bf loop\n l.nop 0\n l.nop 1\n",
    /// )?;
    /// let mut digest = DigestObserver::new();
    /// let mut trace = PipelineTrace::default();
    /// let run = Simulator::new(SimConfig::default())
    ///     .run_observed(&program, &mut [&mut digest, &mut trace])?;
    ///
    /// assert_eq!(trace.cycle_count(), run.summary.cycles);
    /// assert_eq!(digest.into_digest().cycles(), run.summary.cycles);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError`] for invalid memory accesses or when
    /// [`SimConfig::max_cycles`] is exceeded. Observers may have consumed an
    /// arbitrary prefix of the run when an error is returned; `finish` is
    /// not called in that case.
    pub fn run_observed(
        &self,
        program: &Program,
        observers: &mut [&mut dyn CycleObserver],
    ) -> Result<ObservedRun, PipelineError> {
        self.run_observed_predecoded(&PredecodedProgram::lower(program), observers)
    }

    /// [`Simulator::run_observed`] for a program already lowered to its
    /// [`PredecodedProgram`] form. Callers that run the same program many
    /// times (bench repetitions, differential fuzzing) lower once and reuse
    /// the table.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError`] like [`Simulator::run_observed`].
    pub fn run_observed_predecoded(
        &self,
        pre: &PredecodedProgram,
        observers: &mut [&mut dyn CycleObserver],
    ) -> Result<ObservedRun, PipelineError> {
        let mut buffers = SimBuffers::for_config(&self.config);
        let summary = self.run_core_pre(pre, observers, &mut buffers)?;
        Ok(ObservedRun {
            state: ArchState {
                regs: buffers.regs,
                memory: buffers.memory,
                flag: buffers.flag,
                carry: buffers.carry,
            },
            summary,
        })
    }

    /// [`Simulator::run_observed`] on the retained per-cycle reference loop:
    /// every stage re-derives its facts from the instruction word each cycle
    /// instead of dispatching from the predecoded micro-op table. Exists so
    /// differential tests can pin the predecoded engine bit-identical
    /// (same [`CycleRecord`] stream, digests and summaries) against the
    /// original formulation.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError`] like [`Simulator::run_observed`].
    pub fn run_observed_reference(
        &self,
        program: &Program,
        observers: &mut [&mut dyn CycleObserver],
    ) -> Result<ObservedRun, PipelineError> {
        let mut buffers = SimBuffers::for_config(&self.config);
        let summary = self.run_core(program, observers, &mut buffers)?;
        Ok(ObservedRun {
            state: ArchState {
                regs: buffers.regs,
                memory: buffers.memory,
                flag: buffers.flag,
                carry: buffers.carry,
            },
            summary,
        })
    }

    /// [`Simulator::run_observed`] with caller-owned scratch state: the
    /// register file and memory image in `buffers` are reset and reused
    /// instead of being allocated per run, which removes the dominant
    /// allocation churn from workers that simulate many programs (e.g. the
    /// PVT-sweep digest phase). The final architectural state stays
    /// readable through the [`SimBuffers`] accessors.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError`] for invalid memory accesses or when
    /// [`SimConfig::max_cycles`] is exceeded, like [`Simulator::run_observed`].
    pub fn run_observed_with_buffers(
        &self,
        program: &Program,
        observers: &mut [&mut dyn CycleObserver],
        buffers: &mut SimBuffers,
    ) -> Result<RunSummary, PipelineError> {
        self.run_observed_predecoded_with_buffers(
            &PredecodedProgram::lower(program),
            observers,
            buffers,
        )
    }

    /// [`Simulator::run_observed_with_buffers`] for an already-lowered
    /// program: caller-owned scratch state *and* a reusable micro-op table.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError`] like [`Simulator::run_observed`].
    pub fn run_observed_predecoded_with_buffers(
        &self,
        pre: &PredecodedProgram,
        observers: &mut [&mut dyn CycleObserver],
        buffers: &mut SimBuffers,
    ) -> Result<RunSummary, PipelineError> {
        buffers.reset_for(&self.config);
        self.run_core_pre(pre, observers, buffers)
    }

    /// The simulation loop shared by [`Simulator::run_observed`] and
    /// [`Simulator::run_observed_with_buffers`]. Expects `buffers` in the
    /// architectural reset state.
    fn run_core(
        &self,
        program: &Program,
        observers: &mut [&mut dyn CycleObserver],
        buffers: &mut SimBuffers,
    ) -> Result<RunSummary, PipelineError> {
        let regs = &mut buffers.regs;
        let memory = &mut buffers.memory;
        memory.load_image(program.data())?;
        let mut flag = false;
        let mut carry = false;

        let base = program.base_address();
        let end = program.end_address();
        let in_range = |pc: u32| pc >= base && pc < end;
        // Hardened fetch: a register jump can put any value in the PC, so a
        // misaligned in-range address must become a structured error, never
        // a silently-truncated index (out-of-range addresses drain the
        // pipeline before reaching this accessor).
        let fetch_insn = |pc: u32| -> Result<Insn, PipelineError> {
            let index = program
                .insn_index(pc)
                .ok_or(PipelineError::PcOutOfRange { pc })?;
            Ok(program.insns()[index])
        };

        let mut fetch_pc = base;
        let mut fe: Slot<Fetched> = Slot::Bubble(BubbleKind::Reset);
        let mut dc: Slot<Fetched> = Slot::Bubble(BubbleKind::Reset);
        let mut ex: Slot<Fetched> = Slot::Bubble(BubbleKind::Reset);
        let mut ctrl: Slot<CtrlEntry> = Slot::Bubble(BubbleKind::Reset);
        let mut wb: Slot<WbEntry> = Slot::Bubble(BubbleKind::Reset);

        let mut halting = false;
        let mut exit_seq: Option<u64> = None;
        let mut seq_counter: u64 = 0;
        let mut retired: u64 = 0;
        let mut cycle_count: u64 = 0;
        let mut irq = self.interrupts.as_ref().map(InterruptController::new);

        for cycle in 0..self.config.max_cycles {
            if let Some(ctl) = irq.as_mut() {
                ctl.begin_cycle(cycle);
            }

            // -------------------------------------------------------------
            // Writeback stage: commit the oldest instruction.
            // -------------------------------------------------------------
            let mut writeback_activity = None;
            let mut finished = false;
            if let Some(entry) = wb.as_ref() {
                if let Some(rd) = entry.rd {
                    regs.write(rd, entry.value);
                    writeback_activity = Some(WbActivity {
                        rd,
                        value: entry.value,
                    });
                }
                retired += 1;
                if exit_seq == Some(entry.seq) {
                    finished = true;
                }
            }

            // -------------------------------------------------------------
            // Mem/Control stage: perform the data-memory access in program
            // order; load data becomes available here and is forwarded to
            // the execute stage within the same cycle.
            // -------------------------------------------------------------
            let mut mem_return = None;
            let mut ctrl_entry = ctrl;
            if let Slot::Insn(entry) = &mut ctrl_entry {
                match entry.mem {
                    Some(MemOp::Store { address, value }) => {
                        store(memory, irq.as_mut(), entry.insn.opcode(), address, value)?;
                    }
                    Some(MemOp::Load { address }) => {
                        let value = load(memory, irq.as_mut(), entry.insn.opcode(), address)?;
                        entry.value = value;
                        mem_return = Some(value);
                    }
                    None => {}
                }
            }

            // -------------------------------------------------------------
            // Execute stage.
            // -------------------------------------------------------------
            let mut exec_activity = None;
            let mut ex_redirect: Option<u32> = None;
            let mut next_ctrl: Slot<CtrlEntry> = match ex {
                Slot::Bubble(kind) => Slot::Bubble(kind),
                Slot::Insn(fetched) => {
                    let insn = fetched.insn;
                    let opcode = insn.opcode();

                    if opcode == Opcode::Nop && insn.imm() == Some(i32::from(NOP_EXIT)) {
                        halting = true;
                        exit_seq = Some(fetched.seq);
                    }

                    let (a, fwd_a) = resolve_operand(insn.ra(), &ctrl_entry, &wb, regs);
                    let (rb_value, fwd_b) = resolve_operand(insn.rb(), &ctrl_entry, &wb, regs);
                    let b = alu::operand_b(&insn, rb_value);
                    let outcome = alu::execute(&insn, a, b, flag, carry);

                    if let Some(new_flag) = outcome.flag {
                        flag = new_flag;
                    }
                    if let Some(new_carry) = outcome.carry {
                        carry = new_carry;
                    }

                    let mut value = outcome.result;
                    let mut rd = if opcode.writes_rd() { insn.rd() } else { None };
                    let mut branch = fetched.resolution;
                    match opcode {
                        Opcode::Jal => {
                            rd = Some(Reg::LINK);
                            value = fetched.pc.wrapping_add(8);
                        }
                        Opcode::Jalr | Opcode::Jr => {
                            if opcode == Opcode::Jalr {
                                rd = Some(Reg::LINK);
                                value = fetched.pc.wrapping_add(8);
                            }
                            ex_redirect = Some(rb_value);
                            branch = Some(BranchActivity {
                                taken: true,
                                target: rb_value,
                                resolved_in: Stage::Execute,
                            });
                        }
                        Opcode::Rfe => {
                            // Return-from-exception resolves in execute like
                            // a register jump targeting the saved PC. A
                            // stray `l.rfe` outside an active handler (or
                            // with no interrupt scenario attached) is a
                            // no-op, identically in every engine.
                            if let Some(target) =
                                irq.as_mut().and_then(InterruptController::rfe_retire)
                            {
                                ex_redirect = Some(target);
                                branch = Some(BranchActivity {
                                    taken: true,
                                    target,
                                    resolved_in: Stage::Execute,
                                });
                            }
                        }
                        _ => {}
                    }

                    let mem = match opcode {
                        op if op.is_load() => Some(MemOp::Load {
                            address: outcome.address.unwrap_or(0),
                        }),
                        op if op.is_store() => Some(MemOp::Store {
                            address: outcome.address.unwrap_or(0),
                            value: rb_value,
                        }),
                        _ => None,
                    };

                    let mem_request = mem.map(|m| match m {
                        MemOp::Load { address } => MemRequest {
                            address,
                            width: opcode.mem_width().unwrap_or(4),
                            is_store: false,
                            value: 0,
                        },
                        MemOp::Store { address, value } => MemRequest {
                            address,
                            width: opcode.mem_width().unwrap_or(4),
                            is_store: true,
                            value,
                        },
                    });

                    exec_activity = Some(ExecActivity {
                        pc: fetched.pc,
                        insn,
                        op_a: a,
                        op_b: b,
                        result: value,
                        carry_chain: adder_chain(opcode, a, b, carry),
                        mul_active: matches!(opcode, Opcode::Mul | Opcode::Mulu | Opcode::Muli),
                        mul_bits: mul_bits(opcode, a, b),
                        shift_amount: shift_amount(opcode, b),
                        forward_a: fwd_a,
                        forward_b: fwd_b,
                        flag_written: outcome.flag,
                        branch,
                        mem_request,
                    });

                    Slot::Insn(CtrlEntry {
                        pc: fetched.pc,
                        insn,
                        seq: fetched.seq,
                        rd,
                        value,
                        mem,
                    })
                }
            };

            // -------------------------------------------------------------
            // Decode stage: resolve PC-relative jumps and conditional
            // branches (the flag produced by the execute stage this cycle is
            // already visible, modelling the forwarding path into the branch
            // logic).
            // -------------------------------------------------------------
            let mut dc_redirect: Option<u32> = None;
            let mut dc_out = dc;
            if let Slot::Insn(fetched) = &mut dc_out {
                let opcode = fetched.insn.opcode();
                let taken = match opcode {
                    Opcode::J | Opcode::Jal => Some(true),
                    Opcode::Bf => Some(flag),
                    Opcode::Bnf => Some(!flag),
                    _ => None,
                };
                if let Some(taken) = taken {
                    let target = fetched
                        .pc
                        .wrapping_add((fetched.insn.imm().unwrap_or(0) as u32).wrapping_mul(4));
                    fetched.resolution = Some(BranchActivity {
                        taken,
                        target,
                        resolved_in: Stage::Decode,
                    });
                    if taken {
                        dc_redirect = Some(target);
                    }
                }
            }

            // -------------------------------------------------------------
            // Fetch / address stage: present the instruction-memory address
            // (possibly redirected by the decode stage this very cycle) and
            // capture the fetched word for the next cycle.
            // -------------------------------------------------------------
            let effective_fetch = dc_redirect.unwrap_or(fetch_pc);
            let mut fetch_redirected = dc_redirect.is_some() || ex_redirect.is_some();
            let mut fetch_address = effective_fetch;

            // Exception entry: accept a pending interrupt at the fetch
            // boundary (the in-flight plain instructions retire normally;
            // the not-yet-fetched one becomes the saved PC), or keep
            // injecting the remaining entry-flush bubble cycles.
            let mut irq_entry_cycle = false;
            if let Some(ctl) = irq.as_mut() {
                if ctl.entry_pending() {
                    ctl.entry_tick();
                    irq_entry_cycle = true;
                    fetch_address = ctl.vector();
                } else if !halting
                    && dc_redirect.is_none()
                    && ex_redirect.is_none()
                    && ctl.takeable()
                    && in_range(effective_fetch)
                    && slot_plain(&fe)
                    && slot_plain(&dc_out)
                {
                    ctl.accept(effective_fetch);
                    irq_entry_cycle = true;
                    fetch_address = ctl.vector();
                    fetch_redirected = true;
                }
            }

            let new_fe: Slot<Fetched> = if irq_entry_cycle {
                Slot::Bubble(BubbleKind::IrqEntry)
            } else if halting {
                Slot::Bubble(BubbleKind::Drain)
            } else if ex_redirect.is_some() {
                Slot::Bubble(BubbleKind::Flush)
            } else if in_range(effective_fetch) {
                let seq = seq_counter;
                seq_counter += 1;
                Slot::Insn(Fetched {
                    pc: effective_fetch,
                    insn: fetch_insn(effective_fetch)?,
                    seq,
                    resolution: None,
                })
            } else {
                Slot::Bubble(BubbleKind::Drain)
            };

            // -------------------------------------------------------------
            // Record this cycle.
            // -------------------------------------------------------------
            let adr_occupant = if irq_entry_cycle {
                Occupant::Bubble(BubbleKind::IrqEntry)
            } else if let Some(redirecting) = redirect_source(&dc_out, dc_redirect) {
                // The control-flow instruction drives the long branch-target
                // path into the instruction-memory address register this
                // cycle, so it owns the address-stage endpoint group.
                redirecting
            } else if halting {
                Occupant::Bubble(BubbleKind::Drain)
            } else if in_range(effective_fetch) {
                Occupant::Insn {
                    pc: effective_fetch,
                    insn: fetch_insn(effective_fetch)?,
                    seq: seq_counter,
                }
            } else {
                Occupant::Bubble(BubbleKind::Drain)
            };

            let record = CycleRecord {
                cycle,
                stages: [
                    adr_occupant,
                    slot_occupant(&fe),
                    slot_occupant_fetched(&dc_out),
                    slot_occupant_fetched(&ex),
                    slot_occupant_ctrl(&ctrl_entry),
                    slot_occupant_wb(&wb),
                ],
                exec: exec_activity,
                mem_return,
                writeback: writeback_activity,
                fetch_address,
                fetch_redirected,
                stalled: false,
                irq_phase: irq_phase_of(irq.as_ref(), irq_entry_cycle),
            };
            cycle_count += 1;
            for observer in observers.iter_mut() {
                observer.observe_cycle(&record);
            }
            drain_events(irq.as_mut(), observers);

            if finished {
                break;
            }

            // -------------------------------------------------------------
            // Latch update.
            // -------------------------------------------------------------
            wb = match ctrl_entry {
                Slot::Insn(e) => Slot::Insn(WbEntry {
                    pc: e.pc,
                    insn: e.insn,
                    seq: e.seq,
                    rd: e.rd,
                    value: e.value,
                }),
                Slot::Bubble(kind) => Slot::Bubble(kind),
            };
            ctrl = next_ctrl;
            if halting {
                // Instructions younger than the exit marker never execute
                // (they are architecturally after the end of the program),
                // matching the reference interpreter.
                ex = Slot::Bubble(BubbleKind::Drain);
                dc = Slot::Bubble(BubbleKind::Drain);
                fe = Slot::Bubble(BubbleKind::Drain);
            } else {
                ex = dc_out;
                dc = if ex_redirect.is_some() {
                    Slot::Bubble(BubbleKind::Flush)
                } else {
                    fe
                };
                fe = new_fe;
            }

            if irq_entry_cycle {
                // Fetch parks on the handler vector for the whole entry
                // flush; the first post-entry cycle fetches the handler.
                fetch_pc = fetch_address;
            } else if let Some(target) = ex_redirect {
                fetch_pc = target;
            } else if let Some(target) = dc_redirect {
                fetch_pc = target.wrapping_add(INSN_BYTES);
            } else if !halting && in_range(effective_fetch) {
                fetch_pc = effective_fetch.wrapping_add(INSN_BYTES);
            }

            // Natural drain: the program ran past its last instruction and
            // the pipeline is now empty.
            if !halting
                && !in_range(fetch_pc)
                && fe.is_bubble()
                && dc.is_bubble()
                && ex.is_bubble()
                && ctrl.is_bubble()
                && wb.is_bubble()
            {
                break;
            }
            // Avoid re-borrowing issues for the unused variable warning.
            let _ = &mut next_ctrl;
        }

        if cycle_count >= self.config.max_cycles {
            return Err(PipelineError::CycleLimitExceeded {
                limit: self.config.max_cycles,
            });
        }

        let summary = RunSummary {
            cycles: cycle_count,
            retired,
        };
        for observer in observers.iter_mut() {
            observer.finish(&summary);
        }
        buffers.flag = flag;
        buffers.carry = carry;
        Ok(summary)
    }

    /// The predecoded simulation loop: structurally the same cycle as
    /// [`Simulator::run_core`], but every per-cycle fact comes from the
    /// [`MicroOp`] table instead of being re-derived from the instruction
    /// word, and hazard-free basic-block interiors are dispatched on a fast
    /// path with the `Slot`/`Option` unwrapping and control-flow checks
    /// hoisted out of the loop. Bit-identical to the reference loop — same
    /// [`CycleRecord`] stream, same errors — pinned by the differential
    /// suite.
    #[allow(clippy::too_many_lines)]
    fn run_core_pre(
        &self,
        pre: &PredecodedProgram,
        observers: &mut [&mut dyn CycleObserver],
        buffers: &mut SimBuffers,
    ) -> Result<RunSummary, PipelineError> {
        let regs = &mut buffers.regs;
        let memory = &mut buffers.memory;
        memory.load_image(pre.data())?;
        let mut flag = false;
        let mut carry = false;

        let base = pre.base_address();
        let end = pre.end_address();
        let ops = pre.ops();
        let n_ops = ops.len() as u32;
        let in_range = |pc: u32| pc >= base && pc < end;

        let mut fetch_pc = base;
        let mut fe: Slot<FetchedOp> = Slot::Bubble(BubbleKind::Reset);
        let mut dc: Slot<FetchedOp> = Slot::Bubble(BubbleKind::Reset);
        let mut ex: Slot<FetchedOp> = Slot::Bubble(BubbleKind::Reset);
        let mut ctrl: Slot<CtrlOp> = Slot::Bubble(BubbleKind::Reset);
        let mut wb: Slot<WbOp> = Slot::Bubble(BubbleKind::Reset);

        let mut halting = false;
        let mut exit_seq: Option<u64> = None;
        let mut seq_counter: u64 = 0;
        let mut retired: u64 = 0;
        let mut cycle_count: u64 = 0;
        let mut irq = self.interrupts.as_ref().map(InterruptController::new);
        // A lone hinted digest observer opts bursts into compact delivery
        // (no per-cycle `CycleRecord`); see `BurstSink`.
        let fused_digest = observers.len() == 1 && observers[0].as_hinted_digest().is_some();

        while cycle_count < self.config.max_cycles {
            // -------------------------------------------------------------
            // Basic-block fast path: while the three youngest stages hold
            // plain (non-control, non-exit) micro-ops and fetch runs inside
            // a runway of plain ops, nothing can redirect or halt, so the
            // per-cycle dispatch reduces to table walks. The window holds
            // [execute, decode, fetch] oldest-first.
            // -------------------------------------------------------------
            if !halting {
                if let (Slot::Insn(xe), Slot::Insn(xd), Slot::Insn(xf)) = (&ex, &dc, &fe) {
                    if ops[xe.idx as usize].is_plain()
                        && ops[xd.idx as usize].is_plain()
                        && ops[xf.idx as usize].is_plain()
                        && in_range(fetch_pc)
                        && (fetch_pc - base).is_multiple_of(INSN_BYTES)
                    {
                        let fi = (fetch_pc - base) / INSN_BYTES;
                        // k cycles are hazard-free when the k-2 ops fetched
                        // behind the current window (those that reach decode
                        // within the window) are plain, fetch stays in the
                        // image, and the cycle budget allows it.
                        let mut k = u64::from(pre.runway(fi).saturating_add(2))
                            .min(u64::from(n_ops - fi))
                            .min(self.config.max_cycles - cycle_count);
                        if let Some(ctl) = irq.as_ref() {
                            // Burst-abort on pending interrupt: cap the
                            // burst so no acceptance point can land inside
                            // it (capped cycles fall back to the
                            // reference-structured cycle, which makes the
                            // identical accept decision).
                            k = k.min(ctl.burst_allowance(cycle_count, k));
                        }
                        if k >= 4 {
                            // No accept and no `l.rfe` can occur inside a
                            // burst, so the interrupt phase is constant
                            // across it.
                            let burst_phase = match irq.as_ref() {
                                Some(ctl) if ctl.in_handler() => IrqPhase::Handler,
                                _ => IrqPhase::None,
                            };
                            let mut window = [*xe, *xd, *xf];
                            let mut sink = if fused_digest {
                                BurstSink::Digest(
                                    observers[0].as_hinted_digest().expect("checked at entry"),
                                )
                            } else {
                                BurstSink::Records(&mut *observers)
                            };
                            for j in 0..k {
                                let fetch_idx = fi + j as u32;
                                let fetch_addr = base + fetch_idx * INSN_BYTES;
                                if let Some(ctl) = irq.as_mut() {
                                    ctl.begin_cycle(cycle_count);
                                }

                                let mut writeback_activity = None;
                                if let Slot::Insn(entry) = &wb {
                                    if let Some(rd) = entry.rd {
                                        regs.write(rd, entry.value);
                                        writeback_activity = Some(WbActivity {
                                            rd,
                                            value: entry.value,
                                        });
                                    }
                                    retired += 1;
                                }

                                let mut mem_return = None;
                                let mut ctrl_entry = ctrl;
                                if let Slot::Insn(entry) = &mut ctrl_entry {
                                    match entry.mem {
                                        Some(MemOp::Store { address, value }) => {
                                            store_pre(
                                                memory,
                                                irq.as_mut(),
                                                &ops[entry.idx as usize],
                                                address,
                                                value,
                                            )?;
                                        }
                                        Some(MemOp::Load { address }) => {
                                            let value = load_pre(
                                                memory,
                                                irq.as_mut(),
                                                &ops[entry.idx as usize],
                                                address,
                                            )?;
                                            entry.value = value;
                                            mem_return = Some(value);
                                        }
                                        None => {}
                                    }
                                }

                                let exe = window[0];
                                let op = &ops[exe.idx as usize];
                                let (a, fwd_a) = resolve_operand_pre(op.ra, &ctrl_entry, &wb, regs);
                                let (rb_value, fwd_b) =
                                    resolve_operand_pre(op.rb, &ctrl_entry, &wb, regs);
                                let b = op.op_b_imm.unwrap_or(rb_value);
                                let outcome = predecode::exec_alu(op.alu, a, b, flag, carry);
                                if let Some(new_flag) = outcome.flag {
                                    flag = new_flag;
                                }
                                if let Some(new_carry) = outcome.carry {
                                    carry = new_carry;
                                }
                                let value = outcome.result;
                                let mem = mem_op_for(op, &outcome, rb_value);
                                let carry_chain = predecode::adder_chain(op.adder, a, b, carry);
                                let mul_bits = mul_bits_pre(op.is_mul, a, b);
                                let shift_amount = if op.is_shift { (b & 0x1F) as u8 } else { 0 };
                                let next_ctrl = Slot::Insn(CtrlOp {
                                    pc: exe.pc,
                                    idx: exe.idx,
                                    seq: exe.seq,
                                    rd: op.rd,
                                    value,
                                    mem,
                                });

                                let seq = seq_counter;
                                seq_counter += 1;

                                match &mut sink {
                                    BurstSink::Digest(digest) => {
                                        digest.observe_fast_cycle(&FastCycleFacts {
                                            fetch_address: fetch_addr,
                                            adr_idx: fetch_idx,
                                            fe_idx: window[2].idx,
                                            dc_idx: window[1].idx,
                                            ex_idx: exe.idx,
                                            ctrl_idx: ctrl_entry.as_ref().map(|e| e.idx),
                                            wb_idx: wb.as_ref().map(|e| e.idx),
                                            mem_return,
                                            wb_value: writeback_activity.map(|w| w.value),
                                            op_a: a,
                                            op_b: b,
                                            result: value,
                                            carry_chain,
                                            mul_bits,
                                            shift_amount,
                                            mem_address: mem.map(|m| match m {
                                                MemOp::Load { address }
                                                | MemOp::Store { address, .. } => address,
                                            }),
                                            mul_active: op.is_mul,
                                            forwarded: fwd_a.is_some() || fwd_b.is_some(),
                                        });
                                    }
                                    BurstSink::Records(obs) => {
                                        let exec_activity = Some(ExecActivity {
                                            pc: exe.pc,
                                            insn: op.insn,
                                            op_a: a,
                                            op_b: b,
                                            result: value,
                                            carry_chain,
                                            mul_active: op.is_mul,
                                            mul_bits,
                                            shift_amount,
                                            forward_a: fwd_a,
                                            forward_b: fwd_b,
                                            flag_written: outcome.flag,
                                            branch: None,
                                            mem_request: mem.map(|m| mem_request_for(op, m)),
                                        });
                                        let record = CycleRecord {
                                            cycle: cycle_count,
                                            stages: [
                                                Occupant::Insn {
                                                    pc: fetch_addr,
                                                    insn: ops[fetch_idx as usize].insn,
                                                    seq: seq_counter,
                                                },
                                                fetched_op_occupant(ops, &window[2]),
                                                fetched_op_occupant(ops, &window[1]),
                                                fetched_op_occupant(ops, &window[0]),
                                                ctrl_op_occupant(ops, &ctrl_entry),
                                                wb_op_occupant(ops, &wb),
                                            ],
                                            exec: exec_activity,
                                            mem_return,
                                            writeback: writeback_activity,
                                            fetch_address: fetch_addr,
                                            fetch_redirected: false,
                                            stalled: false,
                                            irq_phase: burst_phase,
                                        };
                                        for observer in obs.iter_mut() {
                                            observer.observe_cycle(&record);
                                        }
                                    }
                                }
                                if let Some(ctl) = irq.as_mut() {
                                    let drained = ctl.cycle_events().len();
                                    for i in 0..drained {
                                        let event = ctl.cycle_events()[i];
                                        match &mut sink {
                                            BurstSink::Digest(digest) => {
                                                digest.observe_event(&event);
                                            }
                                            BurstSink::Records(obs) => {
                                                for observer in obs.iter_mut() {
                                                    observer.observe_event(&event);
                                                }
                                            }
                                        }
                                    }
                                    ctl.clear_cycle_events();
                                }
                                cycle_count += 1;

                                wb = match ctrl_entry {
                                    Slot::Insn(e) => Slot::Insn(WbOp {
                                        pc: e.pc,
                                        idx: e.idx,
                                        seq: e.seq,
                                        rd: e.rd,
                                        value: e.value,
                                    }),
                                    Slot::Bubble(kind) => Slot::Bubble(kind),
                                };
                                ctrl = next_ctrl;
                                window[0] = window[1];
                                window[1] = window[2];
                                window[2] = FetchedOp {
                                    pc: fetch_addr,
                                    idx: fetch_idx,
                                    seq,
                                    resolution: None,
                                };
                            }
                            ex = Slot::Insn(window[0]);
                            dc = Slot::Insn(window[1]);
                            fe = Slot::Insn(window[2]);
                            fetch_pc = base + (fi + k as u32) * INSN_BYTES;
                            continue;
                        }
                    }
                }
            }

            // -------------------------------------------------------------
            // Reference-structured cycle (block boundaries, redirects,
            // drains, halts) — micro-op-driven twin of `run_core`'s body.
            // -------------------------------------------------------------
            if let Some(ctl) = irq.as_mut() {
                // Exactly once per cycle: the burst path above ticked the
                // controller per burst cycle and `continue`d.
                ctl.begin_cycle(cycle_count);
            }
            let mut writeback_activity = None;
            let mut finished = false;
            if let Some(entry) = wb.as_ref() {
                if let Some(rd) = entry.rd {
                    regs.write(rd, entry.value);
                    writeback_activity = Some(WbActivity {
                        rd,
                        value: entry.value,
                    });
                }
                retired += 1;
                if exit_seq == Some(entry.seq) {
                    finished = true;
                }
            }

            let mut mem_return = None;
            let mut ctrl_entry = ctrl;
            if let Slot::Insn(entry) = &mut ctrl_entry {
                match entry.mem {
                    Some(MemOp::Store { address, value }) => {
                        store_pre(
                            memory,
                            irq.as_mut(),
                            &ops[entry.idx as usize],
                            address,
                            value,
                        )?;
                    }
                    Some(MemOp::Load { address }) => {
                        let value =
                            load_pre(memory, irq.as_mut(), &ops[entry.idx as usize], address)?;
                        entry.value = value;
                        mem_return = Some(value);
                    }
                    None => {}
                }
            }

            let mut exec_activity = None;
            let mut ex_redirect: Option<u32> = None;
            let next_ctrl: Slot<CtrlOp> = match ex {
                Slot::Bubble(kind) => Slot::Bubble(kind),
                Slot::Insn(fetched) => {
                    let op = &ops[fetched.idx as usize];

                    if op.ctl == CtlKind::Exit {
                        halting = true;
                        exit_seq = Some(fetched.seq);
                    }

                    let (a, fwd_a) = resolve_operand_pre(op.ra, &ctrl_entry, &wb, regs);
                    let (rb_value, fwd_b) = resolve_operand_pre(op.rb, &ctrl_entry, &wb, regs);
                    let b = op.op_b_imm.unwrap_or(rb_value);
                    let outcome = predecode::exec_alu(op.alu, a, b, flag, carry);

                    if let Some(new_flag) = outcome.flag {
                        flag = new_flag;
                    }
                    if let Some(new_carry) = outcome.carry {
                        carry = new_carry;
                    }

                    let mut value = outcome.result;
                    let mut rd = op.rd;
                    let mut branch = fetched.resolution;
                    match op.ctl {
                        CtlKind::Jump { link: true } => {
                            rd = Some(Reg::LINK);
                            value = fetched.pc.wrapping_add(8);
                        }
                        CtlKind::JumpReg { link } => {
                            if link {
                                rd = Some(Reg::LINK);
                                value = fetched.pc.wrapping_add(8);
                            }
                            ex_redirect = Some(rb_value);
                            branch = Some(BranchActivity {
                                taken: true,
                                target: rb_value,
                                resolved_in: Stage::Execute,
                            });
                        }
                        CtlKind::Rfe => {
                            // Twin of the reference loop's `Opcode::Rfe`
                            // arm: resolve to the saved PC, or no-op when
                            // no handler is active.
                            if let Some(target) =
                                irq.as_mut().and_then(InterruptController::rfe_retire)
                            {
                                ex_redirect = Some(target);
                                branch = Some(BranchActivity {
                                    taken: true,
                                    target,
                                    resolved_in: Stage::Execute,
                                });
                            }
                        }
                        _ => {}
                    }

                    let mem = mem_op_for(op, &outcome, rb_value);
                    let mem_request = mem.map(|m| mem_request_for(op, m));

                    exec_activity = Some(ExecActivity {
                        pc: fetched.pc,
                        insn: op.insn,
                        op_a: a,
                        op_b: b,
                        result: value,
                        carry_chain: predecode::adder_chain(op.adder, a, b, carry),
                        mul_active: op.is_mul,
                        mul_bits: mul_bits_pre(op.is_mul, a, b),
                        shift_amount: if op.is_shift { (b & 0x1F) as u8 } else { 0 },
                        forward_a: fwd_a,
                        forward_b: fwd_b,
                        flag_written: outcome.flag,
                        branch,
                        mem_request,
                    });

                    Slot::Insn(CtrlOp {
                        pc: fetched.pc,
                        idx: fetched.idx,
                        seq: fetched.seq,
                        rd,
                        value,
                        mem,
                    })
                }
            };

            let mut dc_redirect: Option<u32> = None;
            let mut dc_out = dc;
            if let Slot::Insn(fetched) = &mut dc_out {
                let op = &ops[fetched.idx as usize];
                let taken = match op.ctl {
                    CtlKind::Jump { .. } => Some(true),
                    CtlKind::BranchIfFlag => Some(flag),
                    CtlKind::BranchIfNotFlag => Some(!flag),
                    _ => None,
                };
                if let Some(taken) = taken {
                    let target = fetched.pc.wrapping_add(op.branch_disp);
                    fetched.resolution = Some(BranchActivity {
                        taken,
                        target,
                        resolved_in: Stage::Decode,
                    });
                    if taken {
                        dc_redirect = Some(target);
                    }
                }
            }

            let effective_fetch = dc_redirect.unwrap_or(fetch_pc);
            let mut fetch_redirected = dc_redirect.is_some() || ex_redirect.is_some();
            let mut fetch_address = effective_fetch;

            // Exception entry — twin of the reference loop's accept logic.
            let mut irq_entry_cycle = false;
            if let Some(ctl) = irq.as_mut() {
                if ctl.entry_pending() {
                    ctl.entry_tick();
                    irq_entry_cycle = true;
                    fetch_address = ctl.vector();
                } else if !halting
                    && dc_redirect.is_none()
                    && ex_redirect.is_none()
                    && ctl.takeable()
                    && in_range(effective_fetch)
                    && slot_plain_op(ops, &fe)
                    && slot_plain_op(ops, &dc_out)
                {
                    ctl.accept(effective_fetch);
                    irq_entry_cycle = true;
                    fetch_address = ctl.vector();
                    fetch_redirected = true;
                }
            }

            let new_fe: Slot<FetchedOp> = if irq_entry_cycle {
                Slot::Bubble(BubbleKind::IrqEntry)
            } else if halting {
                Slot::Bubble(BubbleKind::Drain)
            } else if ex_redirect.is_some() {
                Slot::Bubble(BubbleKind::Flush)
            } else if in_range(effective_fetch) {
                let idx = pre.fetch_index(effective_fetch)?;
                let seq = seq_counter;
                seq_counter += 1;
                Slot::Insn(FetchedOp {
                    pc: effective_fetch,
                    idx,
                    seq,
                    resolution: None,
                })
            } else {
                Slot::Bubble(BubbleKind::Drain)
            };

            let adr_occupant = if irq_entry_cycle {
                Occupant::Bubble(BubbleKind::IrqEntry)
            } else if let (Some(_), Slot::Insn(f)) = (dc_redirect, &dc_out) {
                Occupant::Insn {
                    pc: f.pc,
                    insn: ops[f.idx as usize].insn,
                    seq: f.seq,
                }
            } else if halting {
                Occupant::Bubble(BubbleKind::Drain)
            } else if in_range(effective_fetch) {
                Occupant::Insn {
                    pc: effective_fetch,
                    insn: ops[pre.fetch_index(effective_fetch)? as usize].insn,
                    seq: seq_counter,
                }
            } else {
                Occupant::Bubble(BubbleKind::Drain)
            };

            let record = CycleRecord {
                cycle: cycle_count,
                stages: [
                    adr_occupant,
                    fetched_op_slot_occupant(ops, &fe),
                    fetched_op_slot_occupant(ops, &dc_out),
                    fetched_op_slot_occupant(ops, &ex),
                    ctrl_op_occupant(ops, &ctrl_entry),
                    wb_op_occupant(ops, &wb),
                ],
                exec: exec_activity,
                mem_return,
                writeback: writeback_activity,
                fetch_address,
                fetch_redirected,
                stalled: false,
                irq_phase: irq_phase_of(irq.as_ref(), irq_entry_cycle),
            };
            cycle_count += 1;
            for observer in observers.iter_mut() {
                observer.observe_cycle(&record);
            }
            drain_events(irq.as_mut(), observers);

            if finished {
                break;
            }

            wb = match ctrl_entry {
                Slot::Insn(e) => Slot::Insn(WbOp {
                    pc: e.pc,
                    idx: e.idx,
                    seq: e.seq,
                    rd: e.rd,
                    value: e.value,
                }),
                Slot::Bubble(kind) => Slot::Bubble(kind),
            };
            ctrl = next_ctrl;
            if halting {
                ex = Slot::Bubble(BubbleKind::Drain);
                dc = Slot::Bubble(BubbleKind::Drain);
                fe = Slot::Bubble(BubbleKind::Drain);
            } else {
                ex = dc_out;
                dc = if ex_redirect.is_some() {
                    Slot::Bubble(BubbleKind::Flush)
                } else {
                    fe
                };
                fe = new_fe;
            }

            if irq_entry_cycle {
                fetch_pc = fetch_address;
            } else if let Some(target) = ex_redirect {
                fetch_pc = target;
            } else if let Some(target) = dc_redirect {
                fetch_pc = target.wrapping_add(INSN_BYTES);
            } else if !halting && in_range(effective_fetch) {
                fetch_pc = effective_fetch.wrapping_add(INSN_BYTES);
            }

            if !halting
                && !in_range(fetch_pc)
                && fe.is_bubble()
                && dc.is_bubble()
                && ex.is_bubble()
                && ctrl.is_bubble()
                && wb.is_bubble()
            {
                break;
            }
        }

        if cycle_count >= self.config.max_cycles {
            return Err(PipelineError::CycleLimitExceeded {
                limit: self.config.max_cycles,
            });
        }

        let summary = RunSummary {
            cycles: cycle_count,
            retired,
        };
        for observer in observers.iter_mut() {
            observer.finish(&summary);
        }
        buffers.flag = flag;
        buffers.carry = carry;
        Ok(summary)
    }
}

/// `true` when the reference-engine slot holds a bubble or a *plain*
/// instruction — no control flow, not the exit marker. The interrupt-accept
/// guard requires plain-or-bubble fetch/decode slots so that nothing
/// in flight can redirect or halt during the entry flush; this is the
/// reference-engine twin of [`MicroOp::is_plain`] (pinned equivalent by the
/// differential suite).
fn slot_plain(slot: &Slot<Fetched>) -> bool {
    match slot {
        Slot::Bubble(_) => true,
        Slot::Insn(f) => {
            let opcode = f.insn.opcode();
            !(matches!(
                opcode,
                Opcode::J
                    | Opcode::Jal
                    | Opcode::Jr
                    | Opcode::Jalr
                    | Opcode::Bf
                    | Opcode::Bnf
                    | Opcode::Rfe
            ) || (opcode == Opcode::Nop && f.insn.imm() == Some(i32::from(NOP_EXIT))))
        }
    }
}

/// Predecoded-engine twin of [`slot_plain`].
fn slot_plain_op(ops: &[MicroOp], slot: &Slot<FetchedOp>) -> bool {
    match slot {
        Slot::Bubble(_) => true,
        Slot::Insn(f) => ops[f.idx as usize].is_plain(),
    }
}

/// The live interrupt phase of the cycle being recorded: entry-flush cycles
/// (accept plus the injected bubbles), then handler cycles up to and
/// including the one where `l.rfe` resolved. Digest replay re-derives the
/// identical classification from the event stream.
fn irq_phase_of(ctl: Option<&InterruptController>, entry_cycle: bool) -> IrqPhase {
    match ctl {
        Some(_) if entry_cycle => IrqPhase::Entry,
        Some(ctl) if ctl.in_handler() || ctl.returned_this_cycle() => IrqPhase::Handler,
        _ => IrqPhase::None,
    }
}

/// Streams the controller's per-cycle events to every observer (after the
/// cycle's `observe_cycle`, in within-cycle order) and clears them.
fn drain_events(irq: Option<&mut InterruptController>, observers: &mut [&mut dyn CycleObserver]) {
    let Some(ctl) = irq else { return };
    for i in 0..ctl.cycle_events().len() {
        let event = ctl.cycle_events()[i];
        for observer in observers.iter_mut() {
            observer.observe_event(&event);
        }
    }
    ctl.clear_cycle_events();
}

fn redirect_source(dc_out: &Slot<Fetched>, dc_redirect: Option<u32>) -> Option<Occupant> {
    let target = dc_redirect?;
    let fetched = dc_out.as_ref()?;
    let _ = target;
    Some(Occupant::Insn {
        pc: fetched.pc,
        insn: fetched.insn,
        seq: fetched.seq,
    })
}

fn slot_occupant(slot: &Slot<Fetched>) -> Occupant {
    slot_occupant_fetched(slot)
}

fn slot_occupant_fetched(slot: &Slot<Fetched>) -> Occupant {
    match slot {
        Slot::Insn(f) => Occupant::Insn {
            pc: f.pc,
            insn: f.insn,
            seq: f.seq,
        },
        Slot::Bubble(kind) => Occupant::Bubble(*kind),
    }
}

fn slot_occupant_ctrl(slot: &Slot<CtrlEntry>) -> Occupant {
    match slot {
        Slot::Insn(e) => Occupant::Insn {
            pc: e.pc,
            insn: e.insn,
            seq: e.seq,
        },
        Slot::Bubble(kind) => Occupant::Bubble(*kind),
    }
}

fn slot_occupant_wb(slot: &Slot<WbEntry>) -> Occupant {
    match slot {
        Slot::Insn(e) => Occupant::Insn {
            pc: e.pc,
            insn: e.insn,
            seq: e.seq,
        },
        Slot::Bubble(kind) => Occupant::Bubble(*kind),
    }
}

fn fetched_op_occupant(ops: &[MicroOp], f: &FetchedOp) -> Occupant {
    Occupant::Insn {
        pc: f.pc,
        insn: ops[f.idx as usize].insn,
        seq: f.seq,
    }
}

fn fetched_op_slot_occupant(ops: &[MicroOp], slot: &Slot<FetchedOp>) -> Occupant {
    match slot {
        Slot::Insn(f) => fetched_op_occupant(ops, f),
        Slot::Bubble(kind) => Occupant::Bubble(*kind),
    }
}

fn ctrl_op_occupant(ops: &[MicroOp], slot: &Slot<CtrlOp>) -> Occupant {
    match slot {
        Slot::Insn(e) => Occupant::Insn {
            pc: e.pc,
            insn: ops[e.idx as usize].insn,
            seq: e.seq,
        },
        Slot::Bubble(kind) => Occupant::Bubble(*kind),
    }
}

fn wb_op_occupant(ops: &[MicroOp], slot: &Slot<WbOp>) -> Occupant {
    match slot {
        Slot::Insn(e) => Occupant::Insn {
            pc: e.pc,
            insn: ops[e.idx as usize].insn,
            seq: e.seq,
        },
        Slot::Bubble(kind) => Occupant::Bubble(*kind),
    }
}

fn resolve_operand_pre(
    reg: Option<Reg>,
    ctrl: &Slot<CtrlOp>,
    wb: &Slot<WbOp>,
    regs: &RegisterFile,
) -> (u32, Option<ForwardSource>) {
    let Some(reg) = reg else { return (0, None) };
    if reg.is_zero() {
        return (0, None);
    }
    if let Some(entry) = ctrl.as_ref() {
        if entry.rd == Some(reg) {
            return (entry.value, Some(ForwardSource::Control));
        }
    }
    if let Some(entry) = wb.as_ref() {
        if entry.rd == Some(reg) {
            return (entry.value, Some(ForwardSource::Writeback));
        }
    }
    (regs.read(reg), None)
}

fn mem_op_for(op: &MicroOp, outcome: &alu::AluOutcome, rb_value: u32) -> Option<MemOp> {
    if op.mem.is_load() {
        Some(MemOp::Load {
            address: outcome.address.unwrap_or(0),
        })
    } else if op.mem.is_store() {
        Some(MemOp::Store {
            address: outcome.address.unwrap_or(0),
            value: rb_value,
        })
    } else {
        None
    }
}

fn mem_request_for(op: &MicroOp, mem: MemOp) -> MemRequest {
    match mem {
        MemOp::Load { address } => MemRequest {
            address,
            width: op.mem_width,
            is_store: false,
            value: 0,
        },
        MemOp::Store { address, value } => MemRequest {
            address,
            width: op.mem_width,
            is_store: true,
            value,
        },
    }
}

fn mul_bits_pre(is_mul: bool, a: u32, b: u32) -> u8 {
    if is_mul {
        let bits_a = 32 - a.leading_zeros();
        let bits_b = 32 - b.leading_zeros();
        bits_a.max(bits_b) as u8
    } else {
        0
    }
}

fn load_pre(
    memory: &Memory,
    irq: Option<&mut InterruptController>,
    op: &MicroOp,
    address: u32,
) -> Result<u32, PipelineError> {
    use crate::predecode::MemKind;
    // Only aligned *word* accesses route to the MMIO window; sub-word and
    // unaligned accesses inside it fall through to the data memory, whose
    // bounds checks reject them with the usual structured errors.
    if let Some(ctl) = irq {
        if op.mem == MemKind::LoadWord && is_mmio(address) {
            return ctl.mmio_load(address);
        }
    }
    Ok(match op.mem {
        MemKind::LoadWord => memory.load_word(address)?,
        MemKind::LoadHalf { signed: false } => u32::from(memory.load_half(address)?),
        MemKind::LoadHalf { signed: true } => memory.load_half(address)? as i16 as i32 as u32,
        MemKind::LoadByte { signed: false } => u32::from(memory.load_byte(address)?),
        MemKind::LoadByte { signed: true } => memory.load_byte(address)? as i8 as i32 as u32,
        _ => 0,
    })
}

fn store_pre(
    memory: &mut Memory,
    irq: Option<&mut InterruptController>,
    op: &MicroOp,
    address: u32,
    value: u32,
) -> Result<(), PipelineError> {
    use crate::predecode::MemKind;
    if let Some(ctl) = irq {
        if op.mem == MemKind::StoreWord && is_mmio(address) {
            return ctl.mmio_store(address, value);
        }
    }
    match op.mem {
        MemKind::StoreWord => memory.store_word(address, value),
        MemKind::StoreHalf => memory.store_half(address, value as u16),
        MemKind::StoreByte => memory.store_byte(address, value as u8),
        _ => Ok(()),
    }
}

fn resolve_operand(
    reg: Option<Reg>,
    ctrl: &Slot<CtrlEntry>,
    wb: &Slot<WbEntry>,
    regs: &RegisterFile,
) -> (u32, Option<ForwardSource>) {
    let Some(reg) = reg else { return (0, None) };
    if reg.is_zero() {
        return (0, None);
    }
    if let Some(entry) = ctrl.as_ref() {
        if entry.rd == Some(reg) {
            return (entry.value, Some(ForwardSource::Control));
        }
    }
    if let Some(entry) = wb.as_ref() {
        if entry.rd == Some(reg) {
            return (entry.value, Some(ForwardSource::Writeback));
        }
    }
    (regs.read(reg), None)
}

fn adder_chain(opcode: Opcode, a: u32, b: u32, carry: bool) -> u8 {
    match opcode {
        Opcode::Add | Opcode::Addi => alu::carry_chain(a, b, false),
        Opcode::Addc | Opcode::Addic => alu::carry_chain(a, b, carry),
        Opcode::Sub | Opcode::Sf(_) | Opcode::Sfi(_) => alu::carry_chain(a, !b, true),
        op if op.is_mem() => alu::carry_chain(a, b, false),
        _ => 0,
    }
}

fn mul_bits(opcode: Opcode, a: u32, b: u32) -> u8 {
    match opcode {
        Opcode::Mul | Opcode::Mulu | Opcode::Muli => {
            let bits_a = 32 - a.leading_zeros();
            let bits_b = 32 - b.leading_zeros();
            bits_a.max(bits_b) as u8
        }
        _ => 0,
    }
}

fn shift_amount(opcode: Opcode, b: u32) -> u8 {
    match opcode.timing_class() {
        idca_isa::TimingClass::Shift => (b & 0x1F) as u8,
        _ => 0,
    }
}

fn load(
    memory: &Memory,
    irq: Option<&mut InterruptController>,
    opcode: Opcode,
    address: u32,
) -> Result<u32, PipelineError> {
    if let Some(ctl) = irq {
        if matches!(opcode, Opcode::Lwz | Opcode::Lws) && is_mmio(address) {
            return ctl.mmio_load(address);
        }
    }
    Ok(match opcode {
        Opcode::Lwz | Opcode::Lws => memory.load_word(address)?,
        Opcode::Lhz => u32::from(memory.load_half(address)?),
        Opcode::Lhs => memory.load_half(address)? as i16 as i32 as u32,
        Opcode::Lbz => u32::from(memory.load_byte(address)?),
        Opcode::Lbs => memory.load_byte(address)? as i8 as i32 as u32,
        _ => 0,
    })
}

fn store(
    memory: &mut Memory,
    irq: Option<&mut InterruptController>,
    opcode: Opcode,
    address: u32,
    value: u32,
) -> Result<(), PipelineError> {
    if let Some(ctl) = irq {
        if opcode == Opcode::Sw && is_mmio(address) {
            return ctl.mmio_store(address, value);
        }
    }
    match opcode {
        Opcode::Sw => memory.store_word(address, value),
        Opcode::Sh => memory.store_half(address, value as u16),
        Opcode::Sb => memory.store_byte(address, value as u8),
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Interpreter;
    use idca_isa::asm::Assembler;

    fn assemble(src: &str) -> Program {
        Assembler::new().assemble(src).expect("assembles")
    }

    fn run(src: &str) -> SimResult {
        Simulator::new(SimConfig::default())
            .run(&assemble(src))
            .expect("runs")
    }

    #[test]
    fn straight_line_arithmetic_matches_interpreter() {
        let src = "l.addi r3, r0, 6\n l.addi r4, r0, 7\n l.mul r5, r3, r4\n\
                   l.add r6, r5, r3\n l.sub r7, r5, r4\n l.nop 1\n";
        let sim = run(src);
        let golden = Interpreter::new().run(&assemble(src)).unwrap();
        assert_eq!(sim.state.regs.as_array(), golden.regs.as_array());
    }

    #[test]
    fn forwarding_handles_back_to_back_dependencies() {
        // Each instruction depends on the previous one; without forwarding
        // the results would be stale.
        let sim = run("l.addi r3, r0, 1\n l.add r3, r3, r3\n l.add r3, r3, r3\n\
             l.add r3, r3, r3\n l.add r3, r3, r3\n l.nop 1\n");
        assert_eq!(sim.state.reg(Reg::r(3)), 16);
    }

    #[test]
    fn load_use_is_forwarded_from_control_stage() {
        let sim = run("l.addi r1, r0, 0x40\n l.addi r3, r0, 99\n l.sw 0(r1), r3\n\
             l.lwz r4, 0(r1)\n l.add r5, r4, r4\n l.nop 1\n");
        assert_eq!(sim.state.reg(Reg::r(4)), 99);
        assert_eq!(sim.state.reg(Reg::r(5)), 198);
    }

    #[test]
    fn loop_with_branch_and_delay_slot() {
        let src = "        l.addi r3, r0, 5
                           l.addi r4, r0, 0
                   loop:   l.add  r4, r4, r3
                           l.addi r3, r3, -1
                           l.sfne r3, r0
                           l.bf   loop
                           l.nop  0
                           l.nop  1";
        let sim = run(src);
        assert_eq!(sim.state.reg(Reg::r(4)), 15);
        let golden = Interpreter::new().run(&assemble(src)).unwrap();
        assert_eq!(sim.state.regs.as_array(), golden.regs.as_array());
    }

    #[test]
    fn taken_branches_cost_no_extra_bubbles() {
        // A tight loop should sustain close to one instruction per cycle:
        // the branch is resolved in decode and the delay slot is useful.
        let src = "        l.addi r3, r0, 200
                   loop:   l.addi r3, r3, -1
                           l.sfne r3, r0
                           l.bf   loop
                           l.nop  0
                           l.nop  1";
        let sim = run(src);
        let ipc = sim.trace.ipc();
        assert!(ipc > 0.9, "expected IPC close to 1, got {ipc}");
    }

    #[test]
    fn jal_and_jr_round_trip() {
        let src = "        l.jal  func
                           l.addi r3, r0, 1
                           l.addi r4, r0, 2
                           l.nop  1
                   func:   l.addi r5, r0, 3
                           l.jr   r9
                           l.addi r6, r0, 4";
        let sim = run(src);
        let golden = Interpreter::new().run(&assemble(src)).unwrap();
        assert_eq!(sim.state.regs.as_array(), golden.regs.as_array());
        assert_eq!(sim.state.reg(Reg::r(4)), 2);
    }

    #[test]
    fn memory_state_matches_interpreter() {
        let src = "        l.addi r1, r0, 0x100
                           l.addi r3, r0, 0
                           l.addi r5, r0, 8
                   loop:   l.slli r6, r3, 2
                           l.add  r6, r6, r1
                           l.mul  r7, r3, r3
                           l.sw   0(r6), r7
                           l.addi r3, r3, 1
                           l.sfne r3, r5
                           l.bf   loop
                           l.nop  0
                           l.nop  1";
        let sim = run(src);
        let golden = Interpreter::new().run(&assemble(src)).unwrap();
        for i in 0..8u32 {
            let addr = 0x100 + i * 4;
            assert_eq!(
                sim.state.memory.load_word(addr).unwrap(),
                golden.memory.load_word(addr).unwrap(),
                "mismatch at data address {addr:#x}"
            );
            assert_eq!(sim.state.memory.load_word(addr).unwrap(), i * i);
        }
    }

    #[test]
    fn trace_records_every_stage_every_cycle() {
        let sim = run("l.addi r3, r0, 1\n l.addi r4, r0, 2\n l.add r5, r3, r4\n l.nop 1\n");
        assert!(!sim.trace.cycles().is_empty());
        for record in sim.trace.cycles() {
            assert_eq!(record.stages.len(), Stage::COUNT);
        }
        // The first instruction must appear in the execute stage at some point.
        let saw_add = sim
            .trace
            .cycles()
            .iter()
            .any(|c| c.timing_class(Stage::Execute) == idca_isa::TimingClass::Add);
        assert!(saw_add);
    }

    #[test]
    fn exec_activity_reports_multiplier_usage() {
        let sim = run("l.addi r3, r0, 300\n l.addi r4, r0, 70\n l.mul r5, r3, r4\n l.nop 1\n");
        let mul_cycles: Vec<_> = sim
            .trace
            .cycles()
            .iter()
            .filter_map(|c| c.exec.as_ref())
            .filter(|e| e.mul_active)
            .collect();
        assert_eq!(mul_cycles.len(), 1);
        assert!(mul_cycles[0].mul_bits >= 9);
        assert_eq!(mul_cycles[0].result, 21000);
    }

    #[test]
    fn branch_activity_reports_decode_resolution() {
        let sim = run("        l.sfeq r0, r0
                     l.bf   target
                     l.nop  0
                     l.addi r3, r0, 9
             target: l.addi r4, r0, 7
                     l.nop  1");
        let branch = sim
            .trace
            .cycles()
            .iter()
            .filter_map(|c| c.exec.as_ref())
            .find_map(|e| e.branch)
            .expect("branch recorded");
        assert!(branch.taken);
        assert_eq!(branch.resolved_in, Stage::Decode);
        // The skipped instruction must not have executed.
        assert_eq!(sim.state.reg(Reg::r(3)), 0);
        assert_eq!(sim.state.reg(Reg::r(4)), 7);
    }

    #[test]
    fn program_without_exit_marker_drains_naturally() {
        let sim = run("l.addi r3, r0, 4\n l.add r4, r3, r3\n");
        assert_eq!(sim.state.reg(Reg::r(4)), 8);
    }

    #[test]
    fn cycle_limit_is_enforced() {
        let program = assemble("loop: l.j loop\n l.nop 0\n");
        let config = SimConfig {
            max_cycles: 50,
            ..SimConfig::default()
        };
        let err = Simulator::new(config).run(&program).unwrap_err();
        assert!(matches!(
            err,
            PipelineError::CycleLimitExceeded { limit: 50 }
        ));
    }

    #[test]
    fn store_then_load_ordering_is_preserved() {
        let sim = run("l.addi r1, r0, 0x80\n l.addi r3, r0, 5\n l.sw 0(r1), r3\n\
             l.addi r3, r0, 6\n l.sw 0(r1), r3\n l.lwz r4, 0(r1)\n l.nop 1\n");
        assert_eq!(sim.state.reg(Reg::r(4)), 6);
    }

    /// A loop workload long enough for several timer entries and storm
    /// raises, with memory traffic and branches in flight.
    fn irq_workload() -> Program {
        assemble(
            "        l.addi r3, r0, 40
                     l.addi r5, r0, 0
             loop:   l.mul  r4, r3, r3
                     l.sw   0(r0), r4
                     l.lwz  r6, 0(r0)
                     l.add  r5, r5, r6
                     l.addi r3, r3, -1
                     l.sfne r3, r0
                     l.bf   loop
                     l.nop  0
                     l.nop  1",
        )
    }

    #[test]
    fn interrupt_runs_are_bit_identical_across_engines() {
        let spec =
            crate::InterruptSpec::parse("timer=23,rate=0.01,seed=11,penalty=3").expect("spec");
        let (program, plan) = crate::InterruptPlan::attach(&irq_workload(), &spec);
        let sim = Simulator::new(SimConfig::default()).with_interrupts(plan);

        let mut reference = DigestObserver::new();
        let ref_run = sim
            .run_observed_reference(&program, &mut [&mut reference])
            .expect("reference runs");

        let pre = crate::PredecodedProgram::lower(&program);
        let mut predecoded = DigestObserver::new();
        let pre_run = sim
            .run_observed_predecoded(&pre, &mut [&mut predecoded])
            .expect("predecoded runs");

        // Fused burst capture (lone hinted digest observer) third.
        let mut fused = DigestObserver::with_hints(pre.digest_hints());
        let fused_run = sim
            .run_observed_predecoded(&pre, &mut [&mut fused])
            .expect("fused runs");

        assert_eq!(ref_run.summary, pre_run.summary);
        assert_eq!(ref_run.summary, fused_run.summary);
        for r in 0..32 {
            let reg = Reg::r(r);
            assert_eq!(ref_run.state.reg(reg), pre_run.state.reg(reg), "r{r}");
        }
        let reference = reference.into_digest();
        let predecoded = predecoded.into_digest();
        let fused = fused.into_digest();
        assert!(
            reference
                .events()
                .iter()
                .any(|e| matches!(e.kind, crate::DigestEventKind::IrqEntry { .. })),
            "scenario produced no interrupt entries"
        );
        assert_eq!(reference.to_bytes(), predecoded.to_bytes());
        assert_eq!(reference.to_bytes(), fused.to_bytes());
    }

    #[test]
    fn interrupt_entry_injects_penalty_bubbles_and_returns() {
        let spec = crate::InterruptSpec::parse("timer=15,penalty=4").expect("spec");
        let (program, plan) = crate::InterruptPlan::attach(&irq_workload(), &spec);
        let sim = Simulator::new(SimConfig::default()).with_interrupts(plan);
        let mut trace = PipelineTrace::default();
        sim.run_observed(&program, &mut [&mut trace]).expect("runs");

        let cycles = trace.cycles();
        let entry_spans: Vec<_> = cycles
            .iter()
            .filter(|c| c.irq_phase == IrqPhase::Entry)
            .collect();
        assert!(!entry_spans.is_empty());
        // Entry cycles come in runs of exactly `penalty`, fetching the
        // handler vector with a dead (bubbled) fetch stage.
        let first_entry = cycles
            .iter()
            .position(|c| c.irq_phase == IrqPhase::Entry)
            .expect("an entry");
        for offset in 0..4 {
            let record = &cycles[first_entry + offset];
            assert_eq!(record.irq_phase, IrqPhase::Entry, "offset {offset}");
            assert_eq!(record.fetch_address, plan.vector());
            assert!(matches!(
                record.stages[Stage::Address as usize],
                Occupant::Bubble(BubbleKind::IrqEntry)
            ));
        }
        assert_eq!(cycles[first_entry + 4].irq_phase, IrqPhase::Handler);
        // The handler runs and returns: phases go back to None afterwards.
        let after = &cycles[first_entry..];
        assert!(after.iter().any(|c| c.irq_phase == IrqPhase::None));
        // The run still retires the full workload and exits cleanly.
        assert_eq!(
            cycles.last().expect("cycles").irq_phase,
            IrqPhase::None,
            "program must exit in user code"
        );
    }

    #[test]
    fn inactive_interrupt_plan_changes_nothing_downstream() {
        // A spec that never raises still attaches a controller; driving it
        // must leave the cycle stream of the (handler-augmented) image
        // bit-identical to running the same image with no controller at
        // all, with an empty event stream. (Interrupt-free sweeps skip the
        // attach entirely, so their images are untouched; this pins the
        // controller itself as a no-op when silent.)
        let spec = crate::InterruptSpec::default();
        assert!(!spec.active());
        let (augmented, plan) = crate::InterruptPlan::attach(&irq_workload(), &spec);
        let with_plan = Simulator::new(SimConfig::default()).with_interrupts(plan);
        let plain = Simulator::new(SimConfig::default());

        let mut d_plan = DigestObserver::new();
        let r_plan = with_plan
            .run_observed(&augmented, &mut [&mut d_plan])
            .expect("runs");
        let mut d_plain = DigestObserver::new();
        let r_plain = plain
            .run_observed(&augmented, &mut [&mut d_plain])
            .expect("runs");
        assert_eq!(r_plan.summary, r_plain.summary);
        let d_plan = d_plan.into_digest();
        assert!(d_plan.events().is_empty());
        assert_eq!(d_plan.to_bytes(), d_plain.into_digest().to_bytes());
    }
}
