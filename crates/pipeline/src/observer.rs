//! Streaming cycle observers.
//!
//! The paper's tool flow is a chain of per-cycle analyses — gate-level-style
//! trace, dynamic timing analysis, clock-policy evaluation, power — and every
//! one of them only ever needs the *current* cycle. A [`CycleObserver`]
//! receives each [`CycleRecord`] as the simulator produces it
//! ([`crate::Simulator::run_observed`]), so a workload is simulated once and
//! all downstream analyses run in the same pass, with no full-trace
//! materialization on the hot path. Materializing a [`crate::PipelineTrace`]
//! is just another observer (used by tests and serialization).

use crate::{CycleRecord, DigestEvent, DigestObserver};

/// Run totals handed to every observer when the simulation finishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunSummary {
    /// Number of simulated cycles (equals the number of observed records).
    pub cycles: u64,
    /// Architecturally retired instructions.
    pub retired: u64,
}

/// A streaming consumer of per-cycle pipeline records.
///
/// Observers are driven by [`crate::Simulator::run_observed`]: one
/// [`CycleObserver::observe_cycle`] call per simulated cycle, in execution
/// order, followed by exactly one [`CycleObserver::finish`] call carrying
/// the run totals.
pub trait CycleObserver {
    /// Consumes the record of one simulated cycle.
    fn observe_cycle(&mut self, record: &CycleRecord);

    /// Consumes one asynchronous event (interrupt entry/return, timer
    /// fire, MMIO touch). Delivered after the [`CycleObserver::observe_cycle`]
    /// call of the cycle the event occurred in, in within-cycle order.
    /// Interrupt-free runs never call this; the default ignores events.
    fn observe_event(&mut self, event: &DigestEvent) {
        let _ = event;
    }

    /// Called once after the last cycle with the run totals.
    fn finish(&mut self, summary: &RunSummary) {
        let _ = summary;
    }

    /// Internal fast-path hook: the hinted [`DigestObserver`] behind this
    /// observer, if there is one. When a hinted digest capture is the *only*
    /// observer of a predecoded run, the simulator folds hazard-free
    /// basic-block burst cycles straight into the digest without
    /// materializing a [`CycleRecord`] per cycle. Capture through either
    /// path is bit-identical (pinned by the digest and differential tests).
    /// Adapters that filter or reorder cycles (e.g. `TakeObserver`) must
    /// keep the default `None` so they always see the full record stream.
    #[doc(hidden)]
    fn as_hinted_digest(&mut self) -> Option<&mut DigestObserver> {
        None
    }
}

/// Forwarding impl so `&mut O` can be composed into observer slices.
impl<O: CycleObserver + ?Sized> CycleObserver for &mut O {
    fn observe_cycle(&mut self, record: &CycleRecord) {
        (**self).observe_cycle(record);
    }

    fn observe_event(&mut self, event: &DigestEvent) {
        (**self).observe_event(event);
    }

    fn finish(&mut self, summary: &RunSummary) {
        (**self).finish(summary);
    }

    fn as_hinted_digest(&mut self) -> Option<&mut DigestObserver> {
        (**self).as_hinted_digest()
    }
}

/// An observer adapter that forwards only the first `limit` cycles to its
/// inner observer — the streaming equivalent of truncating a materialized
/// trace (used e.g. to study LUTs built from deliberately short
/// characterizations).
#[derive(Debug, Clone)]
pub struct TakeObserver<O> {
    inner: O,
    limit: u64,
    seen: u64,
}

impl<O: CycleObserver> TakeObserver<O> {
    /// Wraps `inner`, forwarding at most `limit` cycles.
    #[must_use]
    pub fn new(inner: O, limit: u64) -> Self {
        TakeObserver {
            inner,
            limit,
            seen: 0,
        }
    }

    /// Consumes the adapter and returns the inner observer.
    #[must_use]
    pub fn into_inner(self) -> O {
        self.inner
    }
}

impl<O: CycleObserver> CycleObserver for TakeObserver<O> {
    fn observe_cycle(&mut self, record: &CycleRecord) {
        if self.seen < self.limit {
            self.seen += 1;
            self.inner.observe_cycle(record);
        }
    }

    fn observe_event(&mut self, event: &DigestEvent) {
        // Events of cycle N arrive after cycle N's record, so the inner
        // observer keeps a consistent truncated view.
        if event.cycle < self.limit {
            self.inner.observe_event(event);
        }
    }

    fn finish(&mut self, summary: &RunSummary) {
        // The inner observer saw `seen` cycles; clamp the totals so its view
        // stays consistent with what was forwarded.
        let truncated = RunSummary {
            cycles: self.seen,
            retired: summary.retired.min(self.seen),
        };
        self.inner.finish(&truncated);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BubbleKind, Occupant, Stage};

    #[derive(Default)]
    struct Counting {
        observed: u64,
        finished: Option<RunSummary>,
    }

    impl CycleObserver for Counting {
        fn observe_cycle(&mut self, _record: &CycleRecord) {
            self.observed += 1;
        }

        fn finish(&mut self, summary: &RunSummary) {
            self.finished = Some(*summary);
        }
    }

    fn record(cycle: u64) -> CycleRecord {
        CycleRecord {
            cycle,
            stages: [Occupant::Bubble(BubbleKind::Reset); Stage::COUNT],
            exec: None,
            mem_return: None,
            writeback: None,
            fetch_address: 0,
            fetch_redirected: false,
            stalled: false,
            irq_phase: crate::IrqPhase::None,
        }
    }

    #[test]
    fn take_observer_truncates_stream_and_summary() {
        let mut take = TakeObserver::new(Counting::default(), 3);
        for cycle in 0..10 {
            take.observe_cycle(&record(cycle));
        }
        take.finish(&RunSummary {
            cycles: 10,
            retired: 8,
        });
        let inner = take.into_inner();
        assert_eq!(inner.observed, 3);
        assert_eq!(
            inner.finished,
            Some(RunSummary {
                cycles: 3,
                retired: 3
            })
        );
    }

    #[test]
    fn mut_reference_forwards() {
        let mut counting = Counting::default();
        {
            let as_ref = &mut counting;
            as_ref.observe_cycle(&record(0));
            as_ref.finish(&RunSummary {
                cycles: 1,
                retired: 0,
            });
        }
        assert_eq!(counting.observed, 1);
        assert!(counting.finished.is_some());
    }
}
