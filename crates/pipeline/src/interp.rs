//! A simple architectural interpreter used as the golden reference model.
//!
//! The interpreter executes programs sequentially (with correct OpenRISC
//! delay-slot semantics) and is used by the test-suite to cross-check the
//! architectural state produced by the cycle-accurate pipeline simulator
//! (differential testing). It shares the instruction semantics of the
//! pipeline's execute stage through [`alu`].

use crate::predecode::{exec_alu, CtlKind, MemKind, PredecodedProgram};
use crate::{Memory, PipelineError, RegisterFile};
use idca_isa::{Program, Reg, INSN_BYTES};

pub(crate) mod alu {
    //! Shared instruction semantics used by both the interpreter and the
    //! pipeline simulator's execute stage.

    use idca_isa::{Insn, Opcode, SetFlagCond};

    /// Outcome of executing one instruction's data-path portion.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub(crate) struct AluOutcome {
        /// Result value headed for the destination register (if any).
        pub result: u32,
        /// New compare-flag value (if the instruction writes the flag).
        pub flag: Option<bool>,
        /// New carry value (if the instruction updates the carry bit).
        pub carry: Option<bool>,
        /// Effective address for loads/stores.
        pub address: Option<u32>,
    }

    /// Selects the second ALU operand: register `rB` or immediate.
    pub(crate) fn operand_b(insn: &Insn, rb_value: u32) -> u32 {
        match insn.opcode() {
            Opcode::Andi | Opcode::Ori => (insn.imm().unwrap_or(0) as u32) & 0xFFFF,
            Opcode::Addi
            | Opcode::Addic
            | Opcode::Xori
            | Opcode::Muli
            | Opcode::Sfi(_)
            | Opcode::Lwz
            | Opcode::Lws
            | Opcode::Lhz
            | Opcode::Lhs
            | Opcode::Lbz
            | Opcode::Lbs
            | Opcode::Sw
            | Opcode::Sh
            | Opcode::Sb => insn.imm().unwrap_or(0) as u32,
            Opcode::Slli | Opcode::Srli | Opcode::Srai | Opcode::Rori => {
                (insn.imm().unwrap_or(0) as u32) & 0x1F
            }
            Opcode::Movhi => (insn.imm().unwrap_or(0) as u32) & 0xFFFF,
            _ => rb_value,
        }
    }

    /// Longest carry-propagation run when computing `a + b + cin` on the
    /// main adder; a proxy for the dynamic depth of the adder path excited
    /// by the operands.
    ///
    /// Bit-parallel form of the per-bit recurrence (retained below as the
    /// test oracle [`carry_chain_reference`]): in the 33-bit sum
    /// `x = a + b + cin`, the vector `x ^ a ^ b` holds the carry *into*
    /// every bit position, and the per-bit run condition
    /// `generate | (propagate & carry_in)` is exactly the carry *out* of
    /// that bit — the carry-in vector shifted down by one. The metric is
    /// then the longest run of set bits in that mask.
    pub(crate) fn carry_chain(a: u32, b: u32, cin: bool) -> u8 {
        let x = u64::from(a) + u64::from(b) + u64::from(cin);
        let carries = x ^ u64::from(a) ^ u64::from(b);
        let mut mask = (carries >> 1) as u32;
        let mut best: u8 = 0;
        while mask != 0 {
            mask &= mask << 1;
            best += 1;
        }
        best
    }

    /// The original per-bit recurrence, kept as the oracle the bit-parallel
    /// [`carry_chain`] is pinned against.
    #[cfg(test)]
    pub(crate) fn carry_chain_reference(a: u32, b: u32, cin: bool) -> u8 {
        let mut carry = u32::from(cin);
        let mut run: u8 = 0;
        let mut best: u8 = 0;
        for bit in 0..32 {
            let ab = (a >> bit) & 1;
            let bb = (b >> bit) & 1;
            let generate = ab & bb;
            let propagate = ab ^ bb;
            let next_carry = generate | (propagate & carry);
            if (propagate == 1 && carry == 1) || generate == 1 {
                run += 1;
                best = best.max(run);
            } else {
                run = 0;
            }
            carry = next_carry;
        }
        best
    }

    /// Executes the data-path portion of an instruction.
    ///
    /// `a` is the resolved `rA` operand, `b` the resolved second operand
    /// (register or immediate, as selected by [`operand_b`]), `flag` and
    /// `carry` the current architectural flag/carry bits.
    pub(crate) fn execute(insn: &Insn, a: u32, b: u32, flag: bool, carry: bool) -> AluOutcome {
        let mut out = AluOutcome {
            result: 0,
            flag: None,
            carry: None,
            address: None,
        };
        match insn.opcode() {
            Opcode::Add | Opcode::Addi => {
                let (sum, c1) = a.overflowing_add(b);
                out.result = sum;
                out.carry = Some(c1);
            }
            Opcode::Addc | Opcode::Addic => {
                let (s1, c1) = a.overflowing_add(b);
                let (s2, c2) = s1.overflowing_add(u32::from(carry));
                out.result = s2;
                out.carry = Some(c1 || c2);
            }
            Opcode::Sub => {
                let (diff, borrow) = a.overflowing_sub(b);
                out.result = diff;
                out.carry = Some(borrow);
            }
            Opcode::And | Opcode::Andi => out.result = a & b,
            Opcode::Or | Opcode::Ori => out.result = a | b,
            Opcode::Xor | Opcode::Xori => out.result = a ^ b,
            Opcode::Mul | Opcode::Muli => {
                out.result = (a as i32).wrapping_mul(b as i32) as u32;
            }
            Opcode::Mulu => out.result = a.wrapping_mul(b),
            Opcode::Sll | Opcode::Slli => out.result = a.wrapping_shl(b & 0x1F),
            Opcode::Srl | Opcode::Srli => out.result = a.wrapping_shr(b & 0x1F),
            Opcode::Sra | Opcode::Srai => out.result = ((a as i32).wrapping_shr(b & 0x1F)) as u32,
            Opcode::Ror | Opcode::Rori => out.result = a.rotate_right(b & 0x1F),
            Opcode::Cmov => out.result = if flag { a } else { b },
            Opcode::Extbs => out.result = (a as u8 as i8) as i32 as u32,
            Opcode::Exths => out.result = (a as u16 as i16) as i32 as u32,
            Opcode::Movhi => out.result = b << 16,
            Opcode::Sf(cond) | Opcode::Sfi(cond) => {
                out.flag = Some(eval_cond(cond, a, b));
            }
            Opcode::Lwz
            | Opcode::Lws
            | Opcode::Lhz
            | Opcode::Lhs
            | Opcode::Lbz
            | Opcode::Lbs
            | Opcode::Sw
            | Opcode::Sh
            | Opcode::Sb => {
                out.address = Some(a.wrapping_add(b));
            }
            Opcode::Jal | Opcode::Jalr => {
                // Link value (pc + 8, past the delay slot) is provided by the
                // caller; the ALU itself produces nothing here.
            }
            // Remaining opcodes (jumps, branches, nop) produce no data-path
            // result; the wildcard also covers future additions to the
            // non-exhaustive `Opcode` enum.
            _ => {}
        }
        out
    }

    fn eval_cond(cond: SetFlagCond, a: u32, b: u32) -> bool {
        cond.eval(a, b)
    }
}

/// Result of running a program on the [`Interpreter`].
#[derive(Debug, Clone)]
pub struct InterpreterResult {
    /// Final register file contents.
    pub regs: RegisterFile,
    /// Final data memory contents.
    pub memory: Memory,
    /// Final compare-flag value.
    pub flag: bool,
    /// Number of architecturally executed instructions.
    pub retired: u64,
}

/// Sequential architectural reference model of the ISA subset.
///
/// # Example
///
/// ```
/// use idca_isa::asm::Assembler;
/// use idca_pipeline::Interpreter;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = Assembler::new().assemble(
///     "l.addi r3, r0, 21\n l.add r3, r3, r3\n l.nop 1\n",
/// )?;
/// let result = Interpreter::new().run(&program)?;
/// assert_eq!(result.regs.read(idca_isa::Reg::r(3)), 42);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Interpreter {
    data_memory_size: usize,
    max_instructions: u64,
}

impl Default for Interpreter {
    fn default() -> Self {
        Interpreter {
            data_memory_size: 64 * 1024,
            max_instructions: 10_000_000,
        }
    }
}

impl Interpreter {
    /// Creates an interpreter with a 64 KiB data memory and a 10 M
    /// instruction budget.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the data-memory size in bytes.
    #[must_use]
    pub fn with_data_memory_size(mut self, bytes: usize) -> Self {
        self.data_memory_size = bytes;
        self
    }

    /// Sets the maximum number of instructions to execute before giving up.
    #[must_use]
    pub fn with_max_instructions(mut self, limit: u64) -> Self {
        self.max_instructions = limit;
        self
    }

    /// Runs a program to completion (the `l.nop 1` exit marker) or until the
    /// program counter falls off the end of the image.
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError`] for invalid memory accesses, an
    /// out-of-range program counter or an exhausted instruction budget.
    pub fn run(&self, program: &Program) -> Result<InterpreterResult, PipelineError> {
        self.run_predecoded(&PredecodedProgram::lower(program))
    }

    /// [`Interpreter::run`] for a program already lowered to its
    /// [`PredecodedProgram`] form: dispatches straight from the micro-op
    /// table, sharing the lowering with the pipeline simulator.
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError`] like [`Interpreter::run`].
    pub fn run_predecoded(
        &self,
        pre: &PredecodedProgram,
    ) -> Result<InterpreterResult, PipelineError> {
        let mut regs = RegisterFile::new();
        let mut memory = Memory::new(self.data_memory_size);
        memory.load_image(pre.data())?;
        let mut flag = false;
        let mut carry = false;
        let base = pre.base_address();
        let end = pre.end_address();
        let ops = pre.ops();
        let mut pc = base;
        let mut retired: u64 = 0;
        // Target that takes effect after the delay-slot instruction.
        let mut pending_target: Option<u32> = None;

        loop {
            if retired >= self.max_instructions {
                return Err(PipelineError::CycleLimitExceeded {
                    limit: self.max_instructions,
                });
            }
            if pc < base || pc >= end {
                // Falling off the end of the image terminates execution,
                // mirroring the pipeline simulator's drain behaviour.
                break;
            }
            // In range but misaligned (a register jump can produce such a
            // PC): a structured error, matching the simulator's hardened
            // fetch path.
            let op = &ops[pre.fetch_index(pc)? as usize];
            retired += 1;

            if op.ctl == CtlKind::Exit {
                break;
            }

            let a = op.ra.map_or(0, |r| regs.read(r));
            let rb_value = op.rb.map_or(0, |r| regs.read(r));
            let b = op.op_b_imm.unwrap_or(rb_value);
            let outcome = exec_alu(op.alu, a, b, flag, carry);

            if let Some(new_flag) = outcome.flag {
                flag = new_flag;
            }
            if let Some(new_carry) = outcome.carry {
                carry = new_carry;
            }

            let mut next_pc = pc.wrapping_add(INSN_BYTES);
            let mut new_pending: Option<u32> = None;
            match op.ctl {
                CtlKind::Jump { link } => {
                    new_pending = Some(pc.wrapping_add(op.branch_disp));
                    if link {
                        regs.write(Reg::LINK, pc.wrapping_add(8));
                    }
                }
                CtlKind::JumpReg { link } => {
                    new_pending = Some(rb_value);
                    if link {
                        regs.write(Reg::LINK, pc.wrapping_add(8));
                    }
                }
                CtlKind::BranchIfFlag => {
                    if flag {
                        new_pending = Some(pc.wrapping_add(op.branch_disp));
                    }
                }
                CtlKind::BranchIfNotFlag => {
                    if !flag {
                        new_pending = Some(pc.wrapping_add(op.branch_disp));
                    }
                }
                // The architectural interpreter models no interrupt state,
                // so a stray `l.rfe` falls through — matching the pipeline
                // engines, where it is a no-op outside an active handler.
                CtlKind::None | CtlKind::Exit | CtlKind::Rfe => {}
            }

            if op.mem.is_load() {
                let addr = outcome.address.unwrap_or(0);
                let value = match op.mem {
                    MemKind::LoadWord => memory.load_word(addr)?,
                    MemKind::LoadHalf { signed: false } => u32::from(memory.load_half(addr)?),
                    MemKind::LoadHalf { signed: true } => {
                        memory.load_half(addr)? as i16 as i32 as u32
                    }
                    MemKind::LoadByte { signed: false } => u32::from(memory.load_byte(addr)?),
                    MemKind::LoadByte { signed: true } => {
                        memory.load_byte(addr)? as i8 as i32 as u32
                    }
                    _ => 0,
                };
                regs.write(op.rd.expect("load has rd"), value);
            } else if op.mem.is_store() {
                let addr = outcome.address.unwrap_or(0);
                match op.mem {
                    MemKind::StoreWord => memory.store_word(addr, rb_value)?,
                    MemKind::StoreHalf => memory.store_half(addr, rb_value as u16)?,
                    MemKind::StoreByte => memory.store_byte(addr, rb_value as u8)?,
                    _ => {}
                }
            } else if op.ctl == CtlKind::None {
                if let Some(rd) = op.rd {
                    regs.write(rd, outcome.result);
                }
            }

            // Delay-slot bookkeeping: a pending target set by the *previous*
            // instruction takes effect now (after this instruction, which was
            // its delay slot).
            if let Some(target) = pending_target.take() {
                next_pc = target;
            }
            pending_target = new_pending;
            pc = next_pc;
        }

        Ok(InterpreterResult {
            regs,
            memory,
            flag,
            retired,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idca_isa::asm::Assembler;

    fn run(src: &str) -> InterpreterResult {
        let program = Assembler::new().assemble(src).expect("assembles");
        Interpreter::new().run(&program).expect("runs")
    }

    #[test]
    fn arithmetic_and_logic() {
        let r = run("l.addi r3, r0, 6\n l.addi r4, r0, 7\n l.mul r5, r3, r4\n\
                     l.xor r6, r3, r4\n l.and r7, r3, r4\n l.or r8, r3, r4\n l.nop 1\n");
        assert_eq!(r.regs.read(Reg::r(5)), 42);
        assert_eq!(r.regs.read(Reg::r(6)), 1);
        assert_eq!(r.regs.read(Reg::r(7)), 6);
        assert_eq!(r.regs.read(Reg::r(8)), 7);
    }

    #[test]
    fn loop_with_delay_slot_executes_correct_count() {
        // Sum 1..=5 using a countdown loop; the delay-slot instruction after
        // l.bf is part of the loop body (it executes even on the last,
        // not-taken iteration).
        let r = run("        l.addi r3, r0, 5
                     l.addi r4, r0, 0
             loop:   l.add  r4, r4, r3
                     l.addi r3, r3, -1
                     l.sfne r3, r0
                     l.bf   loop
                     l.nop  0
                     l.nop  1");
        assert_eq!(r.regs.read(Reg::r(4)), 15);
        assert_eq!(r.regs.read(Reg::r(3)), 0);
    }

    #[test]
    fn delay_slot_instruction_executes_before_jump_target() {
        // The l.addi in the delay slot of l.j must execute.
        let r = run("        l.addi r3, r0, 1
                     l.j    done
                     l.addi r3, r3, 10   # delay slot
                     l.addi r3, r3, 100  # skipped
             done:   l.nop 1");
        assert_eq!(r.regs.read(Reg::r(3)), 11);
    }

    #[test]
    fn jal_links_past_delay_slot_and_jr_returns() {
        let r = run("        l.jal  func
                     l.addi r3, r0, 1    # delay slot
                     l.addi r4, r0, 2    # return lands here
                     l.nop  1
             func:   l.addi r5, r0, 3
                     l.jr   r9
                     l.addi r6, r0, 4    # delay slot of return");
        assert_eq!(r.regs.read(Reg::r(3)), 1);
        assert_eq!(r.regs.read(Reg::r(4)), 2);
        assert_eq!(r.regs.read(Reg::r(5)), 3);
        assert_eq!(r.regs.read(Reg::r(6)), 4);
    }

    #[test]
    fn memory_byte_half_word_accesses() {
        let r = run("        l.addi r1, r0, 0x100
                     l.addi r3, r0, -2
                     l.sw   0(r1), r3
                     l.lwz  r4, 0(r1)
                     l.lbz  r5, 3(r1)
                     l.lbs  r6, 3(r1)
                     l.lhz  r7, 2(r1)
                     l.lhs  r8, 2(r1)
                     l.sb   8(r1), r3
                     l.lbz  r9, 8(r1)
                     l.nop  1");
        assert_eq!(r.regs.read(Reg::r(4)), 0xFFFF_FFFE);
        assert_eq!(r.regs.read(Reg::r(5)), 0xFE);
        assert_eq!(r.regs.read(Reg::r(6)), 0xFFFF_FFFE);
        assert_eq!(r.regs.read(Reg::r(7)), 0xFFFE);
        assert_eq!(r.regs.read(Reg::r(8)), 0xFFFF_FFFE);
        assert_eq!(r.regs.read(Reg::r(9)), 0xFE);
    }

    #[test]
    fn carry_chain_metric_behaves() {
        assert_eq!(alu::carry_chain(0, 0, false), 0);
        // 0xFFFF_FFFF + 1 ripples through all 32 positions.
        assert_eq!(alu::carry_chain(0xFFFF_FFFF, 1, false), 32);
        // Single-bit add with no propagation.
        assert_eq!(alu::carry_chain(1, 2, false), 0);
        assert!(alu::carry_chain(0x0F0F_0F0F, 0x0101_0101, false) >= 4);
    }

    #[test]
    fn bit_parallel_carry_chain_matches_the_per_bit_reference() {
        let edges = [
            0u32,
            1,
            2,
            3,
            0x8000_0000,
            0xFFFF_FFFF,
            0xFFFF_FFFE,
            0x7FFF_FFFF,
            0x5555_5555,
            0xAAAA_AAAA,
            0x0F0F_0F0F,
            0x0101_0101,
        ];
        for &a in &edges {
            for &b in &edges {
                for cin in [false, true] {
                    assert_eq!(
                        alu::carry_chain(a, b, cin),
                        alu::carry_chain_reference(a, b, cin),
                        "a={a:#x} b={b:#x} cin={cin}"
                    );
                }
            }
        }
        // Deterministic pseudo-random sweep.
        let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
        for _ in 0..20_000 {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let a = (state >> 32) as u32;
            let b = state as u32;
            for cin in [false, true] {
                assert_eq!(
                    alu::carry_chain(a, b, cin),
                    alu::carry_chain_reference(a, b, cin),
                    "a={a:#x} b={b:#x} cin={cin}"
                );
            }
        }
    }

    #[test]
    fn shifts_and_rotates() {
        let r = run("l.addi r3, r0, 1\n l.slli r4, r3, 31\n l.srli r5, r4, 31\n\
             l.srai r6, r4, 31\n l.rori r7, r3, 1\n l.nop 1\n");
        assert_eq!(r.regs.read(Reg::r(4)), 0x8000_0000);
        assert_eq!(r.regs.read(Reg::r(5)), 1);
        assert_eq!(r.regs.read(Reg::r(6)), 0xFFFF_FFFF);
        assert_eq!(r.regs.read(Reg::r(7)), 0x8000_0000);
    }

    #[test]
    fn movhi_ori_builds_constants() {
        let r = run("l.movhi r3, 0xDEAD\n l.ori r3, r3, 0xBEEF\n l.nop 1\n");
        assert_eq!(r.regs.read(Reg::r(3)), 0xDEAD_BEEF);
    }

    #[test]
    fn cmov_uses_flag() {
        let r = run(
            "l.addi r3, r0, 1\n l.addi r4, r0, 2\n l.sfeq r0, r0\n l.cmov r5, r3, r4\n\
             l.sfne r0, r0\n l.cmov r6, r3, r4\n l.nop 1\n",
        );
        assert_eq!(r.regs.read(Reg::r(5)), 1);
        assert_eq!(r.regs.read(Reg::r(6)), 2);
    }

    #[test]
    fn instruction_budget_is_enforced() {
        let program = Assembler::new()
            .assemble("loop: l.j loop\n l.nop 0\n")
            .unwrap();
        let err = Interpreter::new()
            .with_max_instructions(100)
            .run(&program)
            .unwrap_err();
        assert!(matches!(err, PipelineError::CycleLimitExceeded { .. }));
    }
}
