//! A simple architectural interpreter used as the golden reference model.
//!
//! The interpreter executes programs sequentially (with correct OpenRISC
//! delay-slot semantics) and is used by the test-suite to cross-check the
//! architectural state produced by the cycle-accurate pipeline simulator
//! (differential testing). It shares the instruction semantics of the
//! pipeline's execute stage through [`alu`].

use crate::{Memory, PipelineError, RegisterFile, NOP_EXIT};
use idca_isa::{Insn, Opcode, Program, Reg, INSN_BYTES};

pub(crate) mod alu {
    //! Shared instruction semantics used by both the interpreter and the
    //! pipeline simulator's execute stage.

    use idca_isa::{Insn, Opcode, SetFlagCond};

    /// Outcome of executing one instruction's data-path portion.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub(crate) struct AluOutcome {
        /// Result value headed for the destination register (if any).
        pub result: u32,
        /// New compare-flag value (if the instruction writes the flag).
        pub flag: Option<bool>,
        /// New carry value (if the instruction updates the carry bit).
        pub carry: Option<bool>,
        /// Effective address for loads/stores.
        pub address: Option<u32>,
    }

    /// Selects the second ALU operand: register `rB` or immediate.
    pub(crate) fn operand_b(insn: &Insn, rb_value: u32) -> u32 {
        match insn.opcode() {
            Opcode::Andi | Opcode::Ori => (insn.imm().unwrap_or(0) as u32) & 0xFFFF,
            Opcode::Addi
            | Opcode::Addic
            | Opcode::Xori
            | Opcode::Muli
            | Opcode::Sfi(_)
            | Opcode::Lwz
            | Opcode::Lws
            | Opcode::Lhz
            | Opcode::Lhs
            | Opcode::Lbz
            | Opcode::Lbs
            | Opcode::Sw
            | Opcode::Sh
            | Opcode::Sb => insn.imm().unwrap_or(0) as u32,
            Opcode::Slli | Opcode::Srli | Opcode::Srai | Opcode::Rori => {
                (insn.imm().unwrap_or(0) as u32) & 0x1F
            }
            Opcode::Movhi => (insn.imm().unwrap_or(0) as u32) & 0xFFFF,
            _ => rb_value,
        }
    }

    /// Longest carry-propagation run when computing `a + b + cin` on the
    /// main adder; a proxy for the dynamic depth of the adder path excited
    /// by the operands.
    pub(crate) fn carry_chain(a: u32, b: u32, cin: bool) -> u8 {
        let mut carry = u32::from(cin);
        let mut run: u8 = 0;
        let mut best: u8 = 0;
        for bit in 0..32 {
            let ab = (a >> bit) & 1;
            let bb = (b >> bit) & 1;
            let generate = ab & bb;
            let propagate = ab ^ bb;
            let next_carry = generate | (propagate & carry);
            if (propagate == 1 && carry == 1) || generate == 1 {
                run += 1;
                best = best.max(run);
            } else {
                run = 0;
            }
            carry = next_carry;
        }
        best
    }

    /// Executes the data-path portion of an instruction.
    ///
    /// `a` is the resolved `rA` operand, `b` the resolved second operand
    /// (register or immediate, as selected by [`operand_b`]), `flag` and
    /// `carry` the current architectural flag/carry bits.
    pub(crate) fn execute(insn: &Insn, a: u32, b: u32, flag: bool, carry: bool) -> AluOutcome {
        let mut out = AluOutcome {
            result: 0,
            flag: None,
            carry: None,
            address: None,
        };
        match insn.opcode() {
            Opcode::Add | Opcode::Addi => {
                let (sum, c1) = a.overflowing_add(b);
                out.result = sum;
                out.carry = Some(c1);
            }
            Opcode::Addc | Opcode::Addic => {
                let (s1, c1) = a.overflowing_add(b);
                let (s2, c2) = s1.overflowing_add(u32::from(carry));
                out.result = s2;
                out.carry = Some(c1 || c2);
            }
            Opcode::Sub => {
                let (diff, borrow) = a.overflowing_sub(b);
                out.result = diff;
                out.carry = Some(borrow);
            }
            Opcode::And | Opcode::Andi => out.result = a & b,
            Opcode::Or | Opcode::Ori => out.result = a | b,
            Opcode::Xor | Opcode::Xori => out.result = a ^ b,
            Opcode::Mul | Opcode::Muli => {
                out.result = (a as i32).wrapping_mul(b as i32) as u32;
            }
            Opcode::Mulu => out.result = a.wrapping_mul(b),
            Opcode::Sll | Opcode::Slli => out.result = a.wrapping_shl(b & 0x1F),
            Opcode::Srl | Opcode::Srli => out.result = a.wrapping_shr(b & 0x1F),
            Opcode::Sra | Opcode::Srai => out.result = ((a as i32).wrapping_shr(b & 0x1F)) as u32,
            Opcode::Ror | Opcode::Rori => out.result = a.rotate_right(b & 0x1F),
            Opcode::Cmov => out.result = if flag { a } else { b },
            Opcode::Extbs => out.result = (a as u8 as i8) as i32 as u32,
            Opcode::Exths => out.result = (a as u16 as i16) as i32 as u32,
            Opcode::Movhi => out.result = b << 16,
            Opcode::Sf(cond) | Opcode::Sfi(cond) => {
                out.flag = Some(eval_cond(cond, a, b));
            }
            Opcode::Lwz
            | Opcode::Lws
            | Opcode::Lhz
            | Opcode::Lhs
            | Opcode::Lbz
            | Opcode::Lbs
            | Opcode::Sw
            | Opcode::Sh
            | Opcode::Sb => {
                out.address = Some(a.wrapping_add(b));
            }
            Opcode::Jal | Opcode::Jalr => {
                // Link value (pc + 8, past the delay slot) is provided by the
                // caller; the ALU itself produces nothing here.
            }
            // Remaining opcodes (jumps, branches, nop) produce no data-path
            // result; the wildcard also covers future additions to the
            // non-exhaustive `Opcode` enum.
            _ => {}
        }
        out
    }

    fn eval_cond(cond: SetFlagCond, a: u32, b: u32) -> bool {
        cond.eval(a, b)
    }
}

/// Result of running a program on the [`Interpreter`].
#[derive(Debug, Clone)]
pub struct InterpreterResult {
    /// Final register file contents.
    pub regs: RegisterFile,
    /// Final data memory contents.
    pub memory: Memory,
    /// Final compare-flag value.
    pub flag: bool,
    /// Number of architecturally executed instructions.
    pub retired: u64,
}

/// Sequential architectural reference model of the ISA subset.
///
/// # Example
///
/// ```
/// use idca_isa::asm::Assembler;
/// use idca_pipeline::Interpreter;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = Assembler::new().assemble(
///     "l.addi r3, r0, 21\n l.add r3, r3, r3\n l.nop 1\n",
/// )?;
/// let result = Interpreter::new().run(&program)?;
/// assert_eq!(result.regs.read(idca_isa::Reg::r(3)), 42);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Interpreter {
    data_memory_size: usize,
    max_instructions: u64,
}

impl Default for Interpreter {
    fn default() -> Self {
        Interpreter {
            data_memory_size: 64 * 1024,
            max_instructions: 10_000_000,
        }
    }
}

impl Interpreter {
    /// Creates an interpreter with a 64 KiB data memory and a 10 M
    /// instruction budget.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the data-memory size in bytes.
    #[must_use]
    pub fn with_data_memory_size(mut self, bytes: usize) -> Self {
        self.data_memory_size = bytes;
        self
    }

    /// Sets the maximum number of instructions to execute before giving up.
    #[must_use]
    pub fn with_max_instructions(mut self, limit: u64) -> Self {
        self.max_instructions = limit;
        self
    }

    /// Runs a program to completion (the `l.nop 1` exit marker) or until the
    /// program counter falls off the end of the image.
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError`] for invalid memory accesses, an
    /// out-of-range program counter or an exhausted instruction budget.
    pub fn run(&self, program: &Program) -> Result<InterpreterResult, PipelineError> {
        let mut regs = RegisterFile::new();
        let mut memory = Memory::new(self.data_memory_size);
        memory.load_image(program.data())?;
        let mut flag = false;
        let mut carry = false;
        let mut pc = program.base_address();
        let mut retired: u64 = 0;
        // Target that takes effect after the delay-slot instruction.
        let mut pending_target: Option<u32> = None;

        loop {
            if retired >= self.max_instructions {
                return Err(PipelineError::CycleLimitExceeded {
                    limit: self.max_instructions,
                });
            }
            let Some(insn) = fetch(program, pc) else {
                // Falling off the end of the image terminates execution,
                // mirroring the pipeline simulator's drain behaviour.
                break;
            };
            retired += 1;

            if insn.opcode() == Opcode::Nop && insn.imm() == Some(i32::from(NOP_EXIT)) {
                break;
            }

            let a = insn.ra().map_or(0, |r| regs.read(r));
            let rb_value = insn.rb().map_or(0, |r| regs.read(r));
            let b = alu::operand_b(&insn, rb_value);
            let outcome = alu::execute(&insn, a, b, flag, carry);

            if let Some(new_flag) = outcome.flag {
                flag = new_flag;
            }
            if let Some(new_carry) = outcome.carry {
                carry = new_carry;
            }

            let mut next_pc = pc.wrapping_add(INSN_BYTES);
            let mut new_pending: Option<u32> = None;
            match insn.opcode() {
                Opcode::J | Opcode::Jal => {
                    let target = pc.wrapping_add((insn.imm().unwrap_or(0) as u32).wrapping_mul(4));
                    new_pending = Some(target);
                    if insn.opcode() == Opcode::Jal {
                        regs.write(Reg::LINK, pc.wrapping_add(8));
                    }
                }
                Opcode::Jr | Opcode::Jalr => {
                    new_pending = Some(rb_value);
                    if insn.opcode() == Opcode::Jalr {
                        regs.write(Reg::LINK, pc.wrapping_add(8));
                    }
                }
                Opcode::Bf => {
                    if flag {
                        new_pending =
                            Some(pc.wrapping_add((insn.imm().unwrap_or(0) as u32).wrapping_mul(4)));
                    }
                }
                Opcode::Bnf => {
                    if !flag {
                        new_pending =
                            Some(pc.wrapping_add((insn.imm().unwrap_or(0) as u32).wrapping_mul(4)));
                    }
                }
                Opcode::Lwz | Opcode::Lws => {
                    let addr = outcome.address.unwrap_or(0);
                    regs.write(insn.rd().expect("load has rd"), memory.load_word(addr)?);
                }
                Opcode::Lhz => {
                    let addr = outcome.address.unwrap_or(0);
                    regs.write(
                        insn.rd().expect("load has rd"),
                        u32::from(memory.load_half(addr)?),
                    );
                }
                Opcode::Lhs => {
                    let addr = outcome.address.unwrap_or(0);
                    let v = memory.load_half(addr)? as i16;
                    regs.write(insn.rd().expect("load has rd"), v as i32 as u32);
                }
                Opcode::Lbz => {
                    let addr = outcome.address.unwrap_or(0);
                    regs.write(
                        insn.rd().expect("load has rd"),
                        u32::from(memory.load_byte(addr)?),
                    );
                }
                Opcode::Lbs => {
                    let addr = outcome.address.unwrap_or(0);
                    let v = memory.load_byte(addr)? as i8;
                    regs.write(insn.rd().expect("load has rd"), v as i32 as u32);
                }
                Opcode::Sw => {
                    memory.store_word(outcome.address.unwrap_or(0), rb_value)?;
                }
                Opcode::Sh => {
                    memory.store_half(outcome.address.unwrap_or(0), rb_value as u16)?;
                }
                Opcode::Sb => {
                    memory.store_byte(outcome.address.unwrap_or(0), rb_value as u8)?;
                }
                _ => {
                    if insn.opcode().writes_rd() {
                        if let Some(rd) = insn.rd() {
                            regs.write(rd, outcome.result);
                        }
                    }
                }
            }

            // Delay-slot bookkeeping: a pending target set by the *previous*
            // instruction takes effect now (after this instruction, which was
            // its delay slot).
            if let Some(target) = pending_target.take() {
                next_pc = target;
            }
            pending_target = new_pending;
            pc = next_pc;
        }

        Ok(InterpreterResult {
            regs,
            memory,
            flag,
            retired,
        })
    }
}

fn fetch(program: &Program, pc: u32) -> Option<Insn> {
    let base = program.base_address();
    if pc < base {
        return None;
    }
    let index = ((pc - base) / INSN_BYTES) as usize;
    program.insns().get(index).copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use idca_isa::asm::Assembler;

    fn run(src: &str) -> InterpreterResult {
        let program = Assembler::new().assemble(src).expect("assembles");
        Interpreter::new().run(&program).expect("runs")
    }

    #[test]
    fn arithmetic_and_logic() {
        let r = run("l.addi r3, r0, 6\n l.addi r4, r0, 7\n l.mul r5, r3, r4\n\
                     l.xor r6, r3, r4\n l.and r7, r3, r4\n l.or r8, r3, r4\n l.nop 1\n");
        assert_eq!(r.regs.read(Reg::r(5)), 42);
        assert_eq!(r.regs.read(Reg::r(6)), 1);
        assert_eq!(r.regs.read(Reg::r(7)), 6);
        assert_eq!(r.regs.read(Reg::r(8)), 7);
    }

    #[test]
    fn loop_with_delay_slot_executes_correct_count() {
        // Sum 1..=5 using a countdown loop; the delay-slot instruction after
        // l.bf is part of the loop body (it executes even on the last,
        // not-taken iteration).
        let r = run("        l.addi r3, r0, 5
                     l.addi r4, r0, 0
             loop:   l.add  r4, r4, r3
                     l.addi r3, r3, -1
                     l.sfne r3, r0
                     l.bf   loop
                     l.nop  0
                     l.nop  1");
        assert_eq!(r.regs.read(Reg::r(4)), 15);
        assert_eq!(r.regs.read(Reg::r(3)), 0);
    }

    #[test]
    fn delay_slot_instruction_executes_before_jump_target() {
        // The l.addi in the delay slot of l.j must execute.
        let r = run("        l.addi r3, r0, 1
                     l.j    done
                     l.addi r3, r3, 10   # delay slot
                     l.addi r3, r3, 100  # skipped
             done:   l.nop 1");
        assert_eq!(r.regs.read(Reg::r(3)), 11);
    }

    #[test]
    fn jal_links_past_delay_slot_and_jr_returns() {
        let r = run("        l.jal  func
                     l.addi r3, r0, 1    # delay slot
                     l.addi r4, r0, 2    # return lands here
                     l.nop  1
             func:   l.addi r5, r0, 3
                     l.jr   r9
                     l.addi r6, r0, 4    # delay slot of return");
        assert_eq!(r.regs.read(Reg::r(3)), 1);
        assert_eq!(r.regs.read(Reg::r(4)), 2);
        assert_eq!(r.regs.read(Reg::r(5)), 3);
        assert_eq!(r.regs.read(Reg::r(6)), 4);
    }

    #[test]
    fn memory_byte_half_word_accesses() {
        let r = run("        l.addi r1, r0, 0x100
                     l.addi r3, r0, -2
                     l.sw   0(r1), r3
                     l.lwz  r4, 0(r1)
                     l.lbz  r5, 3(r1)
                     l.lbs  r6, 3(r1)
                     l.lhz  r7, 2(r1)
                     l.lhs  r8, 2(r1)
                     l.sb   8(r1), r3
                     l.lbz  r9, 8(r1)
                     l.nop  1");
        assert_eq!(r.regs.read(Reg::r(4)), 0xFFFF_FFFE);
        assert_eq!(r.regs.read(Reg::r(5)), 0xFE);
        assert_eq!(r.regs.read(Reg::r(6)), 0xFFFF_FFFE);
        assert_eq!(r.regs.read(Reg::r(7)), 0xFFFE);
        assert_eq!(r.regs.read(Reg::r(8)), 0xFFFF_FFFE);
        assert_eq!(r.regs.read(Reg::r(9)), 0xFE);
    }

    #[test]
    fn carry_chain_metric_behaves() {
        assert_eq!(alu::carry_chain(0, 0, false), 0);
        // 0xFFFF_FFFF + 1 ripples through all 32 positions.
        assert_eq!(alu::carry_chain(0xFFFF_FFFF, 1, false), 32);
        // Single-bit add with no propagation.
        assert_eq!(alu::carry_chain(1, 2, false), 0);
        assert!(alu::carry_chain(0x0F0F_0F0F, 0x0101_0101, false) >= 4);
    }

    #[test]
    fn shifts_and_rotates() {
        let r = run("l.addi r3, r0, 1\n l.slli r4, r3, 31\n l.srli r5, r4, 31\n\
             l.srai r6, r4, 31\n l.rori r7, r3, 1\n l.nop 1\n");
        assert_eq!(r.regs.read(Reg::r(4)), 0x8000_0000);
        assert_eq!(r.regs.read(Reg::r(5)), 1);
        assert_eq!(r.regs.read(Reg::r(6)), 0xFFFF_FFFF);
        assert_eq!(r.regs.read(Reg::r(7)), 0x8000_0000);
    }

    #[test]
    fn movhi_ori_builds_constants() {
        let r = run("l.movhi r3, 0xDEAD\n l.ori r3, r3, 0xBEEF\n l.nop 1\n");
        assert_eq!(r.regs.read(Reg::r(3)), 0xDEAD_BEEF);
    }

    #[test]
    fn cmov_uses_flag() {
        let r = run(
            "l.addi r3, r0, 1\n l.addi r4, r0, 2\n l.sfeq r0, r0\n l.cmov r5, r3, r4\n\
             l.sfne r0, r0\n l.cmov r6, r3, r4\n l.nop 1\n",
        );
        assert_eq!(r.regs.read(Reg::r(5)), 1);
        assert_eq!(r.regs.read(Reg::r(6)), 2);
    }

    #[test]
    fn instruction_budget_is_enforced() {
        let program = Assembler::new()
            .assemble("loop: l.j loop\n l.nop 0\n")
            .unwrap();
        let err = Interpreter::new()
            .with_max_instructions(100)
            .run(&program)
            .unwrap_err();
        assert!(matches!(err, PipelineError::CycleLimitExceeded { .. }));
    }
}
