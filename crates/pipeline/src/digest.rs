//! The timing digest: a compact, replayable per-cycle view of one execution.
//!
//! A Monte Carlo PVT sweep evaluates the *same* program against many
//! corner-varied timing models. Architectural execution is identical across
//! corners, so re-running the full pipeline simulation per corner wastes
//! almost all of its work: the timing analyses only ever consume
//!
//! * the instruction **class** occupying each stage,
//! * the data-dependent **path excitation** of each stage (a normalized
//!   `[0, 1]` descriptor derived from operand activity — carry chains,
//!   multiplier widths, popcounts, forwarding, redirects),
//! * the fetch address (salt of the per-cycle residual-variation dither),
//! * and a handful of **activity bits** (execute occupancy, memory access,
//!   multiplier use, branches, forwarding, stalls) for the power model.
//!
//! [`DigestCycle`] records exactly that, [`DigestObserver`] captures it in
//! the same streaming pass as every other [`CycleObserver`], and
//! [`TimingDigest`] stores the cycle stream deduplicated (a pool of unique
//! cycles) and run-length encoded, so loop-heavy kernels with value-stable
//! activity compress toward their basic-block count. The timing and core
//! crates provide `replay_digest` entry points that fold a digest against
//! any [`idca_timing`-style] model and reproduce the direct simulation's
//! results **bit-identically** — turning an `N×M` sweep into `N` simulation
//! passes plus `N×M` cheap digest folds.
//!
//! [`idca_timing`-style]: crate::CycleRecord
//!
//! Digests are **fault-invariant**: injected fault scenarios (voltage
//! droops, delay spikes, corner shifts) perturb the *timing evaluation* of
//! a cycle downstream, never the digested execution itself, so one cached
//! digest serves every fault scenario — which is also why the digest-cache
//! key carries no fault spec.
//!
//! Interrupt scenarios are different: they change the executed cycle stream
//! itself, so a digest is **interrupt-variant** and additionally carries a
//! versioned *event stream* (codec v3) of [`DigestEvent`]s — interrupt
//! entries/returns, timer fires and MMIO touches — from which replay
//! reconstructs per-cycle interrupt phases and peripheral statistics
//! without re-simulating. Interrupt-free digests have an empty event
//! stream, and their cycle/run tables are unchanged from v1.
//!
//! # Excitation coefficients
//!
//! The downstream timing model blends every stage's raw excitation with a
//! per-cycle pseudo-random dither derived from `(cycle, stage,
//! fetch_address)`. All raw excitations are *affine* in that dither, so a
//! [`StageExcitation`] stores the two coefficients `(base, dither_gain)`
//! instead of a value: the replay recomputes `base + dither_gain × dither`
//! with the exact arithmetic of the direct path, which is what makes the
//! replay bit-identical while keeping [`DigestCycle`] independent of the
//! cycle index (a prerequisite for run-length encoding).

use crate::{
    CycleObserver, CycleRecord, CycleRecordFlags, DigestEvent, Occupant, RunSummary, Stage,
};
use idca_isa::{Insn, TimingClass, INSN_BYTES};
use std::sync::Arc;

/// Data-dependent path excitation of one stage in one cycle, expressed as
/// coefficients of the per-cycle dither: `raw = base + dither_gain × dither`
/// with `dither ∈ [0, 1]`.
///
/// This is the single source of truth for the activity → excitation mapping
/// (the paper's "which paths does this operand pattern toggle" question);
/// the timing model evaluates it for the direct simulation path and the
/// digest replay alike.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageExcitation {
    /// Dither-independent part of the raw excitation.
    pub base: f64,
    /// Sensitivity of the raw excitation to the per-cycle dither.
    pub dither_gain: f64,
}

impl StageExcitation {
    /// Computes the excitation coefficients of `stage` from a cycle record.
    #[must_use]
    pub fn of_record(record: &CycleRecord, stage: Stage) -> StageExcitation {
        excitation_for(record, stage, record.timing_class(stage), None)
    }

    /// The raw (pre-blend) excitation at a given dither value. Evaluated
    /// with the same `base + gain × dither` expression for the direct and
    /// the replay path, so both produce bit-identical delays.
    #[must_use]
    pub fn raw(&self, dither: f64) -> f64 {
        self.base + self.dither_gain * dither
    }
}

/// The single source of truth for the per-stage activity → excitation
/// mapping. `class` is the stage occupant's timing class (precomputed by
/// both callers); `hint` optionally supplies the instruction-static fetch
/// and decode bases from a [`DigestHints`] table — the hinted and unhinted
/// expressions are bit-identical by construction (the hint stores the result
/// of exactly the fallback arithmetic), which the digest test suite pins.
fn excitation_for(
    record: &CycleRecord,
    stage: Stage,
    class: TimingClass,
    hint: Option<&HintEntry>,
) -> StageExcitation {
    let (base, dither_gain) = match stage {
        Stage::Address => {
            if record.fetch_redirected && is_control_class(class) {
                // Branch-target adder + PC mux + instruction-memory
                // address setup: the long address-stage path.
                (0.70, 0.30)
            } else {
                (0.30, 0.40)
            }
        }
        Stage::Fetch => match record.occupant(stage) {
            Occupant::Insn { insn, .. } => (
                hint.map_or_else(
                    || 0.25 + 0.75 * popcount_frac(insn.encode()),
                    |h| h.fetch_base,
                ),
                0.0,
            ),
            Occupant::Bubble(_) => (0.35, 0.0),
        },
        Stage::Decode => match record.occupant(stage) {
            Occupant::Insn { insn, .. } => (
                hint.map_or_else(|| decode_base(insn), |h| h.decode_base),
                0.12,
            ),
            Occupant::Bubble(_) => (0.35, 0.0),
        },
        Stage::Execute => (execute_excitation(record, class), 0.0),
        Stage::Control => match class {
            TimingClass::Load => (
                0.30 + 0.70 * popcount_frac(record.mem_return.unwrap_or(0)),
                0.0,
            ),
            TimingClass::Store => (0.35, 0.45),
            TimingClass::Mul => (0.45, 0.35),
            TimingClass::Bubble => (0.35, 0.0),
            _ => (0.35, 0.35),
        },
        Stage::Writeback => match &record.writeback {
            Some(wb) => (0.25 + 0.75 * popcount_frac(wb.value), 0.0),
            None => (0.35, 0.0),
        },
    };
    StageExcitation { base, dither_gain }
}

/// The instruction-static part of the decode-stage excitation (operand-port
/// and immediate decoder activity).
fn decode_base(insn: &Insn) -> f64 {
    let mut e = 0.35;
    if insn.opcode().reads_ra() {
        e += 0.18;
    }
    if insn.opcode().reads_rb() {
        e += 0.18;
    }
    if insn.imm().is_some() {
        e += 0.12;
    }
    e
}

/// Per-instruction digest excitation facts that depend only on the
/// instruction word: its timing class, the fetch-stage popcount base and the
/// decode-stage operand-port base. A [`crate::PredecodedProgram`] computes
/// one table per program; [`DigestObserver::with_hints`] then skips the
/// per-cycle instruction re-encode and accessor matching during capture.
/// Hinted and unhinted capture are bit-identical (pinned by tests): the
/// table stores the result of exactly the arithmetic the unhinted path runs.
#[derive(Debug, Clone)]
pub struct DigestHints {
    base: u32,
    entries: Vec<HintEntry>,
}

#[derive(Debug, Clone, Copy)]
struct HintEntry {
    class: TimingClass,
    fetch_base: f64,
    decode_base: f64,
}

impl DigestHints {
    /// Precomputes the hint table for a program image starting at byte
    /// address `base`.
    #[must_use]
    pub fn for_insns(base: u32, insns: &[Insn]) -> DigestHints {
        let entries = insns
            .iter()
            .map(|insn| HintEntry {
                class: insn.timing_class(),
                fetch_base: 0.25 + 0.75 * popcount_frac(insn.encode()),
                decode_base: decode_base(insn),
            })
            .collect();
        DigestHints { base, entries }
    }

    /// The hint entry for the instruction at byte address `pc`, or `None`
    /// when `pc` is outside the table or misaligned (the caller then falls
    /// back to deriving the facts from the record's instruction word).
    fn entry(&self, pc: u32) -> Option<&HintEntry> {
        let offset = pc.wrapping_sub(self.base);
        if pc < self.base || !offset.is_multiple_of(INSN_BYTES) {
            return None;
        }
        self.entries.get((offset / INSN_BYTES) as usize)
    }
}

fn is_control_class(class: TimingClass) -> bool {
    matches!(
        class,
        TimingClass::Jump | TimingClass::JumpReg | TimingClass::BranchCond
    )
}

fn popcount_frac(value: u32) -> f64 {
    f64::from(value.count_ones()) / 32.0
}

fn execute_excitation(record: &CycleRecord, class: TimingClass) -> f64 {
    let Some(exec) = &record.exec else {
        return 0.40;
    };
    let mut e = match class {
        TimingClass::Add | TimingClass::SetFlag => f64::from(exec.carry_chain) / 32.0,
        TimingClass::Mul => f64::from(exec.mul_bits) / 32.0,
        TimingClass::Shift => f64::from(exec.shift_amount) / 31.0,
        TimingClass::And | TimingClass::Or | TimingClass::Xor | TimingClass::Move => {
            popcount_frac(exec.op_a ^ exec.op_b)
        }
        TimingClass::Load | TimingClass::Store => {
            // The LSU path (address adder → SRAM address/write pins) is
            // driven by the address-generation carry chain and by how
            // many address bits toggle at the macro inputs; the address
            // space is 16 bits wide, so toggling is normalized to it.
            let addr = exec.mem_request.map_or(0, |m| m.address);
            let addr_toggle = f64::from((addr & 0xFFFF).count_ones()) / 16.0;
            let drive = (f64::from(exec.carry_chain) / 32.0).max(addr_toggle);
            0.45 + 0.55 * drive
        }
        TimingClass::BranchCond => {
            if exec.branch.is_some_and(|b| b.taken) {
                0.85
            } else {
                0.45
            }
        }
        TimingClass::Jump => 0.55,
        TimingClass::JumpReg => popcount_frac(exec.result).max(0.5),
        TimingClass::Nop => 0.30,
        TimingClass::Bubble => 0.40,
    };
    if exec.forward_a.is_some() || exec.forward_b.is_some() {
        // The forwarding multiplexers lengthen the operand path.
        e = (e + 0.12).min(1.0);
    }
    e
}

/// The timing-relevant content of one simulated cycle: per-stage instruction
/// classes and excitation coefficients, the fetch address (dither salt) and
/// the activity bits consumed by the power model. Deliberately free of the
/// cycle index, so identical pipeline situations produce identical digest
/// cycles regardless of when they occur.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DigestCycle {
    /// Timing class occupying each stage (indexed by [`Stage::index`]).
    pub classes: [TimingClass; Stage::COUNT],
    /// Excitation coefficients of each stage (indexed by [`Stage::index`]).
    pub excitation: [StageExcitation; Stage::COUNT],
    /// Instruction-memory address presented this cycle (dither salt).
    pub fetch_address: u32,
    /// Activity bits ([`CycleRecordFlags`]) for occupancy/power accounting.
    pub flags: CycleRecordFlags,
}

impl DigestCycle {
    /// Extracts the digest of one cycle record.
    #[must_use]
    pub fn of_record(record: &CycleRecord) -> DigestCycle {
        let mut classes = [TimingClass::Bubble; Stage::COUNT];
        let mut excitation = [StageExcitation {
            base: 0.0,
            dither_gain: 0.0,
        }; Stage::COUNT];
        for stage in Stage::ALL {
            classes[stage.index()] = record.timing_class(stage);
            excitation[stage.index()] = StageExcitation::of_record(record, stage);
        }
        DigestCycle {
            classes,
            excitation,
            fetch_address: record.fetch_address,
            flags: CycleRecordFlags::of_record(record),
        }
    }

    /// [`DigestCycle::of_record`] with a precomputed [`DigestHints`] table:
    /// per-stage instruction classes and the static fetch/decode excitation
    /// bases come from one table lookup per occupied stage instead of
    /// re-encoding and re-classifying the instruction word. Bit-identical to
    /// the unhinted extraction (pinned by tests); occupants whose `pc` falls
    /// outside the hint table fall back to the unhinted derivation.
    ///
    /// This is the digest-capture hot path, so the per-stage derivations are
    /// written straight-line here instead of looping through the generic
    /// `excitation_for` dispatch: each stage's arm below computes exactly
    /// the expression its `excitation_for` arm computes, in the same
    /// floating-point order.
    #[must_use]
    pub fn of_record_hinted(record: &CycleRecord, hints: &DigestHints) -> DigestCycle {
        let class_and_hint = |occupant: &Occupant| match occupant {
            Occupant::Insn { pc, insn, .. } => match hints.entry(*pc) {
                Some(h) => (h.class, Some(h)),
                None => (insn.timing_class(), None),
            },
            Occupant::Bubble(_) => (TimingClass::Bubble, None),
        };
        let ex = |base: f64, dither_gain: f64| StageExcitation { base, dither_gain };

        let (adr_class, _) = class_and_hint(record.occupant(Stage::Address));
        let adr = if record.fetch_redirected && is_control_class(adr_class) {
            ex(0.70, 0.30)
        } else {
            ex(0.30, 0.40)
        };

        let (fe_class, fe_hint) = class_and_hint(record.occupant(Stage::Fetch));
        let fe = match (fe_hint, record.occupant(Stage::Fetch)) {
            (Some(h), _) => ex(h.fetch_base, 0.0),
            (None, Occupant::Insn { insn, .. }) => {
                ex(0.25 + 0.75 * popcount_frac(insn.encode()), 0.0)
            }
            (None, Occupant::Bubble(_)) => ex(0.35, 0.0),
        };

        let (dc_class, dc_hint) = class_and_hint(record.occupant(Stage::Decode));
        let dc = match (dc_hint, record.occupant(Stage::Decode)) {
            (Some(h), _) => ex(h.decode_base, 0.12),
            (None, Occupant::Insn { insn, .. }) => ex(decode_base(insn), 0.12),
            (None, Occupant::Bubble(_)) => ex(0.35, 0.0),
        };

        let (ex_class, _) = class_and_hint(record.occupant(Stage::Execute));
        let exc = ex(execute_excitation(record, ex_class), 0.0);

        let (ctl_class, _) = class_and_hint(record.occupant(Stage::Control));
        let ctl = match ctl_class {
            TimingClass::Load => ex(
                0.30 + 0.70 * popcount_frac(record.mem_return.unwrap_or(0)),
                0.0,
            ),
            TimingClass::Store => ex(0.35, 0.45),
            TimingClass::Mul => ex(0.45, 0.35),
            TimingClass::Bubble => ex(0.35, 0.0),
            _ => ex(0.35, 0.35),
        };

        let (wb_class, _) = class_and_hint(record.occupant(Stage::Writeback));
        let wb = match &record.writeback {
            Some(wb) => ex(0.25 + 0.75 * popcount_frac(wb.value), 0.0),
            None => ex(0.35, 0.0),
        };

        DigestCycle {
            classes: [adr_class, fe_class, dc_class, ex_class, ctl_class, wb_class],
            excitation: [adr, fe, dc, exc, ctl, wb],
            fetch_address: record.fetch_address,
            flags: CycleRecordFlags::of_record(record),
        }
    }
}

/// Bit-exact digest-cycle equality: the dedup criterion of the observer's
/// pool. f64 coefficients are compared by bit pattern (never by value), so
/// dedup can never merge cycles whose serialized bytes would differ. The
/// fetch address leads because consecutive cycles almost always differ in
/// it, making the miss path a one-word compare.
fn same_cycle(a: &DigestCycle, b: &DigestCycle) -> bool {
    a.fetch_address == b.fetch_address
        && a.flags == b.flags
        && a.classes == b.classes
        && a.excitation.iter().zip(&b.excitation).all(|(x, y)| {
            x.base.to_bits() == y.base.to_bits()
                && x.dither_gain.to_bits() == y.dither_gain.to_bits()
        })
}

/// 64-bit content hash of a digest cycle for the dedup index: five word
/// mixes — packed classes, fetch address + flags, and the three excitation
/// bases that actually vary with data (execute, control, writeback; the
/// front-stage coefficients are functions of the classes already mixed).
/// Collisions are handled exactly (see [`DedupIndex`]), so the hash quality
/// only affects speed, never the digest bytes.
fn cycle_hash(dc: &DigestCycle) -> u64 {
    let mut h = DigestKeyHasher::default();
    let mut packed = 0u64;
    for (i, class) in dc.classes.iter().enumerate() {
        packed |= (class.index() as u64) << (8 * i);
    }
    h.mix(packed);
    h.mix(u64::from(dc.fetch_address) | (u64::from(dc.flags.bits()) << 32));
    h.mix(dc.excitation[Stage::Execute.index()].base.to_bits());
    h.mix(dc.excitation[Stage::Control.index()].base.to_bits());
    h.mix(dc.excitation[Stage::Writeback.index()].base.to_bits());
    h.0
}

/// One run of identical consecutive digest cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DigestRun {
    /// Index into the unique-cycle pool.
    cycle_id: u32,
    /// Number of consecutive occurrences.
    len: u32,
}

/// A complete, replayable timing digest of one program execution: the
/// deduplicated pool of unique [`DigestCycle`]s plus the run-length-encoded
/// cycle stream and the run totals.
///
/// Produced by [`DigestObserver`] (streaming) or
/// [`TimingDigest::from_trace`] (from a materialized trace). Consumed by the
/// `replay_digest` entry points of `idca-timing` and `idca-core`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TimingDigest {
    pool: Vec<DigestCycle>,
    runs: Vec<DigestRun>,
    /// Asynchronous events in cycle order (empty for interrupt-free runs).
    events: Vec<DigestEvent>,
    cycles: u64,
    retired: u64,
}

impl TimingDigest {
    /// Digests a materialized pipeline trace (test/offline convenience; the
    /// hot path streams through [`DigestObserver`] instead).
    #[must_use]
    pub fn from_trace(trace: &crate::PipelineTrace) -> TimingDigest {
        let mut observer = DigestObserver::new();
        for record in trace.cycles() {
            observer.observe_cycle(record);
        }
        observer.finish(&RunSummary {
            cycles: trace.cycle_count(),
            retired: trace.retired(),
        });
        observer.into_digest()
    }

    /// Number of simulated cycles the digest represents.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Architecturally retired instructions of the digested run.
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// The run totals, as every observer's `finish` received them.
    #[must_use]
    pub fn summary(&self) -> RunSummary {
        RunSummary {
            cycles: self.cycles,
            retired: self.retired,
        }
    }

    /// Number of *unique* cycles in the pool (the digest's working set).
    #[must_use]
    pub fn unique_cycles(&self) -> usize {
        self.pool.len()
    }

    /// Number of RLE runs in the encoded stream.
    #[must_use]
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// The asynchronous-event stream (interrupt entries/returns, timer
    /// fires, MMIO touches) in cycle order. Empty for interrupt-free runs.
    #[must_use]
    pub fn events(&self) -> &[DigestEvent] {
        &self.events
    }

    /// Expands the encoded stream, invoking `f` once per simulated cycle in
    /// execution order with the cycle index and the digest record. This is
    /// the replay driver: cycle indices are reconstructed from stream
    /// position, exactly as the simulator numbered them.
    pub fn for_each_cycle<F: FnMut(u64, &DigestCycle)>(&self, mut f: F) {
        let mut cycle: u64 = 0;
        for run in &self.runs {
            let dc = &self.pool[run.cycle_id as usize];
            for _ in 0..run.len {
                f(cycle, dc);
                cycle += 1;
            }
        }
    }

    /// Walks the encoded stream one *run-block* at a time, invoking `f` with
    /// the first cycle index of the block, the block length and the shared
    /// digest record. This is the batched replay driver: a consumer decodes
    /// the pooled cycle once per block instead of once per cycle (the
    /// corner-batched sweep walks run-blocks and only recomputes the
    /// cycle-indexed dither inside them).
    pub fn for_each_run<F: FnMut(u64, u32, &DigestCycle)>(&self, mut f: F) {
        let mut cycle: u64 = 0;
        for run in &self.runs {
            f(cycle, run.len, &self.pool[run.cycle_id as usize]);
            cycle += u64::from(run.len);
        }
    }

    /// Returns the digest of only the first `cycles` simulated cycles —
    /// the replay equivalent of truncating a characterization run (pool
    /// entries no longer referenced are dropped and ids are remapped in
    /// first-use order). The retired-instruction total is clamped to the
    /// new cycle count; it is an upper bound, not an architectural replay.
    #[must_use]
    pub fn truncated(&self, cycles: u64) -> TimingDigest {
        let mut out = TimingDigest::default();
        let mut remap: Vec<Option<u32>> = vec![None; self.pool.len()];
        let mut remaining = cycles;
        for run in &self.runs {
            if remaining == 0 {
                break;
            }
            let take = u64::from(run.len).min(remaining) as u32;
            remaining -= u64::from(take);
            let slot = &mut remap[run.cycle_id as usize];
            let id = *slot.get_or_insert_with(|| {
                out.pool.push(self.pool[run.cycle_id as usize]);
                (out.pool.len() - 1) as u32
            });
            out.runs.push(DigestRun {
                cycle_id: id,
                len: take,
            });
            out.cycles += u64::from(take);
        }
        out.events = self
            .events
            .iter()
            .copied()
            .filter(|event| event.cycle < out.cycles)
            .collect();
        out.retired = self.retired.min(out.cycles);
        out
    }

    /// Serializes the digest to the compact versioned binary format.
    ///
    /// Layout (all integers little-endian):
    ///
    /// ```text
    /// magic "IDCADGST" | version u32 | body_checksum u64 (FNV-1a)
    /// | cycles u64 | retired u64 | pool_len u32 | runs_len u32 | events_len u32
    /// | pool entries | run entries | event entries
    /// ```
    ///
    /// The checksum covers everything after itself (run totals and tables
    /// alike), so any single corrupted byte of a stored digest is detected.
    /// Each pool entry stores the six stage classes (one byte each), the six
    /// excitation coefficient pairs as raw `f64` bit patterns (replay must be
    /// bit-exact, so the float round-trip is by bits, never by text), the
    /// fetch address and the activity flags; each run entry is a
    /// `(cycle_id, len)` pair; each event entry (new in v3) is a
    /// `(cycle u64, kind u8, payload u32)` triple of the asynchronous-event
    /// stream. [`TimingDigest::from_bytes`] re-validates
    /// every structural invariant, so a digest loaded from disk is as
    /// trustworthy as a freshly captured one.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let payload_len = self.pool.len() * codec::POOL_ENTRY_BYTES
            + self.runs.len() * codec::RUN_ENTRY_BYTES
            + self.events.len() * codec::EVENT_ENTRY_BYTES;
        let mut body = Vec::with_capacity(codec::BODY_HEADER_BYTES + payload_len);
        body.extend_from_slice(&self.cycles.to_le_bytes());
        body.extend_from_slice(&self.retired.to_le_bytes());
        body.extend_from_slice(&(self.pool.len() as u32).to_le_bytes());
        body.extend_from_slice(&(self.runs.len() as u32).to_le_bytes());
        body.extend_from_slice(&(self.events.len() as u32).to_le_bytes());
        for dc in &self.pool {
            for class in dc.classes {
                body.push(class.index() as u8);
            }
            for excitation in dc.excitation {
                body.extend_from_slice(&excitation.base.to_bits().to_le_bytes());
                body.extend_from_slice(&excitation.dither_gain.to_bits().to_le_bytes());
            }
            body.extend_from_slice(&dc.fetch_address.to_le_bytes());
            body.push(dc.flags.bits());
        }
        for run in &self.runs {
            body.extend_from_slice(&run.cycle_id.to_le_bytes());
            body.extend_from_slice(&run.len.to_le_bytes());
        }
        for event in &self.events {
            let (kind, payload) = codec::encode_event_kind(event.kind);
            body.extend_from_slice(&event.cycle.to_le_bytes());
            body.push(kind);
            body.extend_from_slice(&payload.to_le_bytes());
        }

        let mut bytes = Vec::with_capacity(codec::PREFIX_BYTES + body.len());
        bytes.extend_from_slice(codec::MAGIC);
        bytes.extend_from_slice(&codec::VERSION.to_le_bytes());
        bytes.extend_from_slice(&codec::fnv1a(&body).to_le_bytes());
        bytes.extend_from_slice(&body);
        bytes
    }

    /// Deserializes a digest produced by [`TimingDigest::to_bytes`].
    ///
    /// Every failure mode of a file from disk — wrong magic, unknown
    /// version, truncation, trailing garbage, a flipped payload bit, classes
    /// or run ids out of range, run lengths that do not add up to the header
    /// cycle count — is reported as a [`DigestFormatError`]; no input can
    /// panic this parser or yield a structurally inconsistent digest.
    ///
    /// # Errors
    ///
    /// Returns [`DigestFormatError`] describing the first violation found.
    pub fn from_bytes(bytes: &[u8]) -> Result<TimingDigest, DigestFormatError> {
        let mut r = codec::Reader::new(bytes);
        if r.bytes_exact(codec::MAGIC.len())? != codec::MAGIC {
            return Err(DigestFormatError::BadMagic);
        }
        let version = r.u32()?;
        if version != codec::VERSION {
            return Err(DigestFormatError::UnsupportedVersion(version));
        }
        let checksum = r.u64()?;
        let body = r.remaining();

        let cycles = r.u64()?;
        let retired = r.u64()?;
        let pool_len = r.u32()? as usize;
        let runs_len = r.u32()? as usize;
        let events_len = r.u32()? as usize;
        let payload_len = r.remaining().len();
        let expected = pool_len
            .checked_mul(codec::POOL_ENTRY_BYTES)
            .and_then(|p| runs_len.checked_mul(codec::RUN_ENTRY_BYTES).map(|r| p + r))
            .and_then(|t| {
                events_len
                    .checked_mul(codec::EVENT_ENTRY_BYTES)
                    .map(|e| t + e)
            })
            .ok_or(DigestFormatError::Malformed("table sizes overflow"))?;
        if payload_len < expected {
            return Err(DigestFormatError::Truncated {
                expected,
                actual: payload_len,
            });
        }
        if payload_len > expected {
            return Err(DigestFormatError::Malformed("trailing bytes after tables"));
        }
        if codec::fnv1a(body) != checksum {
            return Err(DigestFormatError::ChecksumMismatch);
        }

        let mut pool = Vec::with_capacity(pool_len);
        for _ in 0..pool_len {
            let mut classes = [TimingClass::Bubble; Stage::COUNT];
            for slot in &mut classes {
                let index = r.u8()? as usize;
                *slot = *TimingClass::ALL
                    .get(index)
                    .ok_or(DigestFormatError::Malformed("timing class out of range"))?;
            }
            let mut excitation = [StageExcitation {
                base: 0.0,
                dither_gain: 0.0,
            }; Stage::COUNT];
            for slot in &mut excitation {
                slot.base = f64::from_bits(r.u64()?);
                slot.dither_gain = f64::from_bits(r.u64()?);
            }
            let fetch_address = r.u32()?;
            let flags = CycleRecordFlags::from_bits(r.u8()?)
                .ok_or(DigestFormatError::Malformed("undefined activity flag bits"))?;
            pool.push(DigestCycle {
                classes,
                excitation,
                fetch_address,
                flags,
            });
        }

        let mut runs = Vec::with_capacity(runs_len);
        let mut total: u64 = 0;
        for _ in 0..runs_len {
            let cycle_id = r.u32()?;
            let len = r.u32()?;
            if cycle_id as usize >= pool_len {
                return Err(DigestFormatError::Malformed(
                    "run references missing pool id",
                ));
            }
            if len == 0 {
                return Err(DigestFormatError::Malformed("empty run"));
            }
            total += u64::from(len);
            runs.push(DigestRun { cycle_id, len });
        }
        if total != cycles {
            return Err(DigestFormatError::Malformed(
                "run lengths disagree with header cycle count",
            ));
        }
        if retired > cycles {
            // A pipeline cannot retire more instructions than it ran cycles;
            // live capture and `truncated` both guarantee this.
            return Err(DigestFormatError::Malformed(
                "retired count exceeds cycle count",
            ));
        }

        let mut events = Vec::with_capacity(events_len);
        let mut last_event_cycle: u64 = 0;
        for _ in 0..events_len {
            let cycle = r.u64()?;
            let kind_byte = r.u8()?;
            let payload = r.u32()?;
            let kind = codec::decode_event_kind(kind_byte, payload)?;
            if cycle >= cycles {
                return Err(DigestFormatError::Malformed(
                    "event cycle beyond header cycle count",
                ));
            }
            if cycle < last_event_cycle {
                return Err(DigestFormatError::Malformed(
                    "event cycles not nondecreasing",
                ));
            }
            last_event_cycle = cycle;
            events.push(DigestEvent { cycle, kind });
        }

        Ok(TimingDigest {
            pool,
            runs,
            events,
            cycles,
            retired,
        })
    }
}

/// Errors reported by [`TimingDigest::from_bytes`]. A digest file on disk is
/// untrusted input: every variant here is a rejected file, never a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum DigestFormatError {
    /// The file does not start with the digest magic.
    BadMagic,
    /// The format version is newer (or older) than this reader supports.
    UnsupportedVersion(
        /// The version found in the header.
        u32,
    ),
    /// The file ends early: a read needed more bytes than remain (whether
    /// in the fixed prefix, the body header, or the tables the header
    /// announced).
    Truncated {
        /// Bytes the failing read needed.
        expected: usize,
        /// Bytes actually available at that point.
        actual: usize,
    },
    /// The payload does not hash to the header checksum (bit rot or a
    /// partial write).
    ChecksumMismatch,
    /// A structural invariant is violated (out-of-range class, dangling run
    /// id, inconsistent cycle totals, trailing bytes, ...).
    Malformed(
        /// Which invariant failed.
        &'static str,
    ),
}

impl std::fmt::Display for DigestFormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DigestFormatError::BadMagic => write!(f, "not a timing-digest file (bad magic)"),
            DigestFormatError::UnsupportedVersion(v) => {
                write!(f, "unsupported timing-digest format version {v}")
            }
            DigestFormatError::Truncated { expected, actual } => write!(
                f,
                "truncated timing digest: needs {expected} bytes, {actual} available"
            ),
            DigestFormatError::ChecksumMismatch => {
                write!(f, "timing-digest payload checksum mismatch")
            }
            DigestFormatError::Malformed(what) => write!(f, "malformed timing digest: {what}"),
        }
    }
}

impl std::error::Error for DigestFormatError {}

/// Byte-level helpers of the digest binary format.
mod codec {
    use super::DigestFormatError;
    use crate::{DigestEventKind, Stage};

    /// File magic of the digest format.
    pub(super) const MAGIC: &[u8] = b"IDCADGST";
    /// Current format version. v3 added the asynchronous-event table
    /// (`events_len` in the body header plus event entries after the run
    /// table); v1/v2 files are rejected with
    /// [`DigestFormatError::UnsupportedVersion`] rather than silently read
    /// without their event stream.
    pub(super) const VERSION: u32 = 3;
    /// Unchecksummed prefix: magic + version + checksum.
    pub(super) const PREFIX_BYTES: usize = 8 + 4 + 8;
    /// Checksummed body header: cycles + retired + pool_len + runs_len +
    /// events_len.
    pub(super) const BODY_HEADER_BYTES: usize = 8 + 8 + 4 + 4 + 4;
    /// Serialized size of one pool entry: classes + excitation coefficient
    /// pairs + fetch address + flags.
    pub(super) const POOL_ENTRY_BYTES: usize = Stage::COUNT + Stage::COUNT * 16 + 4 + 1;
    /// Serialized size of one run entry.
    pub(super) const RUN_ENTRY_BYTES: usize = 8;
    /// Serialized size of one event entry: cycle + kind + payload.
    pub(super) const EVENT_ENTRY_BYTES: usize = 8 + 1 + 4;

    /// Maps an event kind onto its `(kind byte, payload)` wire pair.
    pub(super) fn encode_event_kind(kind: DigestEventKind) -> (u8, u32) {
        match kind {
            DigestEventKind::IrqEntry { line } => (0, u32::from(line)),
            DigestEventKind::IrqReturn => (1, 0),
            DigestEventKind::TimerFire => (2, 0),
            DigestEventKind::MmioLoad { address } => (3, address),
            DigestEventKind::MmioStore { address } => (4, address),
        }
    }

    /// Inverse of [`encode_event_kind`]; rejects unknown kinds and payloads
    /// a kind cannot carry, so a decoded event always re-encodes to the
    /// same bytes.
    pub(super) fn decode_event_kind(
        kind: u8,
        payload: u32,
    ) -> Result<DigestEventKind, DigestFormatError> {
        match kind {
            0 => {
                let line = u8::try_from(payload)
                    .map_err(|_| DigestFormatError::Malformed("interrupt line out of range"))?;
                Ok(DigestEventKind::IrqEntry { line })
            }
            1 | 2 => {
                if payload != 0 {
                    return Err(DigestFormatError::Malformed(
                        "nonzero payload on payloadless event",
                    ));
                }
                Ok(if kind == 1 {
                    DigestEventKind::IrqReturn
                } else {
                    DigestEventKind::TimerFire
                })
            }
            3 => Ok(DigestEventKind::MmioLoad { address: payload }),
            4 => Ok(DigestEventKind::MmioStore { address: payload }),
            _ => Err(DigestFormatError::Malformed("undefined event kind")),
        }
    }

    /// 64-bit FNV-1a over a byte slice (the header's payload checksum).
    pub(super) fn fnv1a(bytes: &[u8]) -> u64 {
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for &byte in bytes {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }

    /// Bounds-checked little-endian reader: every primitive read reports
    /// [`DigestFormatError::Truncated`] instead of slicing out of range.
    pub(super) struct Reader<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl<'a> Reader<'a> {
        pub(super) fn new(bytes: &'a [u8]) -> Self {
            Reader { bytes, pos: 0 }
        }

        /// The unread tail (used to checksum the payload before parsing it).
        pub(super) fn remaining(&self) -> &'a [u8] {
            &self.bytes[self.pos..]
        }

        pub(super) fn bytes_exact(&mut self, len: usize) -> Result<&'a [u8], DigestFormatError> {
            let end = self
                .pos
                .checked_add(len)
                .filter(|&end| end <= self.bytes.len())
                .ok_or(DigestFormatError::Truncated {
                    expected: len,
                    actual: self.bytes.len() - self.pos,
                })?;
            let slice = &self.bytes[self.pos..end];
            self.pos = end;
            Ok(slice)
        }

        pub(super) fn u8(&mut self) -> Result<u8, DigestFormatError> {
            Ok(self.bytes_exact(1)?[0])
        }

        pub(super) fn u32(&mut self) -> Result<u32, DigestFormatError> {
            Ok(u32::from_le_bytes(
                self.bytes_exact(4)?.try_into().expect("4 bytes"),
            ))
        }

        pub(super) fn u64(&mut self) -> Result<u64, DigestFormatError> {
            Ok(u64::from_le_bytes(
                self.bytes_exact(8)?.try_into().expect("8 bytes"),
            ))
        }
    }
}

/// Fast non-cryptographic word mixer for the digest dedup index (the
/// default SipHash showed up as a main cost of digest capture).
/// [`cycle_hash`] folds a cycle's words through it; [`DedupIndex`] uses the
/// result directly as the probe start. A multiply-rotate mix is safe here
/// because every hash hit is verified exactly — pool ids are assigned in
/// insertion order regardless of hash, so the digest bytes cannot change.
#[derive(Debug, Default)]
struct DigestKeyHasher(u64);

impl DigestKeyHasher {
    const K: u64 = 0x517C_C1B7_2722_0A95;

    fn mix(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(Self::K);
    }
}

/// Open-addressing dedup index: flat `(hash, pool_id)` slots with linear
/// probing, kept at most half full. Every hash hit is verified bit-exactly
/// with [`same_cycle`] before the pool id is reused, and a colliding-but-
/// different cycle simply probes onward, so hash quality (and the probe
/// order itself) can only affect speed — pool ids are always assigned in
/// first-occurrence order, which is what pins the digest bytes.
#[derive(Debug, Default)]
struct DedupIndex {
    /// `id == u32::MAX` marks an empty slot. Length is a power of two.
    slots: Vec<(u64, u32)>,
    len: usize,
}

impl DedupIndex {
    const EMPTY: u32 = u32::MAX;

    /// Finds the pool id of `dc`, or inserts `next_id` for it and returns
    /// `None`. `pool` is the observer's unique-cycle pool (for exact
    /// verification of hash hits).
    fn find_or_insert(
        &mut self,
        dc: &DigestCycle,
        pool: &[DigestCycle],
        next_id: u32,
    ) -> Option<u32> {
        if self.slots.len() < (self.len + 1) * 2 {
            self.grow();
        }
        let hash = cycle_hash(dc);
        let mask = self.slots.len() - 1;
        let mut i = hash as usize & mask;
        loop {
            let (slot_hash, slot_id) = self.slots[i];
            if slot_id == Self::EMPTY {
                self.slots[i] = (hash, next_id);
                self.len += 1;
                return None;
            }
            if slot_hash == hash && same_cycle(dc, &pool[slot_id as usize]) {
                return Some(slot_id);
            }
            i = (i + 1) & mask;
        }
    }

    /// Doubles the table and reinserts every pool id by its recorded hash.
    fn grow(&mut self) {
        let new_cap = (self.slots.len() * 2).max(1024);
        let mask = new_cap - 1;
        let mut slots = vec![(0u64, Self::EMPTY); new_cap];
        for &(hash, id) in self.slots.iter().filter(|(_, id)| *id != Self::EMPTY) {
            let mut i = hash as usize & mask;
            while slots[i].1 != Self::EMPTY {
                i = (i + 1) & mask;
            }
            slots[i] = (hash, id);
        }
        self.slots = slots;
    }
}

/// The facts of one hazard-free fast-path cycle, as recorded by the
/// predecoded engine's basic-block burst loop: per-stage micro-op table
/// indices (the address/fetch/decode/execute stages always hold table ops
/// during a burst; control and writeback may still carry pre-burst bubbles)
/// plus the data-dependent execute/control/writeback activity. Everything
/// [`DigestObserver::observe_fast_cycle`] needs to reproduce — bit-exactly —
/// the [`DigestCycle`] that [`DigestCycle::of_record_hinted`] would extract
/// from the equivalent [`CycleRecord`], without that record ever being
/// materialized.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FastCycleFacts {
    /// Instruction-memory address presented this cycle (dither salt).
    pub fetch_address: u32,
    /// Micro-op index of the address-stage occupant (the op at `fetch_address`).
    pub adr_idx: u32,
    /// Micro-op index of the fetch-stage occupant.
    pub fe_idx: u32,
    /// Micro-op index of the decode-stage occupant.
    pub dc_idx: u32,
    /// Micro-op index of the execute-stage occupant.
    pub ex_idx: u32,
    /// Micro-op index of the control-stage occupant (`None` = bubble).
    pub ctrl_idx: Option<u32>,
    /// Micro-op index of the writeback-stage occupant (`None` = bubble).
    pub wb_idx: Option<u32>,
    /// Load data returned by the control stage this cycle, if any.
    pub mem_return: Option<u32>,
    /// Value written to the register file this cycle, if any.
    pub wb_value: Option<u32>,
    /// Execute-stage operand A.
    pub op_a: u32,
    /// Execute-stage operand B (after immediate selection).
    pub op_b: u32,
    /// Execute-stage result.
    pub result: u32,
    /// Adder carry-chain length of the execute op.
    pub carry_chain: u8,
    /// Multiplier operand width (0 for non-multiplies).
    pub mul_bits: u8,
    /// Shift amount (0 for non-shifts).
    pub shift_amount: u8,
    /// Data-memory address issued by the execute op, if any.
    pub mem_address: Option<u32>,
    /// The shielded multiplier toggled this cycle.
    pub mul_active: bool,
    /// At least one execute operand was forwarded.
    pub forwarded: bool,
}

/// Streaming digest capture: a [`CycleObserver`] that folds every
/// [`CycleRecord`] into a [`TimingDigest`] as the simulator produces it —
/// phase 1 of the simulate-once / evaluate-many sweep.
#[derive(Debug, Default)]
pub struct DigestObserver {
    digest: TimingDigest,
    /// Content-hash index over the pool, verified exactly on every hit.
    index: DedupIndex,
    /// Pool id of the previous cycle (run-length extension check).
    last_id: Option<u32>,
    hints: Option<Arc<DigestHints>>,
}

impl DigestObserver {
    /// Creates an empty digest observer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an observer that captures through a precomputed
    /// [`DigestHints`] table (see
    /// [`crate::PredecodedProgram::digest_hints`]). Produces bit-identical
    /// digests to [`DigestObserver::new`]; the hints only skip redundant
    /// per-cycle work.
    #[must_use]
    pub fn with_hints(hints: Arc<DigestHints>) -> Self {
        DigestObserver {
            hints: Some(hints),
            ..Self::default()
        }
    }

    /// Consumes the observer and returns the finished digest.
    #[must_use]
    pub fn into_digest(self) -> TimingDigest {
        self.digest
    }

    /// Folds one hazard-free fast-path cycle into the digest without an
    /// intermediate [`CycleRecord`]. Only reachable through
    /// [`CycleObserver::as_hinted_digest`], so `self.hints` is present and —
    /// by the caller pairing the observer with the program it simulates —
    /// indexes the same micro-op table the facts' indices point into.
    ///
    /// Every arm below reproduces, in the same floating-point order, exactly
    /// what [`DigestCycle::of_record_hinted`] computes for a burst cycle: an
    /// un-redirected, un-stalled cycle whose front four stages hold plain
    /// table ops with an exec-activity record and no branch resolution. The
    /// differential suite pins the resulting digests against full-record
    /// capture on the reference engine.
    pub(crate) fn observe_fast_cycle(&mut self, fc: &FastCycleFacts) {
        let hints = self.hints.as_ref().expect("fast-path capture is hinted");
        let entry = |idx: u32| &hints.entries[idx as usize];
        let ex = |base: f64, dither_gain: f64| StageExcitation { base, dither_gain };

        // Address: never redirected during a burst.
        let adr_class = entry(fc.adr_idx).class;
        let adr = ex(0.30, 0.40);

        let fe_hint = entry(fc.fe_idx);
        let fe = ex(fe_hint.fetch_base, 0.0);
        let dc_hint = entry(fc.dc_idx);
        let dc = ex(dc_hint.decode_base, 0.12);

        // Execute: `execute_excitation` with activity present and no branch.
        let ex_class = entry(fc.ex_idx).class;
        let mut exec_base = match ex_class {
            TimingClass::Add | TimingClass::SetFlag => f64::from(fc.carry_chain) / 32.0,
            TimingClass::Mul => f64::from(fc.mul_bits) / 32.0,
            TimingClass::Shift => f64::from(fc.shift_amount) / 31.0,
            TimingClass::And | TimingClass::Or | TimingClass::Xor | TimingClass::Move => {
                popcount_frac(fc.op_a ^ fc.op_b)
            }
            TimingClass::Load | TimingClass::Store => {
                let addr = fc.mem_address.unwrap_or(0);
                let addr_toggle = f64::from((addr & 0xFFFF).count_ones()) / 16.0;
                let drive = (f64::from(fc.carry_chain) / 32.0).max(addr_toggle);
                0.45 + 0.55 * drive
            }
            // Control classes are not plain ops, so they never execute in a
            // burst; the arms still mirror `execute_excitation` exactly.
            TimingClass::BranchCond => 0.45,
            TimingClass::Jump => 0.55,
            TimingClass::JumpReg => popcount_frac(fc.result).max(0.5),
            TimingClass::Nop => 0.30,
            TimingClass::Bubble => 0.40,
        };
        if fc.forwarded {
            exec_base = (exec_base + 0.12).min(1.0);
        }
        let exc = ex(exec_base, 0.0);

        let ctl_class = fc
            .ctrl_idx
            .map_or(TimingClass::Bubble, |idx| entry(idx).class);
        let ctl = match ctl_class {
            TimingClass::Load => ex(0.30 + 0.70 * popcount_frac(fc.mem_return.unwrap_or(0)), 0.0),
            TimingClass::Store => ex(0.35, 0.45),
            TimingClass::Mul => ex(0.45, 0.35),
            TimingClass::Bubble => ex(0.35, 0.0),
            _ => ex(0.35, 0.35),
        };

        let wb_class = fc
            .wb_idx
            .map_or(TimingClass::Bubble, |idx| entry(idx).class);
        let wb = match fc.wb_value {
            Some(value) => ex(0.25 + 0.75 * popcount_frac(value), 0.0),
            None => ex(0.35, 0.0),
        };

        let mut bits = CycleRecordFlags::EXECUTE_INSN;
        if fc.mem_address.is_some() {
            bits |= CycleRecordFlags::MEM_ACCESS;
        }
        if fc.mul_active {
            bits |= CycleRecordFlags::MUL_ACTIVE;
        }
        if fc.forwarded {
            bits |= CycleRecordFlags::FORWARDED;
        }

        self.push(DigestCycle {
            classes: [
                adr_class,
                fe_hint.class,
                dc_hint.class,
                ex_class,
                ctl_class,
                wb_class,
            ],
            excitation: [adr, fe, dc, exc, ctl, wb],
            fetch_address: fc.fetch_address,
            flags: CycleRecordFlags::from_bits(bits).expect("burst flags are defined bits"),
        });
    }

    fn push(&mut self, dc: DigestCycle) {
        self.digest.cycles += 1;
        if let Some(last) = self.last_id {
            if same_cycle(&dc, &self.digest.pool[last as usize]) {
                if let Some(run) = self.digest.runs.last_mut() {
                    run.len += 1;
                    return;
                }
            }
        }
        let next_id = self.digest.pool.len() as u32;
        let id = match self.index.find_or_insert(&dc, &self.digest.pool, next_id) {
            Some(id) => id,
            None => {
                self.digest.pool.push(dc);
                next_id
            }
        };
        self.digest.runs.push(DigestRun {
            cycle_id: id,
            len: 1,
        });
        self.last_id = Some(id);
    }
}

impl CycleObserver for DigestObserver {
    fn observe_cycle(&mut self, record: &CycleRecord) {
        let dc = match &self.hints {
            Some(hints) => DigestCycle::of_record_hinted(record, hints),
            None => DigestCycle::of_record(record),
        };
        self.push(dc);
    }

    fn observe_event(&mut self, event: &DigestEvent) {
        debug_assert!(
            self.digest
                .events
                .last()
                .is_none_or(|last| last.cycle <= event.cycle),
            "events must arrive in cycle order"
        );
        self.digest.events.push(*event);
    }

    fn finish(&mut self, summary: &RunSummary) {
        self.digest.retired = summary.retired;
        debug_assert_eq!(self.digest.cycles, summary.cycles);
    }

    fn as_hinted_digest(&mut self) -> Option<&mut DigestObserver> {
        if self.hints.is_some() {
            Some(self)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DigestEventKind, SimConfig, Simulator};
    use idca_isa::asm::Assembler;

    fn trace(src: &str) -> crate::PipelineTrace {
        let program = Assembler::new().assemble(src).expect("assembles");
        Simulator::new(SimConfig::default())
            .run(&program)
            .expect("runs")
            .trace
    }

    #[test]
    fn digest_round_trips_the_cycle_stream() {
        let t = trace(
            "        l.addi r3, r0, 40
             loop:   l.addi r3, r3, -1
                     l.sfne r3, r0
                     l.bf   loop
                     l.nop  0
                     l.nop  1",
        );
        let digest = TimingDigest::from_trace(&t);
        assert_eq!(digest.cycles(), t.cycle_count());
        assert_eq!(digest.retired(), t.retired());
        // Expansion reproduces, per cycle, exactly the digest of the
        // original record (RLE + pooling are lossless).
        let mut expanded = Vec::new();
        digest.for_each_cycle(|cycle, dc| expanded.push((cycle, *dc)));
        assert_eq!(expanded.len() as u64, t.cycle_count());
        for (record, (cycle, dc)) in t.cycles().iter().zip(&expanded) {
            assert_eq!(record.cycle, *cycle);
            assert_eq!(DigestCycle::of_record(record), *dc);
        }
    }

    #[test]
    fn value_stable_loops_compress_below_their_cycle_count() {
        // A loop whose per-iteration operand activity repeats (a countdown
        // re-excites mostly the same classes) must dedupe below 1:1; the
        // drain/reset bubbles at both ends also coalesce into runs.
        let t = trace(
            "        l.addi r3, r0, 200
             loop:   l.addi r3, r3, -1
                     l.sfne r3, r0
                     l.bf   loop
                     l.nop  0
                     l.nop  1",
        );
        let digest = TimingDigest::from_trace(&t);
        assert!(digest.cycles() > 200);
        assert!(
            (digest.unique_cycles() as u64) < digest.cycles(),
            "pool {} should undercut {} cycles",
            digest.unique_cycles(),
            digest.cycles()
        );
    }

    #[test]
    fn run_block_walk_expands_to_the_cycle_walk() {
        let t = trace(
            "        l.addi r3, r0, 60
             loop:   l.addi r3, r3, -1
                     l.sfne r3, r0
                     l.bf   loop
                     l.nop  0
                     l.nop  1",
        );
        let digest = TimingDigest::from_trace(&t);
        let mut per_cycle = Vec::new();
        digest.for_each_cycle(|cycle, dc| per_cycle.push((cycle, *dc)));
        let mut expanded = Vec::new();
        digest.for_each_run(|start, len, dc| {
            for offset in 0..u64::from(len) {
                expanded.push((start + offset, *dc));
            }
        });
        assert!(digest.run_count() as u64 <= digest.cycles());
        assert_eq!(expanded, per_cycle);
    }

    #[test]
    fn truncation_keeps_a_prefix_and_compacts_the_pool() {
        let t = trace(
            "        l.addi r3, r0, 80
             loop:   l.addi r3, r3, -1
                     l.sfne r3, r0
                     l.bf   loop
                     l.nop  0
                     l.nop  1",
        );
        let digest = TimingDigest::from_trace(&t);
        let keep = digest.cycles() / 3;
        let short = digest.truncated(keep);
        assert_eq!(short.cycles(), keep);
        assert!(short.unique_cycles() <= digest.unique_cycles());
        let mut full = Vec::new();
        digest.for_each_cycle(|cycle, dc| {
            if cycle < keep {
                full.push((cycle, *dc));
            }
        });
        let mut prefix = Vec::new();
        short.for_each_cycle(|cycle, dc| prefix.push((cycle, *dc)));
        assert_eq!(prefix, full);
        // Truncating beyond the end is the identity on the cycle stream.
        assert_eq!(
            digest.truncated(digest.cycles() + 10).cycles(),
            digest.cycles()
        );
    }

    #[test]
    fn binary_round_trip_is_byte_exact() {
        let t = trace(
            "        l.addi r3, r0, 33
             loop:   l.mul  r4, r3, r3
                     l.sw   0(r0), r4
                     l.addi r3, r3, -1
                     l.sfne r3, r0
                     l.bf   loop
                     l.nop  0
                     l.nop  1",
        );
        let digest = TimingDigest::from_trace(&t);
        let bytes = digest.to_bytes();
        let back = TimingDigest::from_bytes(&bytes).expect("round-trips");
        assert_eq!(back, digest);
        // Serializing the reloaded digest reproduces the identical bytes.
        assert_eq!(back.to_bytes(), bytes);
        // The empty digest round-trips too.
        let empty = TimingDigest::default();
        assert_eq!(
            TimingDigest::from_bytes(&empty.to_bytes()).expect("empty round-trips"),
            empty
        );
    }

    #[test]
    fn corrupt_and_truncated_digests_are_rejected_without_panicking() {
        let t = trace("l.addi r3, r0, 5\n l.mul r4, r3, r3\n l.nop 1\n");
        let bytes = TimingDigest::from_trace(&t).to_bytes();

        // Wrong magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert_eq!(
            TimingDigest::from_bytes(&bad),
            Err(DigestFormatError::BadMagic)
        );

        // Unknown version.
        let mut bad = bytes.clone();
        bad[8] = 0xEE;
        assert!(matches!(
            TimingDigest::from_bytes(&bad),
            Err(DigestFormatError::UnsupportedVersion(_))
        ));

        // Every possible truncation length parses to an error, never a panic.
        for len in 0..bytes.len() {
            assert!(
                TimingDigest::from_bytes(&bytes[..len]).is_err(),
                "prefix {len}"
            );
        }

        // Trailing garbage is rejected.
        let mut bad = bytes.clone();
        bad.push(0);
        assert!(TimingDigest::from_bytes(&bad).is_err());

        // A flipped payload bit trips the checksum.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert_eq!(
            TimingDigest::from_bytes(&bad),
            Err(DigestFormatError::ChecksumMismatch)
        );

        // In fact *any* single corrupted byte — header counters included —
        // is rejected: the checksum covers everything after itself.
        for at in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[at] ^= 0x10;
            assert!(TimingDigest::from_bytes(&bad).is_err(), "flip at byte {at}");
        }

        // Errors render a human-readable description.
        assert!(DigestFormatError::ChecksumMismatch
            .to_string()
            .contains("checksum"));
    }

    /// Builds a digest carrying a populated asynchronous-event stream by
    /// driving the observer exactly as the simulator would.
    fn digest_with_events() -> TimingDigest {
        let t = trace("l.addi r3, r0, 5\n l.mul r4, r3, r3\n l.nop 1\n");
        let mut observer = DigestObserver::new();
        let events = [
            DigestEvent {
                cycle: 0,
                kind: DigestEventKind::TimerFire,
            },
            DigestEvent {
                cycle: 1,
                kind: DigestEventKind::MmioLoad {
                    address: 0xFFFF_0008,
                },
            },
            DigestEvent {
                cycle: 1,
                kind: DigestEventKind::IrqEntry { line: 1 },
            },
            DigestEvent {
                cycle: 3,
                kind: DigestEventKind::MmioStore {
                    address: 0xFFFF_000C,
                },
            },
            DigestEvent {
                cycle: 4,
                kind: DigestEventKind::IrqReturn,
            },
        ];
        for record in t.cycles() {
            observer.observe_cycle(record);
            for event in events.iter().filter(|e| e.cycle == record.cycle) {
                observer.observe_event(event);
            }
        }
        observer.finish(&RunSummary {
            cycles: t.cycle_count(),
            retired: t.retired(),
        });
        observer.into_digest()
    }

    #[test]
    fn event_stream_round_trips_and_survives_truncation() {
        let digest = digest_with_events();
        assert_eq!(digest.events().len(), 5);

        let bytes = digest.to_bytes();
        let back = TimingDigest::from_bytes(&bytes).expect("round-trips");
        assert_eq!(back, digest);
        assert_eq!(back.to_bytes(), bytes);

        // Truncation keeps only events of surviving cycles.
        let short = digest.truncated(2);
        assert_eq!(short.events().len(), 3);
        assert!(short.events().iter().all(|e| e.cycle < 2));
        let short_bytes = short.to_bytes();
        assert_eq!(
            TimingDigest::from_bytes(&short_bytes).expect("truncated round-trips"),
            short
        );
    }

    #[test]
    fn pre_event_stream_versions_are_rejected() {
        // v1/v2 digests predate the event table; reading them as v3 would
        // silently drop the (then-unrepresentable) event stream, so both are
        // rejected outright.
        let bytes = digest_with_events().to_bytes();
        for old in [1u8, 2] {
            let mut bad = bytes.clone();
            bad[8] = old;
            assert_eq!(
                TimingDigest::from_bytes(&bad),
                Err(DigestFormatError::UnsupportedVersion(u32::from(old)))
            );
        }
    }

    #[test]
    fn corrupt_event_tables_are_rejected_without_panicking() {
        let digest = digest_with_events();
        let bytes = digest.to_bytes();

        // Flip every byte of the encoded digest — event table included —
        // and demand a structured error each time, mirroring the pool/run
        // corruption sweep above.
        for at in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[at] ^= 0x10;
            assert!(TimingDigest::from_bytes(&bad).is_err(), "flip at byte {at}");
        }
        for len in 0..bytes.len() {
            assert!(
                TimingDigest::from_bytes(&bytes[..len]).is_err(),
                "prefix {len}"
            );
        }

        // Structural event validation (bad kind, misordered cycles,
        // out-of-range cycles, oversized payloads) is checked directly
        // against hand-built digests with a fresh checksum.
        let rebuild = |mutate: &dyn Fn(&mut TimingDigest)| {
            let mut d = digest.clone();
            mutate(&mut d);
            d.to_bytes()
        };
        let misordered = rebuild(&|d| d.events.swap(0, 4));
        assert_eq!(
            TimingDigest::from_bytes(&misordered),
            Err(DigestFormatError::Malformed(
                "event cycles not nondecreasing"
            ))
        );
        let beyond = rebuild(&|d| d.events.last_mut().expect("events").cycle = d.cycles);
        assert_eq!(
            TimingDigest::from_bytes(&beyond),
            Err(DigestFormatError::Malformed(
                "event cycle beyond header cycle count"
            ))
        );
    }

    #[test]
    fn hinted_capture_is_bit_identical_to_unhinted() {
        // Exercise every hint-relevant stage situation: arithmetic with and
        // without immediates, multiplies, loads/stores, decode-resolved
        // branches and an execute-resolved register jump (whose flush
        // bubbles and redirects must digest identically too).
        let src = "        l.jal  body
                           l.addi r1, r0, 0x200
                           l.nop  1
                   body:   l.addi r3, r0, 17
                   loop:   l.mul  r4, r3, r3
                           l.sw   0(r1), r4
                           l.lwz  r5, 0(r1)
                           l.xor  r6, r5, r3
                           l.addi r3, r3, -1
                           l.sfne r3, r0
                           l.bf   loop
                           l.nop  0
                           l.jr   r9
                           l.nop  0";
        let program = Assembler::new().assemble(src).expect("assembles");
        let sim = Simulator::new(SimConfig::default());
        let mut plain = DigestObserver::new();
        sim.run_observed(&program, &mut [&mut plain]).expect("runs");
        let pre = crate::PredecodedProgram::lower(&program);
        let mut hinted = DigestObserver::with_hints(pre.digest_hints());
        sim.run_observed(&program, &mut [&mut hinted])
            .expect("runs");
        assert_eq!(
            plain.into_digest().to_bytes(),
            hinted.into_digest().to_bytes()
        );
    }

    #[test]
    fn fused_burst_capture_is_bit_identical_to_record_capture() {
        // A lone hinted observer takes the compact fast-path delivery
        // (`observe_fast_cycle`); adding any second observer forces the
        // burst to materialize full records instead. Both captures must
        // produce byte-identical digests.
        let src = "        l.addi r1, r0, 0x200
                           l.addi r3, r0, 25
                   loop:   l.mul  r4, r3, r3
                           l.sw   0(r1), r4
                           l.lwz  r5, 0(r1)
                           l.xor  r6, r5, r3
                           l.add  r7, r6, r4
                           l.srli r8, r7, 3
                           l.addi r3, r3, -1
                           l.sfne r3, r0
                           l.bf   loop
                           l.nop  0
                           l.nop  1";
        let program = Assembler::new().assemble(src).expect("assembles");
        let sim = Simulator::new(SimConfig::default());
        let pre = crate::PredecodedProgram::lower(&program);

        let mut fused = DigestObserver::with_hints(pre.digest_hints());
        sim.run_observed(&program, &mut [&mut fused]).expect("runs");

        let mut recorded = DigestObserver::with_hints(pre.digest_hints());
        let mut chaperone = crate::TraceStats::default();
        sim.run_observed(&program, &mut [&mut recorded, &mut chaperone])
            .expect("runs");

        assert_eq!(
            fused.into_digest().to_bytes(),
            recorded.into_digest().to_bytes()
        );
    }

    #[test]
    fn empty_digest_is_well_formed() {
        let digest = TimingDigest::default();
        assert_eq!(digest.cycles(), 0);
        assert_eq!(digest.unique_cycles(), 0);
        let mut called = false;
        digest.for_each_cycle(|_, _| called = true);
        assert!(!called);
    }
}
