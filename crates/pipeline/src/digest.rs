//! The timing digest: a compact, replayable per-cycle view of one execution.
//!
//! A Monte Carlo PVT sweep evaluates the *same* program against many
//! corner-varied timing models. Architectural execution is identical across
//! corners, so re-running the full pipeline simulation per corner wastes
//! almost all of its work: the timing analyses only ever consume
//!
//! * the instruction **class** occupying each stage,
//! * the data-dependent **path excitation** of each stage (a normalized
//!   `[0, 1]` descriptor derived from operand activity — carry chains,
//!   multiplier widths, popcounts, forwarding, redirects),
//! * the fetch address (salt of the per-cycle residual-variation dither),
//! * and a handful of **activity bits** (execute occupancy, memory access,
//!   multiplier use, branches, forwarding, stalls) for the power model.
//!
//! [`DigestCycle`] records exactly that, [`DigestObserver`] captures it in
//! the same streaming pass as every other [`CycleObserver`], and
//! [`TimingDigest`] stores the cycle stream deduplicated (a pool of unique
//! cycles) and run-length encoded, so loop-heavy kernels with value-stable
//! activity compress toward their basic-block count. The timing and core
//! crates provide `replay_digest` entry points that fold a digest against
//! any [`idca_timing`-style] model and reproduce the direct simulation's
//! results **bit-identically** — turning an `N×M` sweep into `N` simulation
//! passes plus `N×M` cheap digest folds.
//!
//! [`idca_timing`-style]: crate::CycleRecord
//!
//! # Excitation coefficients
//!
//! The downstream timing model blends every stage's raw excitation with a
//! per-cycle pseudo-random dither derived from `(cycle, stage,
//! fetch_address)`. All raw excitations are *affine* in that dither, so a
//! [`StageExcitation`] stores the two coefficients `(base, dither_gain)`
//! instead of a value: the replay recomputes `base + dither_gain × dither`
//! with the exact arithmetic of the direct path, which is what makes the
//! replay bit-identical while keeping [`DigestCycle`] independent of the
//! cycle index (a prerequisite for run-length encoding).

use crate::{CycleObserver, CycleRecord, CycleRecordFlags, Occupant, RunSummary, Stage};
use idca_isa::TimingClass;
use std::collections::HashMap;

/// Data-dependent path excitation of one stage in one cycle, expressed as
/// coefficients of the per-cycle dither: `raw = base + dither_gain × dither`
/// with `dither ∈ [0, 1]`.
///
/// This is the single source of truth for the activity → excitation mapping
/// (the paper's "which paths does this operand pattern toggle" question);
/// the timing model evaluates it for the direct simulation path and the
/// digest replay alike.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageExcitation {
    /// Dither-independent part of the raw excitation.
    pub base: f64,
    /// Sensitivity of the raw excitation to the per-cycle dither.
    pub dither_gain: f64,
}

impl StageExcitation {
    /// Computes the excitation coefficients of `stage` from a cycle record.
    #[must_use]
    pub fn of_record(record: &CycleRecord, stage: Stage) -> StageExcitation {
        let class = record.timing_class(stage);
        let (base, dither_gain) = match stage {
            Stage::Address => {
                if record.fetch_redirected && is_control_class(class) {
                    // Branch-target adder + PC mux + instruction-memory
                    // address setup: the long address-stage path.
                    (0.70, 0.30)
                } else {
                    (0.30, 0.40)
                }
            }
            Stage::Fetch => match record.occupant(stage) {
                Occupant::Insn { insn, .. } => (0.25 + 0.75 * popcount_frac(insn.encode()), 0.0),
                Occupant::Bubble(_) => (0.35, 0.0),
            },
            Stage::Decode => match record.occupant(stage) {
                Occupant::Insn { insn, .. } => {
                    let mut e = 0.35;
                    if insn.opcode().reads_ra() {
                        e += 0.18;
                    }
                    if insn.opcode().reads_rb() {
                        e += 0.18;
                    }
                    if insn.imm().is_some() {
                        e += 0.12;
                    }
                    (e, 0.12)
                }
                Occupant::Bubble(_) => (0.35, 0.0),
            },
            Stage::Execute => (execute_excitation(record, class), 0.0),
            Stage::Control => match class {
                TimingClass::Load => (
                    0.30 + 0.70 * popcount_frac(record.mem_return.unwrap_or(0)),
                    0.0,
                ),
                TimingClass::Store => (0.35, 0.45),
                TimingClass::Mul => (0.45, 0.35),
                TimingClass::Bubble => (0.35, 0.0),
                _ => (0.35, 0.35),
            },
            Stage::Writeback => match &record.writeback {
                Some(wb) => (0.25 + 0.75 * popcount_frac(wb.value), 0.0),
                None => (0.35, 0.0),
            },
        };
        StageExcitation { base, dither_gain }
    }

    /// The raw (pre-blend) excitation at a given dither value. Evaluated
    /// with the same `base + gain × dither` expression for the direct and
    /// the replay path, so both produce bit-identical delays.
    #[must_use]
    pub fn raw(&self, dither: f64) -> f64 {
        self.base + self.dither_gain * dither
    }
}

fn is_control_class(class: TimingClass) -> bool {
    matches!(
        class,
        TimingClass::Jump | TimingClass::JumpReg | TimingClass::BranchCond
    )
}

fn popcount_frac(value: u32) -> f64 {
    f64::from(value.count_ones()) / 32.0
}

fn execute_excitation(record: &CycleRecord, class: TimingClass) -> f64 {
    let Some(exec) = &record.exec else {
        return 0.40;
    };
    let mut e = match class {
        TimingClass::Add | TimingClass::SetFlag => f64::from(exec.carry_chain) / 32.0,
        TimingClass::Mul => f64::from(exec.mul_bits) / 32.0,
        TimingClass::Shift => f64::from(exec.shift_amount) / 31.0,
        TimingClass::And | TimingClass::Or | TimingClass::Xor | TimingClass::Move => {
            popcount_frac(exec.op_a ^ exec.op_b)
        }
        TimingClass::Load | TimingClass::Store => {
            // The LSU path (address adder → SRAM address/write pins) is
            // driven by the address-generation carry chain and by how
            // many address bits toggle at the macro inputs; the address
            // space is 16 bits wide, so toggling is normalized to it.
            let addr = exec.mem_request.map_or(0, |m| m.address);
            let addr_toggle = f64::from((addr & 0xFFFF).count_ones()) / 16.0;
            let drive = (f64::from(exec.carry_chain) / 32.0).max(addr_toggle);
            0.45 + 0.55 * drive
        }
        TimingClass::BranchCond => {
            if exec.branch.is_some_and(|b| b.taken) {
                0.85
            } else {
                0.45
            }
        }
        TimingClass::Jump => 0.55,
        TimingClass::JumpReg => popcount_frac(exec.result).max(0.5),
        TimingClass::Nop => 0.30,
        TimingClass::Bubble => 0.40,
    };
    if exec.forward_a.is_some() || exec.forward_b.is_some() {
        // The forwarding multiplexers lengthen the operand path.
        e = (e + 0.12).min(1.0);
    }
    e
}

/// The timing-relevant content of one simulated cycle: per-stage instruction
/// classes and excitation coefficients, the fetch address (dither salt) and
/// the activity bits consumed by the power model. Deliberately free of the
/// cycle index, so identical pipeline situations produce identical digest
/// cycles regardless of when they occur.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DigestCycle {
    /// Timing class occupying each stage (indexed by [`Stage::index`]).
    pub classes: [TimingClass; Stage::COUNT],
    /// Excitation coefficients of each stage (indexed by [`Stage::index`]).
    pub excitation: [StageExcitation; Stage::COUNT],
    /// Instruction-memory address presented this cycle (dither salt).
    pub fetch_address: u32,
    /// Activity bits ([`CycleRecordFlags`]) for occupancy/power accounting.
    pub flags: CycleRecordFlags,
}

impl DigestCycle {
    /// Extracts the digest of one cycle record.
    #[must_use]
    pub fn of_record(record: &CycleRecord) -> DigestCycle {
        let mut classes = [TimingClass::Bubble; Stage::COUNT];
        let mut excitation = [StageExcitation {
            base: 0.0,
            dither_gain: 0.0,
        }; Stage::COUNT];
        for stage in Stage::ALL {
            classes[stage.index()] = record.timing_class(stage);
            excitation[stage.index()] = StageExcitation::of_record(record, stage);
        }
        DigestCycle {
            classes,
            excitation,
            fetch_address: record.fetch_address,
            flags: CycleRecordFlags::of_record(record),
        }
    }

    /// Bit-exact dedup key (f64 coefficients compared by bit pattern).
    fn key(&self) -> DigestKey {
        let mut bits = [0u64; 2 * Stage::COUNT];
        let mut classes = [0u8; Stage::COUNT];
        for i in 0..Stage::COUNT {
            bits[2 * i] = self.excitation[i].base.to_bits();
            bits[2 * i + 1] = self.excitation[i].dither_gain.to_bits();
            classes[i] = self.classes[i].index() as u8;
        }
        DigestKey {
            classes,
            bits,
            fetch_address: self.fetch_address,
            flags: self.flags.bits(),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct DigestKey {
    classes: [u8; Stage::COUNT],
    bits: [u64; 2 * Stage::COUNT],
    fetch_address: u32,
    flags: u8,
}

/// One run of identical consecutive digest cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DigestRun {
    /// Index into the unique-cycle pool.
    cycle_id: u32,
    /// Number of consecutive occurrences.
    len: u32,
}

/// A complete, replayable timing digest of one program execution: the
/// deduplicated pool of unique [`DigestCycle`]s plus the run-length-encoded
/// cycle stream and the run totals.
///
/// Produced by [`DigestObserver`] (streaming) or
/// [`TimingDigest::from_trace`] (from a materialized trace). Consumed by the
/// `replay_digest` entry points of `idca-timing` and `idca-core`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TimingDigest {
    pool: Vec<DigestCycle>,
    runs: Vec<DigestRun>,
    cycles: u64,
    retired: u64,
}

impl TimingDigest {
    /// Digests a materialized pipeline trace (test/offline convenience; the
    /// hot path streams through [`DigestObserver`] instead).
    #[must_use]
    pub fn from_trace(trace: &crate::PipelineTrace) -> TimingDigest {
        let mut observer = DigestObserver::new();
        for record in trace.cycles() {
            observer.observe_cycle(record);
        }
        observer.finish(&RunSummary {
            cycles: trace.cycle_count(),
            retired: trace.retired(),
        });
        observer.into_digest()
    }

    /// Number of simulated cycles the digest represents.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Architecturally retired instructions of the digested run.
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// The run totals, as every observer's `finish` received them.
    #[must_use]
    pub fn summary(&self) -> RunSummary {
        RunSummary {
            cycles: self.cycles,
            retired: self.retired,
        }
    }

    /// Number of *unique* cycles in the pool (the digest's working set).
    #[must_use]
    pub fn unique_cycles(&self) -> usize {
        self.pool.len()
    }

    /// Number of RLE runs in the encoded stream.
    #[must_use]
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Expands the encoded stream, invoking `f` once per simulated cycle in
    /// execution order with the cycle index and the digest record. This is
    /// the replay driver: cycle indices are reconstructed from stream
    /// position, exactly as the simulator numbered them.
    pub fn for_each_cycle<F: FnMut(u64, &DigestCycle)>(&self, mut f: F) {
        let mut cycle: u64 = 0;
        for run in &self.runs {
            let dc = &self.pool[run.cycle_id as usize];
            for _ in 0..run.len {
                f(cycle, dc);
                cycle += 1;
            }
        }
    }
}

/// Streaming digest capture: a [`CycleObserver`] that folds every
/// [`CycleRecord`] into a [`TimingDigest`] as the simulator produces it —
/// phase 1 of the simulate-once / evaluate-many sweep.
#[derive(Debug, Default)]
pub struct DigestObserver {
    digest: TimingDigest,
    index: HashMap<DigestKey, u32>,
    last_key: Option<DigestKey>,
}

impl DigestObserver {
    /// Creates an empty digest observer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the observer and returns the finished digest.
    #[must_use]
    pub fn into_digest(self) -> TimingDigest {
        self.digest
    }

    fn push(&mut self, dc: DigestCycle) {
        let key = dc.key();
        self.digest.cycles += 1;
        if self.last_key == Some(key) {
            if let Some(run) = self.digest.runs.last_mut() {
                run.len += 1;
                return;
            }
        }
        let next_id = self.digest.pool.len() as u32;
        let id = *self.index.entry(key).or_insert(next_id);
        if id == next_id {
            self.digest.pool.push(dc);
        }
        self.digest.runs.push(DigestRun {
            cycle_id: id,
            len: 1,
        });
        self.last_key = Some(key);
    }
}

impl CycleObserver for DigestObserver {
    fn observe_cycle(&mut self, record: &CycleRecord) {
        self.push(DigestCycle::of_record(record));
    }

    fn finish(&mut self, summary: &RunSummary) {
        self.digest.retired = summary.retired;
        debug_assert_eq!(self.digest.cycles, summary.cycles);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimConfig, Simulator};
    use idca_isa::asm::Assembler;

    fn trace(src: &str) -> crate::PipelineTrace {
        let program = Assembler::new().assemble(src).expect("assembles");
        Simulator::new(SimConfig::default())
            .run(&program)
            .expect("runs")
            .trace
    }

    #[test]
    fn digest_round_trips_the_cycle_stream() {
        let t = trace(
            "        l.addi r3, r0, 40
             loop:   l.addi r3, r3, -1
                     l.sfne r3, r0
                     l.bf   loop
                     l.nop  0
                     l.nop  1",
        );
        let digest = TimingDigest::from_trace(&t);
        assert_eq!(digest.cycles(), t.cycle_count());
        assert_eq!(digest.retired(), t.retired());
        // Expansion reproduces, per cycle, exactly the digest of the
        // original record (RLE + pooling are lossless).
        let mut expanded = Vec::new();
        digest.for_each_cycle(|cycle, dc| expanded.push((cycle, *dc)));
        assert_eq!(expanded.len() as u64, t.cycle_count());
        for (record, (cycle, dc)) in t.cycles().iter().zip(&expanded) {
            assert_eq!(record.cycle, *cycle);
            assert_eq!(DigestCycle::of_record(record), *dc);
        }
    }

    #[test]
    fn value_stable_loops_compress_below_their_cycle_count() {
        // A loop whose per-iteration operand activity repeats (a countdown
        // re-excites mostly the same classes) must dedupe below 1:1; the
        // drain/reset bubbles at both ends also coalesce into runs.
        let t = trace(
            "        l.addi r3, r0, 200
             loop:   l.addi r3, r3, -1
                     l.sfne r3, r0
                     l.bf   loop
                     l.nop  0
                     l.nop  1",
        );
        let digest = TimingDigest::from_trace(&t);
        assert!(digest.cycles() > 200);
        assert!(
            (digest.unique_cycles() as u64) < digest.cycles(),
            "pool {} should undercut {} cycles",
            digest.unique_cycles(),
            digest.cycles()
        );
    }

    #[test]
    fn empty_digest_is_well_formed() {
        let digest = TimingDigest::default();
        assert_eq!(digest.cycles(), 0);
        assert_eq!(digest.unique_cycles(), 0);
        let mut called = false;
        digest.for_each_cycle(|_, _| called = true);
        assert!(!called);
    }
}
