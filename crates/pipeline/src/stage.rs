use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the six pipeline stages of the modelled core.
///
/// The names follow Fig. 4 of the paper: *Address*, *Fetch*, *Decode*,
/// *Execute*, *Mem/Control* and *Writeback*. The short labels used by the
/// paper's Fig. 6 (`ADR`, `FE`, `DC`, `EX`, `CTRL`, `WB`) are available via
/// [`Stage::label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Stage {
    /// Address generation / instruction-memory address setup (`ADR`).
    Address,
    /// Instruction fetch (`FE`).
    Fetch,
    /// Decode and register-file read (`DC`).
    Decode,
    /// Execute: ALU, multiplier, shifter, LSU address + data request (`EX`).
    Execute,
    /// Memory/control: data-memory return, alignment, control (`CTRL`).
    Control,
    /// Register-file writeback (`WB`).
    Writeback,
}

impl Stage {
    /// Number of pipeline stages.
    pub const COUNT: usize = 6;

    /// All stages in pipeline order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::Address,
        Stage::Fetch,
        Stage::Decode,
        Stage::Execute,
        Stage::Control,
        Stage::Writeback,
    ];

    /// Dense index in pipeline order (`Address == 0`, `Writeback == 5`).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Stage::Address => 0,
            Stage::Fetch => 1,
            Stage::Decode => 2,
            Stage::Execute => 3,
            Stage::Control => 4,
            Stage::Writeback => 5,
        }
    }

    /// Inverse of [`Stage::index`].
    #[must_use]
    pub fn from_index(index: usize) -> Option<Stage> {
        Stage::ALL.get(index).copied()
    }

    /// Short label as used in the paper's figures.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Stage::Address => "ADR",
            Stage::Fetch => "FE",
            Stage::Decode => "DC",
            Stage::Execute => "EX",
            Stage::Control => "CTRL",
            Stage::Writeback => "WB",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_ordered() {
        for (i, stage) in Stage::ALL.iter().enumerate() {
            assert_eq!(stage.index(), i);
            assert_eq!(Stage::from_index(i), Some(*stage));
        }
        assert_eq!(Stage::from_index(6), None);
    }

    #[test]
    fn labels_match_paper_figure6() {
        let labels: Vec<&str> = Stage::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels, vec!["ADR", "FE", "DC", "EX", "CTRL", "WB"]);
    }
}
