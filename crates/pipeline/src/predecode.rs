//! Predecoded micro-op form of a program.
//!
//! The per-cycle engines ([`crate::Simulator`] and [`crate::Interpreter`])
//! used to re-derive the same static facts from [`Insn`] accessors on every
//! cycle an instruction spent in a stage: which operand registers it reads,
//! whether the second operand is an immediate (and which masking the opcode
//! applies to it), which ALU operation it performs, whether it is a load or
//! a store and of which width, whether it redirects control flow and where
//! its PC-relative target lies, whether it is the `l.nop 1` exit marker, and
//! which adder/multiplier/shifter activity it excites. All of that is a pure
//! function of the instruction word, so [`PredecodedProgram::lower`] computes
//! it **once per program** into a flat [`MicroOp`] table the engines index by
//! instruction word offset.
//!
//! On top of the table the lowering derives a *basic-block map*: the
//! straight-line runs of micro-ops between control-flow instructions
//! ([`PredecodedProgram::basic_blocks`]) and, for the simulator's fast path,
//! a per-index *runway* ([`PredecodedProgram::runway`]) — the number of
//! consecutive plain (non-control, non-exit) micro-ops starting at an index.
//! While the pipeline is executing inside a runway nothing can redirect the
//! fetch address, so the simulator dispatches those block interiors on a
//! specialized loop with the per-cycle `Slot`/`Option` unwrapping and
//! per-opcode matching hoisted out.
//!
//! Lowering is semantics-preserving by construction and pinned by tests: a
//! proptest asserts that every decodable instruction round-trips (the
//! micro-op fields agree with the `Insn`/`Opcode` accessors and
//! [`exec_alu`] agrees with the reference ALU on random operands), and the
//! differential suite pins the predecoded simulator loop bit-identical to
//! the retained per-cycle reference loop.

use crate::digest::DigestHints;
use crate::interp::alu::{self, AluOutcome};
use crate::{PipelineError, NOP_EXIT};
use idca_isa::{Insn, Opcode, Program, Reg, SetFlagCond, TimingClass, INSN_BYTES};
use std::ops::Range;
use std::sync::Arc;

/// The data-path operation a micro-op performs in the execute stage — a
/// dense, pre-classified mirror of the per-opcode `match` in the shared ALU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluKind {
    /// 32-bit addition with carry-out (`l.add`, `l.addi`).
    Add,
    /// Addition with carry-in and carry-out (`l.addc`, `l.addic`).
    AddCarry,
    /// Subtraction with borrow-out (`l.sub`).
    Sub,
    /// Bitwise AND (`l.and`, `l.andi`).
    And,
    /// Bitwise OR (`l.or`, `l.ori`).
    Or,
    /// Bitwise XOR (`l.xor`, `l.xori`).
    Xor,
    /// Signed 32×32→32 multiply (`l.mul`, `l.muli`).
    MulSigned,
    /// Unsigned multiply (`l.mulu`).
    MulUnsigned,
    /// Shift left logical (`l.sll`, `l.slli`).
    ShiftLeft,
    /// Shift right logical (`l.srl`, `l.srli`).
    ShiftRightLogical,
    /// Shift right arithmetic (`l.sra`, `l.srai`).
    ShiftRightArith,
    /// Rotate right (`l.ror`, `l.rori`).
    RotateRight,
    /// Conditional move on the compare flag (`l.cmov`).
    Cmov,
    /// Sign-extend byte (`l.extbs`).
    ExtendByte,
    /// Sign-extend half-word (`l.exths`).
    ExtendHalf,
    /// Load immediate into the upper half-word (`l.movhi`).
    MoveHigh,
    /// Set-flag comparison (`l.sf*`, `l.sf*i`).
    SetFlag(SetFlagCond),
    /// Effective-address computation of loads/stores.
    MemAddr,
    /// No data-path result (jumps, branches, `l.nop`).
    None,
}

/// Control-flow behaviour of a micro-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtlKind {
    /// Straight-line instruction: never redirects fetch.
    None,
    /// The `l.nop 1` exit marker: sets the halting state in execute.
    Exit,
    /// PC-relative jump resolved in decode (`l.j`, `l.jal`); `link` writes
    /// `r9 = pc + 8` in execute.
    Jump {
        /// `true` for `l.jal`.
        link: bool,
    },
    /// Conditional branch taken when the flag is set (`l.bf`).
    BranchIfFlag,
    /// Conditional branch taken when the flag is clear (`l.bnf`).
    BranchIfNotFlag,
    /// Register-indirect jump resolved in execute (`l.jr`, `l.jalr`).
    JumpReg {
        /// `true` for `l.jalr`.
        link: bool,
    },
    /// `l.rfe`: return from exception, resolved in execute like a register
    /// jump but targeting the interrupt controller's saved PC.
    Rfe,
}

/// Memory access performed by the control stage, pre-classified so the hot
/// loop dispatches on a dense enum instead of re-matching the opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemKind {
    /// Not a memory instruction.
    None,
    /// `l.lwz` / `l.lws` (identical on a 32-bit core).
    LoadWord,
    /// `l.lhz` / `l.lhs`.
    LoadHalf {
        /// `true` sign-extends the half-word (`l.lhs`).
        signed: bool,
    },
    /// `l.lbz` / `l.lbs`.
    LoadByte {
        /// `true` sign-extends the byte (`l.lbs`).
        signed: bool,
    },
    /// `l.sw`.
    StoreWord,
    /// `l.sh`.
    StoreHalf,
    /// `l.sb`.
    StoreByte,
}

impl MemKind {
    /// `true` for the load variants.
    #[must_use]
    pub fn is_load(self) -> bool {
        matches!(
            self,
            MemKind::LoadWord | MemKind::LoadHalf { .. } | MemKind::LoadByte { .. }
        )
    }

    /// `true` for the store variants.
    #[must_use]
    pub fn is_store(self) -> bool {
        matches!(
            self,
            MemKind::StoreWord | MemKind::StoreHalf | MemKind::StoreByte
        )
    }
}

/// How the main adder is excited by a micro-op (drives the carry-chain
/// proxy of the timing model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdderKind {
    /// The adder is idle for this instruction.
    None,
    /// `a + b` with no carry-in (adds, load/store address generation).
    Plain,
    /// `a + b + carry` (`l.addc`, `l.addic`).
    WithCarry,
    /// `a + !b + 1` (subtract/compare paths).
    SubBorrow,
}

/// One predecoded instruction: every static fact the per-cycle engines need,
/// extracted once by [`PredecodedProgram::lower`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MicroOp {
    /// The original instruction (cycle records and traces still carry it).
    pub insn: Insn,
    /// Pre-resolved timing class ([`Insn::timing_class`]).
    pub class: TimingClass,
    /// First source-register port, as the forwarding network sees it.
    pub ra: Option<Reg>,
    /// Second source-register port, as the forwarding network sees it.
    pub rb: Option<Reg>,
    /// Effective architectural destination ([`Insn::dest_reg`]); the link
    /// register of `l.jal`/`l.jalr` is applied via [`MicroOp::ctl`] instead.
    pub rd: Option<Reg>,
    /// Pre-extracted immediate second operand (with the opcode's masking /
    /// sign-extension applied); `None` selects the `rB` register value.
    pub op_b_imm: Option<u32>,
    /// Data-path operation kind.
    pub alu: AluKind,
    /// Control-flow behaviour.
    pub ctl: CtlKind,
    /// Pre-scaled PC-relative displacement in bytes (`imm * 4`) for
    /// decode-resolved jumps and branches.
    pub branch_disp: u32,
    /// Memory access kind.
    pub mem: MemKind,
    /// Memory access width in bytes (4 for non-memory ops, matching the
    /// activity-record convention).
    pub mem_width: u32,
    /// Adder excitation kind.
    pub adder: AdderKind,
    /// `true` for the multiply instructions (operand-isolated multiplier).
    pub is_mul: bool,
    /// `true` for the shifter instructions.
    pub is_shift: bool,
}

impl MicroOp {
    /// Lowers one instruction into its micro-op form.
    #[must_use]
    pub fn lower(insn: &Insn) -> MicroOp {
        let opcode = insn.opcode();
        let (ra, rb) = insn.source_regs();
        let imm = insn.imm();
        let op_b_imm = match opcode {
            Opcode::Andi | Opcode::Ori => Some((imm.unwrap_or(0) as u32) & 0xFFFF),
            Opcode::Addi
            | Opcode::Addic
            | Opcode::Xori
            | Opcode::Muli
            | Opcode::Sfi(_)
            | Opcode::Lwz
            | Opcode::Lws
            | Opcode::Lhz
            | Opcode::Lhs
            | Opcode::Lbz
            | Opcode::Lbs
            | Opcode::Sw
            | Opcode::Sh
            | Opcode::Sb => Some(imm.unwrap_or(0) as u32),
            Opcode::Slli | Opcode::Srli | Opcode::Srai | Opcode::Rori => {
                Some((imm.unwrap_or(0) as u32) & 0x1F)
            }
            Opcode::Movhi => Some((imm.unwrap_or(0) as u32) & 0xFFFF),
            _ => None,
        };
        let alu = match opcode {
            Opcode::Add | Opcode::Addi => AluKind::Add,
            Opcode::Addc | Opcode::Addic => AluKind::AddCarry,
            Opcode::Sub => AluKind::Sub,
            Opcode::And | Opcode::Andi => AluKind::And,
            Opcode::Or | Opcode::Ori => AluKind::Or,
            Opcode::Xor | Opcode::Xori => AluKind::Xor,
            Opcode::Mul | Opcode::Muli => AluKind::MulSigned,
            Opcode::Mulu => AluKind::MulUnsigned,
            Opcode::Sll | Opcode::Slli => AluKind::ShiftLeft,
            Opcode::Srl | Opcode::Srli => AluKind::ShiftRightLogical,
            Opcode::Sra | Opcode::Srai => AluKind::ShiftRightArith,
            Opcode::Ror | Opcode::Rori => AluKind::RotateRight,
            Opcode::Cmov => AluKind::Cmov,
            Opcode::Extbs => AluKind::ExtendByte,
            Opcode::Exths => AluKind::ExtendHalf,
            Opcode::Movhi => AluKind::MoveHigh,
            Opcode::Sf(cond) | Opcode::Sfi(cond) => AluKind::SetFlag(cond),
            op if op.is_mem() => AluKind::MemAddr,
            _ => AluKind::None,
        };
        let ctl = if opcode == Opcode::Nop && imm == Some(i32::from(NOP_EXIT)) {
            CtlKind::Exit
        } else {
            match opcode {
                Opcode::J => CtlKind::Jump { link: false },
                Opcode::Jal => CtlKind::Jump { link: true },
                Opcode::Jr => CtlKind::JumpReg { link: false },
                Opcode::Jalr => CtlKind::JumpReg { link: true },
                Opcode::Bf => CtlKind::BranchIfFlag,
                Opcode::Bnf => CtlKind::BranchIfNotFlag,
                Opcode::Rfe => CtlKind::Rfe,
                _ => CtlKind::None,
            }
        };
        let mem = match opcode {
            Opcode::Lwz | Opcode::Lws => MemKind::LoadWord,
            Opcode::Lhz => MemKind::LoadHalf { signed: false },
            Opcode::Lhs => MemKind::LoadHalf { signed: true },
            Opcode::Lbz => MemKind::LoadByte { signed: false },
            Opcode::Lbs => MemKind::LoadByte { signed: true },
            Opcode::Sw => MemKind::StoreWord,
            Opcode::Sh => MemKind::StoreHalf,
            Opcode::Sb => MemKind::StoreByte,
            _ => MemKind::None,
        };
        let adder = match opcode {
            Opcode::Add | Opcode::Addi => AdderKind::Plain,
            Opcode::Addc | Opcode::Addic => AdderKind::WithCarry,
            Opcode::Sub | Opcode::Sf(_) | Opcode::Sfi(_) => AdderKind::SubBorrow,
            op if op.is_mem() => AdderKind::Plain,
            _ => AdderKind::None,
        };
        MicroOp {
            insn: *insn,
            class: opcode.timing_class(),
            ra,
            rb,
            rd: insn.dest_reg(),
            op_b_imm,
            alu,
            ctl,
            branch_disp: (imm.unwrap_or(0) as u32).wrapping_mul(4),
            mem,
            mem_width: opcode.mem_width().unwrap_or(4),
            adder,
            is_mul: matches!(opcode, Opcode::Mul | Opcode::Mulu | Opcode::Muli),
            is_shift: opcode.timing_class() == TimingClass::Shift,
        }
    }

    /// `true` when the micro-op can neither redirect fetch nor halt the
    /// pipeline — the fast-path eligibility predicate.
    #[must_use]
    pub fn is_plain(&self) -> bool {
        matches!(self.ctl, CtlKind::None)
    }
}

/// Executes the data-path portion of a predecoded micro-op: the dense
/// dispatch twin of the reference ALU (`alu::execute`), pinned equivalent by
/// the lowering round-trip proptest.
#[inline]
pub(crate) fn exec_alu(kind: AluKind, a: u32, b: u32, flag: bool, carry: bool) -> AluOutcome {
    let mut out = AluOutcome {
        result: 0,
        flag: None,
        carry: None,
        address: None,
    };
    match kind {
        AluKind::Add => {
            let (sum, c1) = a.overflowing_add(b);
            out.result = sum;
            out.carry = Some(c1);
        }
        AluKind::AddCarry => {
            let (s1, c1) = a.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(u32::from(carry));
            out.result = s2;
            out.carry = Some(c1 || c2);
        }
        AluKind::Sub => {
            let (diff, borrow) = a.overflowing_sub(b);
            out.result = diff;
            out.carry = Some(borrow);
        }
        AluKind::And => out.result = a & b,
        AluKind::Or => out.result = a | b,
        AluKind::Xor => out.result = a ^ b,
        AluKind::MulSigned => out.result = (a as i32).wrapping_mul(b as i32) as u32,
        AluKind::MulUnsigned => out.result = a.wrapping_mul(b),
        AluKind::ShiftLeft => out.result = a.wrapping_shl(b & 0x1F),
        AluKind::ShiftRightLogical => out.result = a.wrapping_shr(b & 0x1F),
        AluKind::ShiftRightArith => out.result = ((a as i32).wrapping_shr(b & 0x1F)) as u32,
        AluKind::RotateRight => out.result = a.rotate_right(b & 0x1F),
        AluKind::Cmov => out.result = if flag { a } else { b },
        AluKind::ExtendByte => out.result = (a as u8 as i8) as i32 as u32,
        AluKind::ExtendHalf => out.result = (a as u16 as i16) as i32 as u32,
        AluKind::MoveHigh => out.result = b << 16,
        AluKind::SetFlag(cond) => out.flag = Some(cond.eval(a, b)),
        AluKind::MemAddr => out.address = Some(a.wrapping_add(b)),
        AluKind::None => {}
    }
    out
}

/// The carry-chain proxy for a micro-op's adder excitation — the dense twin
/// of the reference `adder_chain` (same [`alu::carry_chain`] underneath).
#[inline]
pub(crate) fn adder_chain(adder: AdderKind, a: u32, b: u32, carry: bool) -> u8 {
    match adder {
        AdderKind::Plain => alu::carry_chain(a, b, false),
        AdderKind::WithCarry => alu::carry_chain(a, b, carry),
        AdderKind::SubBorrow => alu::carry_chain(a, !b, true),
        AdderKind::None => 0,
    }
}

/// A program lowered to its flat micro-op table plus the derived block map,
/// fetch-path metadata and digest hints. Self-contained: it carries the
/// base/end addresses and the initialized-data image, so every engine entry
/// point can run from the predecoded form alone and a caller can lower once
/// and reuse the table across runs (`repro bench` repetitions, sweep
/// engines, differential tests).
#[derive(Debug, Clone)]
pub struct PredecodedProgram {
    base: u32,
    end: u32,
    ops: Vec<MicroOp>,
    runway: Vec<u32>,
    data: Vec<(u32, u32)>,
    hints: Arc<DigestHints>,
}

impl PredecodedProgram {
    /// Lowers a program into its predecoded form.
    #[must_use]
    pub fn lower(program: &Program) -> PredecodedProgram {
        let ops: Vec<MicroOp> = program.insns().iter().map(MicroOp::lower).collect();
        let mut runway = vec![0u32; ops.len()];
        for i in (0..ops.len()).rev() {
            if ops[i].is_plain() {
                runway[i] = runway.get(i + 1).copied().unwrap_or(0) + 1;
            }
        }
        let hints = Arc::new(DigestHints::for_insns(
            program.base_address(),
            program.insns(),
        ));
        PredecodedProgram {
            base: program.base_address(),
            end: program.end_address(),
            ops,
            runway,
            data: program.data().to_vec(),
            hints,
        }
    }

    /// Byte address of the first instruction.
    #[must_use]
    pub fn base_address(&self) -> u32 {
        self.base
    }

    /// Byte address one past the last instruction.
    #[must_use]
    pub fn end_address(&self) -> u32 {
        self.end
    }

    /// Number of micro-ops in the table.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when the program contains no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The micro-op table, indexed by instruction word offset.
    #[must_use]
    pub fn ops(&self) -> &[MicroOp] {
        &self.ops
    }

    /// Initialized data words of the lowered program.
    #[must_use]
    pub fn data(&self) -> &[(u32, u32)] {
        &self.data
    }

    /// Precomputed per-instruction digest excitation hints; hand these to
    /// [`crate::DigestObserver::with_hints`] so digest capture skips the
    /// per-cycle re-encode of static instruction facts.
    #[must_use]
    pub fn digest_hints(&self) -> Arc<DigestHints> {
        Arc::clone(&self.hints)
    }

    /// Number of consecutive plain micro-ops starting at table index `idx`
    /// (0 when the op at `idx` itself is a control-flow or exit op).
    #[must_use]
    pub fn runway(&self, idx: u32) -> u32 {
        self.runway.get(idx as usize).copied().unwrap_or(0)
    }

    /// The basic-block map: half-open index ranges of straight-line runs,
    /// each ending just after its terminating control-flow/exit op (the
    /// architectural delay slot belongs to the *following* block). Blocks
    /// cover the whole table and are non-empty.
    #[must_use]
    pub fn basic_blocks(&self) -> Vec<Range<usize>> {
        let mut blocks = Vec::new();
        let mut start = 0usize;
        for (i, op) in self.ops.iter().enumerate() {
            if !op.is_plain() {
                blocks.push(start..i + 1);
                start = i + 1;
            }
        }
        if start < self.ops.len() {
            blocks.push(start..self.ops.len());
        }
        blocks
    }

    /// The table index of the instruction fetched at byte address `pc`.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::PcOutOfRange`] when `pc` is outside
    /// `[base, end)` or not word-aligned — the hardened fetch path: a
    /// register jump can put *any* value in the program counter, and the
    /// simulator must fail structurally instead of fetching a garbage word.
    pub fn fetch_index(&self, pc: u32) -> Result<u32, PipelineError> {
        let offset = pc.wrapping_sub(self.base);
        let index = offset / INSN_BYTES;
        if pc < self.base || !offset.is_multiple_of(INSN_BYTES) || index as usize >= self.ops.len()
        {
            return Err(PipelineError::PcOutOfRange { pc });
        }
        Ok(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idca_isa::asm::Assembler;

    fn assemble(src: &str) -> Program {
        Assembler::new().assemble(src).expect("assembles")
    }

    #[test]
    fn basic_blocks_partition_the_table() {
        let program = assemble(
            "        l.addi r3, r0, 5
             loop:   l.addi r3, r3, -1
                     l.sfne r3, r0
                     l.bf   loop
                     l.nop  0
                     l.nop  1",
        );
        let pre = PredecodedProgram::lower(&program);
        let blocks = pre.basic_blocks();
        // Blocks tile the whole table without gaps or overlaps.
        let mut next = 0usize;
        for block in &blocks {
            assert_eq!(block.start, next);
            assert!(!block.is_empty());
            next = block.end;
        }
        assert_eq!(next, pre.len());
        // Every block ends at a control op (or at the end of the program),
        // and contains no control op before its last slot.
        for block in &blocks {
            for i in block.start..block.end - 1 {
                assert!(pre.ops()[i].is_plain(), "interior op {i} is control flow");
            }
        }
        // The l.bf ends a block; the exit marker ends the last block.
        assert_eq!(blocks.len(), 2);
    }

    #[test]
    fn runway_counts_plain_prefixes() {
        let program =
            assemble("l.addi r3, r0, 1\n l.addi r4, r0, 2\n l.j skip\n l.nop 0\n skip: l.nop 1\n");
        let pre = PredecodedProgram::lower(&program);
        assert_eq!(pre.runway(0), 2); // addi, addi, then l.j
        assert_eq!(pre.runway(1), 1);
        assert_eq!(pre.runway(2), 0); // the jump itself
        assert_eq!(pre.runway(3), 1); // the delay-slot nop (plain)
        assert_eq!(pre.runway(4), 0); // the exit marker
    }

    #[test]
    fn fetch_index_rejects_misaligned_and_out_of_range_pcs() {
        let program = assemble("l.addi r3, r0, 1\n l.nop 1\n");
        let pre = PredecodedProgram::lower(&program);
        let base = pre.base_address();
        assert_eq!(pre.fetch_index(base), Ok(0));
        assert_eq!(pre.fetch_index(base + 4), Ok(1));
        for bad in [
            base.wrapping_sub(4),
            base + 1,
            base + 2,
            base + 3,
            pre.end_address(),
            0xFFFF_FFFC,
        ] {
            assert_eq!(
                pre.fetch_index(bad),
                Err(PipelineError::PcOutOfRange { pc: bad }),
                "pc {bad:#x} must be rejected"
            );
        }
    }

    #[test]
    fn exit_marker_is_not_plain_but_other_nops_are() {
        let program = assemble("l.nop 0\n l.nop 7\n l.nop 1\n");
        let pre = PredecodedProgram::lower(&program);
        assert_eq!(pre.ops()[0].ctl, CtlKind::None);
        assert_eq!(pre.ops()[1].ctl, CtlKind::None);
        assert_eq!(pre.ops()[2].ctl, CtlKind::Exit);
    }
}

#[cfg(test)]
mod lowering_proptests {
    use super::*;
    use proptest::prelude::*;

    /// The whole decodable instruction space: random operand bits combined
    /// with a scan over primary-opcode slots until a word decodes. Sampling
    /// encodings (rather than typed constructors) means every reachable
    /// opcode *and* operand encoding is on the table, including ones the
    /// program generator never emits.
    fn decodable_insn() -> impl Strategy<Value = Insn> {
        (any::<u32>(), 0u32..64).prop_map(|(operand_bits, start)| {
            let base = operand_bits & 0x03FF_FFFF;
            (0..64u32)
                .map(|i| (((start + i) & 63) << 26) | base)
                .find_map(|word| Insn::decode(word).ok())
                .expect("some primary opcode accepts any operand bits")
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(1024))]

        /// Micro-op lowering round-trips every decodable instruction: the
        /// pre-resolved fields agree with the `Insn`/`Opcode` accessors, and
        /// the dense [`exec_alu`]/[`adder_chain`] dispatch is bit-identical
        /// to the reference opcode-matched ALU on arbitrary operands.
        #[test]
        fn lowering_roundtrips_every_decodable_insn(
            insn in decodable_insn(),
            a in any::<u32>(),
            rb_value in any::<u32>(),
            flag in any::<bool>(),
            carry in any::<bool>(),
        ) {
            let op = MicroOp::lower(&insn);
            let opcode = insn.opcode();

            // Static fields mirror the `Insn` accessors.
            prop_assert_eq!(op.insn, insn);
            prop_assert_eq!(op.class, insn.timing_class());
            prop_assert_eq!((op.ra, op.rb), insn.source_regs());
            prop_assert_eq!(op.rd, insn.dest_reg());
            prop_assert_eq!(op.mem == MemKind::None, !opcode.is_mem());
            prop_assert_eq!(op.mem_width, opcode.mem_width().unwrap_or(4));
            prop_assert_eq!(
                op.is_mul,
                matches!(opcode, Opcode::Mul | Opcode::Mulu | Opcode::Muli)
            );
            prop_assert_eq!(op.is_shift, insn.timing_class() == TimingClass::Shift);

            // `is_plain` is exactly "cannot redirect fetch or halt".
            let is_control = matches!(
                opcode,
                Opcode::J
                    | Opcode::Jal
                    | Opcode::Jr
                    | Opcode::Jalr
                    | Opcode::Bf
                    | Opcode::Bnf
                    | Opcode::Rfe
            ) || (opcode == Opcode::Nop && insn.imm() == Some(i32::from(NOP_EXIT)));
            prop_assert_eq!(op.is_plain(), !is_control);

            // Operand selection: the pre-resolved immediate (when present)
            // equals the reference `operand_b`, and register forms fall
            // through to the register value.
            let b = op.op_b_imm.unwrap_or(rb_value);
            prop_assert_eq!(b, alu::operand_b(&insn, rb_value));

            // Data path: dense `AluKind` dispatch == reference ALU.
            prop_assert_eq!(
                exec_alu(op.alu, a, b, flag, carry),
                alu::execute(&insn, a, b, flag, carry)
            );

            // Adder excitation: `AdderKind` reproduces the reference
            // per-opcode carry-chain selection.
            let reference_chain = match opcode {
                Opcode::Add | Opcode::Addi => alu::carry_chain(a, b, false),
                Opcode::Addc | Opcode::Addic => alu::carry_chain(a, b, carry),
                Opcode::Sub | Opcode::Sf(_) | Opcode::Sfi(_) => alu::carry_chain(a, !b, true),
                op if op.is_mem() => alu::carry_chain(a, b, false),
                _ => 0,
            };
            prop_assert_eq!(adder_chain(op.adder, a, b, carry), reference_chain);

            // Branch displacement is the encoded word offset scaled to bytes.
            if matches!(opcode, Opcode::J | Opcode::Jal | Opcode::Bf | Opcode::Bnf) {
                prop_assert_eq!(
                    op.branch_disp,
                    (insn.imm().unwrap_or(0) as u32).wrapping_mul(4)
                );
            }
        }
    }
}
