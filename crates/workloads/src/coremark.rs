//! CoreMark-like kernels.
//!
//! CoreMark exercises exactly four algorithm families: linked-list
//! processing, matrix manipulation, a state machine and CRC. The kernels in
//! this module reimplement those families in the modelled ORBIS32 subset
//! with comparable instruction mixes (pointer chasing and compares for the
//! list, multiply/accumulate for the matrix, dense branching for the state
//! machine, shift/xor/branch loops for the CRC).

use crate::assemble_kernel;
use idca_isa::Program;

/// Linked-list search: builds a 64-node list in data memory (value + next
/// index per node) and walks it for 20 different keys. Pointer chasing,
/// loads and compares dominate.
#[must_use]
pub fn list_search() -> Program {
    assemble_kernel(
        "core_list_search",
        r#"
            l.addi  r1, r0, 0x1000      # node array base (8 bytes per node)
            l.addi  r3, r0, 0           # i
            l.addi  r4, r0, 64          # node count
    init:
            l.slli  r5, r3, 3
            l.add   r5, r5, r1
            l.muli  r6, r3, 7
            l.addi  r6, r6, 3
            l.andi  r6, r6, 0x3f
            l.sw    0(r5), r6           # node.value
            l.addi  r7, r3, 1
            l.sw    4(r5), r7           # node.next (index)
            l.addi  r3, r3, 1
            l.sfne  r3, r4
            l.bf    init
            l.nop   0

            l.addi  r8, r0, 0           # search key
            l.addi  r12, r0, 20         # number of searches
    search:
            l.addi  r3, r0, 0           # current node index
            l.addi  r11, r0, 0          # visited counter
    walk:
            l.sfgeu r3, r4              # ran past the tail?
            l.bf    next_key
            l.nop   0
            l.slli  r5, r3, 3
            l.add   r5, r5, r1
            l.lwz   r6, 0(r5)           # node.value
            l.sfeq  r6, r8
            l.bf    next_key
            l.addi  r11, r11, 1         # delay slot: count the visit
            l.lwz   r3, 4(r5)           # follow next pointer
            l.j     walk
            l.nop   0
    next_key:
            l.add   r16, r16, r11       # accumulate visit count
            l.addi  r8, r8, 1
            l.sfne  r8, r12
            l.bf    search
            l.nop   0
            l.nop   1
        "#,
    )
}

/// 8×8 integer matrix multiplication with deterministic operand patterns.
/// Multiply/accumulate and address arithmetic dominate.
#[must_use]
pub fn matrix_multiply() -> Program {
    assemble_kernel(
        "core_matrix",
        &crate::suite::matmul_source(8, 0x2000, 0x2200, 0x2400),
    )
}

/// State machine over a 256-byte pseudo-random input stream: dense
/// data-dependent branching, the control-heavy corner of CoreMark.
#[must_use]
pub fn state_machine() -> Program {
    assemble_kernel(
        "core_state_machine",
        r#"
            l.addi  r3, r0, 0           # i
            l.addi  r4, r0, 256         # input length
            l.ori   r5, r0, 12345       # LCG state
            l.addi  r6, r0, 0           # FSM state
            l.addi  r16, r0, 0          # accumulator
    sm_loop:
            l.muli  r5, r5, 1103
            l.addi  r5, r5, 12347
            l.andi  r7, r5, 0xFF        # next input byte
            l.sfltui r7, 0x20
            l.bf    sm_low
            l.nop   0
            l.sfltui r7, 0x80
            l.bf    sm_mid
            l.nop   0
            l.xori  r6, r6, 1           # "symbol" class: toggle
            l.j     sm_next
            l.nop   0
    sm_low:
            l.addi  r6, r0, 0           # "whitespace": reset
            l.j     sm_next
            l.nop   0
    sm_mid:
            l.addi  r6, r6, 1           # "digit": advance, saturate at 3
            l.sfgtsi r6, 3
            l.bf    sm_cap
            l.nop   0
            l.j     sm_next
            l.nop   0
    sm_cap:
            l.addi  r6, r0, 3
    sm_next:
            l.add   r16, r16, r6
            l.addi  r3, r3, 1
            l.sfne  r3, r4
            l.bf    sm_loop
            l.nop   0
            l.nop   1
        "#,
    )
}

/// Bitwise CRC-16 (polynomial 0xA001) over a 128-byte pseudo-random buffer.
/// Shifts, XORs and highly biased branches dominate.
#[must_use]
pub fn crc16() -> Program {
    assemble_kernel(
        "core_crc16",
        r#"
            l.addi  r3, r0, 0           # byte index
            l.addi  r4, r0, 128         # buffer length
            l.ori   r5, r0, 0xFFFF      # crc
            l.ori   r6, r0, 777         # LCG state
            l.ori   r10, r0, 0xA001     # reflected CRC-16 polynomial
    crc_byte:
            l.muli  r6, r6, 75
            l.addi  r6, r6, 74
            l.andi  r7, r6, 0xFF        # data byte
            l.xor   r5, r5, r7
            l.addi  r8, r0, 8           # bit counter
    crc_bit:
            l.andi  r9, r5, 1
            l.srli  r5, r5, 1
            l.sfnei r9, 0
            l.bf    crc_xor
            l.nop   0
            l.j     crc_cont
            l.nop   0
    crc_xor:
            l.xor   r5, r5, r10
    crc_cont:
            l.addi  r8, r8, -1
            l.sfnei r8, 0
            l.bf    crc_bit
            l.nop   0
            l.addi  r3, r3, 1
            l.sfne  r3, r4
            l.bf    crc_byte
            l.nop   0
            l.andi  r5, r5, 0xFFFF
            l.sw    0x0F00(r0), r5      # publish the checksum
            l.nop   1
        "#,
    )
}

/// Constructors of the four CoreMark-like kernels, in suite order (the
/// parallel suite runner assembles them concurrently).
pub const KERNELS: &[fn() -> Program] = &[list_search, matrix_multiply, state_machine, crc16];

/// All four CoreMark-like kernels with their benchmark names.
#[must_use]
pub fn all() -> Vec<Program> {
    KERNELS.iter().map(|kernel| kernel()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use idca_pipeline::{SimConfig, Simulator};

    fn run(program: &Program) -> idca_pipeline::SimResult {
        Simulator::new(SimConfig::default())
            .run(program)
            .unwrap_or_else(|e| panic!("{} failed to run: {e}", program.name()))
    }

    #[test]
    fn all_kernels_terminate_with_reasonable_ipc() {
        for program in all() {
            let result = run(&program);
            let ipc = result.trace.ipc();
            assert!(
                result.trace.cycle_count() > 1_000,
                "{} is too short ({} cycles)",
                program.name(),
                result.trace.cycle_count()
            );
            assert!(ipc > 0.6, "{} has IPC {ipc}", program.name());
        }
    }

    #[test]
    fn crc16_matches_reference_implementation() {
        // Reproduce the kernel's LCG input stream and CRC in Rust.
        let mut crc: u32 = 0xFFFF;
        let mut lcg: u32 = 777;
        for _ in 0..128 {
            lcg = lcg.wrapping_mul(75).wrapping_add(74);
            let byte = lcg & 0xFF;
            crc ^= byte;
            for _ in 0..8 {
                let lsb = crc & 1;
                crc >>= 1;
                if lsb != 0 {
                    crc ^= 0xA001;
                }
            }
        }
        crc &= 0xFFFF;
        let result = run(&crc16());
        assert_eq!(result.state.memory.load_word(0x0F00).unwrap(), crc);
    }

    #[test]
    fn matrix_multiply_produces_expected_corner_element() {
        // C[0][0] = sum_k A[0][k] * B[k][0] with A[i]=3i+1 (row major index)
        // and B[i]=i^5, matching the kernel's init loops.
        let n = 8u32;
        let a = |idx: u32| idx * 3 + 1;
        let b = |idx: u32| idx ^ 5;
        let mut expected: u32 = 0;
        for k in 0..n {
            expected = expected.wrapping_add(a(k).wrapping_mul(b(k * n)));
        }
        let result = run(&matrix_multiply());
        assert_eq!(result.state.memory.load_word(0x2400).unwrap(), expected);
    }

    #[test]
    fn state_machine_visits_all_branch_arms() {
        let result = run(&state_machine());
        let stats = result.trace.stats();
        // A healthy state machine run takes and skips branches.
        assert!(stats.taken_branches > 100);
        assert!(stats.branches > stats.taken_branches);
    }

    #[test]
    fn list_search_is_memory_dominated() {
        let result = run(&list_search());
        let stats = result.trace.stats();
        assert!(stats.memory_accesses > 500, "{}", stats.memory_accesses);
        assert!(stats.multiplications < stats.memory_accesses);
    }
}
