//! BEEBS-like embedded kernels.
//!
//! BEEBS (Bristol/Embecosm Embedded Benchmark Suite) collects small
//! self-contained embedded kernels. The ten kernels in this module cover the
//! same behavioural space on the modelled ORBIS32 subset: checksumming,
//! recursion-free call/return control flow, dense integer linear algebra,
//! sorting, filtering, dynamic programming, Monte-Carlo arithmetic,
//! fixed-point physics, graph scanning and a transform butterfly.

use crate::assemble_kernel;
use idca_isa::Program;

/// Bitwise CRC-32 (reflected polynomial `0xEDB88320`) over a 96-byte
/// pseudo-random buffer; the checksum is published at data address `0x0F04`.
#[must_use]
pub fn crc32() -> Program {
    assemble_kernel(
        "beebs_crc32",
        r#"
            l.addi  r3, r0, 0           # byte index
            l.addi  r4, r0, 96          # buffer length
            l.movhi r5, 0xFFFF
            l.ori   r5, r5, 0xFFFF      # crc = 0xFFFFFFFF
            l.ori   r6, r0, 2024        # LCG state
            l.movhi r10, 0xEDB8
            l.ori   r10, r10, 0x8320    # reflected CRC-32 polynomial
    c32_byte:
            l.muli  r6, r6, 75
            l.addi  r6, r6, 74
            l.andi  r7, r6, 0xFF
            l.xor   r5, r5, r7
            l.addi  r8, r0, 8
    c32_bit:
            l.andi  r11, r5, 1
            l.srli  r5, r5, 1
            l.sfnei r11, 0
            l.bf    c32_xor
            l.nop   0
            l.j     c32_cont
            l.nop   0
    c32_xor:
            l.xor   r5, r5, r10
    c32_cont:
            l.addi  r8, r8, -1
            l.sfnei r8, 0
            l.bf    c32_bit
            l.nop   0
            l.addi  r3, r3, 1
            l.sfne  r3, r4
            l.bf    c32_byte
            l.nop   0
            l.movhi r12, 0xFFFF
            l.ori   r12, r12, 0xFFFF
            l.xor   r5, r5, r12         # final inversion
            l.sw    0x0F04(r0), r5
            l.nop   1
        "#,
    )
}

/// Iterative Fibonacci computed in a real subroutine (`l.jal` / `l.jr`),
/// called for `n = 1..24`; the sum of the results is published at `0x0F08`.
#[must_use]
pub fn fibcall() -> Program {
    assemble_kernel(
        "beebs_fibcall",
        r#"
            l.addi  r17, r0, 0          # running sum
            l.addi  r18, r0, 1          # n
            l.addi  r19, r0, 25         # limit (exclusive)
    fc_outer:
            l.add   r3, r18, r0         # argument
            l.jal   fib
            l.nop   0
            l.add   r17, r17, r11       # accumulate fib(n)
            l.addi  r18, r18, 1
            l.sfne  r18, r19
            l.bf    fc_outer
            l.nop   0
            l.sw    0x0F08(r0), r17
            l.nop   1

    fib:                                # r3 = n, result in r11
            l.addi  r11, r0, 0          # a = 0
            l.addi  r12, r0, 1          # b = 1
            l.addi  r13, r0, 0          # i = 0
    fib_loop:
            l.sfgeu r13, r3
            l.bf    fib_done
            l.nop   0
            l.add   r14, r11, r12
            l.add   r11, r12, r0        # a = b
            l.add   r12, r14, r0        # b = a + b
            l.addi  r13, r13, 1
            l.j     fib_loop
            l.nop   0
    fib_done:
            l.jr    r9
            l.nop   0
        "#,
    )
}

/// 6×6 integer matrix multiplication (the BEEBS `matmult-int` analogue).
#[must_use]
pub fn matmult_int() -> Program {
    assemble_kernel(
        "beebs_matmult_int",
        &crate::suite::matmul_source(6, 0x3000, 0x3100, 0x3200),
    )
}

/// Insertion sort of 32 pseudo-random words held at data address `0x1800`.
#[must_use]
pub fn insertsort() -> Program {
    assemble_kernel(
        "beebs_insertsort",
        r#"
            l.addi  r1, r0, 0x1800      # array base
            l.addi  r3, r0, 0
            l.addi  r4, r0, 32          # element count
            l.ori   r5, r0, 9973        # LCG state
    is_init:
            l.muli  r5, r5, 131
            l.addi  r5, r5, 7
            l.andi  r6, r5, 0x7FFF
            l.slli  r7, r3, 2
            l.add   r7, r7, r1
            l.sw    0(r7), r6
            l.addi  r3, r3, 1
            l.sfne  r3, r4
            l.bf    is_init
            l.nop   0

            l.addi  r3, r0, 1           # i
    is_outer:
            l.slli  r7, r3, 2
            l.add   r7, r7, r1
            l.lwz   r8, 0(r7)           # key = a[i]
            l.addi  r10, r3, -1         # j
    is_inner:
            l.sflts r10, r0             # j < 0 ?
            l.bf    is_place
            l.nop   0
            l.slli  r11, r10, 2
            l.add   r11, r11, r1
            l.lwz   r12, 0(r11)         # a[j]
            l.sfleu r12, r8             # a[j] <= key ? stop shifting
            l.bf    is_place
            l.nop   0
            l.sw    4(r11), r12         # a[j+1] = a[j]
            l.addi  r10, r10, -1
            l.j     is_inner
            l.nop   0
    is_place:
            l.addi  r13, r10, 1
            l.slli  r13, r13, 2
            l.add   r13, r13, r1
            l.sw    0(r13), r8          # a[j+1] = key
            l.addi  r3, r3, 1
            l.sfne  r3, r4
            l.bf    is_outer
            l.nop   0
            l.nop   1
        "#,
    )
}

/// 16-tap FIR filter over 64 samples (two multiplications per tap), a
/// multiply-heavy DSP kernel.
#[must_use]
pub fn fir() -> Program {
    assemble_kernel(
        "beebs_fir",
        r#"
            l.addi  r1, r0, 0x2800      # x base (80 samples)
            l.addi  r2, r0, 0x2A00      # y base (64 outputs)
            l.addi  r3, r0, 0
            l.addi  r4, r0, 80
            l.ori   r5, r0, 555
    fir_initx:
            l.muli  r5, r5, 214
            l.addi  r5, r5, 13
            l.andi  r6, r5, 0xFF
            l.slli  r7, r3, 2
            l.add   r7, r7, r1
            l.sw    0(r7), r6
            l.addi  r3, r3, 1
            l.sfne  r3, r4
            l.bf    fir_initx
            l.nop   0

            l.addi  r3, r0, 0           # output index n
            l.addi  r4, r0, 64
    fir_n:
            l.addi  r8, r0, 0           # tap index k
            l.addi  r10, r0, 0          # accumulator
    fir_k:
            l.add   r11, r3, r8         # x[n + k]
            l.slli  r11, r11, 2
            l.add   r11, r11, r1
            l.lwz   r12, 0(r11)
            l.muli  r13, r8, 3          # coefficient h[k] = (3k + 1) & 0x1F
            l.addi  r13, r13, 1
            l.andi  r13, r13, 0x1F
            l.mul   r14, r12, r13
            l.add   r10, r10, r14
            l.addi  r8, r8, 1
            l.sfnei r8, 16
            l.bf    fir_k
            l.nop   0
            l.slli  r11, r3, 2
            l.add   r11, r11, r2
            l.sw    0(r11), r10
            l.addi  r3, r3, 1
            l.sfne  r3, r4
            l.bf    fir_n
            l.nop   0
            l.nop   1
        "#,
    )
}

/// Levenshtein edit distance between two 12-symbol pseudo-random strings,
/// computed with the classic two-row dynamic program. The distance is
/// published at `0x0F10`.
#[must_use]
pub fn levenshtein() -> Program {
    assemble_kernel(
        "beebs_levenshtein",
        r#"
            l.addi  r1, r0, 0x3800      # prev row (13 words)
            l.addi  r2, r0, 0x3880      # cur row (13 words)
            l.addi  r20, r0, 0x3A00     # string s (words)
            l.addi  r21, r0, 0x3A40     # string t (words)
            l.ori   r5, r0, 4242        # LCG state
            l.addi  r3, r0, 0
    lv_strings:
            l.muli  r5, r5, 197
            l.addi  r5, r5, 11
            l.andi  r6, r5, 0x7
            l.slli  r7, r3, 2
            l.add   r8, r7, r20
            l.sw    0(r8), r6           # s[i]
            l.muli  r5, r5, 197
            l.addi  r5, r5, 11
            l.andi  r6, r5, 0x7
            l.add   r8, r7, r21
            l.sw    0(r8), r6           # t[i]
            l.addi  r3, r3, 1
            l.sfnei r3, 12
            l.bf    lv_strings
            l.nop   0

            l.addi  r3, r0, 0           # prev[j] = j
    lv_prev_init:
            l.slli  r7, r3, 2
            l.add   r7, r7, r1
            l.sw    0(r7), r3
            l.addi  r3, r3, 1
            l.sfnei r3, 13
            l.bf    lv_prev_init
            l.nop   0

            l.addi  r10, r0, 1          # i = 1..=12
    lv_i:
            l.sw    0(r2), r10          # cur[0] = i
            l.slli  r7, r10, 2
            l.addi  r7, r7, -4
            l.add   r7, r7, r20
            l.lwz   r22, 0(r7)          # s[i-1]
            l.addi  r11, r0, 1          # j = 1..=12
    lv_j:
            l.slli  r7, r11, 2
            l.addi  r7, r7, -4
            l.add   r7, r7, r21
            l.lwz   r23, 0(r7)          # t[j-1]
            l.addi  r24, r0, 1          # cost = 1
            l.sfne  r22, r23
            l.bf    lv_cost_done
            l.nop   0
            l.addi  r24, r0, 0          # cost = 0 when equal
    lv_cost_done:
            l.slli  r7, r11, 2
            l.add   r8, r7, r1
            l.lwz   r16, 0(r8)          # prev[j]
            l.addi  r16, r16, 1         # deletion
            l.addi  r8, r7, -4
            l.add   r8, r8, r2
            l.lwz   r17, 0(r8)          # cur[j-1]
            l.addi  r17, r17, 1         # insertion
            l.addi  r8, r7, -4
            l.add   r8, r8, r1
            l.lwz   r18, 0(r8)          # prev[j-1]
            l.add   r18, r18, r24       # substitution
            l.sfgtu r16, r17            # r16 = min(r16, r17)
            l.cmov  r16, r17, r16
            l.sfgtu r16, r18            # r16 = min(r16, r18)
            l.cmov  r16, r18, r16
            l.add   r8, r7, r2
            l.sw    0(r8), r16          # cur[j]
            l.addi  r11, r11, 1
            l.sfnei r11, 13
            l.bf    lv_j
            l.nop   0

            l.addi  r3, r0, 0           # copy cur -> prev
    lv_copy:
            l.slli  r7, r3, 2
            l.add   r8, r7, r2
            l.lwz   r16, 0(r8)
            l.add   r8, r7, r1
            l.sw    0(r8), r16
            l.addi  r3, r3, 1
            l.sfnei r3, 13
            l.bf    lv_copy
            l.nop   0

            l.addi  r10, r10, 1
            l.sfnei r10, 13
            l.bf    lv_i
            l.nop   0

            l.lwz   r16, 48(r1)         # prev[12] = distance
            l.sw    0x0F10(r0), r16
            l.nop   1
        "#,
    )
}

/// Monte-Carlo estimation of a quarter-circle area: 300 pseudo-random
/// points, two multiplications and one compare each. The inside-count is
/// published at `0x0F0C`.
#[must_use]
pub fn montecarlo() -> Program {
    assemble_kernel(
        "beebs_montecarlo",
        r#"
            l.addi  r3, r0, 0           # iteration counter
            l.addi  r4, r0, 300
            l.ori   r5, r0, 31415       # LCG state
            l.addi  r16, r0, 0          # inside count
            l.movhi r15, 0x10           # radius² = 1024² = 0x00100000
    mc_loop:
            l.muli  r5, r5, 1103
            l.addi  r5, r5, 12347
            l.andi  r6, r5, 0x3FF       # x in 0..1023
            l.muli  r5, r5, 1103
            l.addi  r5, r5, 12347
            l.andi  r7, r5, 0x3FF       # y in 0..1023
            l.mul   r8, r6, r6
            l.mul   r10, r7, r7
            l.add   r8, r8, r10
            l.sfltu r8, r15
            l.bf    mc_inside
            l.nop   0
            l.j     mc_next
            l.nop   0
    mc_inside:
            l.addi  r16, r16, 1
    mc_next:
            l.addi  r3, r3, 1
            l.sfne  r3, r4
            l.bf    mc_loop
            l.nop   0
            l.sw    0x0F0C(r0), r16
            l.nop   1
        "#,
    )
}

/// Fixed-point n-body-style force accumulation over six bodies: pairwise
/// distance products and accumulations, a multiply/add-heavy kernel.
#[must_use]
pub fn nbody_fixed() -> Program {
    assemble_kernel(
        "beebs_nbody",
        r#"
            l.addi  r1, r0, 0x3C00      # positions: x[i], y[i] interleaved
            l.addi  r2, r0, 0x3D00      # accumulated forces
            l.addi  r3, r0, 0
            l.ori   r5, r0, 8191
    nb_init:
            l.muli  r5, r5, 173
            l.addi  r5, r5, 29
            l.andi  r6, r5, 0x3FF
            l.slli  r7, r3, 2
            l.add   r7, r7, r1
            l.sw    0(r7), r6
            l.addi  r3, r3, 1
            l.sfnei r3, 12              # 6 bodies × (x, y)
            l.bf    nb_init
            l.nop   0

            l.addi  r20, r0, 0          # outer body index i
    nb_i:
            l.addi  r21, r0, 0          # inner body index j
            l.addi  r16, r0, 0          # fx accumulator
            l.addi  r17, r0, 0          # fy accumulator
    nb_j:
            l.sfeq  r20, r21
            l.bf    nb_skip
            l.nop   0
            l.slli  r7, r20, 3
            l.add   r7, r7, r1
            l.lwz   r10, 0(r7)          # x[i]
            l.lwz   r11, 4(r7)          # y[i]
            l.slli  r7, r21, 3
            l.add   r7, r7, r1
            l.lwz   r12, 0(r7)          # x[j]
            l.lwz   r13, 4(r7)          # y[j]
            l.sub   r12, r12, r10       # dx
            l.sub   r13, r13, r11       # dy
            l.mul   r14, r12, r12
            l.mul   r15, r13, r13
            l.add   r14, r14, r15       # dist²
            l.addi  r14, r14, 1
            l.srli  r14, r14, 8         # fixed-point force magnitude proxy
            l.andi  r14, r14, 0xFF
            l.mul   r18, r12, r14
            l.add   r16, r16, r18
            l.mul   r18, r13, r14
            l.add   r17, r17, r18
    nb_skip:
            l.addi  r21, r21, 1
            l.sfnei r21, 6
            l.bf    nb_j
            l.nop   0
            l.slli  r7, r20, 3
            l.add   r7, r7, r2
            l.sw    0(r7), r16
            l.sw    4(r7), r17
            l.addi  r20, r20, 1
            l.sfnei r20, 6
            l.bf    nb_i
            l.nop   0
            l.nop   1
        "#,
    )
}

/// Dijkstra-style nearest-unvisited-node scan over an 8-node dense graph:
/// repeated minimum scans and relaxations, load/compare/branch heavy.
#[must_use]
pub fn dijkstra_scan() -> Program {
    assemble_kernel(
        "beebs_dijkstra",
        r#"
            l.addi  r1, r0, 0x4000      # adjacency matrix (8×8 words)
            l.addi  r2, r0, 0x4200      # dist[8]
            l.addi  r20, r0, 0x4240     # visited[8]
            l.addi  r3, r0, 0
    dj_init_w:
            l.srli  r6, r3, 3           # i = idx / 8
            l.andi  r7, r3, 7           # j = idx % 8
            l.mul   r8, r6, r7
            l.addi  r8, r8, 1
            l.andi  r8, r8, 0xF
            l.addi  r8, r8, 1           # weight 1..16
            l.slli  r10, r3, 2
            l.add   r10, r10, r1
            l.sw    0(r10), r8
            l.addi  r3, r3, 1
            l.sfnei r3, 64
            l.bf    dj_init_w
            l.nop   0

            l.addi  r3, r0, 0
            l.ori   r11, r0, 0x7FFF     # "infinity"
    dj_init_d:
            l.slli  r10, r3, 2
            l.add   r12, r10, r2
            l.sw    0(r12), r11
            l.add   r12, r10, r20
            l.sw    0(r12), r0          # not visited
            l.addi  r3, r3, 1
            l.sfnei r3, 8
            l.bf    dj_init_d
            l.nop   0
            l.sw    0(r2), r0           # dist[0] = 0

            l.addi  r22, r0, 0          # completed iterations
    dj_round:
            # find the unvisited node with the smallest distance
            l.addi  r23, r0, -1         # best index
            l.ori   r24, r0, 0x7FFF     # best distance
            l.addi  r3, r0, 0
    dj_scan:
            l.slli  r10, r3, 2
            l.add   r12, r10, r20
            l.lwz   r13, 0(r12)         # visited?
            l.sfnei r13, 0
            l.bf    dj_scan_next
            l.nop   0
            l.add   r12, r10, r2
            l.lwz   r13, 0(r12)         # dist[v]
            l.sfgeu r13, r24
            l.bf    dj_scan_next
            l.nop   0
            l.add   r24, r13, r0
            l.add   r23, r3, r0
    dj_scan_next:
            l.addi  r3, r3, 1
            l.sfnei r3, 8
            l.bf    dj_scan
            l.nop   0

            # mark it visited and relax its neighbours
            l.slli  r10, r23, 2
            l.add   r12, r10, r20
            l.addi  r13, r0, 1
            l.sw    0(r12), r13
            l.addi  r3, r0, 0
    dj_relax:
            l.muli  r10, r23, 8
            l.add   r10, r10, r3
            l.slli  r10, r10, 2
            l.add   r10, r10, r1
            l.lwz   r13, 0(r10)         # w[u][v]
            l.add   r14, r24, r13       # dist[u] + w
            l.slli  r10, r3, 2
            l.add   r12, r10, r2
            l.lwz   r15, 0(r12)         # dist[v]
            l.sfgeu r14, r15
            l.bf    dj_relax_next
            l.nop   0
            l.sw    0(r12), r14
    dj_relax_next:
            l.addi  r3, r3, 1
            l.sfnei r3, 8
            l.bf    dj_relax
            l.nop   0

            l.addi  r22, r22, 1
            l.sfnei r22, 8
            l.bf    dj_round
            l.nop   0
            l.lwz   r16, 28(r2)         # dist[7]
            l.sw    0x0F14(r0), r16
            l.nop   1
        "#,
    )
}

/// 8-point DCT-style butterfly applied to 32 rows of samples: structured
/// add/sub/multiply/shift sequences with very little control flow.
#[must_use]
pub fn fdct() -> Program {
    assemble_kernel(
        "beebs_fdct",
        r#"
            l.addi  r1, r0, 0x4400      # sample rows (32 × 8 words)
            l.addi  r3, r0, 0
            l.ori   r5, r0, 27182
    fd_init:
            l.muli  r5, r5, 167
            l.addi  r5, r5, 41
            l.andi  r6, r5, 0x1FF
            l.slli  r7, r3, 2
            l.add   r7, r7, r1
            l.sw    0(r7), r6
            l.addi  r3, r3, 1
            l.sfnei r3, 256             # 32 rows × 8 samples
            l.bf    fd_init
            l.nop   0

            l.addi  r20, r0, 0          # row index
    fd_row:
            l.slli  r7, r20, 5          # row offset = row * 32 bytes
            l.add   r7, r7, r1
            l.lwz   r10, 0(r7)
            l.lwz   r11, 4(r7)
            l.lwz   r12, 8(r7)
            l.lwz   r13, 12(r7)
            l.lwz   r14, 16(r7)
            l.lwz   r15, 20(r7)
            l.lwz   r16, 24(r7)
            l.lwz   r17, 28(r7)
            # stage 1: butterflies
            l.add   r21, r10, r17       # s0 = x0 + x7
            l.sub   r22, r10, r17       # d0 = x0 - x7
            l.add   r23, r11, r16       # s1
            l.sub   r24, r11, r16       # d1
            l.add   r25, r12, r15       # s2
            l.sub   r26, r12, r15       # d2
            l.add   r27, r13, r14       # s3
            l.sub   r28, r13, r14       # d3
            # stage 2: scaled combinations (Q8 fixed-point constants)
            l.muli  r10, r21, 181
            l.muli  r11, r23, 251
            l.add   r10, r10, r11
            l.srai  r10, r10, 8
            l.muli  r11, r25, 142
            l.muli  r12, r27, 97
            l.add   r11, r11, r12
            l.srai  r11, r11, 8
            l.muli  r12, r22, 236
            l.muli  r13, r24, 201
            l.sub   r12, r12, r13
            l.srai  r12, r12, 8
            l.muli  r13, r26, 100
            l.muli  r14, r28, 49
            l.add   r13, r13, r14
            l.srai  r13, r13, 8
            # write the transformed row back
            l.sw    0(r7), r10
            l.sw    4(r7), r11
            l.sw    8(r7), r12
            l.sw    12(r7), r13
            l.add   r14, r10, r12
            l.sub   r15, r11, r13
            l.sw    16(r7), r14
            l.sw    20(r7), r15
            l.xor   r16, r14, r15
            l.sw    24(r7), r16
            l.add   r17, r16, r10
            l.sw    28(r7), r17
            l.addi  r20, r20, 1
            l.sfnei r20, 32
            l.bf    fd_row
            l.nop   0
            l.nop   1
        "#,
    )
}

/// Constructors of the ten BEEBS-like kernels, in suite order (the parallel
/// suite runner assembles them concurrently).
pub const KERNELS: &[fn() -> Program] = &[
    crc32,
    fibcall,
    matmult_int,
    insertsort,
    fir,
    levenshtein,
    montecarlo,
    nbody_fixed,
    dijkstra_scan,
    fdct,
];

/// All ten BEEBS-like kernels.
#[must_use]
pub fn all() -> Vec<Program> {
    KERNELS.iter().map(|kernel| kernel()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use idca_isa::Reg;
    use idca_pipeline::{SimConfig, SimResult, Simulator};

    fn run(program: &Program) -> SimResult {
        Simulator::new(SimConfig::default())
            .run(program)
            .unwrap_or_else(|e| panic!("{} failed to run: {e}", program.name()))
    }

    #[test]
    fn all_kernels_terminate_with_reasonable_ipc() {
        for program in all() {
            let result = run(&program);
            assert!(
                result.trace.cycle_count() > 400,
                "{} ran only {} cycles",
                program.name(),
                result.trace.cycle_count()
            );
            let ipc = result.trace.ipc();
            assert!(ipc > 0.6, "{} has IPC {ipc}", program.name());
        }
    }

    #[test]
    fn crc32_matches_reference_implementation() {
        let mut crc: u32 = 0xFFFF_FFFF;
        let mut lcg: u32 = 2024;
        for _ in 0..96 {
            lcg = lcg.wrapping_mul(75).wrapping_add(74);
            crc ^= lcg & 0xFF;
            for _ in 0..8 {
                let lsb = crc & 1;
                crc >>= 1;
                if lsb != 0 {
                    crc ^= 0xEDB8_8320;
                }
            }
        }
        crc ^= 0xFFFF_FFFF;
        let result = run(&crc32());
        assert_eq!(result.state.memory.load_word(0x0F04).unwrap(), crc);
    }

    #[test]
    fn fibcall_sums_fibonacci_numbers() {
        let fib = |n: u64| -> u64 {
            let (mut a, mut b) = (0u64, 1u64);
            for _ in 0..n {
                let next = a + b;
                a = b;
                b = next;
            }
            a
        };
        let expected: u64 = (1..25).map(fib).sum();
        let result = run(&fibcall());
        assert_eq!(
            u64::from(result.state.memory.load_word(0x0F08).unwrap()),
            expected
        );
        // The subroutine must have been entered via the link register.
        assert_ne!(result.state.reg(Reg::LINK), 0);
    }

    #[test]
    fn insertsort_produces_sorted_memory() {
        let result = run(&insertsort());
        let mut previous = 0;
        for i in 0..32u32 {
            let value = result.state.memory.load_word(0x1800 + i * 4).unwrap();
            assert!(value >= previous, "array not sorted at index {i}");
            previous = value;
        }
    }

    #[test]
    fn montecarlo_count_matches_reference() {
        let mut lcg: u32 = 31415;
        let mut inside = 0u32;
        for _ in 0..300 {
            lcg = lcg.wrapping_mul(1103).wrapping_add(12347);
            let x = lcg & 0x3FF;
            lcg = lcg.wrapping_mul(1103).wrapping_add(12347);
            let y = lcg & 0x3FF;
            if x * x + y * y < 0x0010_0000 {
                inside += 1;
            }
        }
        let result = run(&montecarlo());
        assert_eq!(result.state.memory.load_word(0x0F0C).unwrap(), inside);
        assert!(inside > 100, "LCG should place a healthy fraction inside");
    }

    #[test]
    fn levenshtein_distance_is_plausible() {
        let result = run(&levenshtein());
        let distance = result.state.memory.load_word(0x0F10).unwrap();
        assert!(distance <= 12, "distance {distance} exceeds string length");
        assert!(
            distance > 0,
            "two pseudo-random strings are unlikely to be equal"
        );
    }

    #[test]
    fn dijkstra_finds_finite_distance() {
        let result = run(&dijkstra_scan());
        let distance = result.state.memory.load_word(0x0F14).unwrap();
        assert!(
            distance < 0x7FFF,
            "node 7 must be reachable, got {distance:#x}"
        );
        assert!(distance > 0);
    }

    #[test]
    fn multiply_heavy_kernels_use_the_multiplier() {
        for program in [fir(), montecarlo(), nbody_fixed(), fdct()] {
            let result = run(&program);
            let stats = result.trace.stats();
            assert!(
                stats.multiplications > 100,
                "{} only issued {} multiplications",
                program.name(),
                stats.multiplications
            );
        }
    }
}
