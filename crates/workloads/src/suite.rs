//! The assembled benchmark suite, the parallel suite runner and shared
//! kernel generators.

use crate::{beebs, characterization, coremark};
use idca_isa::Program;
use rayon::prelude::*;

/// Which suite a workload belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// CoreMark-like kernels (list, matrix, state machine, CRC).
    CoreMark,
    /// BEEBS-like embedded kernels.
    Beebs,
    /// Characterization workloads used to populate the delay LUT.
    Characterization,
    /// Seed-generated synthetic programs (`idca_gen`), used by the
    /// differential fuzzer and the Monte Carlo PVT sweep.
    Synthetic,
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Category::CoreMark => f.write_str("CoreMark"),
            Category::Beebs => f.write_str("BEEBS"),
            Category::Characterization => f.write_str("characterization"),
            Category::Synthetic => f.write_str("synthetic"),
        }
    }
}

/// One benchmark: a named program plus its suite category.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Benchmark name (matches the program name).
    pub name: String,
    /// Suite the benchmark belongs to.
    pub category: Category,
    /// The executable program image.
    pub program: Program,
}

impl Workload {
    fn new(category: Category, program: Program) -> Self {
        Workload {
            name: program.name().to_string(),
            category,
            program,
        }
    }
}

/// The full evaluation suite used for Fig. 8: four CoreMark-like kernels and
/// ten BEEBS-like kernels. The kernels are assembled in parallel (one rayon
/// task per kernel); suite order is deterministic regardless of the worker
/// count.
#[must_use]
pub fn benchmark_suite() -> Vec<Workload> {
    let builders: Vec<(Category, fn() -> Program)> = coremark::KERNELS
        .iter()
        .map(|&kernel| (Category::CoreMark, kernel))
        .chain(
            beebs::KERNELS
                .iter()
                .map(|&kernel| (Category::Beebs, kernel)),
        )
        .collect();
    builders
        .into_par_iter()
        .map(|(category, build)| Workload::new(category, build()))
        .collect()
}

/// The parallel suite runner: evaluates `f` on every item concurrently
/// (rayon across the slice) and returns the results in input order. This is
/// what lets the Fig. 8 evaluation, the ablation sweeps and the Monte Carlo
/// PVT sweep scale with cores: each worker simulates its workload (or
/// `(seed, corner)` job) once, streaming into whatever observers `f`
/// composes.
pub fn par_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    items.par_iter().map(f).collect()
}

/// The characterization workload (directed kernels plus semi-random code)
/// used to build the delay LUT, wrapped as a [`Workload`].
#[must_use]
pub fn characterization_workload(seed: u64) -> Workload {
    Workload::new(
        Category::Characterization,
        characterization::characterization_program(seed),
    )
}

/// One seed-generated synthetic program (`idca_gen`), wrapped as a
/// [`Workload`] so it plugs into [`par_map`] and every suite-level analysis
/// exactly like a hand-written kernel.
#[must_use]
pub fn synthetic_workload(seed: u64, config: &idca_gen::GenConfig) -> Workload {
    Workload::new(
        Category::Synthetic,
        idca_gen::generate_program(seed, config),
    )
}

/// A whole synthetic suite: `count` generated programs with seeds fanned out
/// from `master_seed`, assembled in parallel (one rayon task per program)
/// with deterministic suite order. This is the scenario-diversity
/// counterpart of [`benchmark_suite`]: where the Fig. 8 suite fixes 14
/// kernels, the synthetic suite scales to thousands of unseen instruction
/// mixes.
#[must_use]
pub fn synthetic_suite(
    master_seed: u64,
    count: usize,
    config: &idca_gen::GenConfig,
) -> Vec<Workload> {
    let seeds: Vec<u64> = (0..count as u64)
        .map(|i| idca_gen::nth_seed(master_seed, i))
        .collect();
    seeds
        .into_par_iter()
        .map(|seed| synthetic_workload(seed, config))
        .collect()
}

/// Generates the assembly source of an `n×n` integer matrix multiplication
/// with operand matrices initialized as `A[i] = 3·i + 1` and `B[i] = i ⊕ 5`.
///
/// The same generator backs the CoreMark-like 8×8 kernel and the BEEBS-like
/// 6×6 `matmult-int` kernel.
#[must_use]
pub(crate) fn matmul_source(n: u32, a_base: u32, b_base: u32, c_base: u32) -> String {
    let total = n * n;
    format!(
        r#"
            l.movhi r1, {a_hi:#x}
            l.ori   r1, r1, {a_lo:#x}      # A base
            l.movhi r2, {b_hi:#x}
            l.ori   r2, r2, {b_lo:#x}      # B base
            l.movhi r13, {c_hi:#x}
            l.ori   r13, r13, {c_lo:#x}    # C base
            l.addi  r3, r0, 0
            l.addi  r4, r0, {total}
    mm_init:
            l.slli  r5, r3, 2
            l.add   r6, r5, r1
            l.muli  r7, r3, 3
            l.addi  r7, r7, 1
            l.sw    0(r6), r7
            l.add   r6, r5, r2
            l.xori  r7, r3, 5
            l.sw    0(r6), r7
            l.addi  r3, r3, 1
            l.sfne  r3, r4
            l.bf    mm_init
            l.nop   0

            l.addi  r3, r0, 0              # i
    mm_i:
            l.addi  r5, r0, 0              # j
    mm_j:
            l.addi  r6, r0, 0              # k
            l.addi  r7, r0, 0              # acc
    mm_k:
            l.muli  r8, r3, {n}
            l.add   r8, r8, r6             # i*n + k
            l.slli  r8, r8, 2
            l.add   r8, r8, r1
            l.lwz   r10, 0(r8)             # A[i][k]
            l.muli  r11, r6, {n}
            l.add   r11, r11, r5           # k*n + j
            l.slli  r11, r11, 2
            l.add   r11, r11, r2
            l.lwz   r12, 0(r11)            # B[k][j]
            l.mul   r14, r10, r12
            l.add   r7, r7, r14
            l.addi  r6, r6, 1
            l.sfnei r6, {n}
            l.bf    mm_k
            l.nop   0
            l.muli  r8, r3, {n}
            l.add   r8, r8, r5
            l.slli  r8, r8, 2
            l.add   r8, r8, r13
            l.sw    0(r8), r7              # C[i][j]
            l.addi  r5, r5, 1
            l.sfnei r5, {n}
            l.bf    mm_j
            l.nop   0
            l.addi  r3, r3, 1
            l.sfnei r3, {n}
            l.bf    mm_i
            l.nop   0
            l.nop   1
        "#,
        a_hi = a_base >> 16,
        a_lo = a_base & 0xFFFF,
        b_hi = b_base >> 16,
        b_lo = b_base & 0xFFFF,
        c_hi = c_base >> 16,
        c_lo = c_base & 0xFFFF,
        total = total,
        n = n,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use idca_pipeline::{SimConfig, Simulator};

    #[test]
    fn suite_contains_both_categories_with_unique_names() {
        let suite = benchmark_suite();
        assert!(suite.iter().any(|w| w.category == Category::CoreMark));
        assert!(suite.iter().any(|w| w.category == Category::Beebs));
        assert!(suite.len() >= 12);
        let mut names: Vec<&str> = suite.iter().map(|w| w.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), suite.len(), "benchmark names must be unique");
    }

    #[test]
    fn every_workload_terminates() {
        let sim = Simulator::new(SimConfig::default());
        for workload in benchmark_suite() {
            let result = sim
                .run(&workload.program)
                .unwrap_or_else(|e| panic!("{} failed: {e}", workload.name));
            assert!(
                result.trace.cycle_count() > 500,
                "{} ran only {} cycles",
                workload.name,
                result.trace.cycle_count()
            );
        }
    }

    #[test]
    fn characterization_workload_is_labelled() {
        let w = characterization_workload(7);
        assert_eq!(w.category, Category::Characterization);
        assert!(!w.program.is_empty());
    }

    #[test]
    fn category_display_names() {
        assert_eq!(Category::CoreMark.to_string(), "CoreMark");
        assert_eq!(Category::Beebs.to_string(), "BEEBS");
        assert_eq!(Category::Synthetic.to_string(), "synthetic");
    }

    #[test]
    fn synthetic_suite_is_deterministic_ordered_and_terminates() {
        let cfg = idca_gen::GenConfig::default();
        let a = synthetic_suite(0xBEEF, 6, &cfg);
        let b = synthetic_suite(0xBEEF, 6, &cfg);
        assert_eq!(a.len(), 6);
        for (wa, wb) in a.iter().zip(&b) {
            assert_eq!(wa.name, wb.name);
            assert_eq!(wa.program.insns(), wb.program.insns());
            assert_eq!(wa.category, Category::Synthetic);
        }
        let sim = Simulator::new(SimConfig::default());
        let cycles = par_map(&a, |w| {
            sim.run_observed(&w.program, &mut [])
                .unwrap_or_else(|e| panic!("{} failed: {e}", w.name))
                .summary
                .cycles
        });
        assert!(cycles.iter().all(|&c| c > 50));
    }

    #[test]
    fn par_map_preserves_suite_order() {
        let suite = benchmark_suite();
        let names = par_map(&suite, |workload| workload.name.clone());
        let expected: Vec<String> = suite.iter().map(|w| w.name.clone()).collect();
        assert_eq!(names, expected);
    }

    #[test]
    fn parallel_assembly_matches_serial_kernel_order() {
        let suite = benchmark_suite();
        let serial: Vec<String> = crate::coremark::all()
            .into_iter()
            .chain(crate::beebs::all())
            .map(|program| program.name().to_string())
            .collect();
        let parallel: Vec<String> = suite.iter().map(|w| w.name.clone()).collect();
        assert_eq!(parallel, serial);
    }
}
