//! Characterization workloads.
//!
//! The paper characterizes the per-instruction dynamic timing with "small
//! hand-written kernels as well as semi-random test-cases that are generated
//! by a code generation tool", simulated at gate level for about 14 k
//! cycles. This module provides both ingredients:
//!
//! * [`directed_kernels`] — hand-written snippets that deliberately excite
//!   the worst-case data conditions of each instruction class (full-length
//!   carry chains, maximum-width multiplier operands, full-toggle logic
//!   operands, maximum shift distances, back-to-back memory accesses with
//!   forwarding, dense taken branches and calls).
//! * [`semi_random_source`] — a seeded generator that emits blocks of random
//!   ALU/memory instructions over random operand values (the "directed
//!   semi-random test generation" box of the paper's Fig. 2).
//! * [`characterization_program`] — the combination of both, assembled into
//!   a single program of roughly 14 k cycles, used to build the delay LUT.

use crate::assemble_kernel;
use idca_isa::Program;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The hand-written directed kernels, as labelled assembly snippets.
/// Each snippet loops a few dozen times and leaves the machine in a state
/// safe for the next snippet (no open delay slots, no reserved registers).
#[must_use]
pub fn directed_kernels() -> Vec<(&'static str, String)> {
    vec![
        ("adder_worst", adder_worst()),
        ("logic_worst", logic_worst()),
        ("shift_worst", shift_worst()),
        ("mul_worst", mul_worst()),
        ("setflag_sweep", setflag_sweep()),
        ("memory_pingpong", memory_pingpong()),
        ("branch_dense", branch_dense()),
        ("call_return", call_return()),
        ("move_extend", move_extend()),
    ]
}

fn adder_worst() -> String {
    r#"
            l.movhi r16, 0xFFFF
            l.ori   r16, r16, 0xFFFF    # all ones: full carry chain with +1
            l.addi  r17, r0, 1
            l.movhi r18, 0x7FFF
            l.ori   r18, r18, 0xFFFF    # max positive
            l.addi  r20, r0, 48
    ch_add_loop:
            l.add   r21, r16, r17       # 32-bit ripple
            l.add   r22, r18, r18       # sign-boundary add
            l.addi  r23, r16, 1
            l.sub   r24, r0, r16        # long borrow
            l.addc  r25, r16, r17
            l.add   r21, r21, r22       # dependent chain (forwarding)
            l.sub   r22, r21, r23
            l.addi  r20, r20, -1
            l.sfnei r20, 0
            l.bf    ch_add_loop
            l.nop   0
    "#
    .to_string()
}

fn logic_worst() -> String {
    r#"
            l.movhi r16, 0xAAAA
            l.ori   r16, r16, 0xAAAA
            l.movhi r17, 0x5555
            l.ori   r17, r17, 0x5555
            l.addi  r20, r0, 48
    ch_logic_loop:
            l.xor   r21, r16, r17       # every bit toggles
            l.and   r22, r16, r17       # full-toggle AND
            l.or    r23, r16, r17       # full-toggle OR
            l.xori  r24, r23, -1
            l.andi  r25, r21, 0xFFFF
            l.ori   r26, r22, 0xFFFF
            l.xor   r21, r21, r24       # dependent chain
            l.addi  r20, r20, -1
            l.sfnei r20, 0
            l.bf    ch_logic_loop
            l.nop   0
    "#
    .to_string()
}

fn shift_worst() -> String {
    r#"
            l.movhi r16, 0xFFFF
            l.ori   r16, r16, 0xFFFF
            l.addi  r17, r0, 31
            l.addi  r20, r0, 48
    ch_shift_loop:
            l.slli  r21, r16, 31
            l.srli  r22, r16, 31
            l.srai  r23, r16, 31
            l.rori  r24, r16, 17
            l.sll   r25, r16, r17       # full-distance register shift
            l.sra   r26, r16, r17
            l.ror   r27, r16, r17
            l.addi  r20, r20, -1
            l.sfnei r20, 0
            l.bf    ch_shift_loop
            l.nop   0
    "#
    .to_string()
}

fn mul_worst() -> String {
    r#"
            l.movhi r16, 0xFFFF
            l.ori   r16, r16, 0xFFFF    # widest unsigned operand
            l.movhi r17, 0x7FFF
            l.ori   r17, r17, 0xFFFF    # widest positive signed operand
            l.movhi r18, 0x8000        # most negative
            l.addi  r20, r0, 48
    ch_mul_loop:
            l.mul   r21, r16, r16       # all partial products active
            l.mulu  r22, r16, r17
            l.mul   r23, r17, r18
            l.muli  r24, r16, 0x7FFF
            l.mul   r25, r21, r22       # dependent multiply (forwarded)
            l.addi  r20, r20, -1
            l.sfnei r20, 0
            l.bf    ch_mul_loop
            l.nop   0
    "#
    .to_string()
}

fn setflag_sweep() -> String {
    r#"
            l.movhi r16, 0xFFFF
            l.ori   r16, r16, 0xFFFF
            l.addi  r17, r0, 1
            l.addi  r20, r0, 40
    ch_sf_loop:
            l.sfeq  r16, r17
            l.sfne  r16, r17
            l.sfgtu r16, r17
            l.sfgeu r17, r16
            l.sfltu r16, r17
            l.sfleu r16, r17
            l.sfgts r16, r17
            l.sfges r16, r17
            l.sflts r16, r17
            l.sfles r16, r17
            l.sfeqi r16, -1
            l.sfgtui r16, 0x7FFF
            l.cmov  r21, r16, r17
            l.addi  r20, r20, -1
            l.sfnei r20, 0
            l.bf    ch_sf_loop
            l.nop   0
    "#
    .to_string()
}

fn memory_pingpong() -> String {
    // The LSU worst case needs a maximally-toggling SRAM address (many set
    // address bits, long address-adder carry) together with forwarding into
    // the address operand and all-ones write/read data.
    r#"
            l.addi  r1, r0, 0x6000
            l.ori   r2, r0, 0xFF00      # high address region: many address bits set
            l.movhi r16, 0xFFFF
            l.ori   r16, r16, 0xFFFF
            l.movhi r17, 0xAAAA
            l.ori   r17, r17, 0xAAAA
            l.addi  r20, r0, 48
    ch_mem_loop:
            l.sw    0(r1), r16
            l.lwz   r21, 0(r1)          # load-to-use through forwarding
            l.add   r22, r21, r16
            l.sw    4(r1), r17
            l.lwz   r23, 4(r1)
            l.xor   r24, r23, r21
            l.addi  r3, r2, 0xFC        # forwarded address operand...
            l.sw    0(r3), r16          # ...to a maximally-set address (0xFFFC)
            l.lwz   r25, 0(r3)
            l.sw    0xF8(r2), r24       # far offset: long address adder path
            l.lwz   r26, 0xF8(r2)
            l.sh    8(r1), r25
            l.lhz   r27, 8(r1)
            l.sb    10(r1), r26
            l.lbs   r28, 10(r1)
            l.addi  r20, r20, -1
            l.sfnei r20, 0
            l.bf    ch_mem_loop
            l.nop   0
    "#
    .to_string()
}

fn branch_dense() -> String {
    r#"
            l.addi  r20, r0, 64
            l.addi  r21, r0, 0
    ch_br_loop:
            l.andi  r22, r20, 1
            l.sfnei r22, 0
            l.bf    ch_br_odd
            l.nop   0
            l.addi  r21, r21, 2
            l.j     ch_br_join
            l.nop   0
    ch_br_odd:
            l.addi  r21, r21, 1
    ch_br_join:
            l.sfgtsi r21, 1000
            l.bnf   ch_br_keep
            l.nop   0
            l.addi  r21, r0, 0
    ch_br_keep:
            l.addi  r20, r20, -1
            l.sfnei r20, 0
            l.bf    ch_br_loop
            l.nop   0
    "#
    .to_string()
}

fn call_return() -> String {
    r#"
            l.addi  r20, r0, 24
    ch_call_loop:
            l.jal   ch_callee
            l.nop   0
            l.addi  r20, r20, -1
            l.sfnei r20, 0
            l.bf    ch_call_loop
            l.nop   0
            l.j     ch_call_done
            l.nop   0
    ch_callee:
            l.addi  r22, r22, 3
            l.slli  r23, r22, 2
            l.jr    r9
            l.nop   0
    ch_call_done:
            l.addi  r24, r0, 0
    "#
    .to_string()
}

fn move_extend() -> String {
    r#"
            l.addi  r20, r0, 40
            l.movhi r16, 0x8091
            l.ori   r16, r16, 0x8223
    ch_mv_loop:
            l.movhi r21, 0xFFFF
            l.extbs r22, r16
            l.exths r23, r16
            l.sfeqi r20, 7
            l.cmov  r24, r22, r23
            l.ori   r25, r21, 0x00FF
            l.addi  r20, r20, -1
            l.sfnei r20, 0
            l.bf    ch_mv_loop
            l.nop   0
    "#
    .to_string()
}

/// Generates `blocks` straight-line blocks of semi-random instructions over
/// random operand values, reproducibly from `seed`. Memory accesses stay
/// within a 1 KiB scratch window at `0x7000`.
#[must_use]
pub fn semi_random_source(seed: u64, blocks: usize) -> String {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out =
        String::from("            l.addi  r1, r0, 0x7000      # semi-random scratch base\n");
    // Scratch registers available to the generator.
    const REGS: [u32; 10] = [16, 17, 18, 19, 21, 22, 23, 24, 25, 26];
    for _ in 0..blocks {
        // Refresh a couple of registers with random 32-bit constants.
        for _ in 0..2 {
            let rd = REGS[rng.gen_range(0..REGS.len())];
            let value: u32 = rng.gen();
            out.push_str(&format!(
                "            l.movhi r{rd}, {:#x}\n            l.ori   r{rd}, r{rd}, {:#x}\n",
                value >> 16,
                value & 0xFFFF
            ));
        }
        for _ in 0..14 {
            let rd = REGS[rng.gen_range(0..REGS.len())];
            let ra = REGS[rng.gen_range(0..REGS.len())];
            let rb = REGS[rng.gen_range(0..REGS.len())];
            let line = match rng.gen_range(0..100) {
                0..=17 => format!("l.add   r{rd}, r{ra}, r{rb}"),
                18..=25 => format!("l.sub   r{rd}, r{ra}, r{rb}"),
                26..=33 => format!("l.xor   r{rd}, r{ra}, r{rb}"),
                34..=39 => format!("l.and   r{rd}, r{ra}, r{rb}"),
                40..=45 => format!("l.or    r{rd}, r{ra}, r{rb}"),
                46..=53 => format!("l.addi  r{rd}, r{ra}, {}", rng.gen_range(-2048..2048)),
                54..=60 => format!("l.mul   r{rd}, r{ra}, r{rb}"),
                61..=66 => format!("l.slli  r{rd}, r{ra}, {}", rng.gen_range(0..32)),
                67..=71 => format!("l.srli  r{rd}, r{ra}, {}", rng.gen_range(0..32)),
                72..=76 => format!("l.sfgtu r{ra}, r{rb}"),
                77..=80 => format!("l.cmov  r{rd}, r{ra}, r{rb}"),
                81..=89 => format!("l.sw    {}(r1), r{rb}", rng.gen_range(0..256) * 4),
                _ => format!("l.lwz   r{rd}, {}(r1)", rng.gen_range(0..256) * 4),
            };
            out.push_str("            ");
            out.push_str(&line);
            out.push('\n');
        }
    }
    out
}

/// The full characterization program: every directed kernel followed by a
/// semi-random section, ending with the exit marker. With the default
/// `blocks` sizing this executes in roughly 14 k cycles, matching the
/// characterization length reported in the paper.
#[must_use]
pub fn characterization_program(seed: u64) -> Program {
    let mut source = String::new();
    for (_, snippet) in directed_kernels() {
        source.push_str(&snippet);
        source.push('\n');
    }
    source.push_str(&semi_random_source(seed, 340));
    source.push_str("            l.nop   1\n");
    assemble_kernel("characterization", &source)
}

#[cfg(test)]
mod tests {
    use super::*;
    use idca_pipeline::{SimConfig, Simulator};

    #[test]
    fn directed_kernels_assemble_individually() {
        for (name, snippet) in directed_kernels() {
            let mut source = snippet;
            source.push_str("\n            l.nop 1\n");
            let program = assemble_kernel(name, &source);
            let result = Simulator::new(SimConfig::default())
                .run(&program)
                .unwrap_or_else(|e| panic!("directed kernel {name} failed: {e}"));
            assert!(result.trace.cycle_count() > 50, "{name} is too short");
        }
    }

    #[test]
    fn characterization_program_runs_about_14k_cycles() {
        let program = characterization_program(42);
        let result = Simulator::new(SimConfig::default()).run(&program).unwrap();
        let cycles = result.trace.cycle_count();
        assert!(
            (9_000..25_000).contains(&cycles),
            "characterization length {cycles} is far from the paper's ~14k cycles"
        );
    }

    #[test]
    fn characterization_covers_every_execute_class_needed_for_the_lut() {
        use idca_isa::TimingClass;
        let program = characterization_program(42);
        let result = Simulator::new(SimConfig::default()).run(&program).unwrap();
        let stats = result.trace.stats();
        for class in [
            TimingClass::Add,
            TimingClass::And,
            TimingClass::Or,
            TimingClass::Xor,
            TimingClass::Move,
            TimingClass::Shift,
            TimingClass::Mul,
            TimingClass::SetFlag,
            TimingClass::Load,
            TimingClass::Store,
            TimingClass::BranchCond,
            TimingClass::Jump,
            TimingClass::JumpReg,
            TimingClass::Nop,
        ] {
            assert!(
                stats.class_count(class) >= 5,
                "characterization exercises {class} only {} times",
                stats.class_count(class)
            );
        }
    }

    #[test]
    fn semi_random_source_is_deterministic_per_seed() {
        assert_eq!(semi_random_source(7, 5), semi_random_source(7, 5));
        assert_ne!(semi_random_source(7, 5), semi_random_source(8, 5));
    }

    #[test]
    fn different_seeds_still_assemble_and_run() {
        for seed in [1, 99, 123_456] {
            let program = characterization_program(seed);
            let result = Simulator::new(SimConfig::default()).run(&program).unwrap();
            assert!(result.trace.cycle_count() > 5_000);
        }
    }
}
