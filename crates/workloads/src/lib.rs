//! # idca-workloads — benchmark kernels and characterization workloads
//!
//! The paper evaluates its dynamic clock-adjustment technique with the
//! CoreMark and BEEBS embedded benchmark suites (compiled with the OpenRISC
//! GCC toolchain) and characterizes the core's dynamic timing with
//! hand-written kernels plus directed semi-random test programs.
//!
//! The cross-compilation toolchain and the original C sources are not
//! available offline, so this crate provides equivalent workloads written
//! directly in the modelled ORBIS32 subset:
//!
//! * [`coremark`] — CoreMark-like kernels: linked-list search, integer
//!   matrix multiplication, a state machine over a pseudo-random byte
//!   stream, and CRC-16.
//! * [`beebs`] — BEEBS-like kernels: CRC-32, iterative Fibonacci with real
//!   calls, integer matrix multiply, insertion sort, FIR filter,
//!   Levenshtein distance, Monte-Carlo estimation, fixed-point n-body,
//!   a Dijkstra-style nearest-node scan and an 8-point DCT.
//! * [`characterization`] — directed per-instruction worst-case kernels and
//!   a seeded semi-random program generator (the paper's "directed
//!   semi-random test generation" stand-in), used to populate the delay LUT.
//! * [`suite`] — the assembled benchmark suite with one [`Workload`] entry
//!   per kernel, as consumed by the Fig. 8 benches and the `repro` harness,
//!   plus [`synthetic_suite`]: seed-generated `idca_gen` programs
//!   ([`Category::Synthetic`]) that scale the suite to arbitrary unseen
//!   instruction mixes for fuzzing and Monte Carlo PVT sweeps.
//!
//! Every kernel terminates with the `l.nop 1` exit marker and keeps its data
//! within the default 64 KiB data memory.
//!
//! # Example
//!
//! ```
//! use idca_workloads::suite::benchmark_suite;
//!
//! let suite = benchmark_suite();
//! assert!(suite.len() >= 12);
//! assert!(suite.iter().any(|w| w.name.contains("crc32")));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod beebs;
pub mod characterization;
pub mod coremark;
pub mod suite;

pub use suite::{
    benchmark_suite, par_map, synthetic_suite, synthetic_workload, Category, Workload,
};

use idca_isa::{asm::Assembler, Program};

/// Assembles one kernel source, panicking with a readable message if the
/// (statically known) source text is malformed. Workload sources are
/// compile-time constants of this crate, so failing to assemble is a bug,
/// not a runtime condition a caller could handle.
pub(crate) fn assemble_kernel(name: &str, source: &str) -> Program {
    Assembler::new()
        .with_name(name)
        .assemble(source)
        .unwrap_or_else(|e| panic!("workload kernel `{name}` failed to assemble: {e}"))
}
