use std::fmt;

/// Error type for every fallible operation of the ISA crate.
///
/// Covers instruction decoding, encoding range checks, assembly parsing and
/// program construction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IsaError {
    /// A 32-bit word could not be decoded into a supported instruction.
    UnknownEncoding {
        /// The raw instruction word.
        word: u32,
    },
    /// An immediate operand does not fit the field of the target encoding.
    ImmediateOutOfRange {
        /// Mnemonic of the offending instruction.
        mnemonic: &'static str,
        /// The immediate value provided by the caller.
        value: i64,
        /// Number of bits available in the encoding.
        bits: u32,
        /// Whether the field is interpreted as a signed quantity.
        signed: bool,
    },
    /// A register index outside `r0..r31` was requested.
    InvalidRegister {
        /// The offending register index.
        index: u32,
    },
    /// A line of assembly could not be parsed.
    ParseError {
        /// One-based line number in the source text.
        line: usize,
        /// Human readable description of the problem.
        message: String,
    },
    /// A label was referenced but never defined.
    UndefinedLabel {
        /// Name of the missing label.
        label: String,
    },
    /// A label was defined more than once.
    DuplicateLabel {
        /// Name of the duplicated label.
        label: String,
    },
    /// A branch or jump target is too far away for the offset field.
    BranchOutOfRange {
        /// Source instruction address (bytes).
        from: u32,
        /// Destination address (bytes).
        to: u32,
    },
    /// A program exceeded the requested memory size.
    ProgramTooLarge {
        /// Number of instruction words in the program.
        words: usize,
        /// Capacity of the target memory in words.
        capacity: usize,
    },
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::UnknownEncoding { word } => {
                write!(f, "unknown instruction encoding {word:#010x}")
            }
            IsaError::ImmediateOutOfRange {
                mnemonic,
                value,
                bits,
                signed,
            } => write!(
                f,
                "immediate {value} does not fit {bits}-bit {} field of {mnemonic}",
                if *signed { "signed" } else { "unsigned" }
            ),
            IsaError::InvalidRegister { index } => {
                write!(f, "register index {index} is outside r0..r31")
            }
            IsaError::ParseError { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            IsaError::UndefinedLabel { label } => write!(f, "undefined label `{label}`"),
            IsaError::DuplicateLabel { label } => write!(f, "duplicate label `{label}`"),
            IsaError::BranchOutOfRange { from, to } => {
                write!(f, "branch from {from:#x} to {to:#x} is out of range")
            }
            IsaError::ProgramTooLarge { words, capacity } => {
                write!(
                    f,
                    "program of {words} words exceeds memory capacity of {capacity} words"
                )
            }
        }
    }
}

impl std::error::Error for IsaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let err = IsaError::UnknownEncoding { word: 0xdead_beef };
        let text = err.to_string();
        assert!(text.contains("0xdeadbeef"));
        assert!(text.starts_with("unknown"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IsaError>();
    }

    #[test]
    fn immediate_error_mentions_signedness() {
        let err = IsaError::ImmediateOutOfRange {
            mnemonic: "l.addi",
            value: 70000,
            bits: 16,
            signed: true,
        };
        assert!(err.to_string().contains("signed"));
        let err = IsaError::ImmediateOutOfRange {
            mnemonic: "l.andi",
            value: -1,
            bits: 16,
            signed: false,
        };
        assert!(err.to_string().contains("unsigned"));
    }
}
