use crate::{IsaError, Opcode, Reg, SetFlagCond, TimingClass};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Operand bundle of a decoded instruction.
///
/// Not every field is meaningful for every [`Opcode`]; the accessors on
/// [`Insn`] (such as [`Insn::rd`]) return `None` when the operand does not
/// exist for the instruction format.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Operands {
    /// Destination register, when present.
    pub rd: Option<Reg>,
    /// First source register, when present.
    pub ra: Option<Reg>,
    /// Second source register, when present.
    pub rb: Option<Reg>,
    /// Immediate operand. For branches/jumps this is the *word* offset
    /// relative to the instruction itself (as in the ORBIS32 encoding).
    pub imm: Option<i32>,
}

/// A single decoded ORBIS32 instruction.
///
/// An `Insn` pairs an [`Opcode`] with its operands and provides the
/// bidirectional mapping to the 32-bit machine encoding.
///
/// # Example
///
/// ```
/// use idca_isa::{Insn, Opcode, Reg};
///
/// # fn main() -> Result<(), idca_isa::IsaError> {
/// let insn = Insn::addi(Reg::r(3), Reg::r(0), 42)?;
/// let word = insn.encode();
/// assert_eq!(Insn::decode(word)?, insn);
/// assert_eq!(insn.opcode(), Opcode::Addi);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Insn {
    opcode: Opcode,
    operands: Operands,
}

fn check_signed(mnemonic: &'static str, value: i64, bits: u32) -> Result<(), IsaError> {
    let min = -(1i64 << (bits - 1));
    let max = (1i64 << (bits - 1)) - 1;
    if value < min || value > max {
        return Err(IsaError::ImmediateOutOfRange {
            mnemonic,
            value,
            bits,
            signed: true,
        });
    }
    Ok(())
}

fn check_unsigned(mnemonic: &'static str, value: i64, bits: u32) -> Result<(), IsaError> {
    let max = (1i64 << bits) - 1;
    if value < 0 || value > max {
        return Err(IsaError::ImmediateOutOfRange {
            mnemonic,
            value,
            bits,
            signed: false,
        });
    }
    Ok(())
}

impl Insn {
    /// Creates an instruction from an opcode and a raw operand bundle.
    ///
    /// This performs no operand validation and is intended for generic code
    /// (e.g. a decoder or a random program generator) that has already
    /// range-checked its inputs; the typed constructors below are the
    /// preferred way to build instructions by hand.
    #[must_use]
    pub fn from_parts(opcode: Opcode, operands: Operands) -> Self {
        Insn { opcode, operands }
    }

    /// The opcode of this instruction.
    #[must_use]
    pub fn opcode(&self) -> Opcode {
        self.opcode
    }

    /// The timing class (delay-LUT key) of this instruction.
    #[must_use]
    pub fn timing_class(&self) -> TimingClass {
        self.opcode.timing_class()
    }

    /// The raw operand bundle.
    #[must_use]
    pub fn operands(&self) -> Operands {
        self.operands
    }

    /// Destination register, if the format has one.
    #[must_use]
    pub fn rd(&self) -> Option<Reg> {
        self.operands.rd
    }

    /// First source register, if the format has one.
    #[must_use]
    pub fn ra(&self) -> Option<Reg> {
        self.operands.ra
    }

    /// Second source register, if the format has one.
    #[must_use]
    pub fn rb(&self) -> Option<Reg> {
        self.operands.rb
    }

    /// Immediate operand, if the format has one.
    #[must_use]
    pub fn imm(&self) -> Option<i32> {
        self.operands.imm
    }

    /// The two source-register ports `(rA, rB)` exactly as the forwarding
    /// network sees them: the raw operand fields, independent of whether the
    /// opcode architecturally reads them. Stable accessor for predecode
    /// lowering (one call instead of two `Option` probes per cycle).
    #[must_use]
    pub fn source_regs(&self) -> (Option<Reg>, Option<Reg>) {
        (self.operands.ra, self.operands.rb)
    }

    /// The *effective* architectural destination register: the `rD` field
    /// when [`Opcode::writes_rd`] holds, `None` otherwise (stores, compares,
    /// plain branches and `l.nop` never write back even if a malformed
    /// operand bundle carries an `rd`). Link-register writes of `l.jal` /
    /// `l.jalr` are a property of the jump itself, not of this field.
    #[must_use]
    pub fn dest_reg(&self) -> Option<Reg> {
        if self.opcode.writes_rd() {
            self.operands.rd
        } else {
            None
        }
    }

    // ---------------------------------------------------------------------
    // Typed constructors (register-register ALU)
    // ---------------------------------------------------------------------

    fn rrr(opcode: Opcode, rd: Reg, ra: Reg, rb: Reg) -> Self {
        Insn {
            opcode,
            operands: Operands {
                rd: Some(rd),
                ra: Some(ra),
                rb: Some(rb),
                imm: None,
            },
        }
    }

    fn rri(opcode: Opcode, rd: Reg, ra: Reg, imm: i32) -> Self {
        Insn {
            opcode,
            operands: Operands {
                rd: Some(rd),
                ra: Some(ra),
                rb: None,
                imm: Some(imm),
            },
        }
    }

    /// `l.add rD, rA, rB`
    #[must_use]
    pub fn add(rd: Reg, ra: Reg, rb: Reg) -> Self {
        Self::rrr(Opcode::Add, rd, ra, rb)
    }

    /// `l.addc rD, rA, rB`
    #[must_use]
    pub fn addc(rd: Reg, ra: Reg, rb: Reg) -> Self {
        Self::rrr(Opcode::Addc, rd, ra, rb)
    }

    /// `l.sub rD, rA, rB`
    #[must_use]
    pub fn sub(rd: Reg, ra: Reg, rb: Reg) -> Self {
        Self::rrr(Opcode::Sub, rd, ra, rb)
    }

    /// `l.and rD, rA, rB`
    #[must_use]
    pub fn and(rd: Reg, ra: Reg, rb: Reg) -> Self {
        Self::rrr(Opcode::And, rd, ra, rb)
    }

    /// `l.or rD, rA, rB`
    #[must_use]
    pub fn or(rd: Reg, ra: Reg, rb: Reg) -> Self {
        Self::rrr(Opcode::Or, rd, ra, rb)
    }

    /// `l.xor rD, rA, rB`
    #[must_use]
    pub fn xor(rd: Reg, ra: Reg, rb: Reg) -> Self {
        Self::rrr(Opcode::Xor, rd, ra, rb)
    }

    /// `l.mul rD, rA, rB`
    #[must_use]
    pub fn mul(rd: Reg, ra: Reg, rb: Reg) -> Self {
        Self::rrr(Opcode::Mul, rd, ra, rb)
    }

    /// `l.mulu rD, rA, rB`
    #[must_use]
    pub fn mulu(rd: Reg, ra: Reg, rb: Reg) -> Self {
        Self::rrr(Opcode::Mulu, rd, ra, rb)
    }

    /// `l.sll rD, rA, rB`
    #[must_use]
    pub fn sll(rd: Reg, ra: Reg, rb: Reg) -> Self {
        Self::rrr(Opcode::Sll, rd, ra, rb)
    }

    /// `l.srl rD, rA, rB`
    #[must_use]
    pub fn srl(rd: Reg, ra: Reg, rb: Reg) -> Self {
        Self::rrr(Opcode::Srl, rd, ra, rb)
    }

    /// `l.sra rD, rA, rB`
    #[must_use]
    pub fn sra(rd: Reg, ra: Reg, rb: Reg) -> Self {
        Self::rrr(Opcode::Sra, rd, ra, rb)
    }

    /// `l.ror rD, rA, rB`
    #[must_use]
    pub fn ror(rd: Reg, ra: Reg, rb: Reg) -> Self {
        Self::rrr(Opcode::Ror, rd, ra, rb)
    }

    /// `l.cmov rD, rA, rB` — `rD = flag ? rA : rB`.
    #[must_use]
    pub fn cmov(rd: Reg, ra: Reg, rb: Reg) -> Self {
        Self::rrr(Opcode::Cmov, rd, ra, rb)
    }

    /// `l.extbs rD, rA`
    #[must_use]
    pub fn extbs(rd: Reg, ra: Reg) -> Self {
        Insn {
            opcode: Opcode::Extbs,
            operands: Operands {
                rd: Some(rd),
                ra: Some(ra),
                rb: None,
                imm: None,
            },
        }
    }

    /// `l.exths rD, rA`
    #[must_use]
    pub fn exths(rd: Reg, ra: Reg) -> Self {
        Insn {
            opcode: Opcode::Exths,
            operands: Operands {
                rd: Some(rd),
                ra: Some(ra),
                rb: None,
                imm: None,
            },
        }
    }

    // ---------------------------------------------------------------------
    // Typed constructors (immediate ALU)
    // ---------------------------------------------------------------------

    /// `l.addi rD, rA, I` with a signed 16-bit immediate.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::ImmediateOutOfRange`] if `imm` does not fit.
    pub fn addi(rd: Reg, ra: Reg, imm: i32) -> Result<Self, IsaError> {
        check_signed("l.addi", imm.into(), 16)?;
        Ok(Self::rri(Opcode::Addi, rd, ra, imm))
    }

    /// `l.addic rD, rA, I` (add immediate with carry-in).
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::ImmediateOutOfRange`] if `imm` does not fit.
    pub fn addic(rd: Reg, ra: Reg, imm: i32) -> Result<Self, IsaError> {
        check_signed("l.addic", imm.into(), 16)?;
        Ok(Self::rri(Opcode::Addic, rd, ra, imm))
    }

    /// `l.andi rD, rA, K` with an unsigned 16-bit immediate.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::ImmediateOutOfRange`] if `imm` does not fit.
    pub fn andi(rd: Reg, ra: Reg, imm: u32) -> Result<Self, IsaError> {
        check_unsigned("l.andi", imm.into(), 16)?;
        Ok(Self::rri(Opcode::Andi, rd, ra, imm as i32))
    }

    /// `l.ori rD, rA, K` with an unsigned 16-bit immediate.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::ImmediateOutOfRange`] if `imm` does not fit.
    pub fn ori(rd: Reg, ra: Reg, imm: u32) -> Result<Self, IsaError> {
        check_unsigned("l.ori", imm.into(), 16)?;
        Ok(Self::rri(Opcode::Ori, rd, ra, imm as i32))
    }

    /// `l.xori rD, rA, I` with a signed 16-bit immediate.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::ImmediateOutOfRange`] if `imm` does not fit.
    pub fn xori(rd: Reg, ra: Reg, imm: i32) -> Result<Self, IsaError> {
        check_signed("l.xori", imm.into(), 16)?;
        Ok(Self::rri(Opcode::Xori, rd, ra, imm))
    }

    /// `l.muli rD, rA, I` with a signed 16-bit immediate.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::ImmediateOutOfRange`] if `imm` does not fit.
    pub fn muli(rd: Reg, ra: Reg, imm: i32) -> Result<Self, IsaError> {
        check_signed("l.muli", imm.into(), 16)?;
        Ok(Self::rri(Opcode::Muli, rd, ra, imm))
    }

    /// `l.slli rD, rA, L` with a shift amount in `0..32`.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::ImmediateOutOfRange`] if `amount >= 32`.
    pub fn slli(rd: Reg, ra: Reg, amount: u32) -> Result<Self, IsaError> {
        check_unsigned("l.slli", amount.into(), 5)?;
        Ok(Self::rri(Opcode::Slli, rd, ra, amount as i32))
    }

    /// `l.srli rD, rA, L` with a shift amount in `0..32`.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::ImmediateOutOfRange`] if `amount >= 32`.
    pub fn srli(rd: Reg, ra: Reg, amount: u32) -> Result<Self, IsaError> {
        check_unsigned("l.srli", amount.into(), 5)?;
        Ok(Self::rri(Opcode::Srli, rd, ra, amount as i32))
    }

    /// `l.srai rD, rA, L` with a shift amount in `0..32`.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::ImmediateOutOfRange`] if `amount >= 32`.
    pub fn srai(rd: Reg, ra: Reg, amount: u32) -> Result<Self, IsaError> {
        check_unsigned("l.srai", amount.into(), 5)?;
        Ok(Self::rri(Opcode::Srai, rd, ra, amount as i32))
    }

    /// `l.rori rD, rA, L` with a rotate amount in `0..32`.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::ImmediateOutOfRange`] if `amount >= 32`.
    pub fn rori(rd: Reg, ra: Reg, amount: u32) -> Result<Self, IsaError> {
        check_unsigned("l.rori", amount.into(), 5)?;
        Ok(Self::rri(Opcode::Rori, rd, ra, amount as i32))
    }

    /// `l.movhi rD, K` with an unsigned 16-bit immediate.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::ImmediateOutOfRange`] if `imm` does not fit.
    pub fn movhi(rd: Reg, imm: u32) -> Result<Self, IsaError> {
        check_unsigned("l.movhi", imm.into(), 16)?;
        Ok(Insn {
            opcode: Opcode::Movhi,
            operands: Operands {
                rd: Some(rd),
                ra: None,
                rb: None,
                imm: Some(imm as i32),
            },
        })
    }

    // ---------------------------------------------------------------------
    // Set-flag comparisons
    // ---------------------------------------------------------------------

    /// `l.sf<cond> rA, rB`
    #[must_use]
    pub fn sf(cond: SetFlagCond, ra: Reg, rb: Reg) -> Self {
        Insn {
            opcode: Opcode::Sf(cond),
            operands: Operands {
                rd: None,
                ra: Some(ra),
                rb: Some(rb),
                imm: None,
            },
        }
    }

    /// `l.sf<cond>i rA, I` with a signed 16-bit immediate.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::ImmediateOutOfRange`] if `imm` does not fit.
    pub fn sfi(cond: SetFlagCond, ra: Reg, imm: i32) -> Result<Self, IsaError> {
        check_signed("l.sf*i", imm.into(), 16)?;
        Ok(Insn {
            opcode: Opcode::Sfi(cond),
            operands: Operands {
                rd: None,
                ra: Some(ra),
                rb: None,
                imm: Some(imm),
            },
        })
    }

    // ---------------------------------------------------------------------
    // Loads / stores
    // ---------------------------------------------------------------------

    fn load(opcode: Opcode, rd: Reg, offset: i32, ra: Reg) -> Result<Self, IsaError> {
        check_signed("load", offset.into(), 16)?;
        Ok(Insn {
            opcode,
            operands: Operands {
                rd: Some(rd),
                ra: Some(ra),
                rb: None,
                imm: Some(offset),
            },
        })
    }

    fn store(opcode: Opcode, offset: i32, ra: Reg, rb: Reg) -> Result<Self, IsaError> {
        check_signed("store", offset.into(), 16)?;
        Ok(Insn {
            opcode,
            operands: Operands {
                rd: None,
                ra: Some(ra),
                rb: Some(rb),
                imm: Some(offset),
            },
        })
    }

    /// `l.lwz rD, I(rA)` — load word.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::ImmediateOutOfRange`] if `offset` does not fit.
    pub fn lwz(rd: Reg, offset: i32, ra: Reg) -> Result<Self, IsaError> {
        Self::load(Opcode::Lwz, rd, offset, ra)
    }

    /// `l.lws rD, I(rA)` — load word, sign-extended (identical to `l.lwz` on
    /// a 32-bit implementation but encoded distinctly).
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::ImmediateOutOfRange`] if `offset` does not fit.
    pub fn lws(rd: Reg, offset: i32, ra: Reg) -> Result<Self, IsaError> {
        Self::load(Opcode::Lws, rd, offset, ra)
    }

    /// `l.lhz rD, I(rA)` — load half-word zero-extended.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::ImmediateOutOfRange`] if `offset` does not fit.
    pub fn lhz(rd: Reg, offset: i32, ra: Reg) -> Result<Self, IsaError> {
        Self::load(Opcode::Lhz, rd, offset, ra)
    }

    /// `l.lhs rD, I(rA)` — load half-word sign-extended.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::ImmediateOutOfRange`] if `offset` does not fit.
    pub fn lhs(rd: Reg, offset: i32, ra: Reg) -> Result<Self, IsaError> {
        Self::load(Opcode::Lhs, rd, offset, ra)
    }

    /// `l.lbz rD, I(rA)` — load byte zero-extended.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::ImmediateOutOfRange`] if `offset` does not fit.
    pub fn lbz(rd: Reg, offset: i32, ra: Reg) -> Result<Self, IsaError> {
        Self::load(Opcode::Lbz, rd, offset, ra)
    }

    /// `l.lbs rD, I(rA)` — load byte sign-extended.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::ImmediateOutOfRange`] if `offset` does not fit.
    pub fn lbs(rd: Reg, offset: i32, ra: Reg) -> Result<Self, IsaError> {
        Self::load(Opcode::Lbs, rd, offset, ra)
    }

    /// `l.sw I(rA), rB` — store word.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::ImmediateOutOfRange`] if `offset` does not fit.
    pub fn sw(offset: i32, ra: Reg, rb: Reg) -> Result<Self, IsaError> {
        Self::store(Opcode::Sw, offset, ra, rb)
    }

    /// `l.sh I(rA), rB` — store half-word.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::ImmediateOutOfRange`] if `offset` does not fit.
    pub fn sh(offset: i32, ra: Reg, rb: Reg) -> Result<Self, IsaError> {
        Self::store(Opcode::Sh, offset, ra, rb)
    }

    /// `l.sb I(rA), rB` — store byte.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::ImmediateOutOfRange`] if `offset` does not fit.
    pub fn sb(offset: i32, ra: Reg, rb: Reg) -> Result<Self, IsaError> {
        Self::store(Opcode::Sb, offset, ra, rb)
    }

    // ---------------------------------------------------------------------
    // Control flow
    // ---------------------------------------------------------------------

    fn pc_rel(opcode: Opcode, mnemonic: &'static str, word_offset: i32) -> Result<Self, IsaError> {
        check_signed(mnemonic, word_offset.into(), 26)?;
        Ok(Insn {
            opcode,
            operands: Operands {
                rd: None,
                ra: None,
                rb: None,
                imm: Some(word_offset),
            },
        })
    }

    /// `l.j N` — PC-relative jump by `word_offset` instruction words.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::ImmediateOutOfRange`] if the offset exceeds 26 bits.
    pub fn j(word_offset: i32) -> Result<Self, IsaError> {
        Self::pc_rel(Opcode::J, "l.j", word_offset)
    }

    /// `l.jal N` — jump and link.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::ImmediateOutOfRange`] if the offset exceeds 26 bits.
    pub fn jal(word_offset: i32) -> Result<Self, IsaError> {
        Self::pc_rel(Opcode::Jal, "l.jal", word_offset)
    }

    /// `l.bf N` — branch (if flag) by `word_offset` instruction words.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::ImmediateOutOfRange`] if the offset exceeds 26 bits.
    pub fn bf(word_offset: i32) -> Result<Self, IsaError> {
        Self::pc_rel(Opcode::Bf, "l.bf", word_offset)
    }

    /// `l.bnf N` — branch (if flag clear) by `word_offset` instruction words.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::ImmediateOutOfRange`] if the offset exceeds 26 bits.
    pub fn bnf(word_offset: i32) -> Result<Self, IsaError> {
        Self::pc_rel(Opcode::Bnf, "l.bnf", word_offset)
    }

    /// `l.jr rB` — jump to the address in `rB`.
    #[must_use]
    pub fn jr(rb: Reg) -> Self {
        Insn {
            opcode: Opcode::Jr,
            operands: Operands {
                rd: None,
                ra: None,
                rb: Some(rb),
                imm: None,
            },
        }
    }

    /// `l.jalr rB` — jump to the address in `rB` and link.
    #[must_use]
    pub fn jalr(rb: Reg) -> Self {
        Insn {
            opcode: Opcode::Jalr,
            operands: Operands {
                rd: None,
                ra: None,
                rb: Some(rb),
                imm: None,
            },
        }
    }

    /// `l.rfe` — return from exception to the saved exception PC.
    #[must_use]
    pub fn rfe() -> Self {
        Insn {
            opcode: Opcode::Rfe,
            operands: Operands::default(),
        }
    }

    /// `l.nop K`.
    #[must_use]
    pub fn nop(k: u16) -> Self {
        Insn {
            opcode: Opcode::Nop,
            operands: Operands {
                rd: None,
                ra: None,
                rb: None,
                imm: Some(k as i32),
            },
        }
    }

    // ---------------------------------------------------------------------
    // Encoding / decoding
    // ---------------------------------------------------------------------

    /// Encodes the instruction into its 32-bit ORBIS32 machine word.
    #[must_use]
    pub fn encode(&self) -> u32 {
        encode::encode(self)
    }

    /// Decodes a 32-bit machine word.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::UnknownEncoding`] for words outside the modelled
    /// subset.
    pub fn decode(word: u32) -> Result<Self, IsaError> {
        encode::decode(word)
    }
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::disasm::format_insn(self))
    }
}

mod encode {
    use super::*;

    const OP_J: u32 = 0x00;
    const OP_JAL: u32 = 0x01;
    const OP_BNF: u32 = 0x03;
    const OP_BF: u32 = 0x04;
    const OP_NOP: u32 = 0x05;
    const OP_MOVHI: u32 = 0x06;
    const OP_RFE: u32 = 0x09;
    const OP_JR: u32 = 0x11;
    const OP_JALR: u32 = 0x12;
    const OP_LWZ: u32 = 0x21;
    const OP_LWS: u32 = 0x22;
    const OP_LBZ: u32 = 0x23;
    const OP_LBS: u32 = 0x24;
    const OP_LHZ: u32 = 0x25;
    const OP_LHS: u32 = 0x26;
    const OP_ADDI: u32 = 0x27;
    const OP_ADDIC: u32 = 0x28;
    const OP_ANDI: u32 = 0x29;
    const OP_ORI: u32 = 0x2A;
    const OP_XORI: u32 = 0x2B;
    const OP_MULI: u32 = 0x2C;
    const OP_SHIFTI: u32 = 0x2E;
    const OP_SFI: u32 = 0x2F;
    const OP_SW: u32 = 0x35;
    const OP_SB: u32 = 0x36;
    const OP_SH: u32 = 0x37;
    const OP_ALU: u32 = 0x38;
    const OP_SF: u32 = 0x39;

    fn rd(insn: &Insn) -> u32 {
        insn.rd().map_or(0, |r| u32::from(r.index()))
    }
    fn ra(insn: &Insn) -> u32 {
        insn.ra().map_or(0, |r| u32::from(r.index()))
    }
    fn rb(insn: &Insn) -> u32 {
        insn.rb().map_or(0, |r| u32::from(r.index()))
    }
    fn imm16(insn: &Insn) -> u32 {
        (insn.imm().unwrap_or(0) as u32) & 0xFFFF
    }
    fn imm26(insn: &Insn) -> u32 {
        (insn.imm().unwrap_or(0) as u32) & 0x03FF_FFFF
    }

    fn alu(insn: &Insn, low: u32, sel98: u32, sel76: u32) -> u32 {
        (OP_ALU << 26)
            | (rd(insn) << 21)
            | (ra(insn) << 16)
            | (rb(insn) << 11)
            | (sel98 << 8)
            | (sel76 << 6)
            | low
    }

    pub(super) fn encode(insn: &Insn) -> u32 {
        match insn.opcode() {
            Opcode::J => (OP_J << 26) | imm26(insn),
            Opcode::Jal => (OP_JAL << 26) | imm26(insn),
            Opcode::Bnf => (OP_BNF << 26) | imm26(insn),
            Opcode::Bf => (OP_BF << 26) | imm26(insn),
            Opcode::Nop => (OP_NOP << 26) | (1 << 24) | imm16(insn),
            Opcode::Rfe => OP_RFE << 26,
            Opcode::Movhi => (OP_MOVHI << 26) | (rd(insn) << 21) | imm16(insn),
            Opcode::Jr => (OP_JR << 26) | (rb(insn) << 11),
            Opcode::Jalr => (OP_JALR << 26) | (rb(insn) << 11),
            Opcode::Lwz => (OP_LWZ << 26) | (rd(insn) << 21) | (ra(insn) << 16) | imm16(insn),
            Opcode::Lws => (OP_LWS << 26) | (rd(insn) << 21) | (ra(insn) << 16) | imm16(insn),
            Opcode::Lbz => (OP_LBZ << 26) | (rd(insn) << 21) | (ra(insn) << 16) | imm16(insn),
            Opcode::Lbs => (OP_LBS << 26) | (rd(insn) << 21) | (ra(insn) << 16) | imm16(insn),
            Opcode::Lhz => (OP_LHZ << 26) | (rd(insn) << 21) | (ra(insn) << 16) | imm16(insn),
            Opcode::Lhs => (OP_LHS << 26) | (rd(insn) << 21) | (ra(insn) << 16) | imm16(insn),
            Opcode::Addi => (OP_ADDI << 26) | (rd(insn) << 21) | (ra(insn) << 16) | imm16(insn),
            Opcode::Addic => (OP_ADDIC << 26) | (rd(insn) << 21) | (ra(insn) << 16) | imm16(insn),
            Opcode::Andi => (OP_ANDI << 26) | (rd(insn) << 21) | (ra(insn) << 16) | imm16(insn),
            Opcode::Ori => (OP_ORI << 26) | (rd(insn) << 21) | (ra(insn) << 16) | imm16(insn),
            Opcode::Xori => (OP_XORI << 26) | (rd(insn) << 21) | (ra(insn) << 16) | imm16(insn),
            Opcode::Muli => (OP_MULI << 26) | (rd(insn) << 21) | (ra(insn) << 16) | imm16(insn),
            Opcode::Slli => {
                (OP_SHIFTI << 26) | (rd(insn) << 21) | (ra(insn) << 16) | (imm16(insn) & 0x3F)
            }
            Opcode::Srli => {
                (OP_SHIFTI << 26)
                    | (rd(insn) << 21)
                    | (ra(insn) << 16)
                    | (0b01 << 6)
                    | (imm16(insn) & 0x3F)
            }
            Opcode::Srai => {
                (OP_SHIFTI << 26)
                    | (rd(insn) << 21)
                    | (ra(insn) << 16)
                    | (0b10 << 6)
                    | (imm16(insn) & 0x3F)
            }
            Opcode::Rori => {
                (OP_SHIFTI << 26)
                    | (rd(insn) << 21)
                    | (ra(insn) << 16)
                    | (0b11 << 6)
                    | (imm16(insn) & 0x3F)
            }
            Opcode::Sfi(cond) => {
                (OP_SFI << 26) | (cond.code() << 21) | (ra(insn) << 16) | imm16(insn)
            }
            Opcode::Sf(cond) => {
                (OP_SF << 26) | (cond.code() << 21) | (ra(insn) << 16) | (rb(insn) << 11)
            }
            Opcode::Sw | Opcode::Sb | Opcode::Sh => {
                let op = match insn.opcode() {
                    Opcode::Sw => OP_SW,
                    Opcode::Sb => OP_SB,
                    _ => OP_SH,
                };
                let imm = imm16(insn);
                (op << 26)
                    | ((imm >> 11) << 21)
                    | (ra(insn) << 16)
                    | (rb(insn) << 11)
                    | (imm & 0x7FF)
            }
            Opcode::Add => alu(insn, 0x0, 0, 0),
            Opcode::Addc => alu(insn, 0x1, 0, 0),
            Opcode::Sub => alu(insn, 0x2, 0, 0),
            Opcode::And => alu(insn, 0x3, 0, 0),
            Opcode::Or => alu(insn, 0x4, 0, 0),
            Opcode::Xor => alu(insn, 0x5, 0, 0),
            Opcode::Mul => alu(insn, 0x6, 0b11, 0),
            Opcode::Mulu => alu(insn, 0xB, 0b11, 0),
            Opcode::Sll => alu(insn, 0x8, 0, 0b00),
            Opcode::Srl => alu(insn, 0x8, 0, 0b01),
            Opcode::Sra => alu(insn, 0x8, 0, 0b10),
            Opcode::Ror => alu(insn, 0x8, 0, 0b11),
            Opcode::Cmov => alu(insn, 0xE, 0, 0),
            Opcode::Extbs => alu(insn, 0xC, 0, 0b01),
            Opcode::Exths => alu(insn, 0xC, 0, 0b00),
        }
    }

    fn sext(value: u32, bits: u32) -> i32 {
        let shift = 32 - bits;
        ((value << shift) as i32) >> shift
    }

    fn reg_at(word: u32, lsb: u32) -> Reg {
        Reg::r((word >> lsb) & 0x1F)
    }

    pub(super) fn decode(word: u32) -> Result<Insn, IsaError> {
        let op = word >> 26;
        let err = || IsaError::UnknownEncoding { word };
        let rd = reg_at(word, 21);
        let ra = reg_at(word, 16);
        let rb = reg_at(word, 11);
        let i16s = sext(word & 0xFFFF, 16);
        let u16v = word & 0xFFFF;

        let insn = match op {
            OP_J => Insn::j(sext(word & 0x03FF_FFFF, 26))?,
            OP_JAL => Insn::jal(sext(word & 0x03FF_FFFF, 26))?,
            OP_BNF => Insn::bnf(sext(word & 0x03FF_FFFF, 26))?,
            OP_BF => Insn::bf(sext(word & 0x03FF_FFFF, 26))?,
            OP_NOP => Insn::nop(u16v as u16),
            OP_RFE => {
                if word & 0x03FF_FFFF != 0 {
                    return Err(err());
                }
                Insn::rfe()
            }
            OP_MOVHI => Insn::movhi(rd, u16v)?,
            OP_JR => Insn::jr(rb),
            OP_JALR => Insn::jalr(rb),
            OP_LWZ => Insn::lwz(rd, i16s, ra)?,
            OP_LWS => Insn::load(Opcode::Lws, rd, i16s, ra)?,
            OP_LBZ => Insn::lbz(rd, i16s, ra)?,
            OP_LBS => Insn::lbs(rd, i16s, ra)?,
            OP_LHZ => Insn::lhz(rd, i16s, ra)?,
            OP_LHS => Insn::lhs(rd, i16s, ra)?,
            OP_ADDI => Insn::addi(rd, ra, i16s)?,
            OP_ADDIC => Insn::addic(rd, ra, i16s)?,
            OP_ANDI => Insn::andi(rd, ra, u16v)?,
            OP_ORI => Insn::ori(rd, ra, u16v)?,
            OP_XORI => Insn::xori(rd, ra, i16s)?,
            OP_MULI => Insn::muli(rd, ra, i16s)?,
            OP_SHIFTI => {
                let amount = word & 0x3F;
                match (word >> 6) & 0x3 {
                    0b00 => Insn::slli(rd, ra, amount)?,
                    0b01 => Insn::srli(rd, ra, amount)?,
                    0b10 => Insn::srai(rd, ra, amount)?,
                    _ => Insn::rori(rd, ra, amount)?,
                }
            }
            OP_SFI => {
                let cond = SetFlagCond::from_code((word >> 21) & 0x1F).ok_or_else(err)?;
                Insn::sfi(cond, ra, i16s)?
            }
            OP_SF => {
                let cond = SetFlagCond::from_code((word >> 21) & 0x1F).ok_or_else(err)?;
                Insn::sf(cond, ra, rb)
            }
            OP_SW | OP_SB | OP_SH => {
                let imm = (((word >> 21) & 0x1F) << 11) | (word & 0x7FF);
                let offset = sext(imm, 16);
                match op {
                    OP_SW => Insn::sw(offset, ra, rb)?,
                    OP_SB => Insn::sb(offset, ra, rb)?,
                    _ => Insn::sh(offset, ra, rb)?,
                }
            }
            OP_ALU => {
                let low = word & 0xF;
                let sel98 = (word >> 8) & 0x3;
                let sel76 = (word >> 6) & 0x3;
                match (low, sel98) {
                    (0x0, 0) => Insn::add(rd, ra, rb),
                    (0x1, 0) => Insn::addc(rd, ra, rb),
                    (0x2, 0) => Insn::sub(rd, ra, rb),
                    (0x3, 0) => Insn::and(rd, ra, rb),
                    (0x4, 0) => Insn::or(rd, ra, rb),
                    (0x5, 0) => Insn::xor(rd, ra, rb),
                    (0x6, 0b11) => Insn::mul(rd, ra, rb),
                    (0xB, 0b11) => Insn::mulu(rd, ra, rb),
                    (0x8, 0) => match sel76 {
                        0b00 => Insn::sll(rd, ra, rb),
                        0b01 => Insn::srl(rd, ra, rb),
                        0b10 => Insn::sra(rd, ra, rb),
                        _ => Insn::ror(rd, ra, rb),
                    },
                    (0xE, 0) => Insn::cmov(rd, ra, rb),
                    (0xC, 0) => match sel76 {
                        0b01 => Insn::extbs(rd, ra),
                        0b00 => Insn::exths(rd, ra),
                        _ => return Err(err()),
                    },
                    _ => return Err(err()),
                }
            }
            _ => return Err(err()),
        };
        Ok(insn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Reg;

    fn sample_insns() -> Vec<Insn> {
        vec![
            Insn::add(Reg::r(3), Reg::r(4), Reg::r(5)),
            Insn::addc(Reg::r(3), Reg::r(4), Reg::r(5)),
            Insn::sub(Reg::r(6), Reg::r(7), Reg::r(8)),
            Insn::and(Reg::r(1), Reg::r(2), Reg::r(3)),
            Insn::or(Reg::r(1), Reg::r(2), Reg::r(3)),
            Insn::xor(Reg::r(1), Reg::r(2), Reg::r(3)),
            Insn::mul(Reg::r(11), Reg::r(12), Reg::r(13)),
            Insn::mulu(Reg::r(11), Reg::r(12), Reg::r(13)),
            Insn::sll(Reg::r(4), Reg::r(5), Reg::r(6)),
            Insn::srl(Reg::r(4), Reg::r(5), Reg::r(6)),
            Insn::sra(Reg::r(4), Reg::r(5), Reg::r(6)),
            Insn::ror(Reg::r(4), Reg::r(5), Reg::r(6)),
            Insn::cmov(Reg::r(4), Reg::r(5), Reg::r(6)),
            Insn::extbs(Reg::r(4), Reg::r(5)),
            Insn::exths(Reg::r(4), Reg::r(5)),
            Insn::addi(Reg::r(3), Reg::r(0), -42).unwrap(),
            Insn::addic(Reg::r(3), Reg::r(0), 17).unwrap(),
            Insn::andi(Reg::r(3), Reg::r(4), 0xFFFF).unwrap(),
            Insn::ori(Reg::r(3), Reg::r(4), 0x1234).unwrap(),
            Insn::xori(Reg::r(3), Reg::r(4), -1).unwrap(),
            Insn::muli(Reg::r(3), Reg::r(4), 100).unwrap(),
            Insn::slli(Reg::r(3), Reg::r(4), 31).unwrap(),
            Insn::srli(Reg::r(3), Reg::r(4), 1).unwrap(),
            Insn::srai(Reg::r(3), Reg::r(4), 16).unwrap(),
            Insn::rori(Reg::r(3), Reg::r(4), 7).unwrap(),
            Insn::movhi(Reg::r(5), 0xABCD).unwrap(),
            Insn::sf(SetFlagCond::Eq, Reg::r(3), Reg::r(4)),
            Insn::sf(SetFlagCond::Les, Reg::r(3), Reg::r(4)),
            Insn::sfi(SetFlagCond::Gtu, Reg::r(3), 99).unwrap(),
            Insn::sfi(SetFlagCond::Lts, Reg::r(3), -5).unwrap(),
            Insn::lwz(Reg::r(3), -8, Reg::r(1)).unwrap(),
            Insn::lhz(Reg::r(3), 2, Reg::r(1)).unwrap(),
            Insn::lhs(Reg::r(3), 6, Reg::r(1)).unwrap(),
            Insn::lbz(Reg::r(3), 1, Reg::r(1)).unwrap(),
            Insn::lbs(Reg::r(3), 3, Reg::r(1)).unwrap(),
            Insn::sw(-4, Reg::r(1), Reg::r(3)).unwrap(),
            Insn::sh(2, Reg::r(1), Reg::r(3)).unwrap(),
            Insn::sb(1025, Reg::r(1), Reg::r(3)).unwrap(),
            Insn::j(-100).unwrap(),
            Insn::jal(12345).unwrap(),
            Insn::bf(-3).unwrap(),
            Insn::bnf(7).unwrap(),
            Insn::jr(Reg::r(9)),
            Insn::jalr(Reg::r(11)),
            Insn::rfe(),
            Insn::nop(0x42),
        ]
    }

    #[test]
    fn encode_decode_roundtrip_for_all_formats() {
        for insn in sample_insns() {
            let word = insn.encode();
            let decoded = Insn::decode(word).unwrap_or_else(|e| {
                panic!("failed to decode {insn} ({word:#010x}): {e}");
            });
            assert_eq!(decoded, insn, "roundtrip mismatch for {insn}");
        }
    }

    #[test]
    fn distinct_instructions_have_distinct_encodings() {
        let insns = sample_insns();
        let words: Vec<u32> = insns.iter().map(Insn::encode).collect();
        for (i, wi) in words.iter().enumerate() {
            for (j, wj) in words.iter().enumerate() {
                if i != j {
                    assert_ne!(wi, wj, "{} and {} encode identically", insns[i], insns[j]);
                }
            }
        }
    }

    #[test]
    fn known_encodings_match_orbis32() {
        // l.nop 0 encodes as 0x15000000 in the OpenRISC manual.
        assert_eq!(Insn::nop(0).encode(), 0x1500_0000);
        // l.addi rD,rA,I has major opcode 0x27.
        assert_eq!(
            Insn::addi(Reg::r(3), Reg::r(4), 1).unwrap().encode() >> 26,
            0x27
        );
        // l.j has major opcode 0x00, l.bf 0x04.
        assert_eq!(Insn::j(4).unwrap().encode() >> 26, 0x00);
        assert_eq!(Insn::bf(4).unwrap().encode() >> 26, 0x04);
        // l.sw has major opcode 0x35.
        assert_eq!(
            Insn::sw(0, Reg::r(1), Reg::r(2)).unwrap().encode() >> 26,
            0x35
        );
    }

    #[test]
    fn immediate_range_checks() {
        assert!(Insn::addi(Reg::r(1), Reg::r(2), 32767).is_ok());
        assert!(Insn::addi(Reg::r(1), Reg::r(2), 32768).is_err());
        assert!(Insn::addi(Reg::r(1), Reg::r(2), -32768).is_ok());
        assert!(Insn::addi(Reg::r(1), Reg::r(2), -32769).is_err());
        assert!(Insn::andi(Reg::r(1), Reg::r(2), 65535).is_ok());
        assert!(Insn::andi(Reg::r(1), Reg::r(2), 65536).is_err());
        assert!(Insn::slli(Reg::r(1), Reg::r(2), 32).is_err());
        assert!(Insn::j(1 << 25).is_err());
        assert!(Insn::j((1 << 25) - 1).is_ok());
    }

    #[test]
    fn store_immediate_split_field_roundtrips() {
        // Store offsets are split across two fields in the encoding; check
        // values that exercise both halves and the sign bit.
        for offset in [-32768, -2049, -1, 0, 1, 2047, 2048, 32767] {
            let insn = Insn::sw(offset, Reg::r(1), Reg::r(2)).unwrap();
            assert_eq!(
                Insn::decode(insn.encode()).unwrap(),
                insn,
                "offset {offset}"
            );
        }
    }

    #[test]
    fn unknown_words_are_rejected() {
        assert!(Insn::decode(0xFFFF_FFFF).is_err());
        // Major opcode 0x3F is not part of the subset.
        assert!(Insn::decode(0x3F << 26).is_err());
    }

    #[test]
    fn display_renders_assembly_like_text() {
        let insn = Insn::addi(Reg::r(3), Reg::r(0), 10).unwrap();
        assert_eq!(insn.to_string(), "l.addi r3, r0, 10");
        let insn = Insn::lwz(Reg::r(5), -8, Reg::r(1)).unwrap();
        assert_eq!(insn.to_string(), "l.lwz r5, -8(r1)");
    }
}
