use crate::{Insn, IsaError, Reg, INSN_BYTES};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An executable program image: a contiguous sequence of instructions, an
/// optional block of initialized data words and a symbol table.
///
/// Programs are produced either by the textual [`crate::asm::Assembler`] or
/// programmatically through [`ProgramBuilder`], and consumed by the pipeline
/// simulator in `idca-pipeline`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Program {
    name: String,
    base_address: u32,
    insns: Vec<Insn>,
    data: Vec<(u32, u32)>,
    symbols: BTreeMap<String, u32>,
}

impl Program {
    /// The program name (used in benchmark reports).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Byte address of the first instruction.
    #[must_use]
    pub fn base_address(&self) -> u32 {
        self.base_address
    }

    /// The instruction sequence.
    #[must_use]
    pub fn insns(&self) -> &[Insn] {
        &self.insns
    }

    /// Number of instructions in the image.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// `true` when the program contains no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }

    /// Initialized data words as `(byte_address, value)` pairs.
    #[must_use]
    pub fn data(&self) -> &[(u32, u32)] {
        &self.data
    }

    /// Resolved label addresses.
    #[must_use]
    pub fn symbols(&self) -> &BTreeMap<String, u32> {
        &self.symbols
    }

    /// Looks up the byte address of a label.
    #[must_use]
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// Byte address one past the last instruction.
    #[must_use]
    pub fn end_address(&self) -> u32 {
        self.base_address + (self.insns.len() as u32) * INSN_BYTES
    }

    /// The word index of the instruction at byte address `pc`, or `None`
    /// when `pc` lies outside `[base_address, end_address)` **or** is not
    /// word-aligned. This is the bounds-checked fetch accessor simulators
    /// should use instead of indexing [`Program::insns`] directly.
    #[must_use]
    pub fn insn_index(&self, pc: u32) -> Option<usize> {
        let offset = pc.wrapping_sub(self.base_address);
        if pc < self.base_address || !offset.is_multiple_of(INSN_BYTES) {
            return None;
        }
        let index = (offset / INSN_BYTES) as usize;
        (index < self.insns.len()).then_some(index)
    }

    /// Encodes the whole instruction stream into 32-bit words.
    #[must_use]
    pub fn to_words(&self) -> Vec<u32> {
        self.insns.iter().map(Insn::encode).collect()
    }

    /// Reconstructs a program from raw instruction words.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::UnknownEncoding`] if any word is not a valid
    /// instruction of the modelled subset.
    pub fn from_words(
        name: impl Into<String>,
        base_address: u32,
        words: &[u32],
    ) -> Result<Self, IsaError> {
        let insns = words
            .iter()
            .map(|&w| Insn::decode(w))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Program {
            name: name.into(),
            base_address,
            insns,
            data: Vec::new(),
            symbols: BTreeMap::new(),
        })
    }

    /// Returns a copy of the program with a different display name.
    #[must_use]
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }
}

/// Incremental builder for [`Program`] images.
///
/// The builder keeps track of the current instruction address so that labels
/// can be bound and later resolved into PC-relative branch offsets, which is
/// the main convenience the workload kernels rely on.
///
/// # Example
///
/// ```
/// use idca_isa::{Insn, ProgramBuilder, Reg, SetFlagCond};
///
/// # fn main() -> Result<(), idca_isa::IsaError> {
/// let mut b = ProgramBuilder::named("countdown");
/// b.push(Insn::addi(Reg::r(3), Reg::r(0), 5)?);
/// let top = b.bind_label("top");
/// b.push(Insn::addi(Reg::r(3), Reg::r(3), -1)?);
/// b.push(Insn::sf(SetFlagCond::Ne, Reg::r(3), Reg::r(0)));
/// b.push_branch_to(idca_isa::Opcode::Bf, top)?;
/// b.push(Insn::nop(0)); // delay slot
/// let program = b.build();
/// assert_eq!(program.len(), 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    name: String,
    base_address: u32,
    insns: Vec<Insn>,
    data: Vec<(u32, u32)>,
    symbols: BTreeMap<String, u32>,
}

/// An opaque handle to a label bound with [`ProgramBuilder::bind_label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(u32);

impl ProgramBuilder {
    /// Creates an empty builder with base address 0 and an empty name.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty builder with the given program name.
    #[must_use]
    pub fn named(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            ..Self::default()
        }
    }

    /// Sets the byte address of the first instruction.
    pub fn set_base_address(&mut self, base: u32) -> &mut Self {
        self.base_address = base;
        self
    }

    /// Byte address of the *next* instruction that will be pushed.
    #[must_use]
    pub fn current_address(&self) -> u32 {
        self.base_address + (self.insns.len() as u32) * INSN_BYTES
    }

    /// Appends one instruction.
    pub fn push(&mut self, insn: Insn) -> &mut Self {
        self.insns.push(insn);
        self
    }

    /// Appends every instruction from an iterator.
    pub fn extend<I: IntoIterator<Item = Insn>>(&mut self, insns: I) -> &mut Self {
        self.insns.extend(insns);
        self
    }

    /// Binds a label to the current address and records it as a symbol.
    pub fn bind_label(&mut self, name: impl Into<String>) -> Label {
        let addr = self.current_address();
        self.symbols.insert(name.into(), addr);
        Label(addr)
    }

    /// Records a symbol at an explicit byte address (used by the assembler
    /// to publish pass-1 label addresses).
    pub fn insert_symbol(&mut self, name: impl Into<String>, address: u32) -> &mut Self {
        self.symbols.insert(name.into(), address);
        self
    }

    /// Appends a PC-relative control-flow instruction targeting `label`.
    ///
    /// `opcode` must be one of `l.j`, `l.jal`, `l.bf`, `l.bnf`.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::BranchOutOfRange`] if the target cannot be encoded
    /// and [`IsaError::ParseError`] if `opcode` is not PC-relative.
    pub fn push_branch_to(
        &mut self,
        opcode: crate::Opcode,
        label: Label,
    ) -> Result<&mut Self, IsaError> {
        let from = self.current_address();
        let delta_bytes = i64::from(label.0) - i64::from(from);
        let words = delta_bytes / i64::from(INSN_BYTES);
        let words =
            i32::try_from(words).map_err(|_| IsaError::BranchOutOfRange { from, to: label.0 })?;
        let insn = match opcode {
            crate::Opcode::J => Insn::j(words),
            crate::Opcode::Jal => Insn::jal(words),
            crate::Opcode::Bf => Insn::bf(words),
            crate::Opcode::Bnf => Insn::bnf(words),
            other => {
                return Err(IsaError::ParseError {
                    line: 0,
                    message: format!("{other} is not a PC-relative control-flow instruction"),
                })
            }
        }
        .map_err(|_| IsaError::BranchOutOfRange { from, to: label.0 })?;
        self.insns.push(insn);
        Ok(self)
    }

    /// Adds an initialized 32-bit data word at the given byte address.
    pub fn push_data_word(&mut self, address: u32, value: u32) -> &mut Self {
        self.data.push((address, value));
        self
    }

    /// Adds a contiguous block of initialized 32-bit words starting at
    /// `address`.
    pub fn push_data_block(&mut self, address: u32, values: &[u32]) -> &mut Self {
        for (i, &value) in values.iter().enumerate() {
            self.data.push((address + (i as u32) * 4, value));
        }
        self
    }

    /// Convenience: loads a full 32-bit constant into `rd` using the
    /// canonical `l.movhi` + `l.ori` sequence (two instructions, or one when
    /// the upper half-word is zero).
    pub fn load_const(&mut self, rd: Reg, value: u32) -> &mut Self {
        let hi = value >> 16;
        let lo = value & 0xFFFF;
        if hi == 0 {
            self.push(Insn::ori(rd, Reg::R0, lo).expect("16-bit immediate"));
        } else {
            self.push(Insn::movhi(rd, hi).expect("16-bit immediate"));
            if lo != 0 {
                self.push(Insn::ori(rd, rd, lo).expect("16-bit immediate"));
            }
        }
        self
    }

    /// Number of instructions pushed so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// `true` when no instruction has been pushed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }

    /// Finalizes the builder into a [`Program`].
    #[must_use]
    pub fn build(self) -> Program {
        Program {
            name: self.name,
            base_address: self.base_address,
            insns: self.insns,
            data: self.data,
            symbols: self.symbols,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Opcode, SetFlagCond};

    #[test]
    fn builder_tracks_addresses() {
        let mut b = ProgramBuilder::new();
        assert_eq!(b.current_address(), 0);
        b.push(Insn::nop(0));
        assert_eq!(b.current_address(), 4);
        b.set_base_address(0x100);
        assert_eq!(b.current_address(), 0x104);
    }

    #[test]
    fn backward_branch_offset_is_negative() {
        let mut b = ProgramBuilder::new();
        let top = b.bind_label("top");
        b.push(Insn::sf(SetFlagCond::Ne, Reg::r(3), Reg::r(0)));
        b.push_branch_to(Opcode::Bf, top).unwrap();
        let program = b.build();
        assert_eq!(program.insns()[1].imm(), Some(-1));
        assert_eq!(program.symbol("top"), Some(0));
    }

    #[test]
    fn forward_branch_via_prebound_address() {
        let mut b = ProgramBuilder::new();
        b.push(Insn::nop(0));
        // Target four instructions ahead of the branch site.
        let target = Label(5 * INSN_BYTES);
        b.push_branch_to(Opcode::J, target).unwrap();
        let program = b.build();
        assert_eq!(program.insns()[1].imm(), Some(4));
    }

    #[test]
    fn push_branch_rejects_non_control_flow() {
        let mut b = ProgramBuilder::new();
        let l = b.bind_label("x");
        assert!(b.push_branch_to(Opcode::Add, l).is_err());
    }

    #[test]
    fn load_const_uses_minimal_sequence() {
        let mut b = ProgramBuilder::new();
        b.load_const(Reg::r(3), 0x12);
        assert_eq!(b.len(), 1);
        b.load_const(Reg::r(4), 0x10000);
        assert_eq!(b.len(), 2); // movhi only, low half zero
        b.load_const(Reg::r(5), 0xDEAD_BEEF);
        assert_eq!(b.len(), 4); // movhi + ori
    }

    #[test]
    fn words_roundtrip_through_from_words() {
        let mut b = ProgramBuilder::named("p");
        b.push(Insn::addi(Reg::r(3), Reg::r(0), 7).unwrap());
        b.push(Insn::mul(Reg::r(4), Reg::r(3), Reg::r(3)));
        b.push(Insn::nop(0));
        let p = b.build();
        let words = p.to_words();
        let q = Program::from_words("p", 0, &words).unwrap();
        assert_eq!(p.insns(), q.insns());
    }

    #[test]
    fn data_blocks_are_recorded_word_by_word() {
        let mut b = ProgramBuilder::new();
        b.push_data_block(0x1000, &[1, 2, 3]);
        let p = b.build();
        assert_eq!(p.data(), &[(0x1000, 1), (0x1004, 2), (0x1008, 3)]);
    }
}
