use crate::IsaError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the 32 ORBIS32 general-purpose registers, `r0` through `r31`.
///
/// `r0` is hard-wired to zero by the micro-architecture modelled in
/// `idca-pipeline` (the OpenRISC ABI treats it as the constant zero).
///
/// # Example
///
/// ```
/// use idca_isa::Reg;
///
/// # fn main() -> Result<(), idca_isa::IsaError> {
/// let r3 = Reg::new(3)?;
/// assert_eq!(r3.index(), 3);
/// assert_eq!(r3.to_string(), "r3");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Reg(u8);

impl Reg {
    /// The zero register `r0`.
    pub const R0: Reg = Reg(0);
    /// The ABI link register `r9`.
    pub const LINK: Reg = Reg(9);
    /// The ABI stack pointer `r1`.
    pub const SP: Reg = Reg(1);

    /// Creates a register from an index.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::InvalidRegister`] if `index >= 32`.
    pub fn new(index: u32) -> Result<Self, IsaError> {
        if index < 32 {
            Ok(Reg(index as u8))
        } else {
            Err(IsaError::InvalidRegister { index })
        }
    }

    /// Creates a register from an index, panicking on invalid input.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`. Prefer [`Reg::new`] for untrusted input;
    /// this constructor exists for compact literal-heavy workload code.
    #[must_use]
    pub fn r(index: u32) -> Self {
        Reg::new(index).expect("register index must be < 32")
    }

    /// Returns the register index in `0..32`.
    #[must_use]
    pub fn index(self) -> u8 {
        self.0
    }

    /// Returns `true` for the hard-wired zero register `r0`.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Iterates over all 32 architectural registers in index order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..32u8).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<Reg> for u8 {
    fn from(value: Reg) -> Self {
        value.0
    }
}

impl From<Reg> for usize {
    fn from(value: Reg) -> Self {
        value.0 as usize
    }
}

impl TryFrom<u32> for Reg {
    type Error = IsaError;

    fn try_from(value: u32) -> Result<Self, Self::Error> {
        Reg::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_out_of_range() {
        assert!(Reg::new(31).is_ok());
        assert_eq!(Reg::new(32), Err(IsaError::InvalidRegister { index: 32 }));
    }

    #[test]
    fn display_matches_openrisc_syntax() {
        assert_eq!(Reg::r(0).to_string(), "r0");
        assert_eq!(Reg::r(31).to_string(), "r31");
    }

    #[test]
    fn all_yields_each_register_once() {
        let regs: Vec<Reg> = Reg::all().collect();
        assert_eq!(regs.len(), 32);
        assert_eq!(regs[0], Reg::R0);
        assert_eq!(regs[9], Reg::LINK);
    }

    #[test]
    fn zero_register_is_identified() {
        assert!(Reg::R0.is_zero());
        assert!(!Reg::SP.is_zero());
    }

    #[test]
    fn conversions_roundtrip() {
        let r = Reg::r(17);
        assert_eq!(u8::from(r), 17);
        assert_eq!(usize::from(r), 17);
        assert_eq!(Reg::try_from(17u32).unwrap(), r);
    }
}
