use serde::{Deserialize, Serialize};
use std::fmt;

/// The instruction mnemonics of the modelled ORBIS32 subset.
///
/// The subset covers every instruction class that appears in the paper's
/// Tables I and II plus the instructions needed to write realistic
/// CoreMark-/BEEBS-style kernels: integer ALU (register and immediate
/// forms), shifts/rotates, single-cycle multiply, set-flag comparisons,
/// conditional branches, jumps, loads/stores of words/half-words/bytes,
/// `l.movhi` and `l.nop`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Opcode {
    /// `l.add rD, rA, rB` — 32-bit addition.
    Add,
    /// `l.addc rD, rA, rB` — addition with carry-in.
    Addc,
    /// `l.sub rD, rA, rB` — 32-bit subtraction.
    Sub,
    /// `l.and rD, rA, rB` — bitwise AND.
    And,
    /// `l.or rD, rA, rB` — bitwise OR.
    Or,
    /// `l.xor rD, rA, rB` — bitwise XOR.
    Xor,
    /// `l.mul rD, rA, rB` — signed 32×32→32 multiplication (single cycle).
    Mul,
    /// `l.mulu rD, rA, rB` — unsigned 32×32→32 multiplication.
    Mulu,
    /// `l.sll rD, rA, rB` — shift left logical by register amount.
    Sll,
    /// `l.srl rD, rA, rB` — shift right logical.
    Srl,
    /// `l.sra rD, rA, rB` — shift right arithmetic.
    Sra,
    /// `l.ror rD, rA, rB` — rotate right.
    Ror,
    /// `l.cmov rD, rA, rB` — conditional move on the flag bit.
    Cmov,
    /// `l.extbs rD, rA` — sign-extend byte.
    Extbs,
    /// `l.exths rD, rA` — sign-extend half-word.
    Exths,
    /// `l.addi rD, rA, I` — addition with signed 16-bit immediate.
    Addi,
    /// `l.addic rD, rA, I` — addition with immediate and carry-in.
    Addic,
    /// `l.andi rD, rA, K` — AND with zero-extended 16-bit immediate.
    Andi,
    /// `l.ori rD, rA, K` — OR with zero-extended 16-bit immediate.
    Ori,
    /// `l.xori rD, rA, I` — XOR with sign-extended 16-bit immediate.
    Xori,
    /// `l.muli rD, rA, I` — multiply by signed 16-bit immediate.
    Muli,
    /// `l.slli rD, rA, L` — shift left logical by 5-bit immediate.
    Slli,
    /// `l.srli rD, rA, L` — shift right logical by immediate.
    Srli,
    /// `l.srai rD, rA, L` — shift right arithmetic by immediate.
    Srai,
    /// `l.rori rD, rA, L` — rotate right by immediate.
    Rori,
    /// `l.movhi rD, K` — load 16-bit immediate into the upper half-word.
    Movhi,
    /// `l.sfeq rA, rB` / `l.sf* rA, rB` — set-flag comparison, register form.
    Sf(SetFlagCond),
    /// `l.sfeqi rA, I` / `l.sf*i rA, I` — set-flag comparison, immediate form.
    Sfi(SetFlagCond),
    /// `l.lwz rD, I(rA)` — load word, zero-extended.
    Lwz,
    /// `l.lws rD, I(rA)` — load word, sign-extended (identical on 32-bit).
    Lws,
    /// `l.lhz rD, I(rA)` — load half-word, zero-extended.
    Lhz,
    /// `l.lhs rD, I(rA)` — load half-word, sign-extended.
    Lhs,
    /// `l.lbz rD, I(rA)` — load byte, zero-extended.
    Lbz,
    /// `l.lbs rD, I(rA)` — load byte, sign-extended.
    Lbs,
    /// `l.sw I(rA), rB` — store word.
    Sw,
    /// `l.sh I(rA), rB` — store half-word.
    Sh,
    /// `l.sb I(rA), rB` — store byte.
    Sb,
    /// `l.j N` — unconditional PC-relative jump.
    J,
    /// `l.jal N` — jump and link (link register `r9`).
    Jal,
    /// `l.jr rB` — jump to register.
    Jr,
    /// `l.jalr rB` — jump to register and link.
    Jalr,
    /// `l.bf N` — branch if flag set.
    Bf,
    /// `l.bnf N` — branch if flag not set.
    Bnf,
    /// `l.rfe` — return from exception (jump to the saved exception PC).
    Rfe,
    /// `l.nop K` — no operation (K is an informational immediate).
    Nop,
}

/// Comparison condition of the ORBIS32 set-flag (`l.sf*`) instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SetFlagCond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Greater than, unsigned.
    Gtu,
    /// Greater or equal, unsigned.
    Geu,
    /// Less than, unsigned.
    Ltu,
    /// Less or equal, unsigned.
    Leu,
    /// Greater than, signed.
    Gts,
    /// Greater or equal, signed.
    Ges,
    /// Less than, signed.
    Lts,
    /// Less or equal, signed.
    Les,
}

impl SetFlagCond {
    /// All conditions, in the order of their ORBIS32 sub-opcode values.
    pub const ALL: [SetFlagCond; 10] = [
        SetFlagCond::Eq,
        SetFlagCond::Ne,
        SetFlagCond::Gtu,
        SetFlagCond::Geu,
        SetFlagCond::Ltu,
        SetFlagCond::Leu,
        SetFlagCond::Gts,
        SetFlagCond::Ges,
        SetFlagCond::Lts,
        SetFlagCond::Les,
    ];

    /// ORBIS32 sub-opcode (bits 25..21 of the instruction word).
    #[must_use]
    pub fn code(self) -> u32 {
        match self {
            SetFlagCond::Eq => 0x0,
            SetFlagCond::Ne => 0x1,
            SetFlagCond::Gtu => 0x2,
            SetFlagCond::Geu => 0x3,
            SetFlagCond::Ltu => 0x4,
            SetFlagCond::Leu => 0x5,
            SetFlagCond::Gts => 0xA,
            SetFlagCond::Ges => 0xB,
            SetFlagCond::Lts => 0xC,
            SetFlagCond::Les => 0xD,
        }
    }

    /// Inverse mapping of [`SetFlagCond::code`].
    #[must_use]
    pub fn from_code(code: u32) -> Option<Self> {
        SetFlagCond::ALL.into_iter().find(|c| c.code() == code)
    }

    /// Evaluates the condition on two 32-bit operands.
    #[must_use]
    pub fn eval(self, a: u32, b: u32) -> bool {
        let (sa, sb) = (a as i32, b as i32);
        match self {
            SetFlagCond::Eq => a == b,
            SetFlagCond::Ne => a != b,
            SetFlagCond::Gtu => a > b,
            SetFlagCond::Geu => a >= b,
            SetFlagCond::Ltu => a < b,
            SetFlagCond::Leu => a <= b,
            SetFlagCond::Gts => sa > sb,
            SetFlagCond::Ges => sa >= sb,
            SetFlagCond::Lts => sa < sb,
            SetFlagCond::Les => sa <= sb,
        }
    }

    /// Mnemonic suffix (`eq`, `ne`, `gtu`, ...).
    #[must_use]
    pub fn suffix(self) -> &'static str {
        match self {
            SetFlagCond::Eq => "eq",
            SetFlagCond::Ne => "ne",
            SetFlagCond::Gtu => "gtu",
            SetFlagCond::Geu => "geu",
            SetFlagCond::Ltu => "ltu",
            SetFlagCond::Leu => "leu",
            SetFlagCond::Gts => "gts",
            SetFlagCond::Ges => "ges",
            SetFlagCond::Lts => "lts",
            SetFlagCond::Les => "les",
        }
    }
}

/// The functional unit an instruction occupies in the execute stage of the
/// customized `mor1kx` micro-architecture (Fig. 4 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecUnit {
    /// The main adder (also computes comparisons and memory addresses).
    Adder,
    /// The logic unit (AND/OR/XOR, conditional move, extensions, `l.movhi`).
    Logic,
    /// The barrel shifter.
    Shifter,
    /// The shielded single-cycle multiplier.
    Multiplier,
    /// The load/store unit (address generation plus memory access).
    LoadStore,
    /// Branch/jump resolution (next-PC selection).
    Branch,
    /// No functional unit (e.g. `l.nop` or a pipeline bubble).
    None,
}

/// Grouping of instructions used as the key of the per-stage delay lookup
/// table, mirroring the granularity of the paper's Tables I and II
/// (e.g. the row "l.add(i)" covers both `l.add` and `l.addi`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TimingClass {
    /// `l.add`, `l.addi`, `l.addc`, `l.addic`, `l.sub` — adder paths.
    Add,
    /// `l.and`, `l.andi` — logic AND paths.
    And,
    /// `l.or`, `l.ori` — logic OR paths.
    Or,
    /// `l.xor`, `l.xori` — logic XOR paths.
    Xor,
    /// `l.cmov`, `l.extbs`, `l.exths`, `l.movhi` — short logic/move paths.
    Move,
    /// `l.sll(i)`, `l.srl(i)`, `l.sra(i)`, `l.ror(i)` — shifter paths.
    Shift,
    /// `l.mul`, `l.mulu`, `l.muli` — multiplier paths.
    Mul,
    /// `l.sf*`, `l.sf*i` — set-flag comparison paths.
    SetFlag,
    /// `l.lwz`, `l.lws`, `l.lhz`, `l.lhs`, `l.lbz`, `l.lbs` — load paths.
    Load,
    /// `l.sw`, `l.sh`, `l.sb` — store paths.
    Store,
    /// `l.bf`, `l.bnf` — conditional branch paths.
    BranchCond,
    /// `l.j`, `l.jal` — PC-relative jumps.
    Jump,
    /// `l.jr`, `l.jalr` — register-indirect jumps.
    JumpReg,
    /// `l.nop`.
    Nop,
    /// A pipeline bubble (no instruction in flight in the stage).
    Bubble,
}

impl TimingClass {
    /// All classes that correspond to real instructions (excludes
    /// [`TimingClass::Bubble`]).
    pub const INSTRUCTION_CLASSES: [TimingClass; 14] = [
        TimingClass::Add,
        TimingClass::And,
        TimingClass::Or,
        TimingClass::Xor,
        TimingClass::Move,
        TimingClass::Shift,
        TimingClass::Mul,
        TimingClass::SetFlag,
        TimingClass::Load,
        TimingClass::Store,
        TimingClass::BranchCond,
        TimingClass::Jump,
        TimingClass::JumpReg,
        TimingClass::Nop,
    ];

    /// All classes including the bubble pseudo-class.
    pub const ALL: [TimingClass; 15] = [
        TimingClass::Add,
        TimingClass::And,
        TimingClass::Or,
        TimingClass::Xor,
        TimingClass::Move,
        TimingClass::Shift,
        TimingClass::Mul,
        TimingClass::SetFlag,
        TimingClass::Load,
        TimingClass::Store,
        TimingClass::BranchCond,
        TimingClass::Jump,
        TimingClass::JumpReg,
        TimingClass::Nop,
        TimingClass::Bubble,
    ];

    /// A stable dense index, usable for array-backed lookup tables.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            TimingClass::Add => 0,
            TimingClass::And => 1,
            TimingClass::Or => 2,
            TimingClass::Xor => 3,
            TimingClass::Move => 4,
            TimingClass::Shift => 5,
            TimingClass::Mul => 6,
            TimingClass::SetFlag => 7,
            TimingClass::Load => 8,
            TimingClass::Store => 9,
            TimingClass::BranchCond => 10,
            TimingClass::Jump => 11,
            TimingClass::JumpReg => 12,
            TimingClass::Nop => 13,
            TimingClass::Bubble => 14,
        }
    }

    /// Number of distinct classes (length of [`TimingClass::ALL`]).
    pub const COUNT: usize = 15;

    /// The representative paper-style row label (e.g. `"l.add(i)"`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            TimingClass::Add => "l.add(i)",
            TimingClass::And => "l.and(i)",
            TimingClass::Or => "l.or(i)",
            TimingClass::Xor => "l.xor(i)",
            TimingClass::Move => "l.movhi/l.cmov",
            TimingClass::Shift => "l.sll(i)",
            TimingClass::Mul => "l.mul",
            TimingClass::SetFlag => "l.sf*",
            TimingClass::Load => "l.lwz",
            TimingClass::Store => "l.sw",
            TimingClass::BranchCond => "l.bf",
            TimingClass::Jump => "l.j",
            TimingClass::JumpReg => "l.jr",
            TimingClass::Nop => "l.nop",
            TimingClass::Bubble => "(bubble)",
        }
    }
}

impl fmt::Display for TimingClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl Opcode {
    /// Returns the canonical ORBIS32 mnemonic, e.g. `"l.addi"`.
    #[must_use]
    pub fn mnemonic(self) -> String {
        match self {
            Opcode::Add => "l.add".into(),
            Opcode::Addc => "l.addc".into(),
            Opcode::Sub => "l.sub".into(),
            Opcode::And => "l.and".into(),
            Opcode::Or => "l.or".into(),
            Opcode::Xor => "l.xor".into(),
            Opcode::Mul => "l.mul".into(),
            Opcode::Mulu => "l.mulu".into(),
            Opcode::Sll => "l.sll".into(),
            Opcode::Srl => "l.srl".into(),
            Opcode::Sra => "l.sra".into(),
            Opcode::Ror => "l.ror".into(),
            Opcode::Cmov => "l.cmov".into(),
            Opcode::Extbs => "l.extbs".into(),
            Opcode::Exths => "l.exths".into(),
            Opcode::Addi => "l.addi".into(),
            Opcode::Addic => "l.addic".into(),
            Opcode::Andi => "l.andi".into(),
            Opcode::Ori => "l.ori".into(),
            Opcode::Xori => "l.xori".into(),
            Opcode::Muli => "l.muli".into(),
            Opcode::Slli => "l.slli".into(),
            Opcode::Srli => "l.srli".into(),
            Opcode::Srai => "l.srai".into(),
            Opcode::Rori => "l.rori".into(),
            Opcode::Movhi => "l.movhi".into(),
            Opcode::Sf(c) => format!("l.sf{}", c.suffix()),
            Opcode::Sfi(c) => format!("l.sf{}i", c.suffix()),
            Opcode::Lwz => "l.lwz".into(),
            Opcode::Lws => "l.lws".into(),
            Opcode::Lhz => "l.lhz".into(),
            Opcode::Lhs => "l.lhs".into(),
            Opcode::Lbz => "l.lbz".into(),
            Opcode::Lbs => "l.lbs".into(),
            Opcode::Sw => "l.sw".into(),
            Opcode::Sh => "l.sh".into(),
            Opcode::Sb => "l.sb".into(),
            Opcode::J => "l.j".into(),
            Opcode::Jal => "l.jal".into(),
            Opcode::Jr => "l.jr".into(),
            Opcode::Jalr => "l.jalr".into(),
            Opcode::Bf => "l.bf".into(),
            Opcode::Bnf => "l.bnf".into(),
            Opcode::Rfe => "l.rfe".into(),
            Opcode::Nop => "l.nop".into(),
        }
    }

    /// The delay-LUT grouping this opcode belongs to.
    #[must_use]
    pub fn timing_class(self) -> TimingClass {
        match self {
            Opcode::Add | Opcode::Addc | Opcode::Sub | Opcode::Addi | Opcode::Addic => {
                TimingClass::Add
            }
            Opcode::And | Opcode::Andi => TimingClass::And,
            Opcode::Or | Opcode::Ori => TimingClass::Or,
            Opcode::Xor | Opcode::Xori => TimingClass::Xor,
            Opcode::Cmov | Opcode::Extbs | Opcode::Exths | Opcode::Movhi => TimingClass::Move,
            Opcode::Sll
            | Opcode::Srl
            | Opcode::Sra
            | Opcode::Ror
            | Opcode::Slli
            | Opcode::Srli
            | Opcode::Srai
            | Opcode::Rori => TimingClass::Shift,
            Opcode::Mul | Opcode::Mulu | Opcode::Muli => TimingClass::Mul,
            Opcode::Sf(_) | Opcode::Sfi(_) => TimingClass::SetFlag,
            Opcode::Lwz | Opcode::Lws | Opcode::Lhz | Opcode::Lhs | Opcode::Lbz | Opcode::Lbs => {
                TimingClass::Load
            }
            Opcode::Sw | Opcode::Sh | Opcode::Sb => TimingClass::Store,
            Opcode::Bf | Opcode::Bnf => TimingClass::BranchCond,
            Opcode::J | Opcode::Jal => TimingClass::Jump,
            Opcode::Jr | Opcode::Jalr | Opcode::Rfe => TimingClass::JumpReg,
            Opcode::Nop => TimingClass::Nop,
        }
    }

    /// The execute-stage functional unit this opcode uses.
    #[must_use]
    pub fn exec_unit(self) -> ExecUnit {
        match self.timing_class() {
            TimingClass::Add | TimingClass::SetFlag => ExecUnit::Adder,
            TimingClass::And | TimingClass::Or | TimingClass::Xor | TimingClass::Move => {
                ExecUnit::Logic
            }
            TimingClass::Shift => ExecUnit::Shifter,
            TimingClass::Mul => ExecUnit::Multiplier,
            TimingClass::Load | TimingClass::Store => ExecUnit::LoadStore,
            TimingClass::BranchCond | TimingClass::Jump | TimingClass::JumpReg => ExecUnit::Branch,
            TimingClass::Nop | TimingClass::Bubble => ExecUnit::None,
        }
    }

    /// `true` for load instructions.
    #[must_use]
    pub fn is_load(self) -> bool {
        self.timing_class() == TimingClass::Load
    }

    /// `true` for store instructions.
    #[must_use]
    pub fn is_store(self) -> bool {
        self.timing_class() == TimingClass::Store
    }

    /// `true` for any memory-access instruction.
    #[must_use]
    pub fn is_mem(self) -> bool {
        self.is_load() || self.is_store()
    }

    /// `true` for instructions that change control flow when executed
    /// (taken branches, unconditional and register jumps).
    #[must_use]
    pub fn is_control_flow(self) -> bool {
        matches!(
            self.timing_class(),
            TimingClass::BranchCond | TimingClass::Jump | TimingClass::JumpReg
        )
    }

    /// `true` for instructions with an architectural delay slot
    /// (all ORBIS32 jumps and branches have one delay slot).
    #[must_use]
    pub fn has_delay_slot(self) -> bool {
        self.is_control_flow()
    }

    /// `true` if the instruction writes a destination register `rD`.
    #[must_use]
    pub fn writes_rd(self) -> bool {
        match self {
            Opcode::Sf(_) | Opcode::Sfi(_) => false,
            Opcode::Sw | Opcode::Sh | Opcode::Sb => false,
            Opcode::J | Opcode::Bf | Opcode::Bnf | Opcode::Jr | Opcode::Rfe | Opcode::Nop => false,
            Opcode::Jal | Opcode::Jalr => true, // link register r9
            _ => true,
        }
    }

    /// `true` if the instruction reads source register `rA`.
    #[must_use]
    pub fn reads_ra(self) -> bool {
        !matches!(
            self,
            Opcode::Movhi
                | Opcode::J
                | Opcode::Jal
                | Opcode::Jr
                | Opcode::Jalr
                | Opcode::Bf
                | Opcode::Bnf
                | Opcode::Rfe
                | Opcode::Nop
        )
    }

    /// `true` if the instruction reads source register `rB`.
    #[must_use]
    pub fn reads_rb(self) -> bool {
        matches!(
            self,
            Opcode::Add
                | Opcode::Addc
                | Opcode::Sub
                | Opcode::And
                | Opcode::Or
                | Opcode::Xor
                | Opcode::Mul
                | Opcode::Mulu
                | Opcode::Sll
                | Opcode::Srl
                | Opcode::Sra
                | Opcode::Ror
                | Opcode::Cmov
                | Opcode::Sf(_)
                | Opcode::Sw
                | Opcode::Sh
                | Opcode::Sb
                | Opcode::Jr
                | Opcode::Jalr
        )
    }

    /// `true` if the instruction writes the compare flag.
    #[must_use]
    pub fn writes_flag(self) -> bool {
        matches!(self, Opcode::Sf(_) | Opcode::Sfi(_))
    }

    /// `true` if the instruction reads the compare flag.
    #[must_use]
    pub fn reads_flag(self) -> bool {
        matches!(self, Opcode::Bf | Opcode::Bnf | Opcode::Cmov)
    }

    /// Memory access width in bytes for loads/stores, `None` otherwise.
    #[must_use]
    pub fn mem_width(self) -> Option<u32> {
        match self {
            Opcode::Lwz | Opcode::Lws | Opcode::Sw => Some(4),
            Opcode::Lhz | Opcode::Lhs | Opcode::Sh => Some(2),
            Opcode::Lbz | Opcode::Lbs | Opcode::Sb => Some(1),
            _ => None,
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_class_indices_are_dense_and_unique() {
        let mut seen = [false; TimingClass::COUNT];
        for class in TimingClass::ALL {
            let idx = class.index();
            assert!(idx < TimingClass::COUNT);
            assert!(!seen[idx], "duplicate index for {class:?}");
            seen[idx] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn table_rows_map_to_expected_classes() {
        // The rows of Table II in the paper.
        assert_eq!(Opcode::Add.timing_class(), TimingClass::Add);
        assert_eq!(Opcode::Addi.timing_class(), TimingClass::Add);
        assert_eq!(Opcode::And.timing_class(), TimingClass::And);
        assert_eq!(Opcode::Bf.timing_class(), TimingClass::BranchCond);
        assert_eq!(Opcode::J.timing_class(), TimingClass::Jump);
        assert_eq!(Opcode::Lwz.timing_class(), TimingClass::Load);
        assert_eq!(Opcode::Mul.timing_class(), TimingClass::Mul);
        assert_eq!(Opcode::Slli.timing_class(), TimingClass::Shift);
        assert_eq!(Opcode::Xor.timing_class(), TimingClass::Xor);
        assert_eq!(Opcode::Sw.timing_class(), TimingClass::Store);
        assert_eq!(Opcode::Nop.timing_class(), TimingClass::Nop);
    }

    #[test]
    fn set_flag_conditions_roundtrip_codes() {
        for cond in SetFlagCond::ALL {
            assert_eq!(SetFlagCond::from_code(cond.code()), Some(cond));
        }
        assert_eq!(SetFlagCond::from_code(0x7), None);
    }

    #[test]
    fn set_flag_eval_signed_vs_unsigned() {
        let a = 0xFFFF_FFFF; // -1 signed, max unsigned
        let b = 1;
        assert!(SetFlagCond::Gtu.eval(a, b));
        assert!(!SetFlagCond::Gts.eval(a, b));
        assert!(SetFlagCond::Lts.eval(a, b));
        assert!(SetFlagCond::Ne.eval(a, b));
        assert!(SetFlagCond::Eq.eval(5, 5));
        assert!(SetFlagCond::Leu.eval(5, 5));
        assert!(SetFlagCond::Ges.eval(5, 5));
    }

    #[test]
    fn register_usage_flags_are_consistent() {
        assert!(Opcode::Add.writes_rd());
        assert!(Opcode::Add.reads_ra());
        assert!(Opcode::Add.reads_rb());
        assert!(!Opcode::Addi.reads_rb());
        assert!(!Opcode::Sw.writes_rd());
        assert!(Opcode::Sw.reads_rb());
        assert!(Opcode::Jal.writes_rd());
        assert!(!Opcode::Bf.reads_ra());
        assert!(Opcode::Bf.reads_flag());
        assert!(Opcode::Sf(SetFlagCond::Eq).writes_flag());
        assert!(!Opcode::Nop.writes_rd());
    }

    #[test]
    fn delay_slot_only_for_control_flow() {
        assert!(Opcode::J.has_delay_slot());
        assert!(Opcode::Bf.has_delay_slot());
        assert!(Opcode::Jr.has_delay_slot());
        assert!(!Opcode::Add.has_delay_slot());
        assert!(!Opcode::Lwz.has_delay_slot());
    }

    #[test]
    fn mem_widths() {
        assert_eq!(Opcode::Lwz.mem_width(), Some(4));
        assert_eq!(Opcode::Sh.mem_width(), Some(2));
        assert_eq!(Opcode::Lbs.mem_width(), Some(1));
        assert_eq!(Opcode::Add.mem_width(), None);
    }

    #[test]
    fn exec_units_match_microarchitecture() {
        assert_eq!(Opcode::Mul.exec_unit(), ExecUnit::Multiplier);
        assert_eq!(Opcode::Lwz.exec_unit(), ExecUnit::LoadStore);
        assert_eq!(Opcode::Add.exec_unit(), ExecUnit::Adder);
        assert_eq!(Opcode::Xor.exec_unit(), ExecUnit::Logic);
        assert_eq!(Opcode::Slli.exec_unit(), ExecUnit::Shifter);
        assert_eq!(Opcode::Bf.exec_unit(), ExecUnit::Branch);
        assert_eq!(Opcode::Nop.exec_unit(), ExecUnit::None);
    }

    #[test]
    fn mnemonics_follow_openrisc_convention() {
        assert_eq!(Opcode::Addi.mnemonic(), "l.addi");
        assert_eq!(Opcode::Sf(SetFlagCond::Gtu).mnemonic(), "l.sfgtu");
        assert_eq!(Opcode::Sfi(SetFlagCond::Les).mnemonic(), "l.sflesi");
        assert_eq!(Opcode::Movhi.to_string(), "l.movhi");
    }
}
