//! A small two-pass assembler for the modelled ORBIS32 subset.
//!
//! The assembler understands standard OpenRISC syntax for the supported
//! instructions, labels, line comments (`#`, `;`, `//`) and a handful of
//! directives:
//!
//! * `.org <addr>` — set the address of the next instruction (pass 1 only
//!   affects label resolution; instructions are still laid out contiguously
//!   from the base address, so `.org` is mainly useful at the very top).
//! * `.data <addr>` — set the cursor for subsequent `.word` directives.
//! * `.word <v>[, <v>...]` — emit initialized 32-bit data words.
//!
//! Branch and jump operands may be numeric word offsets or label names.
//!
//! # Example
//!
//! ```
//! use idca_isa::asm::Assembler;
//!
//! # fn main() -> Result<(), idca_isa::IsaError> {
//! let program = Assembler::new().assemble(
//!     "        l.addi r3, r0, 3\n\
//!      loop:   l.addi r3, r3, -1\n\
//!              l.sfne r3, r0\n\
//!              l.bf   loop\n\
//!              l.nop  0\n",
//! )?;
//! assert_eq!(program.len(), 5);
//! assert_eq!(program.symbol("loop"), Some(4));
//! # Ok(())
//! # }
//! ```

use crate::{Insn, IsaError, Program, ProgramBuilder, Reg, SetFlagCond, INSN_BYTES};
use std::collections::BTreeMap;

/// Two-pass assembler producing [`Program`] images.
#[derive(Debug, Clone, Default)]
pub struct Assembler {
    base_address: u32,
    name: String,
}

impl Assembler {
    /// Creates an assembler with base address `0` and an empty program name.
    #[must_use]
    pub fn new() -> Self {
        Assembler {
            base_address: 0,
            name: String::new(),
        }
    }

    /// Sets the byte address of the first instruction.
    #[must_use]
    pub fn with_base_address(mut self, base: u32) -> Self {
        self.base_address = base;
        self
    }

    /// Sets the name recorded in the resulting [`Program`].
    #[must_use]
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Assembles a full source text.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::ParseError`], [`IsaError::UndefinedLabel`],
    /// [`IsaError::DuplicateLabel`], [`IsaError::ImmediateOutOfRange`] or
    /// [`IsaError::BranchOutOfRange`] describing the first problem found.
    pub fn assemble(&self, source: &str) -> Result<Program, IsaError> {
        let lines = preprocess(source);

        // Pass 1: resolve label addresses.
        let mut labels: BTreeMap<String, u32> = BTreeMap::new();
        let mut address = self.base_address;
        for line in &lines {
            for label in &line.labels {
                if labels.insert(label.clone(), address).is_some() {
                    return Err(IsaError::DuplicateLabel {
                        label: label.clone(),
                    });
                }
            }
            if let Some(stmt) = &line.statement {
                match stmt_kind(stmt) {
                    StmtKind::Instruction => address += INSN_BYTES,
                    StmtKind::Org(value) => address = value,
                    StmtKind::Other => {}
                }
            }
        }

        // Pass 2: emit instructions and data.
        let mut builder = ProgramBuilder::named(self.name.clone());
        builder.set_base_address(self.base_address);
        let mut data_cursor: u32 = 0;
        let mut address = self.base_address;
        for line in &lines {
            let Some(stmt) = &line.statement else {
                continue;
            };
            match stmt_kind(stmt) {
                StmtKind::Org(value) => {
                    address = value;
                }
                StmtKind::Other => {
                    parse_directive(stmt, line.number, &mut builder, &mut data_cursor)?;
                }
                StmtKind::Instruction => {
                    let insn = parse_instruction(stmt, line.number, address, &labels)?;
                    builder.push(insn);
                    address += INSN_BYTES;
                }
            }
        }
        for (label, addr) in labels {
            builder.insert_symbol(label, addr);
        }
        Ok(builder.build())
    }
}

#[derive(Debug)]
struct SourceLine {
    number: usize,
    labels: Vec<String>,
    statement: Option<String>,
}

fn preprocess(source: &str) -> Vec<SourceLine> {
    let mut out = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let mut text = raw;
        for marker in ["#", ";", "//"] {
            if let Some(pos) = text.find(marker) {
                text = &text[..pos];
            }
        }
        let mut rest = text.trim();
        let mut labels = Vec::new();
        while let Some(colon) = rest.find(':') {
            let (head, tail) = rest.split_at(colon);
            let head = head.trim();
            if head.is_empty()
                || !head
                    .chars()
                    .all(|c| c.is_alphanumeric() || c == '_' || c == '.')
            {
                break;
            }
            labels.push(head.to_string());
            rest = tail[1..].trim();
        }
        let statement = if rest.is_empty() {
            None
        } else {
            Some(rest.to_string())
        };
        if labels.is_empty() && statement.is_none() {
            continue;
        }
        out.push(SourceLine {
            number: idx + 1,
            labels,
            statement,
        });
    }
    out
}

enum StmtKind {
    Instruction,
    Org(u32),
    Other,
}

fn stmt_kind(stmt: &str) -> StmtKind {
    let lower = stmt.trim().to_ascii_lowercase();
    if let Some(rest) = lower.strip_prefix(".org") {
        if let Ok(value) = parse_u32(rest.trim()) {
            return StmtKind::Org(value);
        }
        return StmtKind::Other;
    }
    if lower.starts_with('.') {
        StmtKind::Other
    } else {
        StmtKind::Instruction
    }
}

fn parse_directive(
    stmt: &str,
    line: usize,
    builder: &mut ProgramBuilder,
    data_cursor: &mut u32,
) -> Result<(), IsaError> {
    let (dir, rest) = stmt.split_once(char::is_whitespace).unwrap_or((stmt, ""));
    match dir.to_ascii_lowercase().as_str() {
        ".data" => {
            *data_cursor =
                parse_u32(rest.trim()).map_err(|m| IsaError::ParseError { line, message: m })?;
            Ok(())
        }
        ".word" => {
            for part in rest.split(',') {
                let value = parse_u32(part.trim())
                    .map_err(|m| IsaError::ParseError { line, message: m })?;
                builder.push_data_word(*data_cursor, value);
                *data_cursor += 4;
            }
            Ok(())
        }
        other => Err(IsaError::ParseError {
            line,
            message: format!("unknown directive `{other}`"),
        }),
    }
}

fn parse_u32(text: &str) -> Result<u32, String> {
    let text = text.trim();
    let (neg, digits) = match text.strip_prefix('-') {
        Some(d) => (true, d),
        None => (false, text),
    };
    let value = if let Some(hex) = digits
        .strip_prefix("0x")
        .or_else(|| digits.strip_prefix("0X"))
    {
        u32::from_str_radix(hex, 16).map_err(|e| format!("invalid hex literal `{text}`: {e}"))?
    } else {
        digits
            .parse::<u32>()
            .map_err(|e| format!("invalid integer literal `{text}`: {e}"))?
    };
    Ok(if neg { value.wrapping_neg() } else { value })
}

fn parse_i32(text: &str) -> Result<i32, String> {
    parse_u32(text).map(|v| v as i32)
}

fn parse_reg(text: &str) -> Result<Reg, String> {
    let text = text.trim();
    let digits = text
        .strip_prefix('r')
        .or_else(|| text.strip_prefix('R'))
        .ok_or_else(|| format!("expected register, found `{text}`"))?;
    let index: u32 = digits
        .parse()
        .map_err(|_| format!("invalid register `{text}`"))?;
    Reg::new(index).map_err(|_| format!("register index out of range in `{text}`"))
}

/// Parses `offset(rA)` into `(offset, reg)`.
fn parse_mem_operand(text: &str) -> Result<(i32, Reg), String> {
    let text = text.trim();
    let open = text
        .find('(')
        .ok_or_else(|| format!("expected `offset(rA)`, found `{text}`"))?;
    let close = text
        .rfind(')')
        .ok_or_else(|| format!("missing `)` in `{text}`"))?;
    let offset_text = text[..open].trim();
    let offset = if offset_text.is_empty() {
        0
    } else {
        parse_i32(offset_text)?
    };
    let reg = parse_reg(&text[open + 1..close])?;
    Ok((offset, reg))
}

fn split_operands(rest: &str) -> Vec<String> {
    if rest.trim().is_empty() {
        return Vec::new();
    }
    rest.split(',').map(|p| p.trim().to_string()).collect()
}

fn resolve_target(
    operand: &str,
    address: u32,
    labels: &BTreeMap<String, u32>,
) -> Result<i32, String> {
    if let Ok(value) = parse_i32(operand) {
        return Ok(value);
    }
    let target = labels
        .get(operand)
        .copied()
        .ok_or_else(|| format!("undefined label `{operand}`"))?;
    let delta = i64::from(target) - i64::from(address);
    Ok((delta / i64::from(INSN_BYTES)) as i32)
}

fn parse_instruction(
    stmt: &str,
    line: usize,
    address: u32,
    labels: &BTreeMap<String, u32>,
) -> Result<Insn, IsaError> {
    let perr = |message: String| IsaError::ParseError { line, message };
    let (mnemonic, rest) = stmt.split_once(char::is_whitespace).unwrap_or((stmt, ""));
    let mnemonic = mnemonic.to_ascii_lowercase();
    let ops = split_operands(rest);

    let need = |n: usize| -> Result<(), IsaError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(perr(format!(
                "`{mnemonic}` expects {n} operand(s), found {}",
                ops.len()
            )))
        }
    };
    let reg = |i: usize| parse_reg(&ops[i]).map_err(&perr);
    let imm = |i: usize| parse_i32(&ops[i]).map_err(&perr);

    // Register-register ALU instructions share the `rD, rA, rB` shape.
    let rrr: Option<fn(Reg, Reg, Reg) -> Insn> = match mnemonic.as_str() {
        "l.add" => Some(Insn::add),
        "l.addc" => Some(Insn::addc),
        "l.sub" => Some(Insn::sub),
        "l.and" => Some(Insn::and),
        "l.or" => Some(Insn::or),
        "l.xor" => Some(Insn::xor),
        "l.mul" => Some(Insn::mul),
        "l.mulu" => Some(Insn::mulu),
        "l.sll" => Some(Insn::sll),
        "l.srl" => Some(Insn::srl),
        "l.sra" => Some(Insn::sra),
        "l.ror" => Some(Insn::ror),
        "l.cmov" => Some(Insn::cmov),
        _ => None,
    };
    if let Some(ctor) = rrr {
        need(3)?;
        return Ok(ctor(reg(0)?, reg(1)?, reg(2)?));
    }

    // Immediate ALU instructions share the `rD, rA, imm` shape.
    match mnemonic.as_str() {
        "l.addi" => {
            need(3)?;
            return Insn::addi(reg(0)?, reg(1)?, imm(2)?);
        }
        "l.addic" => {
            need(3)?;
            return Insn::addic(reg(0)?, reg(1)?, imm(2)?);
        }
        "l.andi" => {
            need(3)?;
            return Insn::andi(reg(0)?, reg(1)?, imm(2)? as u32);
        }
        "l.ori" => {
            need(3)?;
            return Insn::ori(reg(0)?, reg(1)?, imm(2)? as u32);
        }
        "l.xori" => {
            need(3)?;
            return Insn::xori(reg(0)?, reg(1)?, imm(2)?);
        }
        "l.muli" => {
            need(3)?;
            return Insn::muli(reg(0)?, reg(1)?, imm(2)?);
        }
        "l.slli" => {
            need(3)?;
            return Insn::slli(reg(0)?, reg(1)?, imm(2)? as u32);
        }
        "l.srli" => {
            need(3)?;
            return Insn::srli(reg(0)?, reg(1)?, imm(2)? as u32);
        }
        "l.srai" => {
            need(3)?;
            return Insn::srai(reg(0)?, reg(1)?, imm(2)? as u32);
        }
        "l.rori" => {
            need(3)?;
            return Insn::rori(reg(0)?, reg(1)?, imm(2)? as u32);
        }
        "l.movhi" => {
            need(2)?;
            return Insn::movhi(reg(0)?, imm(1)? as u32 & 0xFFFF);
        }
        "l.extbs" => {
            need(2)?;
            return Ok(Insn::extbs(reg(0)?, reg(1)?));
        }
        "l.exths" => {
            need(2)?;
            return Ok(Insn::exths(reg(0)?, reg(1)?));
        }
        "l.nop" => {
            let k = if ops.is_empty() { 0 } else { imm(0)? };
            return Ok(Insn::nop(k as u16));
        }
        "l.rfe" => {
            need(0)?;
            return Ok(Insn::rfe());
        }
        "l.jr" => {
            need(1)?;
            return Ok(Insn::jr(reg(0)?));
        }
        "l.jalr" => {
            need(1)?;
            return Ok(Insn::jalr(reg(0)?));
        }
        _ => {}
    }

    // Set-flag comparisons: l.sf<cond>[i].
    if let Some(suffix) = mnemonic.strip_prefix("l.sf") {
        let (cond_text, is_imm) = match suffix.strip_suffix('i') {
            // `l.sfnei` ends with `i`; but plain `l.sfgeui` also ends in `i`
            // after stripping we must still find a valid condition.
            Some(stripped) if SetFlagCond::ALL.iter().any(|c| c.suffix() == stripped) => {
                (stripped, true)
            }
            _ => (suffix, false),
        };
        let cond = SetFlagCond::ALL
            .into_iter()
            .find(|c| c.suffix() == cond_text)
            .ok_or_else(|| perr(format!("unknown set-flag condition in `{mnemonic}`")))?;
        need(2)?;
        return if is_imm {
            Insn::sfi(cond, reg(0)?, imm(1)?)
        } else {
            Ok(Insn::sf(cond, reg(0)?, parse_reg(&ops[1]).map_err(&perr)?))
        };
    }

    // Loads: `rD, offset(rA)`.
    type LoadCtor = fn(Reg, i32, Reg) -> Result<Insn, IsaError>;
    let load: Option<LoadCtor> = match mnemonic.as_str() {
        "l.lwz" => Some(Insn::lwz),
        "l.lws" => Some(Insn::lws),
        "l.lhz" => Some(Insn::lhz),
        "l.lhs" => Some(Insn::lhs),
        "l.lbz" => Some(Insn::lbz),
        "l.lbs" => Some(Insn::lbs),
        _ => None,
    };
    if let Some(ctor) = load {
        need(2)?;
        let (offset, ra) = parse_mem_operand(&ops[1]).map_err(&perr)?;
        return ctor(reg(0)?, offset, ra);
    }

    // Stores: `offset(rA), rB`.
    type StoreCtor = fn(i32, Reg, Reg) -> Result<Insn, IsaError>;
    let store: Option<StoreCtor> = match mnemonic.as_str() {
        "l.sw" => Some(Insn::sw),
        "l.sh" => Some(Insn::sh),
        "l.sb" => Some(Insn::sb),
        _ => None,
    };
    if let Some(ctor) = store {
        need(2)?;
        let (offset, ra) = parse_mem_operand(&ops[0]).map_err(&perr)?;
        return ctor(offset, ra, parse_reg(&ops[1]).map_err(&perr)?);
    }

    // PC-relative control flow: operand is a label or a word offset.
    let jump: Option<fn(i32) -> Result<Insn, IsaError>> = match mnemonic.as_str() {
        "l.j" => Some(Insn::j),
        "l.jal" => Some(Insn::jal),
        "l.bf" => Some(Insn::bf),
        "l.bnf" => Some(Insn::bnf),
        _ => None,
    };
    if let Some(ctor) = jump {
        need(1)?;
        let offset = resolve_target(&ops[0], address, labels).map_err(&perr)?;
        return ctor(offset);
    }

    Err(perr(format!("unknown mnemonic `{mnemonic}`")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Opcode, TimingClass};

    #[test]
    fn assembles_loop_with_labels() {
        let program = Assembler::new()
            .with_name("loop")
            .assemble(
                r#"
                # simple countdown
                    l.addi  r3, r0, 10
                top:
                    l.addi  r3, r3, -1
                    l.sfne  r3, r0
                    l.bf    top
                    l.nop   0
                "#,
            )
            .unwrap();
        assert_eq!(program.len(), 5);
        assert_eq!(program.name(), "loop");
        assert_eq!(program.symbol("top"), Some(4));
        // The branch is at address 12, targeting address 4 → offset -2 words.
        assert_eq!(program.insns()[3].imm(), Some(-2));
    }

    #[test]
    fn label_on_same_line_as_instruction() {
        let program = Assembler::new()
            .assemble("start: l.nop 0\n l.j start\n l.nop 0\n")
            .unwrap();
        assert_eq!(program.symbol("start"), Some(0));
        assert_eq!(program.insns()[1].imm(), Some(-1));
    }

    #[test]
    fn rejects_duplicate_labels() {
        let err = Assembler::new()
            .assemble("a:\n l.nop 0\na:\n l.nop 0\n")
            .unwrap_err();
        assert_eq!(err, IsaError::DuplicateLabel { label: "a".into() });
    }

    #[test]
    fn rejects_undefined_labels() {
        let err = Assembler::new().assemble("l.j nowhere\n").unwrap_err();
        match err {
            IsaError::ParseError { message, .. } => assert!(message.contains("nowhere")),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn rejects_unknown_mnemonics() {
        let err = Assembler::new()
            .assemble("l.frobnicate r1, r2\n")
            .unwrap_err();
        match err {
            IsaError::ParseError { message, .. } => assert!(message.contains("frobnicate")),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn parses_memory_operands() {
        let program = Assembler::new()
            .assemble("l.lwz r3, -8(r1)\n l.sw 12(r2), r3\n l.lbz r4, (r5)\n")
            .unwrap();
        assert_eq!(program.insns()[0].imm(), Some(-8));
        assert_eq!(program.insns()[1].imm(), Some(12));
        assert_eq!(program.insns()[1].ra(), Some(Reg::r(2)));
        assert_eq!(program.insns()[2].imm(), Some(0));
    }

    #[test]
    fn parses_all_set_flag_forms() {
        let program = Assembler::new()
            .assemble("l.sfeq r1, r2\n l.sfgtu r1, r2\n l.sfnei r1, 0\n l.sflesi r1, -3\n")
            .unwrap();
        assert_eq!(program.insns()[0].opcode(), Opcode::Sf(SetFlagCond::Eq));
        assert_eq!(program.insns()[1].opcode(), Opcode::Sf(SetFlagCond::Gtu));
        assert_eq!(program.insns()[2].opcode(), Opcode::Sfi(SetFlagCond::Ne));
        assert_eq!(program.insns()[3].opcode(), Opcode::Sfi(SetFlagCond::Les));
        assert_eq!(program.insns()[3].imm(), Some(-3));
    }

    #[test]
    fn data_directives_emit_words() {
        let program = Assembler::new()
            .assemble(".data 0x100\n.word 1, 2, 0xff\n l.nop 0\n")
            .unwrap();
        assert_eq!(program.data(), &[(0x100, 1), (0x104, 2), (0x108, 0xff)]);
        assert_eq!(program.len(), 1);
    }

    #[test]
    fn hex_and_negative_literals() {
        let program = Assembler::new()
            .assemble("l.addi r3, r0, -0x10\n l.ori r4, r0, 0xABCD\n")
            .unwrap();
        assert_eq!(program.insns()[0].imm(), Some(-16));
        assert_eq!(program.insns()[1].imm(), Some(0xABCD));
    }

    #[test]
    fn every_assembled_insn_reencodes() {
        let program = Assembler::new()
            .assemble(
                "l.movhi r4, 0x1234\n l.ori r4, r4, 0x5678\n l.mul r5, r4, r4\n\
                 l.sw 0(r1), r5\n l.lwz r6, 0(r1)\n l.sfeq r5, r6\n l.bf 2\n l.nop 0\n",
            )
            .unwrap();
        for insn in program.insns() {
            assert_eq!(Insn::decode(insn.encode()).unwrap(), *insn);
        }
        assert_eq!(program.insns()[2].timing_class(), TimingClass::Mul);
    }
}
