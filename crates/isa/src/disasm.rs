//! Disassembly of instructions and program images into OpenRISC assembly
//! syntax, mainly used for traces, debugging and the paper-style reports.

use crate::{Insn, Opcode, Program};

/// Formats a single instruction using OpenRISC assembly syntax.
///
/// Branch and jump targets are rendered as relative word offsets
/// (e.g. `l.bf -3`); use [`disassemble_program`] to render resolved byte
/// addresses instead.
///
/// # Example
///
/// ```
/// use idca_isa::{disasm, Insn, Reg};
///
/// let text = disasm::format_insn(&Insn::add(Reg::r(3), Reg::r(4), Reg::r(5)));
/// assert_eq!(text, "l.add r3, r4, r5");
/// ```
#[must_use]
pub fn format_insn(insn: &Insn) -> String {
    let m = insn.opcode().mnemonic();
    let rd = insn.rd();
    let ra = insn.ra();
    let rb = insn.rb();
    let imm = insn.imm();
    match insn.opcode() {
        Opcode::Nop => format!("{m} {}", imm.unwrap_or(0)),
        Opcode::Movhi => format!(
            "{m} {}, {:#x}",
            rd.unwrap(),
            imm.unwrap_or(0) as u32 & 0xFFFF
        ),
        Opcode::J | Opcode::Jal | Opcode::Bf | Opcode::Bnf => {
            format!("{m} {}", imm.unwrap_or(0))
        }
        Opcode::Jr | Opcode::Jalr => format!("{m} {}", rb.unwrap()),
        Opcode::Lwz | Opcode::Lws | Opcode::Lhz | Opcode::Lhs | Opcode::Lbz | Opcode::Lbs => {
            format!("{m} {}, {}({})", rd.unwrap(), imm.unwrap_or(0), ra.unwrap())
        }
        Opcode::Sw | Opcode::Sh | Opcode::Sb => {
            format!("{m} {}({}), {}", imm.unwrap_or(0), ra.unwrap(), rb.unwrap())
        }
        Opcode::Rfe => m,
        Opcode::Sf(_) => format!("{m} {}, {}", ra.unwrap(), rb.unwrap()),
        Opcode::Sfi(_) => format!("{m} {}, {}", ra.unwrap(), imm.unwrap_or(0)),
        Opcode::Extbs | Opcode::Exths => format!("{m} {}, {}", rd.unwrap(), ra.unwrap()),
        Opcode::Slli | Opcode::Srli | Opcode::Srai | Opcode::Rori => {
            format!("{m} {}, {}, {}", rd.unwrap(), ra.unwrap(), imm.unwrap_or(0))
        }
        _ => {
            // Remaining formats: rD, rA, rB or rD, rA, imm.
            if let Some(rb) = rb {
                format!("{m} {}, {}, {}", rd.unwrap(), ra.unwrap(), rb)
            } else {
                format!("{m} {}, {}, {}", rd.unwrap(), ra.unwrap(), imm.unwrap_or(0))
            }
        }
    }
}

/// A single line of a disassembled program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DisasmLine {
    /// Byte address of the instruction.
    pub address: u32,
    /// Raw 32-bit encoding.
    pub word: u32,
    /// Formatted assembly text.
    pub text: String,
}

/// Disassembles a whole [`Program`], resolving branch/jump targets to byte
/// addresses where possible.
#[must_use]
pub fn disassemble_program(program: &Program) -> Vec<DisasmLine> {
    program
        .insns()
        .iter()
        .enumerate()
        .map(|(i, insn)| {
            let address = program.base_address() + (i as u32) * crate::INSN_BYTES;
            let mut text = format_insn(insn);
            if insn.opcode().is_control_flow() {
                if let Some(offset) = insn.imm() {
                    let target = address.wrapping_add((offset as u32).wrapping_mul(4));
                    text = format!("{text}    # -> {target:#06x}");
                }
            }
            DisasmLine {
                address,
                word: insn.encode(),
                text,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ProgramBuilder, Reg};

    #[test]
    fn formats_all_operand_shapes() {
        assert_eq!(format_insn(&Insn::nop(3)), "l.nop 3");
        assert_eq!(
            format_insn(&Insn::movhi(Reg::r(4), 0x1000).unwrap()),
            "l.movhi r4, 0x1000"
        );
        assert_eq!(format_insn(&Insn::j(-2).unwrap()), "l.j -2");
        assert_eq!(format_insn(&Insn::jr(Reg::r(9))), "l.jr r9");
        assert_eq!(
            format_insn(&Insn::sw(4, Reg::r(1), Reg::r(3)).unwrap()),
            "l.sw 4(r1), r3"
        );
        assert_eq!(
            format_insn(&Insn::sfi(crate::SetFlagCond::Ne, Reg::r(3), 0).unwrap()),
            "l.sfnei r3, 0"
        );
        assert_eq!(
            format_insn(&Insn::slli(Reg::r(2), Reg::r(3), 4).unwrap()),
            "l.slli r2, r3, 4"
        );
        assert_eq!(
            format_insn(&Insn::extbs(Reg::r(2), Reg::r(3))),
            "l.extbs r2, r3"
        );
    }

    #[test]
    fn program_disassembly_resolves_targets() {
        let mut builder = ProgramBuilder::new();
        builder.push(Insn::addi(Reg::r(3), Reg::r(0), 1).unwrap());
        builder.push(Insn::bf(-1).unwrap());
        builder.push(Insn::nop(0));
        let program = builder.build();
        let lines = disassemble_program(&program);
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].address, 0);
        assert_eq!(lines[1].address, 4);
        assert!(lines[1].text.contains("-> 0x0000"));
    }
}
