//! # idca-isa — OpenRISC ORBIS32 subset ISA
//!
//! This crate models the subset of the OpenRISC 1000 (ORBIS32) instruction
//! set that the DATE 2015 paper *"Exploiting dynamic timing margins in
//! microprocessors for frequency-over-scaling with instruction-based clock
//! adjustment"* exercises on its customized `mor1kx cappuccino` core:
//! integer arithmetic and logic, shifts, single-cycle multiplication,
//! set-flag comparisons, conditional branches, jumps, loads/stores and
//! `l.nop`/`l.movhi`.
//!
//! The crate provides:
//!
//! * [`Opcode`] / [`Insn`] — decoded instruction representation with
//!   faithful 32-bit ORBIS32 encodings ([`Insn::encode`] / [`Insn::decode`]).
//! * [`TimingClass`] — the instruction grouping used as the key of the
//!   per-stage delay lookup table of the paper (e.g. `l.add` and `l.addi`
//!   share the `Add` class, exactly like the paper's "l.add(i)" rows).
//! * [`asm::Assembler`] — a two-pass textual assembler with labels, used by
//!   the workload crate to express benchmark kernels.
//! * [`ProgramBuilder`] / [`Program`] — a programmatic builder and the
//!   resulting program image consumed by the pipeline simulator.
//!
//! # Example
//!
//! ```
//! use idca_isa::{asm::Assembler, Opcode};
//!
//! # fn main() -> Result<(), idca_isa::IsaError> {
//! let program = Assembler::new().assemble(
//!     r#"
//!         l.addi  r3, r0, 10
//!     loop:
//!         l.addi  r3, r3, -1
//!         l.sfne  r3, r0
//!         l.bf    loop
//!         l.nop   0
//!         l.nop   0
//!     "#,
//! )?;
//! assert_eq!(program.insns()[0].opcode(), Opcode::Addi);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod disasm;
mod error;
mod insn;
mod opcode;
mod program;
mod reg;

pub use error::IsaError;
pub use insn::{Insn, Operands};
pub use opcode::{ExecUnit, Opcode, SetFlagCond, TimingClass};
pub use program::{Program, ProgramBuilder};
pub use reg::Reg;

/// Number of architectural general-purpose registers in ORBIS32.
pub const NUM_GPRS: usize = 32;

/// Size of one instruction word in bytes.
pub const INSN_BYTES: u32 = 4;
