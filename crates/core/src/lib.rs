//! # idca-core — instruction-based dynamic clock adjustment
//!
//! This crate implements the contribution of the DATE 2015 paper
//! *"Exploiting dynamic timing margins in microprocessors for
//! frequency-over-scaling with instruction-based clock adjustment"*
//! (Constantin, Wang, Karakonstantis, Chattopadhyay, Burg):
//!
//! * [`DelayLut`] — the per-instruction, per-pipeline-stage delay prediction
//!   lookup table, built either from a dynamic-timing-analysis
//!   characterization run ([`DelayLut::from_dta`], the paper's flow) or from
//!   the analytic worst-case profile ([`DelayLut::from_model`]).
//! * [`ClockGenerator`] — the tunable clock-generator model (ideal,
//!   quantized-step or discrete-level), whose output period is adjusted on a
//!   cycle-by-cycle basis.
//! * Clock-adjustment [`policy`] implementations: conventional synchronous
//!   clocking ([`StaticClock`]), the paper's predictive instruction-based
//!   adjustment ([`InstructionBased`]), the simplified execute-stage-only
//!   monitor discussed in §IV-A ([`ExecuteOnly`]) and the genie-aided oracle
//!   upper bound ([`GenieOracle`]).
//! * [`run_with_policy`] — the dynamic-clock simulation driver: replays a
//!   pipeline trace under a policy, accumulates execution time, checks the
//!   *no-timing-violation* invariant against the actual dynamic delays and
//!   reports the effective clock frequency. [`replay_digest`] and
//!   [`replay_digest_banked`] drive the same accumulation from a captured
//!   [`TimingDigest`](idca_pipeline::TimingDigest) — the latter against
//!   `M` corner-varied models in a single digest walk.
//! * [`adaptive`] — the paper's online-updating outlook: a streaming
//!   [`AdaptiveObserver`] that learns the delay table in the field, and
//!   the corner-batched [`AdaptiveBank`] that trains `M` such controllers
//!   at once in structure-of-arrays folds.
//! * [`eval`] — speedup comparisons between policies and suite-level
//!   aggregation (Fig. 8 of the paper).
//! * [`vfs`] — voltage-frequency scaling: converts the frequency gain into a
//!   supply-voltage reduction at iso-throughput and reports the energy
//!   efficiency improvement (the paper's 24 % / 13.7 → 11.0 µW/MHz result).
//!
//! # Example
//!
//! ```
//! use idca_core::{policy::{InstructionBased, StaticClock}, run_with_policy, ClockGenerator, DelayLut};
//! use idca_isa::asm::Assembler;
//! use idca_pipeline::{SimConfig, Simulator};
//! use idca_timing::{ProfileKind, TimingModel};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = Assembler::new().assemble(
//!     "l.addi r3, r0, 50\nloop: l.addi r3, r3, -1\n l.sfne r3, r0\n l.bf loop\n l.nop 0\n l.nop 1\n",
//! )?;
//! let trace = Simulator::new(SimConfig::default()).run(&program)?.trace;
//! let model = TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized);
//! let lut = DelayLut::from_model(&model);
//!
//! let baseline = run_with_policy(&model, &trace, &StaticClock::of_model(&model), &ClockGenerator::Ideal);
//! let dynamic = run_with_policy(&model, &trace, &InstructionBased::new(lut), &ClockGenerator::Ideal);
//! assert!(dynamic.effective_frequency_mhz > baseline.effective_frequency_mhz);
//! assert_eq!(dynamic.violations, 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
mod clockgen;
mod error;
pub mod eval;
mod lut;
pub mod policy;
pub mod policy_bank;
mod sim;
pub mod vfs;

pub use adaptive::{
    replay_adaptive_digest, replay_adaptive_digest_banked, run_adaptive, AdaptiveBank,
    AdaptiveConfig, AdaptiveObserver, AdaptiveOutcome, Drift,
};
pub use clockgen::ClockGenerator;
pub use error::{CoreError, LutFormatError};
pub use lut::{DelayLut, LutSource, Table2Row};
pub use policy::{ClockPolicy, ExecuteOnly, GenieOracle, InstructionBased, StaticClock};
pub use policy_bank::PolicyBank;
pub use sim::{replay_digest, replay_digest_banked, run_with_policy, PolicyObserver, RunOutcome};
