//! Clock-adjustment policies.
//!
//! A [`ClockPolicy`] decides, for every cycle of a pipeline trace, the clock
//! period it *requests* from the clock generator. Four policies are
//! provided, matching the comparison points of the paper's evaluation:
//!
//! | Policy | Paper reference |
//! |---|---|
//! | [`StaticClock`] | conventional synchronous clocking at the STA limit |
//! | [`InstructionBased`] | the proposed predictive instruction-based adjustment (Fig. 1) |
//! | [`ExecuteOnly`] | the simplified controller of §IV-A that monitors only the execute stage |
//! | [`GenieOracle`] | the genie-aided per-cycle adjustment used as the 50 % upper bound |

use crate::DelayLut;
use idca_isa::TimingClass;
use idca_pipeline::{CycleRecord, DigestCycle, Stage};
use idca_timing::{Ps, TimingModel};

/// A per-cycle clock-period decision rule.
///
/// Policies are deliberately *predictive*: they may only use information
/// that the hardware controller of Fig. 1 would have (the instruction types
/// currently in flight), except for [`GenieOracle`] which deliberately peeks
/// at the exact dynamic delays to establish the upper bound.
///
/// Policies are immutable decision tables, so the trait requires [`Sync`]:
/// the parallel suite runner shares one policy across worker threads.
pub trait ClockPolicy: Sync {
    /// Short human-readable name used in reports.
    fn name(&self) -> &str;

    /// The clock period requested for this cycle, in picoseconds.
    fn period_ps(&self, record: &CycleRecord) -> Ps;

    /// The clock period requested for one *digested* cycle — the
    /// simulate-once / evaluate-many counterpart of
    /// [`ClockPolicy::period_ps`]. The digest carries exactly the
    /// information the hardware controller of Fig. 1 sees (the instruction
    /// classes in flight), so every policy must decide identically from it;
    /// the bit-identity of both paths is pinned by the digest-equivalence
    /// property tests.
    fn digest_period_ps(&self, cycle: u64, digest_cycle: &DigestCycle) -> Ps;
}

/// Conventional synchronous clocking: every cycle uses the static-timing
/// -analysis period.
#[derive(Debug, Clone, PartialEq)]
pub struct StaticClock {
    period_ps: Ps,
}

impl StaticClock {
    /// Creates a static clock with an explicit period.
    #[must_use]
    pub fn new(period_ps: Ps) -> Self {
        StaticClock { period_ps }
    }

    /// Creates a static clock at the STA limit of a timing model.
    #[must_use]
    pub fn of_model(model: &TimingModel) -> Self {
        StaticClock {
            period_ps: model.static_period_ps(),
        }
    }

    /// The configured period.
    #[must_use]
    pub fn period(&self) -> Ps {
        self.period_ps
    }
}

impl ClockPolicy for StaticClock {
    fn name(&self) -> &str {
        "static"
    }

    fn period_ps(&self, _record: &CycleRecord) -> Ps {
        self.period_ps
    }

    fn digest_period_ps(&self, _cycle: u64, _digest_cycle: &DigestCycle) -> Ps {
        self.period_ps
    }
}

/// The paper's contribution: the controller monitors the instruction class
/// in every pipeline stage and requests the maximum of the corresponding
/// delay-LUT entries (equation (2) at instruction-type granularity).
#[derive(Debug, Clone, PartialEq)]
pub struct InstructionBased {
    lut: DelayLut,
}

impl InstructionBased {
    /// Creates the policy from a delay LUT.
    #[must_use]
    pub fn new(lut: DelayLut) -> Self {
        InstructionBased { lut }
    }

    /// Creates the policy from the analytic worst-case LUT of a model.
    #[must_use]
    pub fn from_model(model: &TimingModel) -> Self {
        InstructionBased {
            lut: DelayLut::from_model(model),
        }
    }

    /// The LUT driving the policy.
    #[must_use]
    pub fn lut(&self) -> &DelayLut {
        &self.lut
    }
}

impl ClockPolicy for InstructionBased {
    fn name(&self) -> &str {
        "instruction-based"
    }

    fn period_ps(&self, record: &CycleRecord) -> Ps {
        let mut classes = [TimingClass::Bubble; Stage::COUNT];
        for stage in Stage::ALL {
            classes[stage.index()] = record.timing_class(stage);
        }
        self.lut.period_for(&classes)
    }

    fn digest_period_ps(&self, _cycle: u64, digest_cycle: &DigestCycle) -> Ps {
        self.lut.period_for(&digest_cycle.classes)
    }
}

/// The simplified controller discussed in §IV-A of the paper: because the
/// execute stage owns the limiting path in ~93 % of cycles, the controller
/// only monitors the execute-stage instruction and guards the remaining
/// stages with a single fixed bound (the worst address-stage entry, i.e.
/// the instruction-memory address timing that must always be respected).
#[derive(Debug, Clone, PartialEq)]
pub struct ExecuteOnly {
    lut: DelayLut,
    guard_ps: Ps,
}

impl ExecuteOnly {
    /// Creates the policy from a delay LUT. The guard is the worst
    /// *characterized* entry of every stage other than execute (for
    /// characterization LUTs, never-observed classes — which fall back to
    /// the static period — are excluded, otherwise the guard would disable
    /// the adjustment entirely).
    #[must_use]
    pub fn new(lut: DelayLut) -> Self {
        let guard_ps = Stage::ALL
            .iter()
            .filter(|s| **s != Stage::Execute)
            .map(|s| lut.stage_worst_characterized_ps(*s))
            .fold(0.0, Ps::max);
        ExecuteOnly { lut, guard_ps }
    }

    /// The fixed guard period covering the unmonitored stages.
    #[must_use]
    pub fn guard_ps(&self) -> Ps {
        self.guard_ps
    }
}

impl ClockPolicy for ExecuteOnly {
    fn name(&self) -> &str {
        "execute-only"
    }

    fn period_ps(&self, record: &CycleRecord) -> Ps {
        let class = record.timing_class(Stage::Execute);
        self.lut.delay_ps(Stage::Execute, class).max(self.guard_ps)
    }

    fn digest_period_ps(&self, _cycle: u64, digest_cycle: &DigestCycle) -> Ps {
        let class = digest_cycle.classes[Stage::Execute.index()];
        self.lut.delay_ps(Stage::Execute, class).max(self.guard_ps)
    }
}

/// Genie-aided clock adjustment: the clock period of every cycle equals the
/// exact dynamic delay of that cycle (a-posteriori knowledge). This is the
/// theoretical upper bound of §IV-A (≈ 50 % speedup) — unrealizable in
/// hardware but the yardstick the 38 % instruction-based gain is compared
/// against.
#[derive(Debug, Clone, PartialEq)]
pub struct GenieOracle {
    model: TimingModel,
}

impl GenieOracle {
    /// Creates the oracle for a given timing model.
    #[must_use]
    pub fn new(model: TimingModel) -> Self {
        GenieOracle { model }
    }
}

impl ClockPolicy for GenieOracle {
    fn name(&self) -> &str {
        "genie-oracle"
    }

    fn period_ps(&self, record: &CycleRecord) -> Ps {
        self.model.cycle_timing(record).max_delay_ps
    }

    fn digest_period_ps(&self, cycle: u64, digest_cycle: &DigestCycle) -> Ps {
        self.model
            .digest_cycle_timing(cycle, digest_cycle)
            .max_delay_ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idca_isa::asm::Assembler;
    use idca_pipeline::{PipelineTrace, SimConfig, Simulator};
    use idca_timing::ProfileKind;

    fn trace(src: &str) -> PipelineTrace {
        let program = Assembler::new().assemble(src).unwrap();
        Simulator::new(SimConfig::default())
            .run(&program)
            .unwrap()
            .trace
    }

    fn model() -> TimingModel {
        TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized)
    }

    #[test]
    fn static_policy_is_constant() {
        let m = model();
        let policy = StaticClock::of_model(&m);
        let t = trace("l.addi r3, r0, 1\n l.mul r4, r3, r3\n l.nop 1\n");
        for record in t.cycles() {
            assert_eq!(policy.period_ps(record), m.static_period_ps());
        }
        assert_eq!(policy.name(), "static");
    }

    #[test]
    fn instruction_based_requests_longer_periods_for_multiplies() {
        let m = model();
        let policy = InstructionBased::from_model(&m);
        let t = trace(
            "l.addi r3, r0, 7\n l.nop 0\n l.nop 0\n l.nop 0\n l.mul r4, r3, r3\n\
                       l.nop 0\n l.nop 0\n l.nop 0\n l.nop 1\n",
        );
        let mut mul_period = 0.0f64;
        let mut nop_period = f64::MAX;
        for record in t.cycles() {
            let p = policy.period_ps(record);
            match record.timing_class(Stage::Execute) {
                TimingClass::Mul => mul_period = p,
                TimingClass::Nop => nop_period = nop_period.min(p),
                _ => {}
            }
        }
        assert!(mul_period >= m.worst_case_ps(Stage::Execute, TimingClass::Mul));
        assert!(nop_period < mul_period);
    }

    #[test]
    fn instruction_based_period_covers_every_stage() {
        let m = model();
        let policy = InstructionBased::from_model(&m);
        let t = trace(
            "l.addi r3, r0, 10\nloop: l.addi r3, r3, -1\n l.sfne r3, r0\n l.bf loop\n l.nop 0\n l.nop 1\n",
        );
        for record in t.cycles() {
            let p = policy.period_ps(record);
            for stage in Stage::ALL {
                let entry = policy.lut().delay_ps(stage, record.timing_class(stage));
                assert!(p >= entry, "period must cover stage {stage}");
            }
        }
    }

    #[test]
    fn execute_only_never_requests_less_than_its_guard() {
        let m = model();
        let policy = ExecuteOnly::new(DelayLut::from_model(&m));
        assert!(policy.guard_ps() >= 1172.0);
        let t = trace("l.nop 0\n l.nop 0\n l.nop 0\n l.nop 1\n");
        for record in t.cycles() {
            assert!(policy.period_ps(record) >= policy.guard_ps());
        }
    }

    #[test]
    fn genie_oracle_matches_model_cycle_timing() {
        let m = model();
        let policy = GenieOracle::new(m.clone());
        let t = trace("l.addi r3, r0, 3\n l.mul r4, r3, r3\n l.nop 1\n");
        for record in t.cycles() {
            assert_eq!(
                policy.period_ps(record),
                m.cycle_timing(record).max_delay_ps
            );
        }
    }

    #[test]
    fn policy_ordering_genie_fastest_static_slowest() {
        let m = model();
        let t = trace(
            "l.addi r1, r0, 0x80\n l.addi r3, r0, 30\nloop: l.add r4, r4, r3\n l.sw 0(r1), r4\n\
             l.lwz r5, 0(r1)\n l.addi r3, r3, -1\n l.sfne r3, r0\n l.bf loop\n l.nop 0\n l.nop 1\n",
        );
        let genie = GenieOracle::new(m.clone());
        let lut_policy = InstructionBased::from_model(&m);
        let fixed = StaticClock::of_model(&m);
        let sum = |p: &dyn ClockPolicy| -> f64 { t.cycles().iter().map(|r| p.period_ps(r)).sum() };
        let genie_total = sum(&genie);
        let lut_total = sum(&lut_policy);
        let static_total = sum(&fixed);
        assert!(genie_total <= lut_total + 1e-6);
        assert!(lut_total < static_total);
    }
}
