//! The dynamic-clock simulation driver.
//!
//! This is the software equivalent of the paper's enhanced cycle-accurate
//! instruction-set simulator: for every cycle it asks a [`ClockPolicy`] for
//! the clock period, passes the request through the [`ClockGenerator`]
//! model, accumulates the resulting execution time and — crucially — checks
//! the *frequency-over-scaling without timing errors* invariant by comparing
//! every realized period against the actual dynamic delay of that cycle.
//!
//! The driver is a streaming accumulator: [`PolicyObserver`] implements
//! [`CycleObserver`] and evaluates each cycle as the pipeline simulator
//! produces it, so several policies can be compared in one simulation pass
//! (see [`crate::eval`]). [`run_with_policy`] replays a materialized
//! [`PipelineTrace`] through the same accumulation.

use crate::{ClockGenerator, ClockPolicy};
use idca_pipeline::{
    CycleObserver, CycleRecord, DigestCycle, IrqPhase, PipelineTrace, RunSummary, TimingDigest,
};
use idca_timing::{
    surged, ActivityObserver, ActivitySummary, CornerBank, CycleTiming, FaultPlan, IrqCursor,
    IrqTimeline, Ps, TimingModel,
};
use serde::{Deserialize, Serialize};

/// Result of replaying one trace under one clocking policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunOutcome {
    /// Name of the policy that produced this outcome.
    pub policy: String,
    /// Number of cycles in the replayed trace.
    pub cycles: u64,
    /// Architecturally retired instructions.
    pub retired: u64,
    /// Total execution time in picoseconds (sum of realized periods).
    pub total_time_ps: f64,
    /// Average realized clock period in picoseconds.
    pub avg_period_ps: Ps,
    /// Shortest realized period.
    pub min_period_ps: Ps,
    /// Longest realized period.
    pub max_period_ps: Ps,
    /// Effective clock frequency in MHz (cycles / total time).
    pub effective_frequency_mhz: f64,
    /// Instructions per second, in millions (throughput metric).
    pub mips: f64,
    /// Cycles in which the realized period was shorter than the actual
    /// dynamic delay — must be zero for a correctly constructed LUT.
    pub violations: u64,
    /// The subset of [`RunOutcome::violations`] that occurred during
    /// exception-entry cycles (the flush-and-redirect window after an
    /// interrupt is accepted, when the entry delay surge is in effect).
    /// Zero for interrupt-free runs.
    #[serde(default)]
    pub entry_violations: u64,
    /// Violating cycles whose overshoot stayed inside the fault plan's
    /// detection window: a Razor-style detect-and-replay pipeline catches
    /// them and re-executes at the replay penalty. Zero without a fault
    /// plan.
    pub recovered_cycles: u64,
    /// Total replay cycles charged for the recovered violations (the fault
    /// plan's per-event penalty times [`RunOutcome::recovered_cycles`]).
    pub replay_penalty_cycles: u64,
    /// Violating cycles whose overshoot escaped the detection window — the
    /// detect-and-replay net misses them, so they are tallied as silent
    /// data-corruption risk instead of being repaired.
    pub silent_risk_cycles: u64,
    /// Effective clock frequency in MHz **after** charging the replay
    /// penalty time for every recovered violation — the
    /// throughput-under-recovery score. Bit-equal to
    /// [`RunOutcome::effective_frequency_mhz`] when nothing was recovered.
    pub recovery_frequency_mhz: f64,
    /// Switching-activity summary of the trace (for the power model).
    pub activity: ActivitySummary,
}

impl RunOutcome {
    /// Speedup of this outcome relative to a baseline outcome
    /// (ratio of effective frequencies; > 1 means faster).
    #[must_use]
    pub fn speedup_over(&self, baseline: &RunOutcome) -> f64 {
        if baseline.effective_frequency_mhz == 0.0 {
            1.0
        } else {
            self.effective_frequency_mhz / baseline.effective_frequency_mhz
        }
    }

    /// [`RunOutcome::speedup_over`] on the recovery-charged frequencies —
    /// the *effective* speedup once every detected violation has paid its
    /// replay penalty. Equals the raw speedup when neither run recovered
    /// anything.
    #[must_use]
    pub fn recovery_speedup_over(&self, baseline: &RunOutcome) -> f64 {
        if baseline.recovery_frequency_mhz == 0.0 {
            1.0
        } else {
            self.recovery_frequency_mhz / baseline.recovery_frequency_mhz
        }
    }
}

/// Streaming dynamic-clock evaluation: a [`CycleObserver`] that applies a
/// [`ClockPolicy`] to every cycle as the pipeline simulator produces it,
/// realizes the requested period through a [`ClockGenerator`], checks the
/// no-timing-violation invariant against `model` and accumulates the
/// switching activity — everything [`run_with_policy`] reports, with no
/// materialized trace.
///
/// Several `PolicyObserver`s can ride on the same
/// [`run_observed`](idca_pipeline::Simulator::run_observed) pass, which is
/// how [`crate::eval::compare_program`] evaluates the static baseline and a
/// dynamic policy with a single simulation of each benchmark.
pub struct PolicyObserver<'a> {
    model: &'a TimingModel,
    policy: &'a dyn ClockPolicy,
    generator: &'a ClockGenerator,
    faults: Option<&'a FaultPlan>,
    irq: Option<IrqCursor<'a>>,
    surge_factor: f64,
    total_time_ps: f64,
    penalty_time_ps: f64,
    min_period_ps: Ps,
    max_period_ps: Ps,
    violations: u64,
    entry_violations: u64,
    recovered_cycles: u64,
    replay_penalty_cycles: u64,
    silent_risk_cycles: u64,
    activity: ActivityObserver,
    outcome: Option<RunOutcome>,
}

impl<'a> PolicyObserver<'a> {
    /// Creates an observer evaluating `policy` through `generator` against
    /// the dynamic delays of `model`.
    #[must_use]
    pub fn new(
        model: &'a TimingModel,
        policy: &'a dyn ClockPolicy,
        generator: &'a ClockGenerator,
    ) -> Self {
        PolicyObserver {
            model,
            policy,
            generator,
            faults: None,
            irq: None,
            surge_factor: 1.0,
            total_time_ps: 0.0,
            penalty_time_ps: 0.0,
            min_period_ps: Ps::INFINITY,
            max_period_ps: 0.0,
            violations: 0,
            entry_violations: 0,
            recovered_cycles: 0,
            replay_penalty_cycles: 0,
            silent_risk_cycles: 0,
            activity: ActivityObserver::new(),
            outcome: None,
        }
    }

    /// Attaches a [`FaultPlan`]: the cycle-computing entry points
    /// ([`CycleObserver::observe_cycle`], [`PolicyObserver::observe_digest`])
    /// perturb each cycle's timing through the plan, and every violation is
    /// classified through the plan's recovery model — detected-and-replayed
    /// (inside the detection window, at the configured penalty) or silent
    /// corruption risk. The prepared entry points
    /// ([`PolicyObserver::observe_digest_timed`] and friends) expect the
    /// *caller* to have applied [`FaultPlan::faulted`] already; the plan
    /// then only drives the recovery accounting.
    #[must_use]
    pub fn with_faults(mut self, faults: &'a FaultPlan) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Attaches the interrupt scenario: `surge_factor` (`1 + surge`, so
    /// `1.0` = no surge) scales every stage delay during exception-entry
    /// cycles, and violations on those cycles are additionally tallied as
    /// [`RunOutcome::entry_violations`].
    ///
    /// The phase source differs per path: the **live** path
    /// ([`CycleObserver::observe_cycle`]) reads each record's
    /// `irq_phase` directly — pass `None` for `timeline`. The **replay**
    /// paths ([`PolicyObserver::observe_digest`] and friends) rebuild the
    /// phases from the digest event stream — pass the run's
    /// [`IrqTimeline`]. Both classify exactly the same cycles as entry
    /// cycles (pinned by the interrupt differential tests).
    ///
    /// Like faults, the surge convention splits by entry point: the
    /// cycle-computing entry points apply the surge themselves (after the
    /// fault perturbation — the canonical composition order), while the
    /// prepared entry points expect the caller to have applied
    /// [`surged`] / [`CycleLanes::apply_surge`](idca_timing::CycleLanes::apply_surge)
    /// already.
    #[must_use]
    pub fn with_interrupts(mut self, timeline: Option<&'a IrqTimeline>, surge_factor: f64) -> Self {
        self.irq = timeline.map(IrqTimeline::cursor);
        self.surge_factor = surge_factor;
        self
    }

    /// Whether `cycle` is an exception-entry cycle according to the
    /// attached replay timeline (`false` when none is attached).
    fn entry_at(&mut self, cycle: u64) -> bool {
        self.irq
            .as_mut()
            .is_some_and(|cursor| cursor.phase(cycle) == IrqPhase::Entry)
    }

    /// Consumes the observer and returns the outcome of the run.
    ///
    /// # Panics
    ///
    /// Panics if the simulation never called [`CycleObserver::finish`]
    /// (i.e. the run errored out or the observer was never driven).
    #[must_use]
    pub fn into_outcome(self) -> RunOutcome {
        self.outcome
            .expect("simulation must complete (finish) before taking the outcome")
    }

    /// Evaluates one *digested* cycle — the replay counterpart of
    /// [`CycleObserver::observe_cycle`]: the policy decides from the
    /// digest's classes, the violation check compares against the digest
    /// replay of the model's dynamic delays, and the activity statistics
    /// fold the digest's occupancy bits. Bit-identical to observing the
    /// originating [`CycleRecord`].
    pub fn observe_digest(&mut self, cycle: u64, digest_cycle: &DigestCycle) {
        let entry = self.entry_at(cycle);
        let timing = self.model.digest_cycle_timing(cycle, digest_cycle);
        let timing = match self.faults {
            Some(plan) => plan.faulted(cycle, &timing),
            None => timing,
        };
        let timing = if entry {
            surged(&timing, self.surge_factor)
        } else {
            timing
        };
        let requested = self.policy.digest_period_ps(cycle, digest_cycle);
        self.step(requested, timing.max_delay_ps, entry);
        self.activity.observe_digest(digest_cycle);
    }

    /// [`PolicyObserver::observe_digest`] with the cycle's [`CycleTiming`]
    /// already evaluated, so several observers riding the same replay (the
    /// PVT sweep folds four policies per digest) share one model
    /// evaluation per cycle.
    pub fn observe_digest_timed(
        &mut self,
        cycle: u64,
        digest_cycle: &DigestCycle,
        timing: &CycleTiming,
    ) {
        let entry = self.entry_at(cycle);
        let requested = self.policy.digest_period_ps(cycle, digest_cycle);
        self.step(requested, timing.max_delay_ps, entry);
        self.activity.observe_digest(digest_cycle);
    }

    /// [`PolicyObserver::observe_digest_timed`] with the policy's requested
    /// period also precomputed. The banked sweep walks digests one RLE
    /// run-block at a time; within a block the stage classes are constant,
    /// so the table-driven policies' decisions are too — the caller
    /// evaluates [`ClockPolicy::digest_period_ps`] once per block and feeds
    /// the identical value to every cycle (and, for corner-invariant
    /// policies, every corner) instead of re-deriving it per lane.
    pub fn observe_digest_prepared(
        &mut self,
        requested: Ps,
        digest_cycle: &DigestCycle,
        timing: &CycleTiming,
    ) {
        self.step(requested, timing.max_delay_ps, false);
        self.activity.observe_digest(digest_cycle);
    }

    /// [`PolicyObserver::observe_digest_prepared`] without the
    /// switching-activity fold, for callers that discard
    /// [`RunOutcome::activity`] (the PVT sweep keeps only violations and
    /// frequencies, so folding the same digest's activity once per policy
    /// per corner was pure overhead on the banked path). Every other
    /// outcome field is accumulated identically; the outcome's activity
    /// summary stays at its empty default.
    pub fn observe_timing_prepared(&mut self, requested: Ps, timing: &CycleTiming) {
        self.step(requested, timing.max_delay_ps, false);
    }

    /// [`PolicyObserver::observe_timing_prepared`] with the cycle's
    /// interrupt-entry classification supplied by the caller (the banked
    /// sweep derives it once per cycle from a shared [`IrqCursor`] instead
    /// of attaching one cursor per observer). The caller must also have
    /// applied the entry surge to `timing` on entry cycles.
    pub fn observe_timing_prepared_phased(
        &mut self,
        requested: Ps,
        timing: &CycleTiming,
        entry: bool,
    ) {
        self.step(requested, timing.max_delay_ps, entry);
    }

    /// The per-cycle accumulation shared by the live and the replay paths:
    /// realize the requested period, check the violation invariant against
    /// the actual dynamic delay, accumulate the realized time — and, when a
    /// fault plan is attached, classify each violation as recovered (the
    /// overshoot fits the detection window; a replay penalty is charged) or
    /// as silent corruption risk. `entry` marks exception-entry cycles,
    /// whose violations are additionally tallied as
    /// [`RunOutcome::entry_violations`].
    fn step(&mut self, requested: Ps, actual: Ps, entry: bool) {
        let realized = self.generator.realize(requested);
        if realized + 1e-9 < actual {
            self.violations += 1;
            self.entry_violations += u64::from(entry);
            if let Some(plan) = self.faults {
                let spec = plan.spec();
                if actual <= realized * (1.0 + spec.detect_window) {
                    self.recovered_cycles += 1;
                    self.replay_penalty_cycles += u64::from(spec.replay_penalty);
                    self.penalty_time_ps += realized * f64::from(spec.replay_penalty);
                } else {
                    self.silent_risk_cycles += 1;
                }
            }
        }
        self.total_time_ps += realized;
        self.min_period_ps = self.min_period_ps.min(realized);
        self.max_period_ps = self.max_period_ps.max(realized);
    }
}

impl CycleObserver for PolicyObserver<'_> {
    fn observe_cycle(&mut self, record: &CycleRecord) {
        let entry = record.irq_phase == IrqPhase::Entry;
        let requested = self.policy.period_ps(record);
        let timing = self.model.cycle_timing(record);
        let timing = match self.faults {
            Some(plan) => plan.faulted(record.cycle, &timing),
            None => timing,
        };
        let actual = if entry {
            surged(&timing, self.surge_factor).max_delay_ps
        } else {
            timing.max_delay_ps
        };
        self.step(requested, actual, entry);
        self.activity.observe_cycle(record);
    }

    fn finish(&mut self, summary: &RunSummary) {
        self.activity.finish(summary);
        let cycles = summary.cycles;
        let avg_period_ps = if cycles == 0 {
            0.0
        } else {
            self.total_time_ps / cycles as f64
        };
        let effective_frequency_mhz = if avg_period_ps > 0.0 {
            1.0e6 / avg_period_ps
        } else {
            0.0
        };
        let mips = if self.total_time_ps > 0.0 {
            summary.retired as f64 / (self.total_time_ps * 1e-6)
        } else {
            0.0
        };
        let recovery_period_ps = if cycles == 0 {
            0.0
        } else {
            (self.total_time_ps + self.penalty_time_ps) / cycles as f64
        };
        let recovery_frequency_mhz = if recovery_period_ps > 0.0 {
            1.0e6 / recovery_period_ps
        } else {
            0.0
        };
        self.outcome = Some(RunOutcome {
            policy: self.policy.name().to_string(),
            cycles,
            retired: summary.retired,
            total_time_ps: self.total_time_ps,
            avg_period_ps,
            min_period_ps: if cycles == 0 { 0.0 } else { self.min_period_ps },
            max_period_ps: self.max_period_ps,
            effective_frequency_mhz,
            mips,
            violations: self.violations,
            entry_violations: self.entry_violations,
            recovered_cycles: self.recovered_cycles,
            replay_penalty_cycles: self.replay_penalty_cycles,
            silent_risk_cycles: self.silent_risk_cycles,
            recovery_frequency_mhz,
            activity: self.activity.summary(),
        });
    }
}

/// Replays `trace` under `policy`, realizing every requested period through
/// `generator`, and checks each cycle against the actual dynamic delays of
/// `model`. This drives the same accumulation as [`PolicyObserver`], so a
/// materialized trace and a streaming run produce identical outcomes.
///
/// The returned [`RunOutcome::violations`] counts the cycles whose realized
/// period undercut the true dynamic delay; with a LUT built from the
/// analytic worst-case profile this is zero by construction, and with a
/// characterization-derived LUT it measures how representative the
/// characterization workload was.
#[must_use]
pub fn run_with_policy(
    model: &TimingModel,
    trace: &PipelineTrace,
    policy: &dyn ClockPolicy,
    generator: &ClockGenerator,
) -> RunOutcome {
    let mut observer = PolicyObserver::new(model, policy, generator);
    for record in trace.cycles() {
        observer.observe_cycle(record);
    }
    observer.finish(&RunSummary {
        cycles: trace.cycle_count(),
        retired: trace.retired(),
    });
    observer.into_outcome()
}

/// Replays a [`TimingDigest`] under `policy` — the simulate-once /
/// evaluate-many entry point: one digested simulation can be evaluated
/// against any number of (e.g. PVT-varied) timing models without a
/// simulator in the loop. Drives the same accumulation as
/// [`PolicyObserver`] on the live pass, so the outcome — violations,
/// realized periods, effective frequency, activity — is bit-identical to
/// [`run_with_policy`] on the originating execution.
#[must_use]
pub fn replay_digest(
    model: &TimingModel,
    digest: &TimingDigest,
    policy: &dyn ClockPolicy,
    generator: &ClockGenerator,
) -> RunOutcome {
    let mut observer = PolicyObserver::new(model, policy, generator);
    digest.for_each_cycle(|cycle, dc| observer.observe_digest(cycle, dc));
    observer.finish(&digest.summary());
    observer.into_outcome()
}

/// Replays a [`TimingDigest`] under `policy` against **all** `models` in a
/// single digest walk — the corner-batched counterpart of
/// [`replay_digest`]. The per-cycle dither and excitation blend are
/// computed once and broadcast; the per-corner delay folds run through the
/// [`CornerBank`]'s vectorized lanes. Outcome `i` is bit-identical to
/// `replay_digest(&models[i], digest, policy, generator)` (pinned by the
/// banked-replay property tests), at a fraction of the walk cost.
///
/// # Example
///
/// Capture a digest once, then evaluate one policy against several
/// PVT-varied corners in a single walk:
///
/// ```
/// use idca_core::{policy::InstructionBased, replay_digest_banked, ClockGenerator};
/// use idca_isa::asm::Assembler;
/// use idca_pipeline::{DigestObserver, SimConfig, Simulator};
/// use idca_timing::{ProfileKind, TimingModel, VariationModel};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = Assembler::new().assemble(
///     "l.addi r3, r0, 20\nloop: l.addi r3, r3, -1\n l.sfne r3, r0\n l.bf loop\n l.nop 0\n l.nop 1\n",
/// )?;
/// let mut observer = DigestObserver::new();
/// Simulator::new(SimConfig::default()).run_observed(&program, &mut [&mut observer])?;
/// let digest = observer.into_digest();
///
/// let nominal = TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized);
/// let variation = VariationModel::default();
/// let corners: Vec<TimingModel> = (0..4u32)
///     .map(|i| variation.apply(&nominal, &variation.sample_corner(7, i)))
///     .collect();
/// let policy = InstructionBased::from_model(&nominal);
///
/// let outcomes = replay_digest_banked(&corners, &digest, &policy, &ClockGenerator::Ideal);
/// assert_eq!(outcomes.len(), corners.len());
/// assert!(outcomes.iter().all(|o| o.cycles == digest.cycles()));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn replay_digest_banked(
    models: &[TimingModel],
    digest: &TimingDigest,
    policy: &dyn ClockPolicy,
    generator: &ClockGenerator,
) -> Vec<RunOutcome> {
    let bank = CornerBank::from_models(models);
    let mut pbank = crate::PolicyBank::new(policy.name(), models.len(), generator);
    let mut evaluator = bank.evaluator();
    let mut activity = ActivityObserver::new();
    digest.for_each_run(|start, len, dc| {
        for cycle in start..start + u64::from(len) {
            // The policy sees only the digest, never the model, so its
            // request is corner-invariant: decide once, broadcast to every
            // lane. It may still depend on the cycle index (the genie
            // oracle dithers), so it is re-derived per cycle; the bank
            // skips its realize-and-derive refill whenever the request
            // repeats.
            pbank.begin_block(policy.digest_period_ps(cycle, dc));
            // The evaluated cycle stays in structure-of-arrays form: the
            // bank folds the contiguous max-delay lanes directly.
            pbank.observe_actuals(evaluator.cycle_lanes(cycle, dc).max_lanes());
            // The activity fold reads only the digest cycle —
            // corner-invariant — so one shared fold replaces the
            // per-corner copies.
            activity.observe_digest(dc);
        }
    });
    let summary = digest.summary();
    pbank.finish(&summary);
    activity.finish(&summary);
    let activity = activity.summary();
    let mut outcomes = pbank.into_outcomes();
    for outcome in &mut outcomes {
        outcome.activity = activity;
    }
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{GenieOracle, InstructionBased, StaticClock};
    use crate::DelayLut;
    use idca_isa::asm::Assembler;
    use idca_pipeline::{SimConfig, Simulator};
    use idca_timing::ProfileKind;

    fn trace(src: &str) -> PipelineTrace {
        let program = Assembler::new().assemble(src).unwrap();
        Simulator::new(SimConfig::default())
            .run(&program)
            .unwrap()
            .trace
    }

    fn mixed_trace() -> PipelineTrace {
        trace(
            "        l.addi r1, r0, 0x100
                     l.addi r3, r0, 50
             loop:   l.mul  r5, r3, r3
                     l.sw   0(r1), r5
                     l.lwz  r6, 0(r1)
                     l.add  r4, r4, r6
                     l.xor  r7, r4, r3
                     l.addi r3, r3, -1
                     l.sfne r3, r0
                     l.bf   loop
                     l.nop  0
                     l.nop  1",
        )
    }

    #[test]
    fn static_clock_matches_sta_frequency() {
        let model = TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized);
        let outcome = run_with_policy(
            &model,
            &mixed_trace(),
            &StaticClock::of_model(&model),
            &ClockGenerator::Ideal,
        );
        assert!((outcome.effective_frequency_mhz - 493.6).abs() < 1.0);
        assert_eq!(outcome.violations, 0);
        assert_eq!(outcome.min_period_ps, outcome.max_period_ps);
    }

    #[test]
    fn instruction_based_is_faster_without_violations() {
        let model = TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized);
        let t = mixed_trace();
        let baseline = run_with_policy(
            &model,
            &t,
            &StaticClock::of_model(&model),
            &ClockGenerator::Ideal,
        );
        let dynamic = run_with_policy(
            &model,
            &t,
            &InstructionBased::from_model(&model),
            &ClockGenerator::Ideal,
        );
        assert_eq!(dynamic.violations, 0);
        let speedup = dynamic.speedup_over(&baseline);
        assert!(speedup > 1.15, "speedup {speedup}");
        assert!(dynamic.mips > baseline.mips);
    }

    #[test]
    fn genie_oracle_bounds_the_lut_policy() {
        let model = TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized);
        let t = mixed_trace();
        let lut = run_with_policy(
            &model,
            &t,
            &InstructionBased::from_model(&model),
            &ClockGenerator::Ideal,
        );
        let genie = run_with_policy(
            &model,
            &t,
            &GenieOracle::new(model.clone()),
            &ClockGenerator::Ideal,
        );
        assert!(genie.effective_frequency_mhz >= lut.effective_frequency_mhz);
        assert_eq!(genie.violations, 0);
    }

    #[test]
    fn quantized_generator_reduces_but_preserves_gain() {
        let model = TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized);
        let t = mixed_trace();
        let policy = InstructionBased::from_model(&model);
        let ideal = run_with_policy(&model, &t, &policy, &ClockGenerator::Ideal);
        let quantized = run_with_policy(&model, &t, &policy, &ClockGenerator::quantized_50ps());
        assert!(quantized.effective_frequency_mhz <= ideal.effective_frequency_mhz);
        assert_eq!(quantized.violations, 0);
        let baseline = run_with_policy(
            &model,
            &t,
            &StaticClock::of_model(&model),
            &ClockGenerator::Ideal,
        );
        assert!(quantized.speedup_over(&baseline) > 1.1);
    }

    #[test]
    fn undersized_static_clock_is_flagged_as_violating() {
        let model = TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized);
        let t = mixed_trace();
        // Clock the core at half the static period: plenty of violations.
        let reckless = StaticClock::new(model.static_period_ps() / 2.0);
        let outcome = run_with_policy(&model, &t, &reckless, &ClockGenerator::Ideal);
        assert!(outcome.violations > 0);
    }

    #[test]
    fn characterized_lut_replayed_on_same_workload_has_no_violations() {
        let model = TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized);
        let t = mixed_trace();
        let dta = idca_timing::dta::DynamicTimingAnalysis::run(&model, &t);
        let lut = DelayLut::from_dta(&dta, 1);
        let outcome = run_with_policy(
            &model,
            &t,
            &InstructionBased::new(lut),
            &ClockGenerator::Ideal,
        );
        assert_eq!(outcome.violations, 0);
    }

    #[test]
    fn banked_replay_matches_per_corner_replay() {
        use idca_timing::VariationModel;
        let nominal = TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized);
        let vm = VariationModel::default();
        let models: Vec<TimingModel> = (0..5)
            .map(|i| vm.apply(&nominal, &vm.sample_corner(0xBA2C, i)))
            .collect();
        let digest = idca_pipeline::TimingDigest::from_trace(&mixed_trace());
        let policy = InstructionBased::from_model(&nominal);
        let banked = replay_digest_banked(&models, &digest, &policy, &ClockGenerator::Ideal);
        assert_eq!(banked.len(), models.len());
        for (model, outcome) in models.iter().zip(&banked) {
            let scalar = replay_digest(model, &digest, &policy, &ClockGenerator::Ideal);
            assert_eq!(*outcome, scalar);
        }
        // An empty bank yields no outcomes but also no panic.
        assert!(replay_digest_banked(&[], &digest, &policy, &ClockGenerator::Ideal).is_empty());
    }

    #[test]
    fn empty_trace_produces_neutral_outcome() {
        let model = TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized);
        let empty = PipelineTrace::from_parts(vec![], 0);
        let outcome = run_with_policy(
            &model,
            &empty,
            &StaticClock::of_model(&model),
            &ClockGenerator::Ideal,
        );
        assert_eq!(outcome.cycles, 0);
        assert_eq!(outcome.effective_frequency_mhz, 0.0);
        assert_eq!(outcome.violations, 0);
    }
}
