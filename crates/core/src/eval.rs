//! Evaluation helpers: per-benchmark policy comparisons and suite-level
//! aggregation (the data behind Fig. 8 and the headline 38 % result).
//!
//! [`compare_program`] is the single-pass entry point: it simulates a
//! benchmark **once**, with the static-baseline and dynamic-policy
//! [`PolicyObserver`]s riding on the same [`Simulator::run_observed`] pass,
//! so the Fig. 8 evaluation neither materializes traces nor re-simulates per
//! policy. [`compare`] is the trace-replay equivalent for callers that
//! already hold a [`PipelineTrace`].

use crate::sim::PolicyObserver;
use crate::{run_with_policy, ClockGenerator, ClockPolicy, RunOutcome, StaticClock};
use idca_isa::Program;
use idca_pipeline::{CycleObserver, PipelineError, PipelineTrace, Simulator, TimingDigest};
use idca_timing::TimingModel;
use serde::{Deserialize, Serialize};

/// The outcome of one benchmark under conventional clocking and under a
/// dynamic clock-adjustment policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyComparison {
    /// Benchmark name.
    pub benchmark: String,
    /// Conventional (static) clocking outcome.
    pub baseline: RunOutcome,
    /// Dynamic clock-adjustment outcome.
    pub dynamic: RunOutcome,
}

impl PolicyComparison {
    /// Speedup of the dynamic policy over the static baseline.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.dynamic.speedup_over(&self.baseline)
    }

    /// Effective-frequency gain in MHz.
    #[must_use]
    pub fn frequency_gain_mhz(&self) -> f64 {
        self.dynamic.effective_frequency_mhz - self.baseline.effective_frequency_mhz
    }
}

/// Compares a dynamic clock-adjustment policy against conventional static
/// clocking on one benchmark trace.
#[must_use]
pub fn compare(
    model: &TimingModel,
    benchmark: impl Into<String>,
    trace: &PipelineTrace,
    policy: &dyn ClockPolicy,
    generator: &ClockGenerator,
) -> PolicyComparison {
    let baseline = run_with_policy(
        model,
        trace,
        &StaticClock::of_model(model),
        &ClockGenerator::Ideal,
    );
    let dynamic = run_with_policy(model, trace, policy, generator);
    PolicyComparison {
        benchmark: benchmark.into(),
        baseline,
        dynamic,
    }
}

/// Compares a dynamic clock-adjustment policy against conventional static
/// clocking by simulating `program` **once**: both policies observe the same
/// streaming pass, no per-cycle storage is allocated, and the outcomes are
/// identical to replaying a materialized trace through [`compare`].
///
/// # Errors
///
/// Returns [`PipelineError`] if the benchmark itself fails to simulate.
pub fn compare_program(
    model: &TimingModel,
    benchmark: impl Into<String>,
    simulator: &Simulator,
    program: &Program,
    policy: &dyn ClockPolicy,
    generator: &ClockGenerator,
) -> Result<PolicyComparison, PipelineError> {
    let static_policy = StaticClock::of_model(model);
    let mut baseline = PolicyObserver::new(model, &static_policy, &ClockGenerator::Ideal);
    let mut dynamic = PolicyObserver::new(model, policy, generator);
    simulator.run_observed(program, &mut [&mut baseline, &mut dynamic])?;
    Ok(PolicyComparison {
        benchmark: benchmark.into(),
        baseline: baseline.into_outcome(),
        dynamic: dynamic.into_outcome(),
    })
}

/// Compares a dynamic clock-adjustment policy against conventional static
/// clocking by replaying a pre-captured [`TimingDigest`] — the
/// simulate-once / evaluate-many counterpart of [`compare_program`]: one
/// digested simulation serves any number of `(model, policy, generator)`
/// evaluations with no simulator in the loop, and both observers share a
/// single model evaluation per cycle. Bit-identical to [`compare_program`]
/// on the originating program (the digest replay is the same arithmetic).
#[must_use]
pub fn compare_digest(
    model: &TimingModel,
    benchmark: impl Into<String>,
    digest: &TimingDigest,
    policy: &dyn ClockPolicy,
    generator: &ClockGenerator,
) -> PolicyComparison {
    let static_policy = StaticClock::of_model(model);
    let mut baseline = PolicyObserver::new(model, &static_policy, &ClockGenerator::Ideal);
    let mut dynamic = PolicyObserver::new(model, policy, generator);
    digest.for_each_cycle(|cycle, dc| {
        let timing = model.digest_cycle_timing(cycle, dc);
        baseline.observe_digest_timed(cycle, dc, &timing);
        dynamic.observe_digest_timed(cycle, dc, &timing);
    });
    let summary = digest.summary();
    baseline.finish(&summary);
    dynamic.finish(&summary);
    PolicyComparison {
        benchmark: benchmark.into(),
        baseline: baseline.into_outcome(),
        dynamic: dynamic.into_outcome(),
    }
}

/// Aggregation of [`PolicyComparison`]s over a benchmark suite (Fig. 8).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SuiteSummary {
    comparisons: Vec<PolicyComparison>,
}

impl SuiteSummary {
    /// Creates an empty summary.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one benchmark comparison.
    pub fn push(&mut self, comparison: PolicyComparison) {
        self.comparisons.push(comparison);
    }

    /// Folds another summary into this one and restores a canonical
    /// benchmark-name order, so sharded suite evaluations aggregate to the
    /// same summary regardless of which worker produced which slice (the
    /// suite-level counterpart of the sweep report's shard merge). Sorting
    /// is by name only — duplicate names keep their relative fold order.
    pub fn merge(&mut self, mut other: SuiteSummary) {
        self.comparisons.append(&mut other.comparisons);
        self.comparisons
            .sort_by(|a, b| a.benchmark.cmp(&b.benchmark));
    }

    /// The individual benchmark comparisons in insertion order.
    #[must_use]
    pub fn comparisons(&self) -> &[PolicyComparison] {
        &self.comparisons
    }

    /// Number of benchmarks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.comparisons.len()
    }

    /// `true` when no benchmark has been added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.comparisons.is_empty()
    }

    /// Arithmetic mean of the per-benchmark speedups (the paper's "on
    /// average 38 %" aggregates this way over CoreMark and BEEBS).
    #[must_use]
    pub fn mean_speedup(&self) -> f64 {
        if self.comparisons.is_empty() {
            return 1.0;
        }
        self.comparisons
            .iter()
            .map(PolicyComparison::speedup)
            .sum::<f64>()
            / self.comparisons.len() as f64
    }

    /// Geometric mean of the per-benchmark speedups.
    #[must_use]
    pub fn geometric_mean_speedup(&self) -> f64 {
        if self.comparisons.is_empty() {
            return 1.0;
        }
        let log_sum: f64 = self.comparisons.iter().map(|c| c.speedup().ln()).sum();
        (log_sum / self.comparisons.len() as f64).exp()
    }

    /// Mean effective frequency under conventional clocking, in MHz.
    #[must_use]
    pub fn mean_baseline_frequency_mhz(&self) -> f64 {
        mean(
            self.comparisons
                .iter()
                .map(|c| c.baseline.effective_frequency_mhz),
        )
    }

    /// Mean effective frequency under dynamic clock adjustment, in MHz.
    #[must_use]
    pub fn mean_dynamic_frequency_mhz(&self) -> f64 {
        mean(
            self.comparisons
                .iter()
                .map(|c| c.dynamic.effective_frequency_mhz),
        )
    }

    /// Total timing violations observed across the suite (expected: zero).
    #[must_use]
    pub fn total_violations(&self) -> u64 {
        self.comparisons.iter().map(|c| c.dynamic.violations).sum()
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for v in values {
        sum += v;
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::InstructionBased;
    use idca_isa::asm::Assembler;
    use idca_timing::ProfileKind;

    fn trace(src: &str) -> PipelineTrace {
        let program = Assembler::new().assemble(src).unwrap();
        idca_pipeline::Simulator::new(idca_pipeline::SimConfig::default())
            .run(&program)
            .unwrap()
            .trace
    }

    fn loop_trace(body: &str) -> PipelineTrace {
        trace(&format!(
            "        l.addi r3, r0, 40
             loop:   {body}
                     l.addi r3, r3, -1
                     l.sfne r3, r0
                     l.bf   loop
                     l.nop  0
                     l.nop  1"
        ))
    }

    #[test]
    fn comparison_reports_positive_speedup() {
        let model = TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized);
        let policy = InstructionBased::from_model(&model);
        let t = loop_trace("l.add r4, r4, r3\n l.xor r5, r4, r3");
        let cmp = compare(&model, "alu-loop", &t, &policy, &ClockGenerator::Ideal);
        assert_eq!(cmp.benchmark, "alu-loop");
        assert!(cmp.speedup() > 1.2);
        assert!(cmp.frequency_gain_mhz() > 50.0);
        assert_eq!(cmp.dynamic.violations, 0);
    }

    #[test]
    fn suite_summary_aggregates_benchmarks() {
        let model = TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized);
        let policy = InstructionBased::from_model(&model);
        let mut suite = SuiteSummary::new();
        for (name, body) in [
            ("alu", "l.add r4, r4, r3\n l.and r5, r4, r3"),
            ("mul", "l.mul r4, r3, r3\n l.mul r5, r4, r3"),
            ("mem", "l.sw 0(r0), r4\n l.lwz r5, 0(r0)"),
        ] {
            let t = loop_trace(body);
            suite.push(compare(&model, name, &t, &policy, &ClockGenerator::Ideal));
        }
        assert_eq!(suite.len(), 3);
        assert!(suite.mean_speedup() > 1.1);
        assert!(suite.geometric_mean_speedup() <= suite.mean_speedup() + 1e-9);
        assert!(suite.mean_dynamic_frequency_mhz() > suite.mean_baseline_frequency_mhz());
        assert_eq!(suite.total_violations(), 0);
        // The multiplier-heavy loop must gain the least (its LUT entry is the
        // slowest), the pure ALU loop the most.
        let speedups: Vec<f64> = suite.comparisons().iter().map(|c| c.speedup()).collect();
        assert!(
            speedups[0] > speedups[1],
            "alu should beat mul: {speedups:?}"
        );
    }

    #[test]
    fn digest_comparison_matches_trace_comparison() {
        let model = TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized);
        let policy = InstructionBased::from_model(&model);
        let t = loop_trace("l.mul r4, r3, r3\n l.sw 0(r0), r4\n l.lwz r5, 0(r0)");
        let digest = TimingDigest::from_trace(&t);
        let via_trace = compare(&model, "kernel", &t, &policy, &ClockGenerator::Ideal);
        let via_digest = compare_digest(&model, "kernel", &digest, &policy, &ClockGenerator::Ideal);
        assert_eq!(via_trace, via_digest);
    }

    #[test]
    fn suite_summary_merge_matches_unsharded_aggregation() {
        let model = TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized);
        let policy = InstructionBased::from_model(&model);
        let kernels = [
            ("a_alu", "l.add r4, r4, r3\n l.and r5, r4, r3"),
            ("b_mul", "l.mul r4, r3, r3\n l.mul r5, r4, r3"),
            ("c_mem", "l.sw 0(r0), r4\n l.lwz r5, 0(r0)"),
        ];
        let mut full = SuiteSummary::new();
        for (name, body) in kernels {
            let t = loop_trace(body);
            full.push(compare(&model, name, &t, &policy, &ClockGenerator::Ideal));
        }
        // Shard the suite in the "wrong" order and merge.
        let mut merged = SuiteSummary::new();
        for (name, body) in [kernels[2], kernels[0], kernels[1]] {
            let mut shard = SuiteSummary::new();
            let t = loop_trace(body);
            shard.push(compare(&model, name, &t, &policy, &ClockGenerator::Ideal));
            merged.merge(shard);
        }
        assert_eq!(merged, full);
        assert_eq!(merged.mean_speedup(), full.mean_speedup());
    }

    #[test]
    fn empty_suite_is_neutral() {
        let suite = SuiteSummary::new();
        assert!(suite.is_empty());
        assert_eq!(suite.mean_speedup(), 1.0);
        assert_eq!(suite.geometric_mean_speedup(), 1.0);
        assert_eq!(suite.mean_baseline_frequency_mhz(), 0.0);
    }
}
