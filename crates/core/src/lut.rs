//! The delay prediction lookup table (LUT).
//!
//! The LUT is the hardware table of Fig. 1 of the paper: for every
//! instruction class and every pipeline stage it stores the worst-case delay
//! of the paths that class excites in that stage. At run time the clock
//! adjustment controller looks up the classes currently in flight in all
//! stages and programs the clock generator with the maximum of the entries.

use crate::error::LutFormatError;
use crate::CoreError;
use idca_isa::TimingClass;
use idca_pipeline::Stage;
use idca_timing::{dta::DynamicTimingAnalysis, Ps, TimingModel};
use serde::{Deserialize, Serialize};

/// Where the LUT entries came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LutSource {
    /// Entries are the worst delays observed during a dynamic-timing-analysis
    /// characterization run (the paper's flow). Under-characterized classes
    /// fall back to the static period.
    Characterization,
    /// Entries are the analytic per-class worst cases of the timing profile
    /// (guaranteed safe for any data).
    ProfileWorstCase,
}

/// One row of the paper's Table II: the overall worst-case delay of an
/// instruction class and the stage in which it occurs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Instruction class (printed with the paper's `l.xxx(i)` labels).
    pub class: TimingClass,
    /// Worst-case delay in picoseconds.
    pub max_delay_ps: Ps,
    /// The pipeline stage that limits this class.
    pub stage: Stage,
    /// Number of characterization observations backing the entry
    /// (0 for profile-derived LUTs).
    pub observations: u64,
}

/// The per-class, per-stage delay prediction table.
///
/// # Example
///
/// ```
/// use idca_core::DelayLut;
/// use idca_isa::TimingClass;
/// use idca_pipeline::Stage;
/// use idca_timing::{ProfileKind, TimingModel};
///
/// let model = TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized);
/// let lut = DelayLut::from_model(&model);
/// // Table II: l.mul is the slowest instruction class, limited by execute.
/// assert_eq!(lut.delay_ps(Stage::Execute, TimingClass::Mul).round(), 1899.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DelayLut {
    entries: Vec<Ps>,
    observations: Vec<u64>,
    source: LutSource,
    static_period_ps: Ps,
    min_observations: u64,
}

fn index(stage: Stage, class: TimingClass) -> usize {
    stage.index() * TimingClass::COUNT + class.index()
}

impl DelayLut {
    /// Builds the LUT from a characterization run, mirroring the paper's
    /// instruction-timing-extraction step.
    ///
    /// Entries of `(stage, class)` pairs with fewer than `min_observations`
    /// occurrences are replaced by the static period, exactly like the paper
    /// handles instructions "where no accurate maximum delay characterization
    /// could be performed".
    #[must_use]
    pub fn from_dta(dta: &DynamicTimingAnalysis, min_observations: u64) -> Self {
        let static_period_ps = dta.static_period_ps();
        let mut entries = vec![static_period_ps; Stage::COUNT * TimingClass::COUNT];
        let mut observations = vec![0u64; Stage::COUNT * TimingClass::COUNT];
        for stage in Stage::ALL {
            for class in TimingClass::ALL {
                let seen = dta.observations(stage, class);
                observations[index(stage, class)] = seen;
                if seen >= min_observations {
                    entries[index(stage, class)] = dta.observed_worst_ps(stage, class);
                }
            }
        }
        DelayLut {
            entries,
            observations,
            source: LutSource::Characterization,
            static_period_ps,
            min_observations,
        }
    }

    /// Builds the LUT from the analytic worst-case delays of the timing
    /// model's profile (safe for any operand values by construction).
    #[must_use]
    pub fn from_model(model: &TimingModel) -> Self {
        let static_period_ps = model.static_period_ps();
        let mut entries = vec![static_period_ps; Stage::COUNT * TimingClass::COUNT];
        let observations = vec![0u64; Stage::COUNT * TimingClass::COUNT];
        for stage in Stage::ALL {
            for class in TimingClass::ALL {
                entries[index(stage, class)] = model.worst_case_ps(stage, class);
            }
        }
        DelayLut {
            entries,
            observations,
            source: LutSource::ProfileWorstCase,
            static_period_ps,
            min_observations: 0,
        }
    }

    /// The origin of the entries.
    #[must_use]
    pub fn source(&self) -> LutSource {
        self.source
    }

    /// The static clock period used as fallback and baseline, in picoseconds.
    #[must_use]
    pub fn static_period_ps(&self) -> Ps {
        self.static_period_ps
    }

    /// The delay entry for one `(stage, class)` pair.
    #[must_use]
    pub fn delay_ps(&self, stage: Stage, class: TimingClass) -> Ps {
        self.entries[index(stage, class)]
    }

    /// Number of characterization observations backing an entry.
    #[must_use]
    pub fn observations(&self, stage: Stage, class: TimingClass) -> u64 {
        self.observations[index(stage, class)]
    }

    /// The clock period required for one cycle given the classes currently
    /// in flight in every stage: the maximum of the corresponding entries
    /// (equation (2) of the paper, evaluated at LUT granularity).
    #[must_use]
    pub fn period_for(&self, classes: &[TimingClass; Stage::COUNT]) -> Ps {
        Stage::ALL
            .iter()
            .map(|stage| self.delay_ps(*stage, classes[stage.index()]))
            .fold(0.0, Ps::max)
    }

    /// The worst entry of one stage across all classes (used by the
    /// execute-only controller as a guard for the unmonitored stages).
    #[must_use]
    pub fn stage_worst_ps(&self, stage: Stage) -> Ps {
        TimingClass::ALL
            .iter()
            .map(|class| self.delay_ps(stage, *class))
            .fold(0.0, Ps::max)
    }

    /// Like [`DelayLut::stage_worst_ps`] but, for characterization-derived
    /// LUTs, only entries backed by at least one observation are considered.
    ///
    /// Entries of never-observed classes fall back to the static period; a
    /// controller that needs "the worst timing this stage can realistically
    /// demand" (e.g. the execute-only controller's address-stage guard)
    /// would otherwise be pinned to the static period by a class that never
    /// occurs. Returns [`DelayLut::stage_worst_ps`] if the stage has no
    /// observed entry at all.
    #[must_use]
    pub fn stage_worst_characterized_ps(&self, stage: Stage) -> Ps {
        if self.source == LutSource::ProfileWorstCase {
            return self.stage_worst_ps(stage);
        }
        // Only entries that were characterized well enough to escape the
        // static-period fallback count as "realistic" stage demands.
        let threshold = self.min_observations.max(1);
        let observed = TimingClass::ALL
            .iter()
            .filter(|class| self.observations(stage, **class) >= threshold)
            .map(|class| self.delay_ps(stage, *class))
            .fold(0.0, Ps::max);
        if observed > 0.0 {
            observed
        } else {
            self.stage_worst_ps(stage)
        }
    }

    /// The overall worst-case delay of a class and its limiting stage
    /// (one row of Table II).
    #[must_use]
    pub fn class_worst_case(&self, class: TimingClass) -> (Stage, Ps) {
        let mut best = (Stage::Execute, 0.0);
        for stage in Stage::ALL {
            let v = self.delay_ps(stage, class);
            if v > best.1 {
                best = (stage, v);
            }
        }
        best
    }

    /// Produces the rows of the paper's Table II for all instruction classes.
    #[must_use]
    pub fn table2_rows(&self) -> Vec<Table2Row> {
        TimingClass::INSTRUCTION_CLASSES
            .iter()
            .map(|&class| {
                let (stage, max_delay_ps) = self.class_worst_case(class);
                Table2Row {
                    class,
                    max_delay_ps,
                    stage,
                    observations: self.observations(stage, class),
                }
            })
            .collect()
    }

    /// Returns a copy of the LUT with every characterized entry inflated by
    /// `fraction` (e.g. `0.015` for 1.5 %), capped at the static period.
    ///
    /// A characterization run can only observe the data conditions its
    /// stimuli produce; a small guardband covers residual data-dependent
    /// delay that a different workload might excite, preserving the paper's
    /// "frequency-over-scaling without timing errors" property for LUTs
    /// built from finite characterizations. Entries that already fell back
    /// to the static period stay there.
    #[must_use]
    pub fn with_guardband(&self, fraction: f64) -> Self {
        let mut guarded = self.clone();
        for entry in &mut guarded.entries {
            *entry = (*entry * (1.0 + fraction)).min(self.static_period_ps);
        }
        guarded
    }

    /// Returns a copy of the LUT with every entry (and the static period)
    /// multiplied by `factor` — used to retarget a characterization done at
    /// one voltage to another operating point.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        DelayLut {
            entries: self.entries.iter().map(|d| d * factor).collect(),
            observations: self.observations.clone(),
            source: self.source,
            static_period_ps: self.static_period_ps * factor,
            min_observations: self.min_observations,
        }
    }

    /// Serializes the LUT to JSON (the artifact handed to the clock
    /// adjustment controller / instruction-set simulator in the paper's
    /// tool flow). The format is a small hand-rolled schema so the workspace
    /// needs no JSON dependency.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::LutSerialization`] on serialization failure.
    pub fn to_json(&self) -> Result<String, CoreError> {
        let entries: Vec<String> = self.entries.iter().map(|v| format!("{v:?}")).collect();
        let observations: Vec<String> = self.observations.iter().map(u64::to_string).collect();
        let source = match self.source {
            LutSource::Characterization => "characterization",
            LutSource::ProfileWorstCase => "profile-worst-case",
        };
        Ok(format!(
            "{{\n  \"source\": \"{source}\",\n  \"static_period_ps\": {:?},\n  \
             \"min_observations\": {},\n  \"entries\": [{}],\n  \"observations\": [{}]\n}}\n",
            self.static_period_ps,
            self.min_observations,
            entries.join(", "),
            observations.join(", "),
        ))
    }

    /// Deserializes a LUT previously produced by [`DelayLut::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::LutSerialization`] on malformed input.
    pub fn from_json(text: &str) -> Result<Self, CoreError> {
        let mut parser = json::Parser::new(text);
        let mut source = None;
        let mut static_period_ps = None;
        let mut min_observations = None;
        let mut entries: Option<Vec<Ps>> = None;
        let mut observations: Option<Vec<u64>> = None;

        parser.expect('{')?;
        loop {
            let key = parser.string()?;
            parser.expect(':')?;
            match key.as_str() {
                "source" => {
                    source = Some(match parser.string()?.as_str() {
                        "characterization" => LutSource::Characterization,
                        "profile-worst-case" => LutSource::ProfileWorstCase,
                        other => {
                            return Err(LutFormatError::new(format!(
                                "unknown LUT source `{other}`"
                            ))
                            .into())
                        }
                    });
                }
                "static_period_ps" => static_period_ps = Some(parser.number()?),
                "min_observations" => min_observations = Some(parser.integer()?),
                "entries" => entries = Some(parser.array(json::Parser::number)?),
                "observations" => observations = Some(parser.array(json::Parser::integer)?),
                other => {
                    return Err(LutFormatError::new(format!("unknown LUT field `{other}`")).into())
                }
            }
            if !parser.comma_or_end('}')? {
                break;
            }
        }
        parser.end()?;

        let missing = |field: &str| LutFormatError::new(format!("missing LUT field `{field}`"));
        let entries = entries.ok_or_else(|| missing("entries"))?;
        let observations = observations.ok_or_else(|| missing("observations"))?;
        let expected = Stage::COUNT * TimingClass::COUNT;
        if entries.len() != expected || observations.len() != expected {
            return Err(LutFormatError::new(format!(
                "LUT tables must hold {expected} entries, got {} delays / {} observation counts",
                entries.len(),
                observations.len()
            ))
            .into());
        }
        Ok(DelayLut {
            entries,
            observations,
            source: source.ok_or_else(|| missing("source"))?,
            static_period_ps: static_period_ps.ok_or_else(|| missing("static_period_ps"))?,
            min_observations: min_observations.ok_or_else(|| missing("min_observations"))?,
        })
    }
}

/// A minimal parser for the fixed JSON schema of [`DelayLut::to_json`].
mod json {
    use crate::error::LutFormatError;

    pub(super) struct Parser<'a> {
        text: &'a str,
        pos: usize,
    }

    impl<'a> Parser<'a> {
        pub(super) fn new(text: &'a str) -> Self {
            Parser { text, pos: 0 }
        }

        fn skip_whitespace(&mut self) {
            let rest = &self.text[self.pos..];
            self.pos += rest.len() - rest.trim_start().len();
        }

        fn peek(&mut self) -> Option<char> {
            self.skip_whitespace();
            self.text[self.pos..].chars().next()
        }

        pub(super) fn expect(&mut self, wanted: char) -> Result<(), LutFormatError> {
            match self.peek() {
                Some(c) if c == wanted => {
                    self.pos += wanted.len_utf8();
                    Ok(())
                }
                found => Err(LutFormatError::new(format!(
                    "expected `{wanted}` at byte {}, found {found:?}",
                    self.pos
                ))),
            }
        }

        pub(super) fn string(&mut self) -> Result<String, LutFormatError> {
            self.expect('"')?;
            let rest = &self.text[self.pos..];
            // The schema never emits escapes, so a bare quote ends the string.
            let len = rest
                .find('"')
                .ok_or_else(|| LutFormatError::new("unterminated string"))?;
            let value = rest[..len].to_string();
            self.pos += len + 1;
            Ok(value)
        }

        fn numeric_token(&mut self) -> Result<&'a str, LutFormatError> {
            self.skip_whitespace();
            let rest = &self.text[self.pos..];
            let len = rest
                .find(|c: char| !matches!(c, '0'..='9' | '-' | '+' | '.' | 'e' | 'E'))
                .unwrap_or(rest.len());
            if len == 0 {
                return Err(LutFormatError::new(format!(
                    "expected a number at byte {}",
                    self.pos
                )));
            }
            self.pos += len;
            Ok(&rest[..len])
        }

        pub(super) fn number(&mut self) -> Result<f64, LutFormatError> {
            let token = self.numeric_token()?;
            token
                .parse()
                .map_err(|_| LutFormatError::new(format!("malformed number `{token}`")))
        }

        pub(super) fn integer(&mut self) -> Result<u64, LutFormatError> {
            let token = self.numeric_token()?;
            token
                .parse()
                .map_err(|_| LutFormatError::new(format!("malformed integer `{token}`")))
        }

        pub(super) fn array<T>(
            &mut self,
            mut element: impl FnMut(&mut Self) -> Result<T, LutFormatError>,
        ) -> Result<Vec<T>, LutFormatError> {
            self.expect('[')?;
            let mut items = Vec::new();
            if self.peek() == Some(']') {
                self.pos += 1;
                return Ok(items);
            }
            loop {
                items.push(element(self)?);
                if !self.comma_or_end(']')? {
                    return Ok(items);
                }
            }
        }

        /// Consumes either a `,` (returning `true`) or `close` (returning
        /// `false`).
        pub(super) fn comma_or_end(&mut self, close: char) -> Result<bool, LutFormatError> {
            match self.peek() {
                Some(',') => {
                    self.pos += 1;
                    Ok(true)
                }
                Some(c) if c == close => {
                    self.pos += 1;
                    Ok(false)
                }
                found => Err(LutFormatError::new(format!(
                    "expected `,` or `{close}` at byte {}, found {found:?}",
                    self.pos
                ))),
            }
        }

        pub(super) fn end(&mut self) -> Result<(), LutFormatError> {
            match self.peek() {
                None => Ok(()),
                Some(c) => Err(LutFormatError::new(format!(
                    "trailing content starting with `{c}`"
                ))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idca_isa::asm::Assembler;
    use idca_pipeline::{SimConfig, Simulator};
    use idca_timing::ProfileKind;

    fn model() -> TimingModel {
        TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized)
    }

    fn characterization_dta() -> DynamicTimingAnalysis {
        let program = Assembler::new()
            .assemble(
                "        l.addi r1, r0, 0x100
                         l.movhi r2, 0xFFFF
                         l.ori  r2, r2, 0xFFFF
                         l.addi r3, r0, 40
                 loop:   l.add  r4, r2, r3
                         l.mul  r5, r2, r3
                         l.sw   0(r1), r5
                         l.lwz  r6, 0(r1)
                         l.xor  r7, r6, r2
                         l.slli r8, r7, 17
                         l.addi r3, r3, -1
                         l.sfne r3, r0
                         l.bf   loop
                         l.nop  0
                         l.nop  1",
            )
            .unwrap();
        let trace = Simulator::new(SimConfig::default())
            .run(&program)
            .unwrap()
            .trace;
        DynamicTimingAnalysis::run(&model(), &trace)
    }

    #[test]
    fn profile_lut_matches_model_worst_cases() {
        let m = model();
        let lut = DelayLut::from_model(&m);
        assert_eq!(lut.source(), LutSource::ProfileWorstCase);
        for stage in Stage::ALL {
            for class in TimingClass::ALL {
                assert_eq!(lut.delay_ps(stage, class), m.worst_case_ps(stage, class));
            }
        }
        assert_eq!(lut.static_period_ps(), m.static_period_ps());
    }

    #[test]
    fn characterization_lut_uses_static_fallback_for_unseen_classes() {
        let dta = characterization_dta();
        let lut = DelayLut::from_dta(&dta, 5);
        // The characterization kernel contains no register-indirect jumps,
        // so that class must fall back to the static period.
        assert_eq!(
            lut.delay_ps(Stage::Execute, TimingClass::JumpReg),
            lut.static_period_ps()
        );
        // Frequently exercised classes must sit below the static period.
        assert!(lut.delay_ps(Stage::Execute, TimingClass::Add) < lut.static_period_ps());
        assert!(lut.observations(Stage::Execute, TimingClass::Add) >= 5);
    }

    #[test]
    fn characterization_lut_is_bounded_by_profile_lut() {
        let m = model();
        let dta = characterization_dta();
        let char_lut = DelayLut::from_dta(&dta, 1);
        let prof_lut = DelayLut::from_model(&m);
        for stage in Stage::ALL {
            for class in TimingClass::ALL {
                if char_lut.observations(stage, class) > 0 {
                    assert!(
                        char_lut.delay_ps(stage, class) <= prof_lut.delay_ps(stage, class) + 1e-9,
                        "{stage}/{class}"
                    );
                }
            }
        }
    }

    #[test]
    fn period_for_takes_the_maximum_across_stages() {
        let lut = DelayLut::from_model(&model());
        let all_bubble = [TimingClass::Bubble; Stage::COUNT];
        let mut with_mul = all_bubble;
        with_mul[Stage::Execute.index()] = TimingClass::Mul;
        assert!(lut.period_for(&with_mul) > lut.period_for(&all_bubble));
        assert_eq!(
            lut.period_for(&with_mul),
            lut.delay_ps(Stage::Execute, TimingClass::Mul)
        );
    }

    #[test]
    fn table2_rows_cover_all_instruction_classes() {
        let lut = DelayLut::from_model(&model());
        let rows = lut.table2_rows();
        assert_eq!(rows.len(), TimingClass::INSTRUCTION_CLASSES.len());
        let mul = rows.iter().find(|r| r.class == TimingClass::Mul).unwrap();
        assert_eq!(mul.stage, Stage::Execute);
        assert_eq!(mul.max_delay_ps.round(), 1899.0);
        let jump = rows.iter().find(|r| r.class == TimingClass::Jump).unwrap();
        assert_eq!(jump.stage, Stage::Address);
    }

    #[test]
    fn guardband_inflates_entries_but_never_exceeds_static_period() {
        let dta = characterization_dta();
        let lut = DelayLut::from_dta(&dta, 8);
        let guarded = lut.with_guardband(0.02);
        for stage in Stage::ALL {
            for class in TimingClass::ALL {
                let raw = lut.delay_ps(stage, class);
                let safe = guarded.delay_ps(stage, class);
                assert!(safe >= raw);
                assert!(safe <= lut.static_period_ps() + 1e-9);
                if raw < lut.static_period_ps() / 1.02 {
                    assert!((safe - raw * 1.02).abs() < 1e-6, "{stage}/{class}");
                }
            }
        }
    }

    #[test]
    fn scaling_retargets_every_entry() {
        let lut = DelayLut::from_model(&model());
        let scaled = lut.scaled(1.5);
        assert_eq!(
            scaled.delay_ps(Stage::Execute, TimingClass::Add),
            lut.delay_ps(Stage::Execute, TimingClass::Add) * 1.5
        );
        assert_eq!(scaled.static_period_ps(), lut.static_period_ps() * 1.5);
    }

    #[test]
    fn json_roundtrip_preserves_the_table() {
        let lut = DelayLut::from_model(&model());
        let json = lut.to_json().unwrap();
        let back = DelayLut::from_json(&json).unwrap();
        assert_eq!(back, lut);
        assert!(DelayLut::from_json("not json").is_err());
    }

    #[test]
    fn stage_worst_reflects_address_stage_jump_path() {
        let lut = DelayLut::from_model(&model());
        let adr_worst = lut.stage_worst_ps(Stage::Address);
        assert_eq!(adr_worst, lut.delay_ps(Stage::Address, TimingClass::Jump));
    }
}
