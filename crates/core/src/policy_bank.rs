//! Corner-batched accumulation for table-driven clock policies.
//!
//! [`PolicyBank`] is the policy-side counterpart of
//! [`idca_timing::CornerBank`] and [`crate::AdaptiveBank`]: it packs the
//! per-corner accumulator state of one [`PolicyObserver`](crate::PolicyObserver)
//! — realized-time, violation, fault-recovery and min/max folds — into
//! [`LANE_WIDTH`]-padded structure-of-arrays lanes, so a digest replay
//! updates all `M` corners of one policy in contiguous loops instead of
//! `M` scalar `observe_timing_prepared` calls per cycle.
//!
//! The bank exploits a structural property of the table-driven policies
//! (static / instruction-based / execute-only): their requested period
//! depends only on the digest classes (or on nothing at all), never on the
//! cycle index. Within one digest RLE run-block the request — and therefore
//! the generator-realized period, the violation threshold and the fault
//! detection limit — is constant, so [`PolicyBank::begin_block`] hoists all
//! four out of the per-cycle loop and [`PolicyBank::observe_actuals`]
//! reduces each cycle to a compare-and-count over the lanes.
//!
//! Every fold replicates [`PolicyObserver`](crate::PolicyObserver)'s
//! arithmetic operation-for-operation (same order, same constants), so
//! [`PolicyBank::into_outcomes`] is bit-identical to running `M`
//! independent scalar observers — pinned by the property tests in
//! `tests/banked_replay.rs` and `tests/fault_replay.rs`.

use crate::sim::RunOutcome;
use crate::ClockGenerator;
use idca_pipeline::{CycleObserver, RunSummary};
use idca_timing::{ActivityObserver, FaultPlan, Ps, LANE_WIDTH};

/// SoA-packed per-corner accumulators of one clock policy evaluated
/// against `M` PVT corners — see the [module docs](self).
///
/// # Protocol
///
/// For each digest run-block: one call to [`PolicyBank::begin_block`]
/// (corner-invariant request) or [`PolicyBank::begin_block_per_corner`]
/// (per-corner requests, e.g. the per-corner static period), then one
/// [`PolicyBank::observe_actuals`] per cycle of the block with the
/// lane-packed actual delays. After the walk, [`PolicyBank::finish`] with
/// the run summary and [`PolicyBank::into_outcomes`] to take the
/// per-corner [`RunOutcome`]s.
#[derive(Debug, Clone)]
pub struct PolicyBank<'a> {
    policy_name: String,
    generator: &'a ClockGenerator,
    faults: Option<FaultPlan>,
    corners: usize,
    padded: usize,
    // Per-lane accumulators, `padded` long; the padding lanes accumulate
    // against zeroed requests/actuals and are never read back.
    total_time_ps: Vec<f64>,
    penalty_time_ps: Vec<f64>,
    min_period_ps: Vec<Ps>,
    max_period_ps: Vec<Ps>,
    violations: Vec<u64>,
    entry_violations: Vec<u64>,
    recovered_cycles: Vec<u64>,
    replay_penalty_cycles: Vec<u64>,
    silent_risk_cycles: Vec<u64>,
    // Block-hoisted per-lane values, refreshed by `begin_block*`:
    // the generator-realized period, the violation threshold
    // (`realized + 1e-9`), the fault detection limit
    // (`realized * (1 + detect_window)`) and the per-event penalty time
    // (`realized * replay_penalty`).
    realized: Vec<Ps>,
    threshold: Vec<Ps>,
    detect_limit: Vec<Ps>,
    penalty_step: Vec<f64>,
    // Last block's requests, so a repeated request (the common case: the
    // table-driven policies emit a handful of distinct periods) skips the
    // realize-and-derive refill.
    last_requests: Vec<Ps>,
    primed: bool,
    outcomes: Option<Vec<RunOutcome>>,
}

impl<'a> PolicyBank<'a> {
    /// Creates a bank accumulating `corners` lanes for the policy named
    /// `policy_name` (the name lands verbatim in [`RunOutcome::policy`]),
    /// realizing every request through `generator`.
    #[must_use]
    pub fn new(
        policy_name: impl Into<String>,
        corners: usize,
        generator: &'a ClockGenerator,
    ) -> Self {
        let padded = corners.next_multiple_of(LANE_WIDTH);
        PolicyBank {
            policy_name: policy_name.into(),
            generator,
            faults: None,
            corners,
            padded,
            total_time_ps: vec![0.0; padded],
            penalty_time_ps: vec![0.0; padded],
            min_period_ps: vec![Ps::INFINITY; padded],
            max_period_ps: vec![0.0; padded],
            violations: vec![0; padded],
            entry_violations: vec![0; padded],
            recovered_cycles: vec![0; padded],
            replay_penalty_cycles: vec![0; padded],
            silent_risk_cycles: vec![0; padded],
            realized: vec![0.0; padded],
            threshold: vec![0.0; padded],
            detect_limit: vec![0.0; padded],
            penalty_step: vec![0.0; padded],
            last_requests: vec![0.0; padded],
            primed: false,
            outcomes: None,
        }
    }

    /// Attaches a [`FaultPlan`]: violations are classified through the
    /// plan's recovery model exactly as in
    /// [`PolicyObserver::with_faults`](crate::PolicyObserver::with_faults).
    /// The caller is expected to apply [`FaultPlan::faulted`] to the cycle
    /// timings before [`PolicyBank::observe_actuals`] (the prepared-entry
    /// convention of the banked sweep).
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Replaces the fault plan (or clears it) without reallocating lanes —
    /// the worker-scratch path reuses one bank across sweep jobs.
    pub fn set_faults(&mut self, faults: Option<FaultPlan>) {
        self.faults = faults;
        // The hoisted detect/penalty lanes depend on the spec: force a
        // refill on the next block.
        self.primed = false;
    }

    /// Number of (unpadded) corners the bank accumulates.
    #[must_use]
    pub fn corners(&self) -> usize {
        self.corners
    }

    /// Lane-buffer length: [`PolicyBank::corners`] rounded up to the next
    /// [`LANE_WIDTH`] multiple — the expected length of the `actuals`
    /// slice fed to [`PolicyBank::observe_actuals`].
    #[must_use]
    pub fn padded_lanes(&self) -> usize {
        self.padded
    }

    /// Clears all accumulator state so the bank can replay another digest
    /// (same corners, same generator) without reallocating — the
    /// worker-scratch counterpart of constructing a fresh bank.
    pub fn reset(&mut self) {
        self.total_time_ps.fill(0.0);
        self.penalty_time_ps.fill(0.0);
        self.min_period_ps.fill(Ps::INFINITY);
        self.max_period_ps.fill(0.0);
        self.violations.fill(0);
        self.entry_violations.fill(0);
        self.recovered_cycles.fill(0);
        self.replay_penalty_cycles.fill(0);
        self.silent_risk_cycles.fill(0);
        self.primed = false;
        self.outcomes = None;
    }

    /// Starts a run-block whose request is corner-invariant (the
    /// table-driven LUT policies decide from digest classes alone):
    /// realizes `requested` once, broadcasts the hoisted
    /// threshold/detect/penalty values across the lanes and folds the
    /// block's min/max periods.
    #[inline]
    pub fn begin_block(&mut self, requested: Ps) {
        if self.padded == 0 {
            return;
        }
        // Min/max folding is idempotent, so folding only when the realized
        // period actually changes (a request-cache miss) is bit-identical
        // to the scalar observer's per-cycle fold.
        if !(self.primed && self.last_requests[0] == requested) {
            let realized = self.generator.realize(requested);
            self.fill_lanes_uniform(requested, realized);
            self.fold_min_max();
        }
    }

    /// [`PolicyBank::begin_block`] with one request per corner (the static
    /// baseline clocks each corner at its own STA period). `requests` must
    /// be [`PolicyBank::corners`] long.
    ///
    /// # Panics
    ///
    /// Panics if `requests.len() != self.corners()`.
    pub fn begin_block_per_corner(&mut self, requests: &[Ps]) {
        assert_eq!(requests.len(), self.corners, "one request per corner");
        if !(self.primed && self.last_requests[..self.corners] == *requests) {
            for lane in 0..self.padded {
                let requested = requests.get(lane).copied().unwrap_or(0.0);
                let realized = self.generator.realize(requested);
                self.set_lane(lane, requested, realized);
            }
            self.primed = true;
            self.fold_min_max();
        }
    }

    /// Broadcasts one realized request across every lane.
    fn fill_lanes_uniform(&mut self, requested: Ps, realized: Ps) {
        self.last_requests.fill(requested);
        self.realized.fill(realized);
        self.threshold.fill(realized + 1e-9);
        if let Some(plan) = &self.faults {
            let spec = plan.spec();
            self.detect_limit
                .fill(realized * (1.0 + spec.detect_window));
            self.penalty_step
                .fill(realized * f64::from(spec.replay_penalty));
        }
        self.primed = true;
    }

    /// Writes one lane's hoisted block values.
    fn set_lane(&mut self, lane: usize, requested: Ps, realized: Ps) {
        self.last_requests[lane] = requested;
        self.realized[lane] = realized;
        self.threshold[lane] = realized + 1e-9;
        if let Some(plan) = &self.faults {
            let spec = plan.spec();
            self.detect_limit[lane] = realized * (1.0 + spec.detect_window);
            self.penalty_step[lane] = realized * f64::from(spec.replay_penalty);
        }
    }

    /// Folds the current block's realized period into the min/max lanes.
    /// The realized period is constant within a block, so folding once per
    /// block is bit-identical to the scalar observer's per-cycle fold
    /// (min/max are idempotent).
    #[inline]
    fn fold_min_max(&mut self) {
        let lanes = self
            .min_period_ps
            .iter_mut()
            .zip(&mut self.max_period_ps)
            .zip(&self.realized);
        for ((min, max), &realized) in lanes {
            *min = min.min(realized);
            *max = max.max(realized);
        }
    }

    /// Accumulates one cycle: compares each lane's hoisted threshold
    /// against that lane's actual delay and advances the violation,
    /// recovery and realized-time accumulators. `actuals` must be
    /// [`PolicyBank::padded_lanes`] long (lane `i` = corner `i`'s
    /// [`CycleTiming::max_delay_ps`](idca_timing::CycleTiming::max_delay_ps);
    /// padding lanes zero).
    ///
    /// # Panics
    ///
    /// Panics if `actuals.len() != self.padded_lanes()`.
    ///
    /// `inline(never)` keeps this kernel out of the sweep's replay loop:
    /// merged with the evaluator and the other banks it spills registers
    /// and roughly doubles the replay time (see `AdaptiveBank::
    /// observe_cycle_lanes` for the same finding).
    #[inline(never)]
    pub fn observe_actuals(&mut self, actuals: &[Ps]) {
        let lanes = actuals.len();
        assert_eq!(lanes, self.padded, "lane-packed actual delays");
        match &self.faults {
            Some(plan) => {
                let penalty = u64::from(plan.spec().replay_penalty);
                let threshold = &self.threshold[..lanes];
                let detect_limit = &self.detect_limit[..lanes];
                let penalty_step = &self.penalty_step[..lanes];
                let realized = &self.realized[..lanes];
                let violations = &mut self.violations[..lanes];
                let recovered = &mut self.recovered_cycles[..lanes];
                let replayed = &mut self.replay_penalty_cycles[..lanes];
                let silent = &mut self.silent_risk_cycles[..lanes];
                let penalty_time = &mut self.penalty_time_ps[..lanes];
                let total_time = &mut self.total_time_ps[..lanes];
                for lane in 0..lanes {
                    let actual = actuals[lane];
                    let violated = threshold[lane] < actual;
                    let detected = violated && actual <= detect_limit[lane];
                    violations[lane] += u64::from(violated);
                    recovered[lane] += u64::from(detected);
                    replayed[lane] += u64::from(detected) * penalty;
                    silent[lane] += u64::from(violated && !detected);
                    // `x + 0.0 == x` bit-exactly for the non-negative
                    // accumulator, so the select keeps the loop branch-free
                    // while matching the scalar observer's guarded add.
                    penalty_time[lane] += if detected { penalty_step[lane] } else { 0.0 };
                    total_time[lane] += realized[lane];
                }
            }
            None => {
                let folds = self
                    .violations
                    .iter_mut()
                    .zip(&mut self.total_time_ps)
                    .zip(&self.threshold)
                    .zip(&self.realized)
                    .zip(actuals);
                for ((((violations, total_time), &threshold), &realized), &actual) in folds {
                    *violations += u64::from(threshold < actual);
                    *total_time += realized;
                }
            }
        }
    }

    /// [`PolicyBank::observe_actuals`] for an exception-entry cycle: the
    /// same accumulation, plus each lane's violation (recomputed from the
    /// hoisted threshold, so the count is bit-identical to the main kernel's
    /// compare) is tallied into the entry-violation lanes. The caller is
    /// expected to have applied the entry surge to `actuals` already — the
    /// prepared-entry convention, matching the fault factors.
    pub fn observe_actuals_entry(&mut self, actuals: &[Ps]) {
        self.observe_actuals(actuals);
        let folds = self
            .entry_violations
            .iter_mut()
            .zip(&self.threshold)
            .zip(actuals);
        for ((entry, &threshold), &actual) in folds {
            *entry += u64::from(threshold < actual);
        }
    }

    /// Derives the per-corner [`RunOutcome`]s from the accumulated lanes —
    /// field-for-field the arithmetic of
    /// [`PolicyObserver`](crate::PolicyObserver)'s `finish`. The activity
    /// summary is the empty-finished default (the banked paths fold
    /// activity once, outside the bank); callers that replay activity
    /// assign it onto the outcomes afterwards.
    pub fn finish(&mut self, summary: &RunSummary) {
        let mut activity = ActivityObserver::new();
        activity.finish(summary);
        let activity = activity.summary();
        let cycles = summary.cycles;
        let outcomes = (0..self.corners)
            .map(|lane| {
                let total_time_ps = self.total_time_ps[lane];
                let avg_period_ps = if cycles == 0 {
                    0.0
                } else {
                    total_time_ps / cycles as f64
                };
                let effective_frequency_mhz = if avg_period_ps > 0.0 {
                    1.0e6 / avg_period_ps
                } else {
                    0.0
                };
                let mips = if total_time_ps > 0.0 {
                    summary.retired as f64 / (total_time_ps * 1e-6)
                } else {
                    0.0
                };
                let recovery_period_ps = if cycles == 0 {
                    0.0
                } else {
                    (total_time_ps + self.penalty_time_ps[lane]) / cycles as f64
                };
                let recovery_frequency_mhz = if recovery_period_ps > 0.0 {
                    1.0e6 / recovery_period_ps
                } else {
                    0.0
                };
                RunOutcome {
                    policy: self.policy_name.clone(),
                    cycles,
                    retired: summary.retired,
                    total_time_ps,
                    avg_period_ps,
                    min_period_ps: if cycles == 0 {
                        0.0
                    } else {
                        self.min_period_ps[lane]
                    },
                    max_period_ps: self.max_period_ps[lane],
                    effective_frequency_mhz,
                    mips,
                    violations: self.violations[lane],
                    entry_violations: self.entry_violations[lane],
                    recovered_cycles: self.recovered_cycles[lane],
                    replay_penalty_cycles: self.replay_penalty_cycles[lane],
                    silent_risk_cycles: self.silent_risk_cycles[lane],
                    recovery_frequency_mhz,
                    activity,
                }
            })
            .collect();
        self.outcomes = Some(outcomes);
    }

    /// Consumes the bank and returns one [`RunOutcome`] per corner.
    ///
    /// # Panics
    ///
    /// Panics if [`PolicyBank::finish`] was never called.
    #[must_use]
    pub fn into_outcomes(self) -> Vec<RunOutcome> {
        self.outcomes
            .expect("the digest walk must finish before taking the outcomes")
    }

    /// [`PolicyBank::into_outcomes`] by value without consuming the bank —
    /// the worker-scratch path takes the outcomes and keeps the lane
    /// storage for the next job.
    ///
    /// # Panics
    ///
    /// Panics if [`PolicyBank::finish`] was never called.
    #[must_use]
    pub fn take_outcomes(&mut self) -> Vec<RunOutcome> {
        self.outcomes
            .take()
            .expect("the digest walk must finish before taking the outcomes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::StaticClock;
    use crate::PolicyObserver;
    use idca_pipeline::{SimConfig, Simulator, TimingDigest};
    use idca_timing::{CornerBank, FaultSpec, ProfileKind, TimingModel, VariationModel};

    fn digest() -> TimingDigest {
        let program = idca_isa::asm::Assembler::new()
            .assemble(
                "        l.addi r1, r0, 0x80
                         l.addi r3, r0, 40
                 loop:   l.mul  r5, r3, r3
                         l.sw   0(r1), r5
                         l.lwz  r6, 0(r1)
                         l.addi r3, r3, -1
                         l.sfne r3, r0
                         l.bf   loop
                         l.nop  0
                         l.nop  1",
            )
            .unwrap();
        let trace = Simulator::new(SimConfig::default())
            .run(&program)
            .unwrap()
            .trace;
        TimingDigest::from_trace(&trace)
    }

    fn corner_models(n: u32) -> Vec<TimingModel> {
        let nominal = TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized);
        let vm = VariationModel::default();
        (0..n)
            .map(|i| vm.apply(&nominal, &vm.sample_corner(0x9A7E, i)))
            .collect()
    }

    /// Drives a bank and the scalar reference over the same digest and
    /// asserts bit-identical outcomes (modulo the activity fold, which the
    /// scalar reference also skips on the `observe_timing_prepared` path).
    fn assert_bank_matches_scalar(models: &[TimingModel], faults: Option<FaultPlan>) {
        let digest = digest();
        let generator = ClockGenerator::quantized_50ps();
        let bank = CornerBank::from_models(models);
        // Per-corner static periods: exercises the per-corner block entry.
        let requests: Vec<Ps> = (0..models.len())
            .map(|i| bank.static_period_ps(i))
            .collect();

        let mut pbank = PolicyBank::new("static", models.len(), &generator);
        if let Some(plan) = faults {
            pbank = pbank.with_faults(plan);
        }
        let mut actuals = vec![0.0; bank.padded_lanes()];
        let mut evaluator = bank.evaluator();
        let mut scratch = Vec::new();
        digest.for_each_run(|start, len, dc| {
            pbank.begin_block_per_corner(&requests);
            for cycle in start..start + u64::from(len) {
                let timings = evaluator.cycle_timings(cycle, dc);
                let timings = match &faults {
                    Some(plan) => {
                        scratch.clear();
                        scratch.extend(timings.iter().map(|t| plan.faulted(cycle, t)));
                        &scratch[..]
                    }
                    None => timings,
                };
                for (lane, slot) in actuals.iter_mut().enumerate() {
                    *slot = timings.get(lane).map_or(0.0, |t| t.max_delay_ps);
                }
                pbank.observe_actuals(&actuals);
            }
        });
        pbank.finish(&digest.summary());
        let banked = pbank.into_outcomes();

        for (corner, (model, expected)) in models.iter().zip(&banked).enumerate() {
            let policy = StaticClock::new(requests[corner]);
            let mut observer = PolicyObserver::new(model, &policy, &generator);
            if let Some(plan) = &faults {
                observer = observer.with_faults(plan);
            }
            digest.for_each_cycle(|cycle, dc| {
                let timing = model.digest_cycle_timing(cycle, dc);
                let timing = match &faults {
                    Some(plan) => plan.faulted(cycle, &timing),
                    None => timing,
                };
                observer.observe_timing_prepared(requests[corner], &timing);
            });
            observer.finish(&digest.summary());
            assert_eq!(*expected, observer.into_outcome(), "corner {corner}");
        }
    }

    #[test]
    fn bank_matches_scalar_observers_without_faults() {
        assert_bank_matches_scalar(&corner_models(5), None);
    }

    #[test]
    fn bank_matches_scalar_observers_under_faults() {
        let spec = FaultSpec::parse("seed=3,droop-rate=0.4,droop-mag=0.5,spike-rate=0.05,spike-mag=0.9,penalty=5,detect-window=0.3")
            .unwrap();
        assert_bank_matches_scalar(&corner_models(6), Some(FaultPlan::new(&spec)));
    }

    #[test]
    fn reset_reproduces_a_fresh_bank() {
        let generator = ClockGenerator::Ideal;
        let digest = digest();
        let mut bank = PolicyBank::new("static", 3, &generator);
        let run = |bank: &mut PolicyBank<'_>| {
            digest.for_each_run(|_start, len, _dc| {
                bank.begin_block(1800.0);
                let actuals = vec![1500.0; bank.padded_lanes()];
                for _ in 0..len {
                    bank.observe_actuals(&actuals);
                }
            });
            bank.finish(&digest.summary());
            bank.take_outcomes()
        };
        let first = run(&mut bank);
        bank.reset();
        let second = run(&mut bank);
        assert_eq!(first, second);
    }

    #[test]
    fn empty_digest_yields_neutral_outcomes() {
        let generator = ClockGenerator::Ideal;
        let mut bank = PolicyBank::new("static", 2, &generator);
        bank.finish(&RunSummary {
            cycles: 0,
            retired: 0,
        });
        let outcomes = bank.into_outcomes();
        assert_eq!(outcomes.len(), 2);
        for o in outcomes {
            assert_eq!(o.cycles, 0);
            assert_eq!(o.min_period_ps, 0.0);
            assert_eq!(o.effective_frequency_mhz, 0.0);
        }
    }
}
