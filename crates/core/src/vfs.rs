//! Voltage-frequency scaling: trading the frequency gain for power.
//!
//! §IV-B of the paper converts the 38 % effective-frequency gain into a
//! supply-voltage reduction at constant throughput: the core with dynamic
//! clock adjustment runs ~70 mV lower while still matching the conventional
//! core's 494 MHz, which improves energy efficiency from 13.7 µW/MHz to
//! 11.0 µW/MHz (24 %). This module reproduces that conversion: it scans the
//! characterized operating points of the cell library for the lowest supply
//! voltage at which the dynamically-clocked core still meets the baseline
//! throughput, then compares energy efficiency at the two points.

use crate::sim::PolicyObserver;
use crate::{run_with_policy, ClockGenerator, ClockPolicy, CoreError, RunOutcome, StaticClock};
use idca_isa::Program;
use idca_pipeline::{CycleObserver, PipelineTrace, Simulator};
use idca_timing::{
    ActivitySummary, CellLibrary, PowerModel, PowerReport, ProfileKind, TimingModel,
    NOMINAL_VOLTAGE_MV,
};
use serde::{Deserialize, Serialize};

/// Summary of one operating point in a voltage-scaling comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingSummary {
    /// Supply voltage in millivolts.
    pub voltage_mv: u32,
    /// Effective clock frequency in MHz.
    pub frequency_mhz: f64,
    /// Average clock period in picoseconds.
    pub avg_period_ps: f64,
    /// Energy efficiency in µW/MHz.
    pub uw_per_mhz: f64,
    /// Total power in microwatts.
    pub power_uw: f64,
}

impl OperatingSummary {
    fn from_report(report: &PowerReport) -> Self {
        OperatingSummary {
            voltage_mv: report.voltage_mv,
            frequency_mhz: report.frequency_mhz,
            avg_period_ps: report.period_ps,
            uw_per_mhz: report.uw_per_mhz,
            power_uw: report.total_power_uw,
        }
    }
}

/// Result of the iso-throughput voltage-scaling analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VoltageScalingResult {
    /// Conventional clocking at the nominal voltage (the reference).
    pub baseline: OperatingSummary,
    /// Dynamic clock adjustment at the reduced supply voltage.
    pub scaled: OperatingSummary,
    /// How much the supply voltage could be reduced, in millivolts.
    pub voltage_reduction_mv: u32,
    /// Energy-efficiency improvement: `baseline µW/MHz ÷ scaled µW/MHz`.
    pub efficiency_gain: f64,
}

impl VoltageScalingResult {
    /// Energy-efficiency improvement expressed as a percentage
    /// (the paper reports 24 %).
    #[must_use]
    pub fn efficiency_gain_percent(&self) -> f64 {
        (1.0 - self.scaled.uw_per_mhz / self.baseline.uw_per_mhz) * 100.0
    }
}

/// Finds the lowest characterized supply voltage at which the
/// dynamically-clocked core still delivers at least the conventional core's
/// nominal-voltage throughput, and reports the resulting energy-efficiency
/// gain.
///
/// * `policy_factory` builds the dynamic-clock policy for a given timing
///   model (the model changes with voltage because every path stretches).
/// * `generator` is the clock-generator model used for the dynamic runs.
///
/// # Errors
///
/// Returns [`CoreError::NoFeasibleOperatingPoint`] if even the nominal
/// voltage cannot sustain the baseline throughput (which would indicate an
/// inconsistent policy), or [`CoreError::Library`] if an operating point is
/// missing from the library.
pub fn scale_for_iso_throughput(
    profile: ProfileKind,
    library: &CellLibrary,
    power: &PowerModel,
    trace: &PipelineTrace,
    policy_factory: &dyn Fn(&TimingModel) -> Box<dyn ClockPolicy>,
    generator: &ClockGenerator,
) -> Result<VoltageScalingResult, CoreError> {
    let activity = ActivitySummary::from_trace(trace);

    // Baseline: conventional synchronous clocking at the nominal voltage.
    let nominal_model = TimingModel::new(
        idca_timing::TimingProfile::new(profile),
        library.clone(),
        NOMINAL_VOLTAGE_MV,
    )?;
    let baseline_outcome = run_with_policy(
        &nominal_model,
        trace,
        &StaticClock::of_model(&nominal_model),
        &ClockGenerator::Ideal,
    );
    let nominal_point = library.operating_point(NOMINAL_VOLTAGE_MV)?;
    let baseline_report = power.report(&activity, &nominal_point, baseline_outcome.avg_period_ps);
    let required_mhz = baseline_outcome.effective_frequency_mhz;

    // Scan downwards from the nominal voltage for the lowest feasible point.
    let mut best: Option<(u32, f64)> = None; // (voltage_mv, avg_period_ps)
    let mut voltage_mv = NOMINAL_VOLTAGE_MV;
    while voltage_mv >= CellLibrary::MIN_MV {
        let model = TimingModel::new(
            idca_timing::TimingProfile::new(profile),
            library.clone(),
            voltage_mv,
        )?;
        let policy = policy_factory(&model);
        let outcome = run_with_policy(&model, trace, policy.as_ref(), generator);
        if outcome.effective_frequency_mhz + 1e-9 >= required_mhz {
            best = Some((voltage_mv, outcome.avg_period_ps));
        } else {
            // Delays grow monotonically as the supply drops; once the
            // throughput constraint fails it will keep failing.
            break;
        }
        voltage_mv -= CellLibrary::STEP_MV;
    }

    let (scaled_mv, scaled_period) =
        best.ok_or(CoreError::NoFeasibleOperatingPoint { required_mhz })?;
    let scaled_point = library.operating_point(scaled_mv)?;
    let scaled_report = power.report(&activity, &scaled_point, scaled_period);

    let baseline = OperatingSummary::from_report(&baseline_report);
    let scaled = OperatingSummary::from_report(&scaled_report);
    Ok(VoltageScalingResult {
        baseline,
        scaled,
        voltage_reduction_mv: NOMINAL_VOLTAGE_MV - scaled_mv,
        efficiency_gain: baseline.uw_per_mhz / scaled.uw_per_mhz,
    })
}

/// Single-pass variant of [`scale_for_iso_throughput`]: simulates `program`
/// **once**, with one [`PolicyObserver`] per characterized operating point
/// (nominal and below) plus the static baseline all riding on the same
/// streaming pass, then selects the lowest supply voltage that still meets
/// the baseline throughput. The selection rule matches the sequential scan
/// of [`scale_for_iso_throughput`] (walk downward from nominal, stop at the
/// first infeasible point), so both variants return the same result.
///
/// # Errors
///
/// Returns [`CoreError::NoFeasibleOperatingPoint`] if even the nominal
/// voltage cannot sustain the baseline throughput, [`CoreError::Library`] if
/// an operating point is missing from the library, or a wrapped
/// [`PipelineError`](idca_pipeline::PipelineError) if the benchmark fails to
/// simulate.
pub fn scale_for_iso_throughput_program(
    profile: ProfileKind,
    library: &CellLibrary,
    power: &PowerModel,
    simulator: &Simulator,
    program: &Program,
    policy_factory: &dyn Fn(&TimingModel) -> Box<dyn ClockPolicy>,
    generator: &ClockGenerator,
) -> Result<VoltageScalingResult, CoreError> {
    // Candidate voltages from the nominal point downward, plus the models
    // and policies evaluated at each of them.
    let mut voltages = Vec::new();
    let mut voltage_mv = NOMINAL_VOLTAGE_MV;
    while voltage_mv >= CellLibrary::MIN_MV {
        voltages.push(voltage_mv);
        voltage_mv -= CellLibrary::STEP_MV;
    }
    let models = voltages
        .iter()
        .map(|&mv| {
            TimingModel::new(
                idca_timing::TimingProfile::new(profile),
                library.clone(),
                mv,
            )
        })
        .collect::<Result<Vec<_>, _>>()?;
    let policies: Vec<Box<dyn ClockPolicy>> = models.iter().map(policy_factory).collect();

    let nominal_model = &models[0];
    let static_policy = StaticClock::of_model(nominal_model);
    let mut baseline_observer =
        PolicyObserver::new(nominal_model, &static_policy, &ClockGenerator::Ideal);
    let mut dynamic_observers: Vec<PolicyObserver<'_>> = models
        .iter()
        .zip(&policies)
        .map(|(model, policy)| PolicyObserver::new(model, policy.as_ref(), generator))
        .collect();

    {
        let mut observers: Vec<&mut dyn CycleObserver> = Vec::with_capacity(voltages.len() + 1);
        observers.push(&mut baseline_observer);
        for observer in &mut dynamic_observers {
            observers.push(observer);
        }
        simulator
            .run_observed(program, &mut observers)
            .map_err(CoreError::from)?;
    }

    let baseline_outcome = baseline_observer.into_outcome();
    let outcomes: Vec<RunOutcome> = dynamic_observers
        .into_iter()
        .map(PolicyObserver::into_outcome)
        .collect();
    let activity = baseline_outcome.activity;
    let nominal_point = library.operating_point(NOMINAL_VOLTAGE_MV)?;
    let baseline_report = power.report(&activity, &nominal_point, baseline_outcome.avg_period_ps);
    let required_mhz = baseline_outcome.effective_frequency_mhz;

    // Walk downward from the nominal voltage exactly like the sequential
    // scan: keep the lowest feasible point, stop at the first infeasible one
    // (delays grow monotonically as the supply drops).
    let mut best: Option<(u32, f64)> = None;
    for (&mv, outcome) in voltages.iter().zip(&outcomes) {
        if outcome.effective_frequency_mhz + 1e-9 >= required_mhz {
            best = Some((mv, outcome.avg_period_ps));
        } else {
            break;
        }
    }

    let (scaled_mv, scaled_period) =
        best.ok_or(CoreError::NoFeasibleOperatingPoint { required_mhz })?;
    let scaled_point = library.operating_point(scaled_mv)?;
    let scaled_report = power.report(&activity, &scaled_point, scaled_period);

    let baseline = OperatingSummary::from_report(&baseline_report);
    let scaled = OperatingSummary::from_report(&scaled_report);
    Ok(VoltageScalingResult {
        baseline,
        scaled,
        voltage_reduction_mv: NOMINAL_VOLTAGE_MV - scaled_mv,
        efficiency_gain: baseline.uw_per_mhz / scaled.uw_per_mhz,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::InstructionBased;
    use idca_isa::asm::Assembler;

    fn mixed_trace() -> PipelineTrace {
        let program = Assembler::new()
            .assemble(
                "        l.addi r1, r0, 0x100
                         l.addi r3, r0, 60
                 loop:   l.add  r4, r4, r3
                         l.sw   0(r1), r4
                         l.lwz  r5, 0(r1)
                         l.xor  r6, r5, r3
                         l.slli r7, r6, 2
                         l.addi r3, r3, -1
                         l.sfne r3, r0
                         l.bf   loop
                         l.nop  0
                         l.nop  1",
            )
            .unwrap();
        idca_pipeline::Simulator::new(idca_pipeline::SimConfig::default())
            .run(&program)
            .unwrap()
            .trace
    }

    #[test]
    fn voltage_scaling_lowers_supply_and_improves_efficiency() {
        let library = CellLibrary::fdsoi28();
        let power = PowerModel::new(library.clone());
        let result = scale_for_iso_throughput(
            ProfileKind::CriticalRangeOptimized,
            &library,
            &power,
            &mixed_trace(),
            &|model| Box::new(InstructionBased::from_model(model)),
            &ClockGenerator::Ideal,
        )
        .expect("a feasible operating point exists");

        assert!(
            result.voltage_reduction_mv >= 40,
            "reduction {} mV",
            result.voltage_reduction_mv
        );
        assert!(result.voltage_reduction_mv <= 120);
        assert!(result.scaled.frequency_mhz + 1e-6 >= result.baseline.frequency_mhz);
        assert!(result.efficiency_gain > 1.1);
        assert!(result.efficiency_gain_percent() > 10.0);
        assert!(result.scaled.uw_per_mhz < result.baseline.uw_per_mhz);
    }

    #[test]
    fn static_policy_cannot_scale_below_nominal() {
        // With the *static* policy as the "dynamic" candidate there is no
        // frequency headroom, so the best feasible point is the nominal one.
        let library = CellLibrary::fdsoi28();
        let power = PowerModel::new(library.clone());
        let result = scale_for_iso_throughput(
            ProfileKind::CriticalRangeOptimized,
            &library,
            &power,
            &mixed_trace(),
            &|model| Box::new(StaticClock::of_model(model)),
            &ClockGenerator::Ideal,
        )
        .unwrap();
        assert_eq!(result.voltage_reduction_mv, 0);
        assert!((result.efficiency_gain - 1.0).abs() < 1e-9);
    }

    #[test]
    fn conventional_profile_yields_smaller_voltage_reduction() {
        let library = CellLibrary::fdsoi28();
        let power = PowerModel::new(library.clone());
        let trace = mixed_trace();
        let optimized = scale_for_iso_throughput(
            ProfileKind::CriticalRangeOptimized,
            &library,
            &power,
            &trace,
            &|model| Box::new(InstructionBased::from_model(model)),
            &ClockGenerator::Ideal,
        )
        .unwrap();
        let conventional = scale_for_iso_throughput(
            ProfileKind::Conventional,
            &library,
            &power,
            &trace,
            &|model| Box::new(InstructionBased::from_model(model)),
            &ClockGenerator::Ideal,
        )
        .unwrap();
        assert!(
            optimized.voltage_reduction_mv >= conventional.voltage_reduction_mv,
            "critical-range optimization should enable at least as much voltage scaling \
             ({} mV vs {} mV)",
            optimized.voltage_reduction_mv,
            conventional.voltage_reduction_mv
        );
    }
}
