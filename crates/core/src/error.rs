use std::fmt;

/// A malformed delay-LUT JSON document (wrong structure, missing field or
/// unparsable number), reported by [`crate::DelayLut::from_json`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LutFormatError {
    message: String,
}

impl LutFormatError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        LutFormatError {
            message: message.into(),
        }
    }
}

impl fmt::Display for LutFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for LutFormatError {}

/// Errors reported by the `idca-core` crate.
#[derive(Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// A requested supply voltage is outside the characterized library range.
    Library(idca_timing::LibraryError),
    /// The pipeline simulation of a benchmark failed.
    Pipeline(idca_pipeline::PipelineError),
    /// Serializing or deserializing a delay LUT failed.
    LutSerialization(LutFormatError),
    /// No operating point satisfies the iso-throughput constraint during
    /// voltage-frequency scaling.
    NoFeasibleOperatingPoint {
        /// The throughput (MHz) that had to be preserved.
        required_mhz: f64,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Library(e) => write!(f, "cell library error: {e}"),
            CoreError::Pipeline(e) => write!(f, "pipeline simulation error: {e}"),
            CoreError::LutSerialization(e) => write!(f, "delay LUT serialization error: {e}"),
            CoreError::NoFeasibleOperatingPoint { required_mhz } => write!(
                f,
                "no characterized operating point sustains the required {required_mhz:.1} MHz"
            ),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Library(e) => Some(e),
            CoreError::Pipeline(e) => Some(e),
            CoreError::LutSerialization(e) => Some(e),
            CoreError::NoFeasibleOperatingPoint { .. } => None,
        }
    }
}

impl From<idca_pipeline::PipelineError> for CoreError {
    fn from(value: idca_pipeline::PipelineError) -> Self {
        CoreError::Pipeline(value)
    }
}

impl From<idca_timing::LibraryError> for CoreError {
    fn from(value: idca_timing::LibraryError) -> Self {
        CoreError::Library(value)
    }
}

impl From<LutFormatError> for CoreError {
    fn from(value: LutFormatError) -> Self {
        CoreError::LutSerialization(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_send_sync_and_display() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
        let e = CoreError::NoFeasibleOperatingPoint {
            required_mhz: 494.0,
        };
        assert!(e.to_string().contains("494.0 MHz"));
    }

    #[test]
    fn library_errors_convert() {
        let lib_err = idca_timing::LibraryError::VoltageOutOfRange {
            requested_mv: 100,
            min_mv: 500,
            max_mv: 900,
        };
        let core_err: CoreError = lib_err.into();
        assert!(core_err.to_string().contains("cell library"));
        assert!(std::error::Error::source(&core_err).is_some());
    }
}
