//! Online updating of the delay prediction table.
//!
//! The paper's conclusion points out that the proposed approach "could be
//! effective in accounting for other static and dynamic timing variations,
//! for example due to process, temperature and voltage fluctuations, by
//! (online-)updating of the used delay prediction table". This module
//! implements that extension: an adaptive controller that starts from a
//! conservative table (or a pre-characterized LUT), observes the actual
//! dynamic delay of every cycle through an on-chip delay monitor — modelled
//! here by the [`TimingModel`] — and updates the per-class, per-stage entries
//! at run time:
//!
//! * entries are *tightened* toward the observed delays plus a safety margin
//!   (learning the LUT in the field instead of at characterization time);
//! * whenever the monitor reports a near-violation, the affected entry is
//!   *backed off*, which lets the table track slow drift (temperature,
//!   voltage droop, aging) that would invalidate a static characterization.

use crate::{ClockGenerator, DelayLut};
use idca_isa::TimingClass;
use idca_pipeline::{
    CycleObserver, CycleRecord, DigestCycle, PipelineTrace, RunSummary, Stage, TimingDigest,
};
use idca_timing::{CycleTiming, Ps, TimingModel};
use serde::{Deserialize, Serialize};

/// Configuration of the online-adaptive clock controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// Safety margin added on top of every observed delay when tightening an
    /// entry (fraction, e.g. `0.05` = 5 %).
    pub margin: f64,
    /// Fractional increase applied to an entry whose realized period turned
    /// out to be insufficient (the monitor flagged a violation).
    pub violation_backoff: f64,
    /// Number of observations of a `(stage, class)` pair required before its
    /// entry may drop below the static period.
    pub warmup_observations: u64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            margin: 0.05,
            violation_backoff: 0.10,
            warmup_observations: 4,
        }
    }
}

/// Result of one adaptive run over a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveOutcome {
    /// Number of replayed cycles.
    pub cycles: u64,
    /// Average realized clock period in picoseconds.
    pub avg_period_ps: Ps,
    /// Effective clock frequency in MHz.
    pub effective_frequency_mhz: f64,
    /// Speedup over conventional clocking at the (drift-free) static period.
    pub speedup_over_static: f64,
    /// Cycles whose realized period undercut the actual dynamic delay.
    pub violations: u64,
    /// Cycles spent at the conservative static period while entries warmed up.
    pub warmup_cycles: u64,
}

/// Environmental drift applied on top of the nominal dynamic delays,
/// modelling temperature/voltage variation over the course of a run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Drift {
    /// No drift: delays are exactly the nominal model's.
    None,
    /// Delays grow linearly by `fraction_per_kilocycle` every 1000 cycles
    /// (e.g. self-heating slowing the core down).
    LinearSlowdown {
        /// Fractional delay increase per 1000 cycles.
        fraction_per_kilocycle: f64,
    },
}

impl Drift {
    fn factor(self, cycle: u64) -> f64 {
        match self {
            Drift::None => 1.0,
            Drift::LinearSlowdown {
                fraction_per_kilocycle,
            } => 1.0 + fraction_per_kilocycle * (cycle as f64 / 1000.0),
        }
    }
}

/// Streaming online-adaptive clock controller: a [`CycleObserver`] that
/// replays the adaptive prediction/observation/update loop on every cycle as
/// the pipeline simulator produces it. Created by [`AdaptiveObserver::new`];
/// [`run_adaptive`] drives the same accumulation from a materialized trace.
pub struct AdaptiveObserver<'a> {
    model: &'a TimingModel,
    config: AdaptiveConfig,
    generator: &'a ClockGenerator,
    drift: Drift,
    static_period: Ps,
    // `learned[idx]` is the running maximum of (observed delay × (1+margin))
    // for that (stage, class) pair; it is only *used* for prediction once the
    // pair has been observed at least `warmup_observations` times. A seed LUT
    // pre-populates the learned values (field-refinement of an existing
    // characterization instead of learning from scratch).
    learned: Vec<Ps>,
    observations: Vec<u64>,
    total_time: f64,
    violations: u64,
    warmup_cycles: u64,
    outcome: Option<AdaptiveOutcome>,
}

impl<'a> AdaptiveObserver<'a> {
    /// Creates the controller. Entries start at the static period (or at
    /// `seed_lut` when provided) so the very first occurrences of an
    /// instruction class are always safe.
    #[must_use]
    pub fn new(
        model: &'a TimingModel,
        config: &AdaptiveConfig,
        generator: &'a ClockGenerator,
        seed_lut: Option<&DelayLut>,
        drift: Drift,
    ) -> Self {
        let table_len = Stage::COUNT * TimingClass::COUNT;
        let learned: Vec<Ps> = match seed_lut {
            Some(lut) => {
                let mut t = vec![0.0; table_len];
                for stage in Stage::ALL {
                    for class in TimingClass::ALL {
                        t[stage.index() * TimingClass::COUNT + class.index()] =
                            lut.delay_ps(stage, class);
                    }
                }
                t
            }
            None => vec![0.0; table_len],
        };
        let observations = vec![
            if seed_lut.is_some() {
                config.warmup_observations
            } else {
                0
            };
            table_len
        ];
        AdaptiveObserver {
            model,
            config: *config,
            generator,
            drift,
            static_period: model.static_period_ps(),
            learned,
            observations,
            total_time: 0.0,
            violations: 0,
            warmup_cycles: 0,
            outcome: None,
        }
    }

    /// Consumes the controller and returns the outcome of the run.
    ///
    /// # Panics
    ///
    /// Panics if the simulation never called [`CycleObserver::finish`].
    #[must_use]
    pub fn into_outcome(self) -> AdaptiveOutcome {
        self.outcome
            .expect("simulation must complete (finish) before taking the outcome")
    }

    /// The current learned table entry of a `(stage, class)` pair, in
    /// picoseconds. Entries start at 0 (or at the seed LUT) and only ever
    /// grow: they are the running maximum of `observed × (1 + margin)`,
    /// plus any violation backoff. Exposed so tests can assert the
    /// convergence invariants of the online-updating outlook.
    #[must_use]
    pub fn learned_ps(&self, stage: Stage, class: TimingClass) -> Ps {
        self.learned[stage.index() * TimingClass::COUNT + class.index()]
    }

    /// How many times a `(stage, class)` pair has been observed so far.
    #[must_use]
    pub fn observation_count(&self, stage: Stage, class: TimingClass) -> u64 {
        self.observations[stage.index() * TimingClass::COUNT + class.index()]
    }

    /// The controller configuration.
    #[must_use]
    pub fn config(&self) -> &AdaptiveConfig {
        &self.config
    }

    /// Replays the predict/observe/update loop on one *digested* cycle —
    /// the replay counterpart of [`CycleObserver::observe_cycle`],
    /// bit-identical to observing the originating [`CycleRecord`].
    pub fn observe_digest(&mut self, cycle: u64, digest_cycle: &DigestCycle) {
        let timing = self.model.digest_cycle_timing(cycle, digest_cycle);
        self.observe_digest_timed(cycle, digest_cycle, &timing);
    }

    /// [`AdaptiveObserver::observe_digest`] with the cycle's
    /// [`CycleTiming`] already evaluated (shared across the observers of
    /// one replay pass).
    pub fn observe_digest_timed(
        &mut self,
        cycle: u64,
        digest_cycle: &DigestCycle,
        timing: &CycleTiming,
    ) {
        self.observe_parts(cycle, &digest_cycle.classes, timing);
    }

    /// The predict/observe/update loop shared by the live and the replay
    /// paths, driven by the per-stage classes and the cycle's dynamic
    /// delays.
    fn observe_parts(
        &mut self,
        cycle: u64,
        classes: &[TimingClass; Stage::COUNT],
        timing: &CycleTiming,
    ) {
        // 1. Predict: the controller only sees the instruction classes; any
        //    entry that is still warming up keeps the whole cycle at the
        //    always-safe static period.
        let mut requested: Ps = 0.0;
        let mut warm = true;
        for stage in Stage::ALL {
            let idx = stage.index() * TimingClass::COUNT + classes[stage.index()].index();
            if self.observations[idx] < self.config.warmup_observations {
                warm = false;
            } else {
                requested = requested.max(self.learned[idx]);
            }
        }
        if !warm {
            requested = requested.max(self.static_period);
            self.warmup_cycles += 1;
        }
        let realized = self.generator.realize(requested);

        // 2. Observe: the delay monitor reports the actual per-stage delays
        //    of the cycle (with environmental drift applied).
        let drift_factor = self.drift.factor(cycle);
        let actual_max = timing.max_delay_ps * drift_factor;
        let violated = realized + 1e-9 < actual_max;
        if violated {
            self.violations += 1;
        }
        self.total_time += realized;

        // 3. Adapt the in-flight entries.
        for stage in Stage::ALL {
            let idx = stage.index() * TimingClass::COUNT + classes[stage.index()].index();
            let observed = timing.stage(stage) * drift_factor;
            self.observations[idx] += 1;
            let target = observed * (1.0 + self.config.margin);
            if target > self.learned[idx] {
                self.learned[idx] = target;
            }
            if violated && observed + 1e-9 > realized {
                // This stage's path was (one of) the violators: back off so
                // the next occurrence gets extra headroom against the drift.
                self.learned[idx] = (self.learned[idx] * (1.0 + self.config.violation_backoff))
                    .min(self.static_period * 2.0);
            }
        }
    }
}

impl CycleObserver for AdaptiveObserver<'_> {
    fn observe_cycle(&mut self, record: &CycleRecord) {
        let mut classes = [TimingClass::Bubble; Stage::COUNT];
        for stage in Stage::ALL {
            classes[stage.index()] = record.timing_class(stage);
        }
        let timing = self.model.cycle_timing(record);
        self.observe_parts(record.cycle, &classes, &timing);
    }

    fn finish(&mut self, summary: &RunSummary) {
        let cycles = summary.cycles;
        let avg_period_ps = if cycles == 0 {
            0.0
        } else {
            self.total_time / cycles as f64
        };
        let effective_frequency_mhz = if avg_period_ps > 0.0 {
            1.0e6 / avg_period_ps
        } else {
            0.0
        };
        self.outcome = Some(AdaptiveOutcome {
            cycles,
            avg_period_ps,
            effective_frequency_mhz,
            speedup_over_static: if avg_period_ps > 0.0 {
                self.static_period / avg_period_ps
            } else {
                1.0
            },
            violations: self.violations,
            warmup_cycles: self.warmup_cycles,
        });
    }
}

/// Replays `trace` under an online-adaptive delay table.
///
/// Every cycle the controller requests the maximum table entry of the
/// classes in flight (exactly like the instruction-based policy), realizes
/// it through `generator`, and then uses the observed actual delay of the
/// cycle (scaled by `drift`) to update the table: tighten unexcited entries
/// toward `observed × (1 + margin)`, back off entries that proved too
/// optimistic. Drives the same accumulation as [`AdaptiveObserver`], so a
/// materialized trace and a streaming run produce identical outcomes.
#[must_use]
pub fn run_adaptive(
    model: &TimingModel,
    trace: &PipelineTrace,
    config: &AdaptiveConfig,
    generator: &ClockGenerator,
    seed_lut: Option<&DelayLut>,
    drift: Drift,
) -> AdaptiveOutcome {
    let mut observer = AdaptiveObserver::new(model, config, generator, seed_lut, drift);
    for record in trace.cycles() {
        observer.observe_cycle(record);
    }
    observer.finish(&RunSummary {
        cycles: trace.cycle_count(),
        retired: trace.retired(),
    });
    observer.into_outcome()
}

/// Replays a [`TimingDigest`] under the online-adaptive delay table — the
/// simulate-once / evaluate-many counterpart of [`run_adaptive`]: one
/// digested simulation can train and evaluate the controller against any
/// number of (e.g. PVT-varied) timing models without re-simulating. Drives
/// the same accumulation as [`AdaptiveObserver`] on the live pass, so the
/// outcome and the learned table are bit-identical.
#[must_use]
pub fn replay_adaptive_digest(
    model: &TimingModel,
    digest: &TimingDigest,
    config: &AdaptiveConfig,
    generator: &ClockGenerator,
    seed_lut: Option<&DelayLut>,
    drift: Drift,
) -> AdaptiveOutcome {
    let mut observer = AdaptiveObserver::new(model, config, generator, seed_lut, drift);
    digest.for_each_cycle(|cycle, dc| observer.observe_digest(cycle, dc));
    observer.finish(&digest.summary());
    observer.into_outcome()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::InstructionBased;
    use crate::run_with_policy;
    use idca_isa::asm::Assembler;
    use idca_pipeline::{SimConfig, Simulator};
    use idca_timing::ProfileKind;

    fn long_trace() -> PipelineTrace {
        let program = Assembler::new()
            .assemble(
                "        l.addi r1, r0, 0x200
                         l.addi r3, r0, 400
                 loop:   l.add  r4, r4, r3
                         l.mul  r5, r3, r4
                         l.sw   0(r1), r5
                         l.lwz  r6, 0(r1)
                         l.xor  r7, r6, r4
                         l.slli r8, r7, 3
                         l.addi r3, r3, -1
                         l.sfne r3, r0
                         l.bf   loop
                         l.nop  0
                         l.nop  1",
            )
            .unwrap();
        Simulator::new(SimConfig::default())
            .run(&program)
            .unwrap()
            .trace
    }

    #[test]
    fn adaptive_table_learns_a_speedup_from_scratch() {
        let model = TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized);
        let trace = long_trace();
        let outcome = run_adaptive(
            &model,
            &trace,
            &AdaptiveConfig::default(),
            &ClockGenerator::Ideal,
            None,
            Drift::None,
        );
        assert_eq!(
            outcome.violations, 0,
            "margin must keep the adaptation safe"
        );
        assert!(
            outcome.speedup_over_static > 1.15,
            "learned speedup {}",
            outcome.speedup_over_static
        );
        assert!(outcome.warmup_cycles < outcome.cycles / 4);
    }

    #[test]
    fn adaptive_approaches_the_precharacterized_policy() {
        let model = TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized);
        let trace = long_trace();
        let adaptive = run_adaptive(
            &model,
            &trace,
            &AdaptiveConfig::default(),
            &ClockGenerator::Ideal,
            None,
            Drift::None,
        );
        let characterized = run_with_policy(
            &model,
            &trace,
            &InstructionBased::from_model(&model),
            &ClockGenerator::Ideal,
        );
        let ratio = adaptive.effective_frequency_mhz / characterized.effective_frequency_mhz;
        // Learning online (with a 5 % margin) should recover most of the
        // statically characterized gain.
        assert!(ratio > 0.85, "adaptive recovers only {ratio} of the gain");
        assert!(ratio < 1.05);
    }

    #[test]
    fn seeded_table_starts_fast_and_stays_safe() {
        let model = TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized);
        let trace = long_trace();
        let seed = DelayLut::from_model(&model);
        let outcome = run_adaptive(
            &model,
            &trace,
            &AdaptiveConfig::default(),
            &ClockGenerator::Ideal,
            Some(&seed),
            Drift::None,
        );
        assert_eq!(outcome.violations, 0);
        assert!(outcome.speedup_over_static > 1.2);
    }

    #[test]
    fn adaptation_tracks_environmental_drift() {
        let model = TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized);
        let trace = long_trace();
        // 1 % slowdown per 1000 cycles: by the end of the run every path is
        // several percent slower than the characterization assumed.
        let drift = Drift::LinearSlowdown {
            fraction_per_kilocycle: 0.01,
        };

        // A frozen, pre-characterized LUT has no way to notice the drift.
        let frozen_lut = DelayLut::from_model(&model);
        let frozen = {
            let policy = InstructionBased::new(frozen_lut.clone());
            let mut violations = 0;
            for record in trace.cycles() {
                let requested = crate::ClockPolicy::period_ps(&policy, record);
                let actual = model.cycle_timing(record).max_delay_ps * drift.factor(record.cycle);
                if requested + 1e-9 < actual {
                    violations += 1;
                }
            }
            violations
        };
        assert!(
            frozen > 0,
            "the drift must be strong enough to break the frozen LUT"
        );

        // The adaptive table backs off as soon as the monitor reports
        // trouble and keeps the violation count dramatically lower.
        let adaptive = run_adaptive(
            &model,
            &trace,
            &AdaptiveConfig::default(),
            &ClockGenerator::Ideal,
            Some(&frozen_lut),
            drift,
        );
        assert!(
            adaptive.violations * 10 < frozen,
            "adaptive {} vs frozen {frozen}",
            adaptive.violations
        );
        assert!(adaptive.speedup_over_static > 1.05);
    }

    #[test]
    fn empty_trace_is_neutral() {
        let model = TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized);
        let empty = PipelineTrace::from_parts(vec![], 0);
        let outcome = run_adaptive(
            &model,
            &empty,
            &AdaptiveConfig::default(),
            &ClockGenerator::Ideal,
            None,
            Drift::None,
        );
        assert_eq!(outcome.cycles, 0);
        assert_eq!(outcome.violations, 0);
        assert_eq!(outcome.speedup_over_static, 1.0);
    }
}
