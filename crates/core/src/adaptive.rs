//! Online updating of the delay prediction table.
//!
//! The paper's conclusion points out that the proposed approach "could be
//! effective in accounting for other static and dynamic timing variations,
//! for example due to process, temperature and voltage fluctuations, by
//! (online-)updating of the used delay prediction table". This module
//! implements that extension: an adaptive controller that starts from a
//! conservative table (or a pre-characterized LUT), observes the actual
//! dynamic delay of every cycle through an on-chip delay monitor — modelled
//! here by the [`TimingModel`] — and updates the per-class, per-stage entries
//! at run time:
//!
//! * entries are *tightened* toward the observed delays plus a safety margin
//!   (learning the LUT in the field instead of at characterization time);
//! * whenever the monitor reports a near-violation, the affected entry is
//!   *backed off*, which lets the table track slow drift (temperature,
//!   voltage droop, aging) that would invalidate a static characterization.

use crate::{ClockGenerator, DelayLut};
use idca_isa::TimingClass;
use idca_pipeline::{
    CycleObserver, CycleRecord, DigestCycle, IrqPhase, PipelineTrace, RunSummary, Stage,
    TimingDigest,
};
use idca_timing::{
    surged, CornerBank, CycleLanes, CycleTiming, FaultPlan, IrqCursor, IrqTimeline, Ps,
    TimingModel, LANE_WIDTH,
};
use serde::{Deserialize, Serialize};

/// Configuration of the online-adaptive clock controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// Safety margin added on top of every observed delay when tightening an
    /// entry (fraction, e.g. `0.05` = 5 %).
    pub margin: f64,
    /// Fractional increase applied to an entry whose realized period turned
    /// out to be insufficient (the monitor flagged a violation).
    pub violation_backoff: f64,
    /// Number of observations of a `(stage, class)` pair required before its
    /// entry may drop below the static period.
    pub warmup_observations: u64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            margin: 0.05,
            violation_backoff: 0.10,
            warmup_observations: 4,
        }
    }
}

/// Result of one adaptive run over a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveOutcome {
    /// Number of replayed cycles.
    pub cycles: u64,
    /// Average realized clock period in picoseconds.
    pub avg_period_ps: Ps,
    /// Effective clock frequency in MHz.
    pub effective_frequency_mhz: f64,
    /// Speedup over conventional clocking at the (drift-free) static period.
    pub speedup_over_static: f64,
    /// Cycles whose realized period undercut the actual dynamic delay.
    pub violations: u64,
    /// The subset of [`AdaptiveOutcome::violations`] that occurred during
    /// exception-entry cycles (when the entry delay surge is in effect).
    /// Zero for interrupt-free runs.
    #[serde(default)]
    pub entry_violations: u64,
    /// Violating cycles caught by the fault plan's detection window and
    /// repaired at the replay penalty. Zero without a fault plan.
    pub recovered_cycles: u64,
    /// Total replay cycles charged for the recovered violations.
    pub replay_penalty_cycles: u64,
    /// Violating cycles that escaped the detection window — silent
    /// data-corruption risk.
    pub silent_risk_cycles: u64,
    /// Effective clock frequency in MHz **after** charging the replay
    /// penalty time — bit-equal to
    /// [`AdaptiveOutcome::effective_frequency_mhz`] when nothing was
    /// recovered.
    pub recovery_frequency_mhz: f64,
    /// Cycles spent at the conservative static period while entries warmed up.
    pub warmup_cycles: u64,
}

/// Environmental drift applied on top of the nominal dynamic delays,
/// modelling temperature/voltage variation over the course of a run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Drift {
    /// No drift: delays are exactly the nominal model's.
    None,
    /// Delays grow linearly by `fraction_per_kilocycle` every 1000 cycles
    /// (e.g. self-heating slowing the core down).
    LinearSlowdown {
        /// Fractional delay increase per 1000 cycles.
        fraction_per_kilocycle: f64,
    },
}

impl Drift {
    fn factor(self, cycle: u64) -> f64 {
        match self {
            Drift::None => 1.0,
            Drift::LinearSlowdown {
                fraction_per_kilocycle,
            } => 1.0 + fraction_per_kilocycle * (cycle as f64 / 1000.0),
        }
    }
}

/// Streaming online-adaptive clock controller: a [`CycleObserver`] that
/// replays the adaptive prediction/observation/update loop on every cycle as
/// the pipeline simulator produces it. Created by [`AdaptiveObserver::new`];
/// [`run_adaptive`] drives the same accumulation from a materialized trace.
pub struct AdaptiveObserver<'a> {
    model: &'a TimingModel,
    config: AdaptiveConfig,
    generator: &'a ClockGenerator,
    drift: Drift,
    static_period: Ps,
    // `learned[idx]` is the running maximum of (observed delay × (1+margin))
    // for that (stage, class) pair; it is only *used* for prediction once the
    // pair has been observed at least `warmup_observations` times. A seed LUT
    // pre-populates the learned values (field-refinement of an existing
    // characterization instead of learning from scratch).
    learned: Vec<Ps>,
    observations: Vec<u64>,
    faults: Option<&'a FaultPlan>,
    irq: Option<IrqCursor<'a>>,
    surge_factor: f64,
    total_time: f64,
    penalty_time: f64,
    violations: u64,
    entry_violations: u64,
    recovered_cycles: u64,
    replay_penalty_cycles: u64,
    silent_risk_cycles: u64,
    warmup_cycles: u64,
    outcome: Option<AdaptiveOutcome>,
}

impl<'a> AdaptiveObserver<'a> {
    /// Creates the controller. Entries start at the static period (or at
    /// `seed_lut` when provided) so the very first occurrences of an
    /// instruction class are always safe.
    #[must_use]
    pub fn new(
        model: &'a TimingModel,
        config: &AdaptiveConfig,
        generator: &'a ClockGenerator,
        seed_lut: Option<&DelayLut>,
        drift: Drift,
    ) -> Self {
        let table_len = Stage::COUNT * TimingClass::COUNT;
        let learned: Vec<Ps> = match seed_lut {
            Some(lut) => {
                let mut t = vec![0.0; table_len];
                for stage in Stage::ALL {
                    for class in TimingClass::ALL {
                        t[stage.index() * TimingClass::COUNT + class.index()] =
                            lut.delay_ps(stage, class);
                    }
                }
                t
            }
            None => vec![0.0; table_len],
        };
        let observations = vec![
            if seed_lut.is_some() {
                config.warmup_observations
            } else {
                0
            };
            table_len
        ];
        AdaptiveObserver {
            model,
            config: *config,
            generator,
            drift,
            static_period: model.static_period_ps(),
            learned,
            observations,
            faults: None,
            irq: None,
            surge_factor: 1.0,
            total_time: 0.0,
            penalty_time: 0.0,
            violations: 0,
            entry_violations: 0,
            recovered_cycles: 0,
            replay_penalty_cycles: 0,
            silent_risk_cycles: 0,
            warmup_cycles: 0,
            outcome: None,
        }
    }

    /// Attaches a [`FaultPlan`]: the cycle-computing entry points
    /// ([`CycleObserver::observe_cycle`],
    /// [`AdaptiveObserver::observe_digest`]) perturb each cycle's timing
    /// through the plan — so the controller both *suffers* the transient
    /// and *learns from* the perturbed delays — and every violation is
    /// classified through the plan's recovery model.
    /// [`AdaptiveObserver::observe_digest_timed`] expects the caller to
    /// have applied [`FaultPlan::faulted`] already.
    #[must_use]
    pub fn with_faults(mut self, faults: &'a FaultPlan) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Attaches the interrupt scenario, exactly as
    /// [`PolicyObserver::with_interrupts`](crate::PolicyObserver::with_interrupts):
    /// `surge_factor` (`1 + surge`) scales every stage delay during
    /// exception-entry cycles — so the controller both *suffers* the surge
    /// and *learns from* the surged delays — and violations on those cycles
    /// are additionally tallied as [`AdaptiveOutcome::entry_violations`].
    ///
    /// The **live** path reads each record's `irq_phase` directly — pass
    /// `None` for `timeline`. The **replay** paths rebuild phases from the
    /// digest event stream — pass the run's [`IrqTimeline`]. The
    /// cycle-computing entry points apply the surge themselves (faults
    /// first, then the surge); [`AdaptiveObserver::observe_digest_timed`]
    /// expects the caller to have applied it, like the fault factors.
    #[must_use]
    pub fn with_interrupts(mut self, timeline: Option<&'a IrqTimeline>, surge_factor: f64) -> Self {
        self.irq = timeline.map(IrqTimeline::cursor);
        self.surge_factor = surge_factor;
        self
    }

    fn entry_at(&mut self, cycle: u64) -> bool {
        self.irq
            .as_mut()
            .is_some_and(|cursor| cursor.phase(cycle) == IrqPhase::Entry)
    }

    /// Consumes the controller and returns the outcome of the run.
    ///
    /// # Panics
    ///
    /// Panics if the simulation never called [`CycleObserver::finish`].
    #[must_use]
    pub fn into_outcome(self) -> AdaptiveOutcome {
        self.outcome
            .expect("simulation must complete (finish) before taking the outcome")
    }

    /// The current learned table entry of a `(stage, class)` pair, in
    /// picoseconds. Entries start at 0 (or at the seed LUT) and only ever
    /// grow: they are the running maximum of `observed × (1 + margin)`,
    /// plus any violation backoff. Exposed so tests can assert the
    /// convergence invariants of the online-updating outlook.
    #[must_use]
    pub fn learned_ps(&self, stage: Stage, class: TimingClass) -> Ps {
        self.learned[stage.index() * TimingClass::COUNT + class.index()]
    }

    /// How many times a `(stage, class)` pair has been observed so far.
    #[must_use]
    pub fn observation_count(&self, stage: Stage, class: TimingClass) -> u64 {
        self.observations[stage.index() * TimingClass::COUNT + class.index()]
    }

    /// The controller configuration.
    #[must_use]
    pub fn config(&self) -> &AdaptiveConfig {
        &self.config
    }

    /// Replays the predict/observe/update loop on one *digested* cycle —
    /// the replay counterpart of [`CycleObserver::observe_cycle`],
    /// bit-identical to observing the originating [`CycleRecord`].
    pub fn observe_digest(&mut self, cycle: u64, digest_cycle: &DigestCycle) {
        let entry = self.entry_at(cycle);
        let timing = self.model.digest_cycle_timing(cycle, digest_cycle);
        let timing = match self.faults {
            Some(plan) => plan.faulted(cycle, &timing),
            None => timing,
        };
        let timing = if entry {
            surged(&timing, self.surge_factor)
        } else {
            timing
        };
        self.observe_parts(cycle, &digest_cycle.classes, &timing, entry);
    }

    /// [`AdaptiveObserver::observe_digest`] with the cycle's
    /// [`CycleTiming`] already evaluated (shared across the observers of
    /// one replay pass). Fault factors **and** the entry surge are the
    /// caller's responsibility; the cycle's interrupt phase still comes
    /// from the attached timeline cursor.
    pub fn observe_digest_timed(
        &mut self,
        cycle: u64,
        digest_cycle: &DigestCycle,
        timing: &CycleTiming,
    ) {
        let entry = self.entry_at(cycle);
        self.observe_parts(cycle, &digest_cycle.classes, timing, entry);
    }

    /// The predict/observe/update loop shared by the live and the replay
    /// paths, driven by the per-stage classes and the cycle's dynamic
    /// delays.
    fn observe_parts(
        &mut self,
        cycle: u64,
        classes: &[TimingClass; Stage::COUNT],
        timing: &CycleTiming,
        entry: bool,
    ) {
        // 1. Predict: the controller only sees the instruction classes; any
        //    entry that is still warming up keeps the whole cycle at the
        //    always-safe static period.
        let mut requested: Ps = 0.0;
        let mut warm = true;
        for stage in Stage::ALL {
            let idx = stage.index() * TimingClass::COUNT + classes[stage.index()].index();
            if self.observations[idx] < self.config.warmup_observations {
                warm = false;
            } else {
                requested = requested.max(self.learned[idx]);
            }
        }
        if !warm {
            requested = requested.max(self.static_period);
            self.warmup_cycles += 1;
        }
        let realized = self.generator.realize(requested);

        // 2. Observe: the delay monitor reports the actual per-stage delays
        //    of the cycle (with environmental drift applied).
        let drift_factor = self.drift.factor(cycle);
        let actual_max = timing.max_delay_ps * drift_factor;
        let violated = realized + 1e-9 < actual_max;
        if violated {
            self.violations += 1;
            self.entry_violations += u64::from(entry);
            if let Some(plan) = self.faults {
                let spec = plan.spec();
                if actual_max <= realized * (1.0 + spec.detect_window) {
                    self.recovered_cycles += 1;
                    self.replay_penalty_cycles += u64::from(spec.replay_penalty);
                    self.penalty_time += realized * f64::from(spec.replay_penalty);
                } else {
                    self.silent_risk_cycles += 1;
                }
            }
        }
        self.total_time += realized;

        // 3. Adapt the in-flight entries.
        for stage in Stage::ALL {
            let idx = stage.index() * TimingClass::COUNT + classes[stage.index()].index();
            let observed = timing.stage(stage) * drift_factor;
            self.observations[idx] += 1;
            let target = observed * (1.0 + self.config.margin);
            if target > self.learned[idx] {
                self.learned[idx] = target;
            }
            if violated && observed + 1e-9 > realized {
                // This stage's path was (one of) the violators: back off so
                // the next occurrence gets extra headroom against the drift.
                self.learned[idx] = (self.learned[idx] * (1.0 + self.config.violation_backoff))
                    .min(self.static_period * 2.0);
            }
        }
    }
}

impl CycleObserver for AdaptiveObserver<'_> {
    fn observe_cycle(&mut self, record: &CycleRecord) {
        let entry = record.irq_phase == IrqPhase::Entry;
        let mut classes = [TimingClass::Bubble; Stage::COUNT];
        for stage in Stage::ALL {
            classes[stage.index()] = record.timing_class(stage);
        }
        let timing = self.model.cycle_timing(record);
        let timing = match self.faults {
            Some(plan) => plan.faulted(record.cycle, &timing),
            None => timing,
        };
        let timing = if entry {
            surged(&timing, self.surge_factor)
        } else {
            timing
        };
        self.observe_parts(record.cycle, &classes, &timing, entry);
    }

    fn finish(&mut self, summary: &RunSummary) {
        let cycles = summary.cycles;
        let avg_period_ps = if cycles == 0 {
            0.0
        } else {
            self.total_time / cycles as f64
        };
        let effective_frequency_mhz = if avg_period_ps > 0.0 {
            1.0e6 / avg_period_ps
        } else {
            0.0
        };
        let recovery_period_ps = if cycles == 0 {
            0.0
        } else {
            (self.total_time + self.penalty_time) / cycles as f64
        };
        self.outcome = Some(AdaptiveOutcome {
            cycles,
            avg_period_ps,
            effective_frequency_mhz,
            speedup_over_static: if avg_period_ps > 0.0 {
                self.static_period / avg_period_ps
            } else {
                1.0
            },
            violations: self.violations,
            entry_violations: self.entry_violations,
            recovered_cycles: self.recovered_cycles,
            replay_penalty_cycles: self.replay_penalty_cycles,
            silent_risk_cycles: self.silent_risk_cycles,
            recovery_frequency_mhz: if recovery_period_ps > 0.0 {
                1.0e6 / recovery_period_ps
            } else {
                0.0
            },
            warmup_cycles: self.warmup_cycles,
        });
    }
}

/// Start of the lane vector of one `(stage, class)` learned-table entry in
/// the [`AdaptiveBank`]'s structure-of-arrays tables.
fn table_offset(padded: usize, stage: Stage, class: TimingClass) -> usize {
    (stage.index() * TimingClass::COUNT + class.index()) * padded
}

/// The corner-batched online-adaptive controller: the learned delay tables,
/// observation counters and run accumulators of `M` independent
/// [`AdaptiveObserver`]s packed in structure-of-arrays layout, mirroring
/// [`CornerBank`] on the timing side.
///
/// In a corner-batched digest replay the adaptive controller used to be the
/// only remaining per-corner scalar state: every corner's observer re-walked
/// its own `learned`/`observations` tables per cycle. The bank instead keys
/// each `(stage, class)` entry once per cycle (the classes come from the
/// corner-invariant digest) and folds all `M` lanes of that entry
/// contiguously — predict, realize, observe, adapt — in lane-friendly loops
/// padded to [`LANE_WIDTH`].
///
/// Every lane performs **exactly** the scalar arithmetic of
/// [`AdaptiveObserver`] in the same order, so outcome `i` is bit-identical
/// to running `AdaptiveObserver` against `models[i]` alone — pinned by the
/// unit tests here and the workspace banked-replay property tests.
pub struct AdaptiveBank<'a> {
    config: AdaptiveConfig,
    generator: &'a ClockGenerator,
    drift: Drift,
    corners: usize,
    padded: usize,
    /// Per-corner static periods (the always-safe fallback request).
    static_period: Vec<Ps>,
    /// Learned-table lanes, `(stage, class)`-major: entry
    /// `(stage.index() * TimingClass::COUNT + class.index()) * padded + lane`
    /// is corner `lane`'s running maximum of `observed × (1 + margin)`.
    learned: Vec<Ps>,
    /// Observation counters, same layout as `learned`.
    observations: Vec<u64>,
    faults: Option<FaultPlan>,
    total_time: Vec<f64>,
    penalty_time: Vec<f64>,
    violations: Vec<u64>,
    entry_violations: Vec<u64>,
    recovered_cycles: Vec<u64>,
    replay_penalty_cycles: Vec<u64>,
    silent_risk_cycles: Vec<u64>,
    warmup_cycles: Vec<u64>,
    // Per-cycle scratch, reused across the whole walk.
    requested: Vec<Ps>,
    warm: Vec<bool>,
    realized: Vec<Ps>,
    violated: Vec<bool>,
    // Lanes-path scratch (`padded` long): the realized period of violated
    // lanes, `+inf` otherwise, so the adapt pass's backoff test is one
    // `f64` compare. Padding lanes stay `+inf` forever.
    violation_limit: Vec<Ps>,
    // Lanes-path constant (`padded` long): `2 x static_period` per corner,
    // the adapt pass's backoff cap (padding lanes 0).
    backoff_cap: Vec<Ps>,
    outcomes: Option<Vec<AdaptiveOutcome>>,
}

impl<'a> AdaptiveBank<'a> {
    /// Creates one adaptive controller per model, exactly as
    /// [`AdaptiveObserver::new`] would: entries start at 0 (or at
    /// `seed_lut`, with the warmup already satisfied) so the very first
    /// occurrences of an instruction class are always safe.
    #[must_use]
    pub fn new(
        models: &[TimingModel],
        config: &AdaptiveConfig,
        generator: &'a ClockGenerator,
        seed_lut: Option<&DelayLut>,
        drift: Drift,
    ) -> Self {
        Self::from_static_periods(
            models.iter().map(TimingModel::static_period_ps).collect(),
            config,
            generator,
            seed_lut,
            drift,
        )
    }

    /// [`AdaptiveBank::new`] from the corners' static periods alone — the
    /// only model parameter the controllers consume (the dynamic delays
    /// arrive pre-evaluated through
    /// [`AdaptiveBank::observe_digest_timed`]), so callers that already
    /// hold the periods (e.g. via [`CornerBank::static_period_ps`]) need
    /// not materialize a model slice.
    #[must_use]
    pub fn from_static_periods(
        static_periods: Vec<Ps>,
        config: &AdaptiveConfig,
        generator: &'a ClockGenerator,
        seed_lut: Option<&DelayLut>,
        drift: Drift,
    ) -> Self {
        let corners = static_periods.len();
        let padded = corners.next_multiple_of(LANE_WIDTH);
        let table_len = Stage::COUNT * TimingClass::COUNT;
        let mut learned = vec![0.0; table_len * padded];
        let mut observations = vec![0u64; table_len * padded];
        if let Some(lut) = seed_lut {
            for stage in Stage::ALL {
                for class in TimingClass::ALL {
                    let at = table_offset(padded, stage, class);
                    let seeded = lut.delay_ps(stage, class);
                    for lane in 0..corners {
                        learned[at + lane] = seeded;
                        observations[at + lane] = config.warmup_observations;
                    }
                }
            }
        }
        // Padded copy of the backoff cap (`2 x` each corner's static
        // period, exactly the scalar expression hoisted out of the adapt
        // loop); padding lanes cap at 0 and are never read back.
        let mut backoff_cap = vec![0.0; padded];
        for (cap, period) in backoff_cap.iter_mut().zip(&static_periods) {
            *cap = *period * 2.0;
        }
        AdaptiveBank {
            config: *config,
            generator,
            drift,
            corners,
            padded,
            static_period: static_periods,
            learned,
            observations,
            faults: None,
            total_time: vec![0.0; corners],
            penalty_time: vec![0.0; corners],
            violations: vec![0; corners],
            entry_violations: vec![0; corners],
            recovered_cycles: vec![0; corners],
            replay_penalty_cycles: vec![0; corners],
            silent_risk_cycles: vec![0; corners],
            warmup_cycles: vec![0; corners],
            requested: vec![0.0; padded],
            warm: vec![true; padded],
            realized: vec![0.0; corners],
            violated: vec![false; corners],
            violation_limit: vec![Ps::INFINITY; padded],
            backoff_cap,
            outcomes: None,
        }
    }

    /// Attaches a [`FaultPlan`] for the recovery accounting. The per-cycle
    /// [`CycleTiming`]s handed to [`AdaptiveBank::observe_digest_timed`]
    /// must already carry the plan's perturbation (apply
    /// [`FaultPlan::faulted`] where the bank evaluator produces them) —
    /// the bank itself only classifies violations as recovered or silent
    /// risk, lane by lane, exactly like the scalar observer.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Replaces the fault plan (or clears it) without reallocating lanes —
    /// the worker-scratch path reuses one bank across sweep jobs.
    pub fn set_faults(&mut self, faults: Option<FaultPlan>) {
        self.faults = faults;
    }

    /// Clears the learned tables and run accumulators so the bank can
    /// replay another digest without reallocating its lane storage —
    /// equivalent to rebuilding it via [`AdaptiveBank::from_static_periods`]
    /// with the same periods, config, generator and drift.
    pub fn reset(&mut self, seed_lut: Option<&DelayLut>) {
        self.learned.fill(0.0);
        self.observations.fill(0);
        if let Some(lut) = seed_lut {
            for stage in Stage::ALL {
                for class in TimingClass::ALL {
                    let at = table_offset(self.padded, stage, class);
                    let seeded = lut.delay_ps(stage, class);
                    for lane in 0..self.corners {
                        self.learned[at + lane] = seeded;
                        self.observations[at + lane] = self.config.warmup_observations;
                    }
                }
            }
        }
        self.total_time.fill(0.0);
        self.penalty_time.fill(0.0);
        self.violations.fill(0);
        self.entry_violations.fill(0);
        self.recovered_cycles.fill(0);
        self.replay_penalty_cycles.fill(0);
        self.silent_risk_cycles.fill(0);
        self.warmup_cycles.fill(0);
        self.outcomes = None;
    }

    /// Number of corners in the bank (excluding padding lanes).
    #[must_use]
    pub fn corners(&self) -> usize {
        self.corners
    }

    /// `true` when the bank holds no corner.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.corners == 0
    }

    /// One corner's current learned table entry, in picoseconds — the
    /// banked counterpart of [`AdaptiveObserver::learned_ps`].
    #[must_use]
    pub fn learned_ps(&self, corner: usize, stage: Stage, class: TimingClass) -> Ps {
        self.learned[table_offset(self.padded, stage, class) + corner]
    }

    /// How many times one corner has observed a `(stage, class)` pair —
    /// the banked counterpart of [`AdaptiveObserver::observation_count`].
    #[must_use]
    pub fn observation_count(&self, corner: usize, stage: Stage, class: TimingClass) -> u64 {
        self.observations[table_offset(self.padded, stage, class) + corner]
    }

    /// Replays the predict/observe/update loop of **all** corners on one
    /// digested cycle, given the per-corner [`CycleTiming`]s a
    /// [`idca_timing::BankEvaluator`] produced for it (index = corner).
    /// Bit-identical, lane by lane, to
    /// [`AdaptiveObserver::observe_digest_timed`] on the matching model.
    ///
    /// # Panics
    ///
    /// Panics if `timings` does not carry exactly one entry per corner.
    pub fn observe_digest_timed(&mut self, cycle: u64, dc: &DigestCycle, timings: &[CycleTiming]) {
        self.observe_digest_timed_phased(cycle, dc, timings, false);
    }

    /// [`AdaptiveBank::observe_digest_timed`] with the cycle's
    /// interrupt-entry classification supplied by the caller — the bank
    /// lives in `'static` worker scratch, so it cannot hold a borrowed
    /// timeline cursor; the sweep derives the phase once per cycle from a
    /// shared [`IrqCursor`] instead. The caller must also have applied the
    /// entry surge to `timings` on entry cycles, exactly like the fault
    /// factors.
    pub fn observe_digest_timed_phased(
        &mut self,
        cycle: u64,
        dc: &DigestCycle,
        timings: &[CycleTiming],
        entry: bool,
    ) {
        assert_eq!(
            timings.len(),
            self.corners,
            "one CycleTiming per corner is required"
        );
        let padded = self.padded;

        // 1. Predict: the controllers only see the (corner-invariant)
        //    instruction classes; any entry still warming up keeps that
        //    lane's whole cycle at its always-safe static period. The fold
        //    walks each keyed entry's lanes contiguously in LANE_WIDTH
        //    chunks.
        self.requested.fill(0.0);
        self.warm.fill(true);
        for stage in Stage::ALL {
            let at = table_offset(padded, stage, dc.classes[stage.index()]);
            let lanes = self
                .requested
                .chunks_exact_mut(LANE_WIDTH)
                .zip(self.warm.chunks_exact_mut(LANE_WIDTH))
                .zip(self.learned[at..at + padded].chunks_exact(LANE_WIDTH))
                .zip(self.observations[at..at + padded].chunks_exact(LANE_WIDTH));
            for (((req4, warm4), learned4), obs4) in lanes {
                for l in 0..LANE_WIDTH {
                    if obs4[l] < self.config.warmup_observations {
                        warm4[l] = false;
                    } else {
                        req4[l] = req4[l].max(learned4[l]);
                    }
                }
            }
        }

        // 2. Realize and observe: per corner, the same arithmetic (and the
        //    same order of operations) as the scalar observer.
        let drift_factor = self.drift.factor(cycle);
        for (lane, timing) in timings.iter().enumerate() {
            let mut requested = self.requested[lane];
            if !self.warm[lane] {
                requested = requested.max(self.static_period[lane]);
                self.warmup_cycles[lane] += 1;
            }
            let realized = self.generator.realize(requested);
            let actual_max = timing.max_delay_ps * drift_factor;
            let violated = realized + 1e-9 < actual_max;
            if violated {
                self.violations[lane] += 1;
                self.entry_violations[lane] += u64::from(entry);
                if let Some(plan) = &self.faults {
                    let spec = plan.spec();
                    if actual_max <= realized * (1.0 + spec.detect_window) {
                        self.recovered_cycles[lane] += 1;
                        self.replay_penalty_cycles[lane] += u64::from(spec.replay_penalty);
                        self.penalty_time[lane] += realized * f64::from(spec.replay_penalty);
                    } else {
                        self.silent_risk_cycles[lane] += 1;
                    }
                }
            }
            self.total_time[lane] += realized;
            self.realized[lane] = realized;
            self.violated[lane] = violated;
        }

        // 3. Adapt the in-flight entries, again lane-contiguously per keyed
        //    `(stage, class)` entry.
        for stage in Stage::ALL {
            let at = table_offset(padded, stage, dc.classes[stage.index()]);
            let learned = &mut self.learned[at..at + padded];
            let observations = &mut self.observations[at..at + padded];
            for (lane, timing) in timings.iter().enumerate() {
                let observed = timing.stage_delay_ps[stage.index()] * drift_factor;
                observations[lane] += 1;
                let target = observed * (1.0 + self.config.margin);
                if target > learned[lane] {
                    learned[lane] = target;
                }
                if self.violated[lane] && observed + 1e-9 > self.realized[lane] {
                    // This lane's stage was (one of) the violators: back off
                    // so the next occurrence gets headroom against drift.
                    learned[lane] = (learned[lane] * (1.0 + self.config.violation_backoff))
                        .min(self.static_period[lane] * 2.0);
                }
            }
        }
    }

    /// [`AdaptiveBank::observe_digest_timed`] straight off a
    /// [`idca_timing::BankEvaluator`]'s structure-of-arrays [`CycleLanes`]
    /// — the hot entry point of the corner-batched sweep. No per-corner
    /// [`CycleTiming`] structs are materialized: the observe pass folds the
    /// contiguous max-delay lanes and the adapt pass folds each keyed
    /// `(stage, class)` entry against the matching contiguous stage lanes.
    /// Bit-identical, lane by lane, to the scalar observer (the hoisted
    /// `(1 + margin)`-style factors are computed exactly as the scalar
    /// expressions, just once per cycle instead of once per lane).
    ///
    /// # Panics
    ///
    /// Panics if the lanes' padded width differs from the bank's.
    pub fn observe_cycle_lanes(&mut self, cycle: u64, dc: &DigestCycle, lanes: &CycleLanes) {
        self.observe_cycle_lanes_phased(cycle, dc, lanes, false);
    }

    /// [`AdaptiveBank::observe_cycle_lanes`] with the cycle's
    /// interrupt-entry classification supplied by the caller (see
    /// [`AdaptiveBank::observe_digest_timed_phased`] for the convention:
    /// the surge must already be in `lanes`, the phase comes in as a bool).
    // `inline(never)` is load-bearing: letting this body inline into the
    // sweep's replay loop (alongside the evaluator and the three policy
    // banks) doubles the replay time at 100×8 — the merged loop spills
    // registers across every pass. Keeping it a call leaves each kernel
    // small enough to vectorize cleanly.
    #[inline(never)]
    pub fn observe_cycle_lanes_phased(
        &mut self,
        cycle: u64,
        dc: &DigestCycle,
        lanes: &CycleLanes,
        entry: bool,
    ) {
        let padded = self.padded;
        assert_eq!(lanes.padded_lanes(), padded, "lane widths must match");
        let corners = self.corners;
        if corners == 0 {
            return;
        }
        let generator = self.generator;

        // 1. Predict — identical to `observe_digest_timed`, exploiting a
        //    structural invariant of the bank: every observe pass increments
        //    the touched entry's observation count for all lanes together
        //    (and construction/reset/seed-LUT initialization is equally
        //    lane-uniform), so one entry's count is the same in every lane
        //    and warmth is a per-entry scalar. The fold then touches only
        //    `f64` lanes — no per-lane counter compares — and the warm flag
        //    collapses to one bool per cycle.
        self.requested.fill(0.0);
        let warmup = self.config.warmup_observations;
        let mut all_warm = true;
        for stage in Stage::ALL {
            let at = table_offset(padded, stage, dc.classes[stage.index()]);
            if self.observations[at] >= warmup {
                let learned = &self.learned[at..at + padded];
                let requested = &mut self.requested[..padded];
                // Comparison-select form of the scalar `f64::max` fold:
                // learned periods are finite and non-negative (never NaN
                // or -0.0), so the picked value is bit-identical — and the
                // fixed-trip inner loop gives the vectorizer a compile-time
                // width (a runtime trip of `padded` = 8 lanes stays scalar).
                let chunks = requested
                    .chunks_exact_mut(LANE_WIDTH)
                    .zip(learned.chunks_exact(LANE_WIDTH));
                for (req4, learned4) in chunks {
                    for l in 0..LANE_WIDTH {
                        let learned = learned4[l];
                        req4[l] = if learned > req4[l] { learned } else { req4[l] };
                    }
                }
            } else {
                all_warm = false;
            }
        }

        // 2. Realize and observe: the same arithmetic (and order of
        //    operations) as the scalar observer, over length-bound slices
        //    so the per-lane indexing stays check-free.
        let drift_factor = self.drift.factor(cycle);
        let recovery = self.faults.as_ref().map(|plan| {
            let spec = plan.spec();
            (
                1.0 + spec.detect_window,
                u64::from(spec.replay_penalty),
                f64::from(spec.replay_penalty),
            )
        });
        let actual_lanes = &lanes.max_lanes()[..corners];
        let requested = &self.requested[..corners];
        let static_period = &self.static_period[..corners];
        let warmup_cycles = &mut self.warmup_cycles[..corners];
        let violations = &mut self.violations[..corners];
        let entry_violations = &mut self.entry_violations[..corners];
        let recovered = &mut self.recovered_cycles[..corners];
        let replayed = &mut self.replay_penalty_cycles[..corners];
        let silent = &mut self.silent_risk_cycles[..corners];
        let penalty_time = &mut self.penalty_time[..corners];
        let total_time = &mut self.total_time[..corners];
        let violation_limit = &mut self.violation_limit[..corners];
        // Warmth is lane-uniform (see the predict pass), so the cold-lane
        // padding is one loop-invariant branch the compiler unswitches.
        let cold = !all_warm;
        for lane in 0..corners {
            let padded_up = requested[lane].max(static_period[lane]);
            let request = if cold { padded_up } else { requested[lane] };
            warmup_cycles[lane] += u64::from(cold);
            let realized = generator.realize(request);
            let actual_max = actual_lanes[lane] * drift_factor;
            let violated = realized + 1e-9 < actual_max;
            violations[lane] += u64::from(violated);
            entry_violations[lane] += u64::from(violated && entry);
            if let Some((detect_factor, penalty_cycles, penalty)) = recovery {
                let detected = violated && actual_max <= realized * detect_factor;
                recovered[lane] += u64::from(detected);
                replayed[lane] += u64::from(detected) * penalty_cycles;
                silent[lane] += u64::from(violated && !detected);
                // `x + 0.0 == x` bit-exactly for the non-negative
                // accumulator, so the select matches the scalar observer's
                // guarded add while keeping the loop branch-free.
                penalty_time[lane] += if detected { realized * penalty } else { 0.0 };
            }
            total_time[lane] += realized;
            // The adapt pass only asks "was this lane violated, and is the
            // observed delay above its realized period" — encoding the
            // non-violated case as `+inf` turns that into a single compare.
            violation_limit[lane] = if violated { realized } else { Ps::INFINITY };
        }

        // 3. Adapt the in-flight entries, lane-contiguously per keyed
        //    `(stage, class)` entry against that stage's contiguous delay
        //    lanes.
        let margin_factor = 1.0 + self.config.margin;
        let backoff_factor = 1.0 + self.config.violation_backoff;
        for stage in Stage::ALL {
            let at = table_offset(padded, stage, dc.classes[stage.index()]);
            // Separate counter bump: keeps the learn loop pure-`f64` so it
            // vectorizes without integer lanes mixed in.
            for count in &mut self.observations[at..at + corners] {
                *count += 1;
            }
            // The learn fold runs over the full padded width in fixed-trip
            // chunks (compile-time trip count, packed compare-and-blend).
            // Padding lanes carry a 0 delay, a 0 cap and a `+inf` violation
            // limit; their learned entries are never read back.
            let learned = &mut self.learned[at..at + padded];
            let observed_lanes = &lanes.stage_lanes(stage)[..padded];
            let violation_limit = &self.violation_limit[..padded];
            let backoff_cap = &self.backoff_cap[..padded];
            let chunks = learned
                .chunks_exact_mut(LANE_WIDTH)
                .zip(observed_lanes.chunks_exact(LANE_WIDTH))
                .zip(violation_limit.chunks_exact(LANE_WIDTH))
                .zip(backoff_cap.chunks_exact(LANE_WIDTH));
            for (((learned4, observed4), limit4), cap4) in chunks {
                for l in 0..LANE_WIDTH {
                    let observed = observed4[l] * drift_factor;
                    let target = observed * margin_factor;
                    let grown = if target > learned4[l] {
                        target
                    } else {
                        learned4[l]
                    };
                    // This lane's stage was (one of) the violators: back off
                    // so the next occurrence gets headroom against drift.
                    // Select form of the scalar conditional update — the
                    // `f64::min` cap as a compare-and-select over finite
                    // non-negative periods picks bit-identical values.
                    let boosted = grown * backoff_factor;
                    let backed = if boosted < cap4[l] { boosted } else { cap4[l] };
                    let backoff = observed + 1e-9 > limit4[l];
                    learned4[l] = if backoff { backed } else { grown };
                }
            }
        }
    }

    /// Finalizes every corner's outcome from the run totals — the banked
    /// counterpart of [`CycleObserver::finish`] on each scalar observer.
    pub fn finish(&mut self, summary: &RunSummary) {
        let cycles = summary.cycles;
        let outcomes = (0..self.corners)
            .map(|lane| {
                let avg_period_ps = if cycles == 0 {
                    0.0
                } else {
                    self.total_time[lane] / cycles as f64
                };
                let effective_frequency_mhz = if avg_period_ps > 0.0 {
                    1.0e6 / avg_period_ps
                } else {
                    0.0
                };
                let recovery_period_ps = if cycles == 0 {
                    0.0
                } else {
                    (self.total_time[lane] + self.penalty_time[lane]) / cycles as f64
                };
                AdaptiveOutcome {
                    cycles,
                    avg_period_ps,
                    effective_frequency_mhz,
                    speedup_over_static: if avg_period_ps > 0.0 {
                        self.static_period[lane] / avg_period_ps
                    } else {
                        1.0
                    },
                    violations: self.violations[lane],
                    entry_violations: self.entry_violations[lane],
                    recovered_cycles: self.recovered_cycles[lane],
                    replay_penalty_cycles: self.replay_penalty_cycles[lane],
                    silent_risk_cycles: self.silent_risk_cycles[lane],
                    recovery_frequency_mhz: if recovery_period_ps > 0.0 {
                        1.0e6 / recovery_period_ps
                    } else {
                        0.0
                    },
                    warmup_cycles: self.warmup_cycles[lane],
                }
            })
            .collect();
        self.outcomes = Some(outcomes);
    }

    /// Consumes the bank and returns one outcome per corner (index =
    /// corner).
    ///
    /// # Panics
    ///
    /// Panics if the replay never called [`AdaptiveBank::finish`].
    #[must_use]
    pub fn into_outcomes(self) -> Vec<AdaptiveOutcome> {
        self.outcomes
            .expect("the replay must complete (finish) before taking the outcomes")
    }

    /// [`AdaptiveBank::into_outcomes`] without consuming the bank — the
    /// worker-scratch path takes the outcomes and keeps the lane storage
    /// (after [`AdaptiveBank::reset`]) for the next job.
    ///
    /// # Panics
    ///
    /// Panics if the replay never called [`AdaptiveBank::finish`].
    #[must_use]
    pub fn take_outcomes(&mut self) -> Vec<AdaptiveOutcome> {
        self.outcomes
            .take()
            .expect("the replay must complete (finish) before taking the outcomes")
    }
}

/// Replays `trace` under an online-adaptive delay table.
///
/// Every cycle the controller requests the maximum table entry of the
/// classes in flight (exactly like the instruction-based policy), realizes
/// it through `generator`, and then uses the observed actual delay of the
/// cycle (scaled by `drift`) to update the table: tighten unexcited entries
/// toward `observed × (1 + margin)`, back off entries that proved too
/// optimistic. Drives the same accumulation as [`AdaptiveObserver`], so a
/// materialized trace and a streaming run produce identical outcomes.
#[must_use]
pub fn run_adaptive(
    model: &TimingModel,
    trace: &PipelineTrace,
    config: &AdaptiveConfig,
    generator: &ClockGenerator,
    seed_lut: Option<&DelayLut>,
    drift: Drift,
) -> AdaptiveOutcome {
    let mut observer = AdaptiveObserver::new(model, config, generator, seed_lut, drift);
    for record in trace.cycles() {
        observer.observe_cycle(record);
    }
    observer.finish(&RunSummary {
        cycles: trace.cycle_count(),
        retired: trace.retired(),
    });
    observer.into_outcome()
}

/// Replays a [`TimingDigest`] under the online-adaptive delay table — the
/// simulate-once / evaluate-many counterpart of [`run_adaptive`]: one
/// digested simulation can train and evaluate the controller against any
/// number of (e.g. PVT-varied) timing models without re-simulating. Drives
/// the same accumulation as [`AdaptiveObserver`] on the live pass, so the
/// outcome and the learned table are bit-identical.
#[must_use]
pub fn replay_adaptive_digest(
    model: &TimingModel,
    digest: &TimingDigest,
    config: &AdaptiveConfig,
    generator: &ClockGenerator,
    seed_lut: Option<&DelayLut>,
    drift: Drift,
) -> AdaptiveOutcome {
    let mut observer = AdaptiveObserver::new(model, config, generator, seed_lut, drift);
    digest.for_each_cycle(|cycle, dc| observer.observe_digest(cycle, dc));
    observer.finish(&digest.summary());
    observer.into_outcome()
}

/// Trains and evaluates one adaptive controller per model in a **single**
/// digest walk — the corner-batched counterpart of
/// [`replay_adaptive_digest`]. The per-cycle dither/excitation evaluation
/// runs once through a [`CornerBank`] and is broadcast across corners; the
/// `M` controllers' tables live in one [`AdaptiveBank`] and are updated in
/// lane-friendly folds. Outcome `i` is bit-identical to
/// `replay_adaptive_digest(&models[i], ...)` (pinned by the banked-replay
/// property tests), at a fraction of the walk cost.
#[must_use]
pub fn replay_adaptive_digest_banked(
    models: &[TimingModel],
    digest: &TimingDigest,
    config: &AdaptiveConfig,
    generator: &ClockGenerator,
    seed_lut: Option<&DelayLut>,
    drift: Drift,
) -> Vec<AdaptiveOutcome> {
    let bank = CornerBank::from_models(models);
    let mut adaptive = AdaptiveBank::new(models, config, generator, seed_lut, drift);
    bank.replay_digest(digest, |cycle, dc, timings| {
        adaptive.observe_digest_timed(cycle, dc, timings);
    });
    adaptive.finish(&digest.summary());
    adaptive.into_outcomes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::InstructionBased;
    use crate::run_with_policy;
    use idca_isa::asm::Assembler;
    use idca_pipeline::{SimConfig, Simulator};
    use idca_timing::ProfileKind;

    fn long_trace() -> PipelineTrace {
        let program = Assembler::new()
            .assemble(
                "        l.addi r1, r0, 0x200
                         l.addi r3, r0, 400
                 loop:   l.add  r4, r4, r3
                         l.mul  r5, r3, r4
                         l.sw   0(r1), r5
                         l.lwz  r6, 0(r1)
                         l.xor  r7, r6, r4
                         l.slli r8, r7, 3
                         l.addi r3, r3, -1
                         l.sfne r3, r0
                         l.bf   loop
                         l.nop  0
                         l.nop  1",
            )
            .unwrap();
        Simulator::new(SimConfig::default())
            .run(&program)
            .unwrap()
            .trace
    }

    #[test]
    fn adaptive_table_learns_a_speedup_from_scratch() {
        let model = TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized);
        let trace = long_trace();
        let outcome = run_adaptive(
            &model,
            &trace,
            &AdaptiveConfig::default(),
            &ClockGenerator::Ideal,
            None,
            Drift::None,
        );
        assert_eq!(
            outcome.violations, 0,
            "margin must keep the adaptation safe"
        );
        assert!(
            outcome.speedup_over_static > 1.15,
            "learned speedup {}",
            outcome.speedup_over_static
        );
        assert!(outcome.warmup_cycles < outcome.cycles / 4);
    }

    #[test]
    fn adaptive_approaches_the_precharacterized_policy() {
        let model = TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized);
        let trace = long_trace();
        let adaptive = run_adaptive(
            &model,
            &trace,
            &AdaptiveConfig::default(),
            &ClockGenerator::Ideal,
            None,
            Drift::None,
        );
        let characterized = run_with_policy(
            &model,
            &trace,
            &InstructionBased::from_model(&model),
            &ClockGenerator::Ideal,
        );
        let ratio = adaptive.effective_frequency_mhz / characterized.effective_frequency_mhz;
        // Learning online (with a 5 % margin) should recover most of the
        // statically characterized gain.
        assert!(ratio > 0.85, "adaptive recovers only {ratio} of the gain");
        assert!(ratio < 1.05);
    }

    #[test]
    fn seeded_table_starts_fast_and_stays_safe() {
        let model = TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized);
        let trace = long_trace();
        let seed = DelayLut::from_model(&model);
        let outcome = run_adaptive(
            &model,
            &trace,
            &AdaptiveConfig::default(),
            &ClockGenerator::Ideal,
            Some(&seed),
            Drift::None,
        );
        assert_eq!(outcome.violations, 0);
        assert!(outcome.speedup_over_static > 1.2);
    }

    #[test]
    fn adaptation_tracks_environmental_drift() {
        let model = TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized);
        let trace = long_trace();
        // 1 % slowdown per 1000 cycles: by the end of the run every path is
        // several percent slower than the characterization assumed.
        let drift = Drift::LinearSlowdown {
            fraction_per_kilocycle: 0.01,
        };

        // A frozen, pre-characterized LUT has no way to notice the drift.
        let frozen_lut = DelayLut::from_model(&model);
        let frozen = {
            let policy = InstructionBased::new(frozen_lut.clone());
            let mut violations = 0;
            for record in trace.cycles() {
                let requested = crate::ClockPolicy::period_ps(&policy, record);
                let actual = model.cycle_timing(record).max_delay_ps * drift.factor(record.cycle);
                if requested + 1e-9 < actual {
                    violations += 1;
                }
            }
            violations
        };
        assert!(
            frozen > 0,
            "the drift must be strong enough to break the frozen LUT"
        );

        // The adaptive table backs off as soon as the monitor reports
        // trouble and keeps the violation count dramatically lower.
        let adaptive = run_adaptive(
            &model,
            &trace,
            &AdaptiveConfig::default(),
            &ClockGenerator::Ideal,
            Some(&frozen_lut),
            drift,
        );
        assert!(
            adaptive.violations * 10 < frozen,
            "adaptive {} vs frozen {frozen}",
            adaptive.violations
        );
        assert!(adaptive.speedup_over_static > 1.05);
    }

    fn varied_models(count: u32, master_seed: u64) -> Vec<TimingModel> {
        use idca_timing::VariationModel;
        let nominal = TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized);
        let vm = VariationModel::default();
        (0..count)
            .map(|i| vm.apply(&nominal, &vm.sample_corner(master_seed, i)))
            .collect()
    }

    #[test]
    fn adaptive_bank_is_bit_identical_to_scalar_observers() {
        let digest = TimingDigest::from_trace(&long_trace());
        let config = AdaptiveConfig::default();
        // Corner counts straddling the lane width, plus both seeding modes
        // and a non-trivial drift (which exercises the backoff path).
        for corners in [1usize, 3, 4, 5, 8] {
            let models = varied_models(corners as u32, 0xADA7);
            let seed = DelayLut::from_model(&models[0]);
            for (seed_lut, drift) in [
                (None, Drift::None),
                (
                    Some(&seed),
                    Drift::LinearSlowdown {
                        fraction_per_kilocycle: 0.02,
                    },
                ),
            ] {
                let banked = replay_adaptive_digest_banked(
                    &models,
                    &digest,
                    &config,
                    &ClockGenerator::Ideal,
                    seed_lut,
                    drift,
                );
                assert_eq!(banked.len(), corners);
                for (corner, model) in models.iter().enumerate() {
                    let scalar = replay_adaptive_digest(
                        model,
                        &digest,
                        &config,
                        &ClockGenerator::Ideal,
                        seed_lut,
                        drift,
                    );
                    assert_eq!(banked[corner], scalar, "corners {corners} lane {corner}");
                }
            }
        }
    }

    #[test]
    fn adaptive_bank_learned_tables_match_the_scalar_observer() {
        let digest = TimingDigest::from_trace(&long_trace());
        let models = varied_models(3, 7);
        let config = AdaptiveConfig::default();
        let corner_bank = idca_timing::CornerBank::from_models(&models);
        let mut bank =
            AdaptiveBank::new(&models, &config, &ClockGenerator::Ideal, None, Drift::None);
        corner_bank.replay_digest(&digest, |cycle, dc, timings| {
            bank.observe_digest_timed(cycle, dc, timings);
        });
        for (corner, model) in models.iter().enumerate() {
            let mut scalar =
                AdaptiveObserver::new(model, &config, &ClockGenerator::Ideal, None, Drift::None);
            digest.for_each_cycle(|cycle, dc| scalar.observe_digest(cycle, dc));
            for stage in Stage::ALL {
                for class in TimingClass::ALL {
                    assert_eq!(
                        bank.learned_ps(corner, stage, class),
                        scalar.learned_ps(stage, class)
                    );
                    assert_eq!(
                        bank.observation_count(corner, stage, class),
                        scalar.observation_count(stage, class)
                    );
                }
            }
        }
    }

    #[test]
    fn empty_adaptive_bank_is_inert() {
        let digest = TimingDigest::from_trace(&long_trace());
        let outcomes = replay_adaptive_digest_banked(
            &[],
            &digest,
            &AdaptiveConfig::default(),
            &ClockGenerator::Ideal,
            None,
            Drift::None,
        );
        assert!(outcomes.is_empty());
    }

    #[test]
    fn empty_trace_is_neutral() {
        let model = TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized);
        let empty = PipelineTrace::from_parts(vec![], 0);
        let outcome = run_adaptive(
            &model,
            &empty,
            &AdaptiveConfig::default(),
            &ClockGenerator::Ideal,
            None,
            Drift::None,
        );
        assert_eq!(outcome.cycles, 0);
        assert_eq!(outcome.violations, 0);
        assert_eq!(outcome.speedup_over_static, 1.0);
    }
}
