//! Tunable clock-generator models.
//!
//! The paper assumes a clock generator (CG) whose period can be adjusted on
//! a cycle-by-cycle basis — e.g. a tunable ring oscillator with a muxed
//! output or a multi-PLL clocking unit — and explicitly leaves its circuit
//! design out of scope. We model the CG as a function from the *requested*
//! period (what the delay LUT asks for) to the *realized* period (what the
//! hardware can actually produce), which lets the benches quantify how much
//! of the gain survives period quantization.

use idca_timing::Ps;
use serde::{Deserialize, Serialize};

/// A model of the tunable clock generator.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ClockGenerator {
    /// An ideal generator that can produce any requested period exactly.
    #[default]
    Ideal,
    /// A generator with a fixed period granularity: requested periods are
    /// rounded *up* to the next multiple of `step_ps` (never down, which
    /// would cause timing violations) and clamped to `[min_ps, max_ps]`.
    Quantized {
        /// Period granularity in picoseconds.
        step_ps: Ps,
        /// Shortest producible period.
        min_ps: Ps,
        /// Longest producible period.
        max_ps: Ps,
    },
    /// A generator offering a fixed set of discrete periods (e.g. a bank of
    /// PLL-derived clocks muxed per cycle). The smallest period that is no
    /// shorter than the request is selected; if none exists the longest
    /// available period is used.
    DiscreteLevels {
        /// The available periods in picoseconds (any order).
        periods_ps: Vec<Ps>,
    },
}

impl ClockGenerator {
    /// A quantized generator with sensible defaults: 50 ps steps between
    /// 600 ps and 2400 ps.
    #[must_use]
    pub fn quantized_50ps() -> Self {
        ClockGenerator::Quantized {
            step_ps: 50.0,
            min_ps: 600.0,
            max_ps: 2400.0,
        }
    }

    /// A discrete generator with `levels` periods spread uniformly between
    /// `fastest_ps` and `slowest_ps` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `levels < 2` or `fastest_ps >= slowest_ps`.
    #[must_use]
    pub fn discrete(levels: usize, fastest_ps: Ps, slowest_ps: Ps) -> Self {
        assert!(
            levels >= 2,
            "a discrete clock generator needs at least two levels"
        );
        assert!(
            fastest_ps < slowest_ps,
            "fastest period must be shorter than slowest"
        );
        let step = (slowest_ps - fastest_ps) / (levels - 1) as f64;
        ClockGenerator::DiscreteLevels {
            periods_ps: (0..levels).map(|i| fastest_ps + step * i as f64).collect(),
        }
    }

    /// Maps a requested period to the period the generator actually produces.
    ///
    /// The realized period is never shorter than the request (except when the
    /// request exceeds the generator's range, in which case the longest
    /// available period is produced — the caller's violation check will
    /// flag the consequences).
    #[must_use]
    pub fn realize(&self, requested_ps: Ps) -> Ps {
        match self {
            ClockGenerator::Ideal => requested_ps,
            ClockGenerator::Quantized {
                step_ps,
                min_ps,
                max_ps,
            } => {
                let stepped = (requested_ps / step_ps).ceil() * step_ps;
                stepped.clamp(*min_ps, *max_ps)
            }
            ClockGenerator::DiscreteLevels { periods_ps } => {
                let mut best: Option<Ps> = None;
                let mut longest = Ps::NEG_INFINITY;
                for &p in periods_ps {
                    longest = longest.max(p);
                    if p >= requested_ps {
                        best = Some(best.map_or(p, |b: Ps| b.min(p)));
                    }
                }
                best.unwrap_or(longest)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_generator_is_transparent() {
        assert_eq!(ClockGenerator::Ideal.realize(1234.5), 1234.5);
    }

    #[test]
    fn quantized_generator_rounds_up() {
        let cg = ClockGenerator::quantized_50ps();
        assert_eq!(cg.realize(1401.0), 1450.0);
        assert_eq!(cg.realize(1450.0), 1450.0);
        assert_eq!(cg.realize(100.0), 600.0);
        assert_eq!(cg.realize(9999.0), 2400.0);
    }

    #[test]
    fn discrete_generator_picks_smallest_safe_level() {
        let cg = ClockGenerator::discrete(4, 1000.0, 2200.0);
        // Levels: 1000, 1400, 1800, 2200.
        assert_eq!(cg.realize(1350.0), 1400.0);
        assert_eq!(cg.realize(1800.0), 1800.0);
        assert_eq!(cg.realize(900.0), 1000.0);
        // Out-of-range request falls back to the slowest level.
        assert_eq!(cg.realize(5000.0), 2200.0);
    }

    #[test]
    fn realized_period_never_undercuts_request_within_range() {
        let generators = [
            ClockGenerator::Ideal,
            ClockGenerator::quantized_50ps(),
            ClockGenerator::discrete(8, 800.0, 2400.0),
        ];
        for cg in &generators {
            for request in [800.0, 1111.0, 1450.5, 1899.0, 2026.0] {
                assert!(
                    cg.realize(request) >= request,
                    "{cg:?} undercuts the requested {request} ps"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least two levels")]
    fn discrete_with_one_level_panics() {
        let _ = ClockGenerator::discrete(1, 1000.0, 2000.0);
    }
}
