//! Fig. 5 — histogram of per-cycle dynamic maximum delays over all pipeline
//! stages, its mean (paper: 1334 ps vs the 2026 ps static limit) and the
//! genie-aided speedup bound (paper: ~50 %).

use criterion::{criterion_group, criterion_main, Criterion};
use idca_bench::{paper, Experiments, CHARACTERIZATION_SEED};
use idca_pipeline::{SimConfig, Simulator};
use idca_timing::dta::DynamicTimingAnalysis;
use idca_workloads::suite::characterization_workload;
use std::hint::black_box;

fn bench_fig5(c: &mut Criterion) {
    let exp = Experiments::prepare();

    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    group.bench_function("streaming_characterization_sim_plus_dta", |b| {
        // One fused pass: simulate the characterization workload with the
        // DTA riding along as a streaming observer (no trace materialized).
        let workload = characterization_workload(CHARACTERIZATION_SEED);
        let simulator = Simulator::new(SimConfig::default());
        b.iter(|| {
            let mut dta = DynamicTimingAnalysis::streaming(black_box(&exp.model));
            simulator
                .run_observed(black_box(&workload.program), &mut [&mut dta])
                .expect("characterization runs");
            dta.into_analysis()
        })
    });
    group.finish();

    let fig5 = exp.fig5();
    println!(
        "\n[fig5] mean per-cycle delay: {:.0} ps (paper {:.0} ps)",
        fig5.mean_delay_ps,
        paper::FIG5_MEAN_PS
    );
    println!(
        "[fig5] static limit:         {:.0} ps (paper {:.0} ps)",
        fig5.static_period_ps,
        paper::STATIC_PERIOD_PS
    );
    println!(
        "[fig5] genie speedup:        {:.1} % (paper {:.0} %)",
        fig5.genie_speedup_percent,
        paper::GENIE_SPEEDUP_PERCENT
    );
    println!("[fig5] delay histogram:\n{}", fig5.histogram.to_ascii(50));
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
