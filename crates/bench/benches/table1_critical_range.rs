//! Table I — effect of the critical-range optimization on the per-class
//! worst-case dynamic delays (factor = optimized / conventional; paper:
//! l.add 0.92, l.bf 0.78, l.j 0.74, l.lwz 0.85, l.mul 1.10, l.nop 0.78,
//! l.sw 0.85) plus the 9 % static-period cost of the optimization.

use criterion::{criterion_group, criterion_main, Criterion};
use idca_bench::Experiments;
use idca_isa::TimingClass;
use idca_timing::{ProfileKind, TimingProfile};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(20);
    group.bench_function("profile_construction_and_factor_extraction", |b| {
        b.iter(|| {
            TimingClass::INSTRUCTION_CLASSES
                .iter()
                .map(|&class| TimingProfile::max_delay_factor(black_box(class)))
                .sum::<f64>()
        })
    });
    group.finish();

    let exp = Experiments::prepare();
    println!("\n[table1] instruction        measured   paper");
    for row in exp.table1() {
        match row.paper {
            Some(p) => println!(
                "[table1] {:<18} {:>8.2} {:>7.2}",
                row.class.label(),
                row.factor,
                p
            ),
            None => println!(
                "[table1] {:<18} {:>8.2}       -",
                row.class.label(),
                row.factor
            ),
        }
    }
    let conventional = TimingProfile::new(ProfileKind::Conventional);
    let optimized = TimingProfile::new(ProfileKind::CriticalRangeOptimized);
    println!(
        "[table1] STA period increase: {:.1} % (paper 9 %)",
        (optimized.static_period_ps() / conventional.static_period_ps() - 1.0) * 100.0
    );
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
