//! §IV-B — converting the frequency gain into a supply-voltage reduction at
//! iso-throughput (paper: ~70 mV lower supply, 13.7 → 11.0 µW/MHz, a 24 %
//! energy-efficiency improvement).

use criterion::{criterion_group, criterion_main, Criterion};
use idca_bench::{paper, Experiments};
use idca_timing::ActivitySummary;
use std::hint::black_box;
use std::time::Duration;

fn bench_power(c: &mut Criterion) {
    let exp = Experiments::prepare();

    let mut group = c.benchmark_group("power");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(8));
    group.bench_function("iso_throughput_voltage_scaling", |b| {
        b.iter(|| black_box(&exp).power_scaling())
    });
    group.finish();

    // Conventional-clocking efficiency at the nominal voltage.
    let baseline_outcome = exp.baseline_outcome("core_matrix");
    let nominal = exp.library.operating_point(700).expect("nominal point");
    let baseline_report = exp.power.report(
        &ActivitySummary {
            cycles: baseline_outcome.cycles,
            execute_active_cycles: baseline_outcome.activity.execute_active_cycles,
            memory_accesses: baseline_outcome.activity.memory_accesses,
            multiplications: baseline_outcome.activity.multiplications,
        },
        &nominal,
        baseline_outcome.avg_period_ps,
    );
    println!(
        "\n[power] conventional clocking at 0.70 V: {:.2} µW/MHz (paper {:.1})",
        baseline_report.uw_per_mhz,
        paper::POWER_BASELINE_UW_PER_MHZ
    );

    let result = exp.power_scaling();
    println!(
        "[power] scaled: {} mV, {:.1} MHz, {:.2} µW/MHz (paper {:.1} µW/MHz at ~70 mV lower)",
        result.scaled.voltage_mv,
        result.scaled.frequency_mhz,
        result.scaled.uw_per_mhz,
        paper::POWER_SCALED_UW_PER_MHZ
    );
    println!(
        "[power] supply reduction {} mV, efficiency gain {:.1} % (paper {:.0} %)",
        result.voltage_reduction_mv,
        result.efficiency_gain_percent(),
        paper::POWER_GAIN_PERCENT
    );
}

criterion_group!(benches, bench_power);
criterion_main!(benches);
