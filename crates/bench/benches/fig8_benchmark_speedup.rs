//! Fig. 8 — effective clock frequency of every benchmark under conventional
//! clocking and under instruction-based dynamic clock adjustment (paper:
//! 494 MHz → 680 MHz on average, a 38 % gain, with no timing violations).

use criterion::{criterion_group, criterion_main, Criterion};
use idca_bench::{paper, Experiments};
use std::hint::black_box;
use std::time::Duration;

fn bench_fig8(c: &mut Criterion) {
    let exp = Experiments::prepare();

    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(8));
    group.bench_function("evaluate_full_suite_static_vs_dynamic", |b| {
        b.iter(|| black_box(&exp).fig8())
    });
    group.finish();

    let (rows, summary) = exp.fig8();
    println!("\n[fig8] benchmark               static MHz  dynamic MHz  speedup");
    for row in &rows {
        println!(
            "[fig8] {:<24} {:>9.1} {:>12.1} {:>7.1}%",
            row.benchmark, row.static_mhz, row.dynamic_mhz, row.speedup_percent
        );
    }
    println!(
        "[fig8] average {:.1} -> {:.1} MHz (+{:.1} %); paper {:.0} -> {:.0} MHz (+{:.0} %)",
        summary.mean_baseline_frequency_mhz(),
        summary.mean_dynamic_frequency_mhz(),
        (summary.mean_speedup() - 1.0) * 100.0,
        paper::FIG8_BASELINE_MHZ,
        paper::FIG8_DYNAMIC_MHZ,
        paper::FIG8_SPEEDUP_PERCENT
    );
    println!(
        "[fig8] suite timing violations: {}",
        summary.total_violations()
    );
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
