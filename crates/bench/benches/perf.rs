//! Perf harness for the hot paths: `run_observed` over the 14-kernel
//! suite, digest replay vs direct simulation on a generated program, and
//! the two-phase PVT sweep at 20×4 (vs the single-phase reference). This is
//! the wall-clock trajectory the repo tracks; `repro bench --json` turns
//! the same sweep measurement into `BENCH_sweep.json` for CI.

use criterion::{criterion_group, criterion_main, Criterion};
use idca_bench::sweep::{pvt_sweep, pvt_sweep_direct};
use idca_bench::SweepConfig;
use idca_core::{
    policy::{InstructionBased, StaticClock},
    replay_digest, ClockGenerator, PolicyObserver,
};
use idca_gen::{generate_program, nth_seed, GenConfig};
use idca_pipeline::{DigestObserver, SimBuffers, SimConfig, Simulator};
use idca_timing::{ProfileKind, TimingModel};
use idca_workloads::benchmark_suite;
use std::hint::black_box;

fn bench_run_observed_suite(c: &mut Criterion) {
    let suite = benchmark_suite();
    let simulator = Simulator::new(SimConfig::default());
    let mut group = c.benchmark_group("perf");
    group.sample_size(10);
    group.bench_function("run_observed_14_kernel_suite", |b| {
        let mut buffers = SimBuffers::for_config(simulator.config());
        b.iter(|| {
            let mut cycles = 0u64;
            for workload in &suite {
                let summary = simulator
                    .run_observed_with_buffers(black_box(&workload.program), &mut [], &mut buffers)
                    .expect("kernels run");
                cycles += summary.cycles;
            }
            cycles
        })
    });
    group.finish();
}

fn bench_digest_replay_vs_direct(c: &mut Criterion) {
    let model = TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized);
    let simulator = Simulator::new(SimConfig::default());
    let program = generate_program(nth_seed(7, 0), &GenConfig::default());
    let static_policy = StaticClock::of_model(&model);
    let lut_policy = InstructionBased::from_model(&model);

    let mut observer = DigestObserver::new();
    simulator
        .run_observed(&program, &mut [&mut observer])
        .expect("program runs");
    let digest = observer.into_digest();

    let mut group = c.benchmark_group("perf");
    group.sample_size(20);
    group.bench_function("policy_eval_direct_simulation", |b| {
        b.iter(|| {
            let mut ob_static = PolicyObserver::new(&model, &static_policy, &ClockGenerator::Ideal);
            let mut ob_lut = PolicyObserver::new(&model, &lut_policy, &ClockGenerator::Ideal);
            simulator
                .run_observed(black_box(&program), &mut [&mut ob_static, &mut ob_lut])
                .expect("program runs");
            (ob_static.into_outcome(), ob_lut.into_outcome())
        })
    });
    group.bench_function("policy_eval_digest_replay", |b| {
        b.iter(|| {
            (
                replay_digest(
                    &model,
                    black_box(&digest),
                    &static_policy,
                    &ClockGenerator::Ideal,
                ),
                replay_digest(&model, &digest, &lut_policy, &ClockGenerator::Ideal),
            )
        })
    });
    group.finish();
}

fn bench_pvt_sweep(c: &mut Criterion) {
    let config = SweepConfig {
        seeds: 20,
        corners: 4,
        master_seed: 7,
        ..SweepConfig::default()
    };
    let mut group = c.benchmark_group("perf");
    group.sample_size(10);
    group.bench_function("pvt_sweep_20x4_two_phase", |b| {
        b.iter(|| pvt_sweep(black_box(&config)))
    });
    group.bench_function("pvt_sweep_20x4_direct_reference", |b| {
        b.iter(|| pvt_sweep_direct(black_box(&config)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_run_observed_suite,
    bench_digest_replay_vs_direct,
    bench_pvt_sweep
);
criterion_main!(benches);
