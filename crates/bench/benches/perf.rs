//! Perf harness for the hot paths: `run_observed` over the 14-kernel
//! suite, digest replay vs direct simulation on a generated program, and
//! the two-phase PVT sweep at 20×4 (vs the single-phase reference). This is
//! the wall-clock trajectory the repo tracks; `repro bench --json` turns
//! the same sweep measurement into `BENCH_sweep.json` for CI.

use criterion::{criterion_group, criterion_main, Criterion};
use idca_bench::sweep::{pvt_sweep, pvt_sweep_direct};
use idca_bench::SweepConfig;
use idca_core::{
    policy::{ClockPolicy, ExecuteOnly, InstructionBased, StaticClock},
    replay_digest, AdaptiveBank, AdaptiveConfig, ClockGenerator, DelayLut, Drift, PolicyBank,
    PolicyObserver,
};
use idca_gen::{generate_program, nth_seed, GenConfig};
use idca_pipeline::{CycleObserver, DigestObserver, SimBuffers, SimConfig, Simulator};
use idca_timing::{CornerBank, ProfileKind, Ps, TimingModel, VariationModel};
use idca_workloads::benchmark_suite;
use std::hint::black_box;

fn bench_run_observed_suite(c: &mut Criterion) {
    let suite = benchmark_suite();
    let simulator = Simulator::new(SimConfig::default());
    let mut group = c.benchmark_group("perf");
    group.sample_size(10);
    group.bench_function("run_observed_14_kernel_suite", |b| {
        let mut buffers = SimBuffers::for_config(simulator.config());
        b.iter(|| {
            let mut cycles = 0u64;
            for workload in &suite {
                let summary = simulator
                    .run_observed_with_buffers(black_box(&workload.program), &mut [], &mut buffers)
                    .expect("kernels run");
                cycles += summary.cycles;
            }
            cycles
        })
    });
    group.finish();
}

fn bench_digest_replay_vs_direct(c: &mut Criterion) {
    let model = TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized);
    let simulator = Simulator::new(SimConfig::default());
    let program = generate_program(nth_seed(7, 0), &GenConfig::default());
    let static_policy = StaticClock::of_model(&model);
    let lut_policy = InstructionBased::from_model(&model);

    let mut observer = DigestObserver::new();
    simulator
        .run_observed(&program, &mut [&mut observer])
        .expect("program runs");
    let digest = observer.into_digest();

    let mut group = c.benchmark_group("perf");
    group.sample_size(20);
    group.bench_function("policy_eval_direct_simulation", |b| {
        b.iter(|| {
            let mut ob_static = PolicyObserver::new(&model, &static_policy, &ClockGenerator::Ideal);
            let mut ob_lut = PolicyObserver::new(&model, &lut_policy, &ClockGenerator::Ideal);
            simulator
                .run_observed(black_box(&program), &mut [&mut ob_static, &mut ob_lut])
                .expect("program runs");
            (ob_static.into_outcome(), ob_lut.into_outcome())
        })
    });
    group.bench_function("policy_eval_digest_replay", |b| {
        b.iter(|| {
            (
                replay_digest(
                    &model,
                    black_box(&digest),
                    &static_policy,
                    &ClockGenerator::Ideal,
                ),
                replay_digest(&model, &digest, &lut_policy, &ClockGenerator::Ideal),
            )
        })
    });
    group.finish();
}

fn bench_pvt_sweep(c: &mut Criterion) {
    let config = SweepConfig {
        seeds: 20,
        corners: 4,
        master_seed: 7,
        ..SweepConfig::default()
    };
    let mut group = c.benchmark_group("perf");
    group.sample_size(10);
    group.bench_function("pvt_sweep_20x4_two_phase", |b| {
        b.iter(|| pvt_sweep(black_box(&config)))
    });
    group.bench_function("pvt_sweep_20x4_direct_reference", |b| {
        b.iter(|| pvt_sweep_direct(black_box(&config)))
    });
    group.finish();
}

/// The corner-batched replay kernel in isolation: one digest walked once
/// against `M` corners through the SoA [`CycleLanes`] evaluation, the three
/// [`PolicyBank`]s and the [`AdaptiveBank`] — exactly the sweep's phase-2
/// inner loop — next to the lane-by-lane scalar reference it replaced.
fn bench_policy_bank_kernel(c: &mut Criterion) {
    let base = TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized);
    let vm = VariationModel::default();
    let program = generate_program(nth_seed(7, 0), &GenConfig::default());
    let mut observer = DigestObserver::new();
    Simulator::new(SimConfig::default())
        .run_observed(&program, &mut [&mut observer])
        .expect("program runs");
    let digest = observer.into_digest();
    let summary = digest.summary();
    let lut_policy = InstructionBased::from_model(&base);
    let exec_policy = ExecuteOnly::new(DelayLut::from_model(&base));

    let mut group = c.benchmark_group("perf");
    group.sample_size(20);
    for corners in [8u32, 32] {
        let models: Vec<TimingModel> = (0..corners)
            .map(|i| vm.apply(&base, &vm.sample_corner(7, i)))
            .collect();
        let static_requests: Vec<Ps> = models
            .iter()
            .map(|m| StaticClock::of_model(m).period())
            .collect();
        let bank = CornerBank::from_models(&models);
        let id = format!("policy_bank_replay_{corners}_corners");
        group.bench_function(id.as_str(), |b| {
            let config = AdaptiveConfig::default();
            let mut bank_static = PolicyBank::new("static", models.len(), &ClockGenerator::Ideal);
            let mut bank_lut =
                PolicyBank::new("instruction-based", models.len(), &ClockGenerator::Ideal);
            let mut bank_exec =
                PolicyBank::new("execute-only", models.len(), &ClockGenerator::Ideal);
            let mut adaptive =
                AdaptiveBank::new(&models, &config, &ClockGenerator::Ideal, None, Drift::None);
            let mut evaluator = bank.evaluator();
            b.iter(|| {
                bank_static.reset();
                bank_lut.reset();
                bank_exec.reset();
                adaptive.reset(None);
                digest.for_each_run(|start, len, dc| {
                    bank_lut.begin_block(lut_policy.digest_period_ps(start, dc));
                    bank_exec.begin_block(exec_policy.digest_period_ps(start, dc));
                    bank_static.begin_block_per_corner(&static_requests);
                    for cycle in start..start + u64::from(len) {
                        let lanes = &*evaluator.cycle_lanes(cycle, dc);
                        bank_static.observe_actuals(lanes.max_lanes());
                        bank_lut.observe_actuals(lanes.max_lanes());
                        bank_exec.observe_actuals(lanes.max_lanes());
                        adaptive.observe_cycle_lanes(cycle, dc, lanes);
                    }
                });
                bank_static.finish(&summary);
                bank_lut.finish(&summary);
                bank_exec.finish(&summary);
                adaptive.finish(&summary);
                (
                    bank_static.take_outcomes(),
                    bank_lut.take_outcomes(),
                    bank_exec.take_outcomes(),
                    adaptive.take_outcomes(),
                )
            })
        });
        let id = format!("scalar_observers_replay_{corners}_corners");
        group.bench_function(id.as_str(), |b| {
            b.iter(|| {
                let mut violations = 0u64;
                for (corner, model) in models.iter().enumerate() {
                    let static_policy = StaticClock::new(static_requests[corner]);
                    let mut ob_static =
                        PolicyObserver::new(model, &static_policy, &ClockGenerator::Ideal);
                    let mut ob_lut =
                        PolicyObserver::new(model, &lut_policy, &ClockGenerator::Ideal);
                    let mut ob_exec =
                        PolicyObserver::new(model, &exec_policy, &ClockGenerator::Ideal);
                    digest.for_each_cycle(|cycle, dc| {
                        let timing = model.digest_cycle_timing(cycle, dc);
                        ob_static.observe_digest_timed(cycle, dc, &timing);
                        ob_lut.observe_digest_timed(cycle, dc, &timing);
                        ob_exec.observe_digest_timed(cycle, dc, &timing);
                    });
                    ob_static.finish(&summary);
                    ob_lut.finish(&summary);
                    ob_exec.finish(&summary);
                    violations += ob_static.into_outcome().violations
                        + ob_lut.into_outcome().violations
                        + ob_exec.into_outcome().violations;
                }
                violations
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_run_observed_suite,
    bench_digest_replay_vs_direct,
    bench_pvt_sweep,
    bench_policy_bank_kernel
);
criterion_main!(benches);
