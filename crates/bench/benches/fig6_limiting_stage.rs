//! Fig. 6 — percentage of cycles in which each pipeline stage contains the
//! limiting path (paper: EX 93 %, ADR 7 %, all others below 1 %).

use criterion::{criterion_group, criterion_main, Criterion};
use idca_bench::Experiments;
use std::hint::black_box;

fn bench_fig6(c: &mut Criterion) {
    let exp = Experiments::prepare();

    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.bench_function("limiting_stage_extraction", |b| {
        b.iter(|| black_box(&exp).fig6())
    });
    group.finish();

    println!("\n[fig6] limiting-stage shares (paper: EX 93 %, ADR 7 %):");
    for row in exp.fig6() {
        println!("[fig6]   {:<5} {:>6.1} %", row.stage.label(), row.percent);
    }
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
