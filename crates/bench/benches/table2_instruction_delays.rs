//! Table II — per-instruction worst-case dynamic delays and limiting stages
//! extracted from the characterization run (paper: l.add 1467 EX, l.and 1482
//! EX, l.bf 1470 EX, l.j 1172 ADR, l.lwz 1391 EX, l.mul 1899 EX, l.sll 1270
//! EX, l.xor 1514 EX).

use criterion::{criterion_group, criterion_main, Criterion};
use idca_bench::{paper, Experiments};
use idca_core::DelayLut;
use std::hint::black_box;

fn bench_table2(c: &mut Criterion) {
    let exp = Experiments::prepare();

    let mut group = c.benchmark_group("table2");
    group.sample_size(20);
    group.bench_function("lut_extraction_from_dta", |b| {
        b.iter(|| DelayLut::from_dta(black_box(&exp.dta), 8))
    });
    group.finish();

    println!("\n[table2] instruction        measured  stage  observations   paper  stage");
    for row in exp.table2() {
        let reference = paper::TABLE2
            .iter()
            .find(|(label, _, _)| *label == row.class.label());
        let (paper_ps, paper_stage) = match reference {
            Some((_, ps, stage)) => (format!("{ps:.0}"), (*stage).to_string()),
            None => ("-".into(), "-".into()),
        };
        println!(
            "[table2] {:<18} {:>8.0} {:>6} {:>13} {:>7} {:>6}",
            row.class.label(),
            row.max_delay_ps,
            row.stage.label(),
            row.observations,
            paper_ps,
            paper_stage
        );
    }
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
