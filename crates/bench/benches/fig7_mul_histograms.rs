//! Fig. 7 — per-pipeline-stage histograms of the dynamic delays of the
//! `l.mul` instruction (paper: the execute-stage delay sits close to the
//! static maximum with a ~300 ps data-dependent spread, all other stages are
//! much faster).

use criterion::{criterion_group, criterion_main, Criterion};
use idca_bench::Experiments;
use idca_isa::TimingClass;
use idca_pipeline::Stage;
use std::hint::black_box;

fn bench_fig7(c: &mut Criterion) {
    let exp = Experiments::prepare();

    let mut group = c.benchmark_group("fig7");
    group.sample_size(20);
    group.bench_function("per_stage_mul_statistics", |b| {
        b.iter(|| black_box(&exp).fig7())
    });
    group.finish();

    println!("\n[fig7] stage  observations   mean ps    max ps");
    for row in exp.fig7() {
        println!(
            "[fig7] {:<6} {:>12} {:>9.0} {:>9.0}",
            row.stage.label(),
            row.observations,
            row.mean_ps,
            row.max_ps
        );
    }
    let ex = exp.dta.stage_histogram(Stage::Execute, TimingClass::Mul);
    let spread = ex.observed_max() - ex.observed_min();
    println!("[fig7] execute-stage spread: {spread:.0} ps (paper ~300 ps)");
    println!("[fig7] execute-stage histogram:\n{}", ex.to_ascii(40));
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
