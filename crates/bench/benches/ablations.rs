//! Ablation benches for the design choices called out in DESIGN.md:
//! clock-generator quantization, execute-only monitoring (§IV-A), the
//! conventional timing-wall profile (the value of the critical-range
//! optimization) and the sensitivity of the LUT to characterization length.

use criterion::{criterion_group, criterion_main, Criterion};
use idca_bench::Experiments;
use idca_core::{policy::InstructionBased, ClockGenerator};
use std::hint::black_box;
use std::time::Duration;

fn bench_ablations(c: &mut Criterion) {
    let exp = Experiments::prepare();
    let policy = InstructionBased::new(exp.lut.clone());

    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(8));
    group.bench_function("suite_with_quantized_clock_generator", |b| {
        b.iter(|| black_box(&exp).fig8_with(black_box(&policy), &ClockGenerator::quantized_50ps()))
    });
    group.finish();

    let ablations = exp.ablations();
    println!("\n[ablations] mean suite speedup by configuration:");
    println!(
        "[ablations]   ideal clock generator       : {:>5.1} %",
        ablations.ideal_cg_percent
    );
    println!(
        "[ablations]   quantized (50 ps) generator : {:>5.1} %",
        ablations.quantized_cg_percent
    );
    println!(
        "[ablations]   discrete (8-level) generator: {:>5.1} %",
        ablations.discrete_cg_percent
    );
    println!(
        "[ablations]   execute-only monitoring     : {:>5.1} %",
        ablations.execute_only_percent
    );
    println!(
        "[ablations]   conventional (wall) profile : {:>5.1} %",
        ablations.conventional_profile_percent
    );
    println!(
        "[ablations]   genie oracle                : {:>5.1} %",
        ablations.genie_percent
    );
    println!(
        "[ablations] violations with a 500-cycle characterization LUT: {}",
        ablations.truncated_lut_violations
    );
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
