//! # idca-bench — experiment harness
//!
//! Shared plumbing for regenerating every table and figure of the paper's
//! evaluation section. The Criterion benches under `benches/` and the
//! `repro` binary both go through the functions in this crate, so the
//! numbers they print are produced by exactly one code path.
//!
//! | Experiment | Paper | Function |
//! |---|---|---|
//! | Fig. 5 | histogram / mean of per-cycle dynamic delay | [`Experiments::fig5`] |
//! | Fig. 6 | limiting-stage shares | [`Experiments::fig6`] |
//! | Table I | critical-range max-delay factors | [`Experiments::table1`] |
//! | Table II | per-instruction worst-case delays | [`Experiments::table2`] |
//! | Fig. 7 | per-stage delay histograms of `l.mul` | [`Experiments::fig7`] |
//! | Fig. 8 | per-benchmark effective frequency | [`Experiments::fig8`] |
//! | §IV-B | voltage scaling / energy efficiency | [`Experiments::power_scaling`] |
//! | ablations | CG quantization, execute-only, profile, LUT source | [`Experiments::ablations`] |
//! | PVT outlook | Monte Carlo seeds × corners sweep | [`Experiments::pvt_sweep`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use idca_core::{
    eval::{self, SuiteSummary},
    policy::{ExecuteOnly, GenieOracle, InstructionBased, StaticClock},
    vfs::{self, VoltageScalingResult},
    ClockGenerator, ClockPolicy, DelayLut,
};
use idca_isa::TimingClass;
use idca_pipeline::{DigestObserver, RunSummary, SimConfig, Simulator, Stage, TimingDigest};
use idca_timing::{
    dta::DynamicTimingAnalysis, CellLibrary, Histogram, PowerModel, ProfileKind, TimingModel,
    TimingProfile,
};
use idca_workloads::{benchmark_suite, suite, suite::characterization_workload, Workload};

pub mod serve;
pub mod shard;
pub mod sweep;

pub use idca_pipeline::{InterruptSpec, InterruptSpecError};
pub use idca_timing::{FaultPlan, FaultSpec, FaultSpecError};
pub use serve::{Corpus, CorpusError, DigestCacheStats, QueryError, ServeSession};
pub use shard::{merge_reports, MergeError, ReportFormatError, ShardSpecError, SweepShard};
pub use sweep::{
    pvt_sweep, pvt_sweep_seed_range_timed_with_cache, SweepConfig, SweepError, SweepReport,
    SweepTiming,
};

/// Seed used for the characterization workload throughout the harness.
pub const CHARACTERIZATION_SEED: u64 = 0xC0DE;

/// Paper reference values used in the "paper vs measured" columns.
pub mod paper {
    /// Static timing limit at 0.70 V (ps).
    pub const STATIC_PERIOD_PS: f64 = 2026.0;
    /// Mean per-cycle dynamic delay of Fig. 5 (ps).
    pub const FIG5_MEAN_PS: f64 = 1334.0;
    /// Genie-aided speedup of §IV-A (percent).
    pub const GENIE_SPEEDUP_PERCENT: f64 = 50.0;
    /// Execute-stage limiting share of Fig. 6 (percent).
    pub const FIG6_EXECUTE_PERCENT: f64 = 93.0;
    /// Address-stage limiting share of Fig. 6 (percent).
    pub const FIG6_ADDRESS_PERCENT: f64 = 7.0;
    /// Average effective frequency under conventional clocking (MHz).
    pub const FIG8_BASELINE_MHZ: f64 = 494.0;
    /// Average effective frequency with dynamic clock adjustment (MHz).
    pub const FIG8_DYNAMIC_MHZ: f64 = 680.0;
    /// Average speedup of Fig. 8 (percent).
    pub const FIG8_SPEEDUP_PERCENT: f64 = 38.0;
    /// Conventional-clocking energy efficiency (µW/MHz).
    pub const POWER_BASELINE_UW_PER_MHZ: f64 = 13.7;
    /// Voltage-scaled energy efficiency (µW/MHz).
    pub const POWER_SCALED_UW_PER_MHZ: f64 = 11.0;
    /// Supply-voltage reduction (mV).
    pub const POWER_VOLTAGE_REDUCTION_MV: f64 = 70.0;
    /// Energy-efficiency improvement (percent).
    pub const POWER_GAIN_PERCENT: f64 = 24.0;

    /// Table I rows published in the paper: (class label, factor).
    pub const TABLE1: [(&str, f64); 7] = [
        ("l.add(i)", 0.92),
        ("l.bf", 0.78),
        ("l.j", 0.74),
        ("l.lwz", 0.85),
        ("l.mul", 1.10),
        ("l.nop", 0.78),
        ("l.sw", 0.85),
    ];

    /// Table II rows published in the paper: (class label, delay ps, stage).
    pub const TABLE2: [(&str, f64, &str); 8] = [
        ("l.add(i)", 1467.0, "EX"),
        ("l.and(i)", 1482.0, "EX"),
        ("l.bf", 1470.0, "EX"),
        ("l.j", 1172.0, "ADR"),
        ("l.lwz", 1391.0, "EX"),
        ("l.mul", 1899.0, "EX"),
        ("l.sll(i)", 1270.0, "EX"),
        ("l.xor", 1514.0, "EX"),
    ];
}

/// Result of the Fig. 5 experiment.
#[derive(Debug, Clone)]
pub struct Fig5 {
    /// Mean of the per-cycle maximum dynamic delay (ps).
    pub mean_delay_ps: f64,
    /// Static timing limit (ps).
    pub static_period_ps: f64,
    /// Genie-aided speedup in percent.
    pub genie_speedup_percent: f64,
    /// The delay histogram (25 ps bins).
    pub histogram: Histogram,
}

/// One row of the Fig. 6 experiment.
#[derive(Debug, Clone, Copy)]
pub struct Fig6Row {
    /// Pipeline stage.
    pub stage: Stage,
    /// Fraction of cycles in which this stage owned the limiting path (%).
    pub percent: f64,
}

/// One row of the Table I experiment.
#[derive(Debug, Clone, Copy)]
pub struct Table1Row {
    /// Instruction class.
    pub class: TimingClass,
    /// Measured `optimized / conventional` worst-case delay factor.
    pub factor: f64,
    /// Paper value, when the class appears in the paper's excerpt.
    pub paper: Option<f64>,
}

/// One row of the Fig. 7 experiment (per-stage `l.mul` delay statistics).
#[derive(Debug, Clone, Copy)]
pub struct Fig7Row {
    /// Pipeline stage.
    pub stage: Stage,
    /// Number of cycles `l.mul` occupied the stage.
    pub observations: u64,
    /// Mean dynamic delay (ps).
    pub mean_ps: f64,
    /// Maximum dynamic delay (ps).
    pub max_ps: f64,
}

/// One row of the Fig. 8 experiment.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Effective frequency under conventional clocking (MHz).
    pub static_mhz: f64,
    /// Effective frequency with instruction-based adjustment (MHz).
    pub dynamic_mhz: f64,
    /// Speedup in percent.
    pub speedup_percent: f64,
}

/// Ablation study results (design-choice sensitivity).
#[derive(Debug, Clone)]
pub struct Ablations {
    /// Mean suite speedup (%) with the ideal clock generator.
    pub ideal_cg_percent: f64,
    /// Mean suite speedup (%) with a 50 ps-quantized clock generator.
    pub quantized_cg_percent: f64,
    /// Mean suite speedup (%) with an 8-level discrete clock generator.
    pub discrete_cg_percent: f64,
    /// Mean suite speedup (%) when only the execute stage is monitored.
    pub execute_only_percent: f64,
    /// Mean suite speedup (%) on the conventional (timing-wall) profile.
    pub conventional_profile_percent: f64,
    /// Mean suite speedup (%) with the genie-aided oracle.
    pub genie_percent: f64,
    /// Violations across the suite when the LUT is built from a short
    /// (truncated) characterization instead of the full one.
    pub truncated_lut_violations: u64,
}

/// Pre-computed state shared by all experiments: the timing models, the
/// characterization run totals, its DTA, the extracted delay LUT and the
/// pre-assembled benchmark suite.
pub struct Experiments {
    /// Timing model of the critical-range-optimized core at 0.70 V.
    pub model: TimingModel,
    /// Timing model of the conventional (timing-wall) core at 0.70 V.
    pub conventional: TimingModel,
    /// The characterized cell library.
    pub library: CellLibrary,
    /// The activity-based power model.
    pub power: PowerModel,
    /// Run totals (cycles, retired instructions) of the characterization
    /// workload. The per-cycle records stream straight into the DTA; no
    /// trace is materialized.
    pub characterization: RunSummary,
    /// DTA of the characterization run on the optimized core.
    pub dta: DynamicTimingAnalysis,
    /// Timing digest of the characterization run, captured on the same
    /// streaming pass as the DTA. Re-characterizing against a different
    /// model (profile, voltage, corner) replays this digest through
    /// [`DynamicTimingAnalysis::replay_digest`] instead of re-simulating.
    pub characterization_digest: TimingDigest,
    /// Timing digests of the Fig. 8 suite, one per [`Experiments::suite`]
    /// entry: every benchmark is simulated exactly once, here; all policy
    /// evaluations (Fig. 8, every ablation) are digest replays.
    pub suite_digests: Vec<TimingDigest>,
    /// Raw delay LUT extracted from the characterization (min. 8
    /// observations) — this is what Table II reports.
    pub raw_lut: DelayLut,
    /// The LUT actually deployed by the clock-adjustment policies: the raw
    /// characterization entries plus a 1.5 % guardband covering data
    /// conditions the characterization stimuli did not produce.
    pub lut: DelayLut,
    /// The assembled Fig. 8 benchmark suite (assembled once, in parallel).
    pub suite: Vec<Workload>,
}

impl Experiments {
    /// Runs the characterization flow once and prepares everything the
    /// individual experiments need. Every workload — the characterization
    /// stimulus and each suite benchmark — is simulated exactly once, here:
    /// the characterization pass streams into the dynamic timing analysis
    /// with a [`DigestObserver`] riding along, and each benchmark's digest
    /// is captured in parallel, so the experiments themselves (Fig. 8 and
    /// every ablation) are pure digest replays. No `Vec<CycleRecord>` is
    /// allocated anywhere in this function.
    #[must_use]
    pub fn prepare() -> Self {
        let library = CellLibrary::fdsoi28();
        let model = TimingModel::at_nominal(ProfileKind::CriticalRangeOptimized);
        let conventional = TimingModel::at_nominal(ProfileKind::Conventional);
        let power = PowerModel::new(library.clone());
        let workload = characterization_workload(CHARACTERIZATION_SEED);
        let mut dta_observer = DynamicTimingAnalysis::streaming(&model);
        let mut digest_observer = DigestObserver::new();
        let characterization = Simulator::new(SimConfig::default())
            .run_observed(
                &workload.program,
                &mut [&mut dta_observer, &mut digest_observer],
            )
            .expect("characterization workload runs")
            .summary;
        let dta = dta_observer.into_analysis();
        let characterization_digest = digest_observer.into_digest();
        let raw_lut = DelayLut::from_dta(&dta, 8);
        let lut = raw_lut.with_guardband(0.015);
        let suite = benchmark_suite();
        let simulator = Simulator::new(SimConfig::default());
        let suite_digests = suite::par_map(&suite, |workload| {
            let mut observer = DigestObserver::new();
            simulator
                .run_observed(&workload.program, &mut [&mut observer])
                .expect("benchmark runs");
            observer.into_digest()
        });
        Experiments {
            model,
            conventional,
            library,
            power,
            characterization,
            dta,
            characterization_digest,
            suite_digests,
            raw_lut,
            lut,
            suite,
        }
    }

    /// Fig. 5: per-cycle dynamic-delay distribution and the genie bound.
    #[must_use]
    pub fn fig5(&self) -> Fig5 {
        Fig5 {
            mean_delay_ps: self.dta.mean_cycle_delay_ps(),
            static_period_ps: self.dta.static_period_ps(),
            genie_speedup_percent: (self.dta.genie_speedup() - 1.0) * 100.0,
            histogram: self.dta.cycle_histogram().clone(),
        }
    }

    /// Fig. 6: share of cycles in which each stage owns the limiting path.
    #[must_use]
    pub fn fig6(&self) -> Vec<Fig6Row> {
        Stage::ALL
            .iter()
            .map(|&stage| Fig6Row {
                stage,
                percent: self.dta.limiting_fraction(stage) * 100.0,
            })
            .collect()
    }

    /// Table I: optimized-vs-conventional worst-case delay factors.
    #[must_use]
    pub fn table1(&self) -> Vec<Table1Row> {
        TimingClass::INSTRUCTION_CLASSES
            .iter()
            .map(|&class| {
                let factor = TimingProfile::max_delay_factor(class);
                let paper = paper::TABLE1
                    .iter()
                    .find(|(label, _)| *label == class.label())
                    .map(|(_, f)| *f);
                Table1Row {
                    class,
                    factor,
                    paper,
                }
            })
            .collect()
    }

    /// Table II: per-instruction worst-case dynamic delays from the
    /// characterization LUT (raw observed values, no guardband).
    #[must_use]
    pub fn table2(&self) -> Vec<idca_core::Table2Row> {
        self.raw_lut.table2_rows()
    }

    /// Fig. 7: per-stage dynamic-delay statistics of the `l.mul` class.
    #[must_use]
    pub fn fig7(&self) -> Vec<Fig7Row> {
        Stage::ALL
            .iter()
            .map(|&stage| {
                let hist = self.dta.stage_histogram(stage, TimingClass::Mul);
                Fig7Row {
                    stage,
                    observations: hist.count(),
                    mean_ps: hist.mean(),
                    max_ps: if hist.count() == 0 {
                        0.0
                    } else {
                        hist.observed_max()
                    },
                }
            })
            .collect()
    }

    /// Fig. 8: per-benchmark effective clock frequency under conventional
    /// clocking and under instruction-based dynamic clock adjustment.
    #[must_use]
    pub fn fig8(&self) -> (Vec<Fig8Row>, SuiteSummary) {
        self.fig8_with(
            &InstructionBased::new(self.lut.clone()),
            &ClockGenerator::Ideal,
        )
    }

    /// Fig. 8 with an arbitrary policy / clock generator (used by ablations).
    ///
    /// No benchmark is re-simulated: each policy pair replays the digests
    /// captured once in [`Experiments::prepare`] (bit-identical to a live
    /// pass), in parallel across workloads.
    #[must_use]
    pub fn fig8_with(
        &self,
        policy: &dyn ClockPolicy,
        generator: &ClockGenerator,
    ) -> (Vec<Fig8Row>, SuiteSummary) {
        self.suite_summary_with(&self.model, policy, generator)
    }

    /// Parallel digest-replay suite evaluation against an arbitrary model.
    /// The digests are model-independent (they capture architecture and
    /// path excitation, not delays), so the same captured suite serves the
    /// optimized profile, the conventional profile and any varied corner —
    /// profile sweeps never re-simulate.
    fn suite_summary_with(
        &self,
        model: &TimingModel,
        policy: &dyn ClockPolicy,
        generator: &ClockGenerator,
    ) -> (Vec<Fig8Row>, SuiteSummary) {
        let indices: Vec<usize> = (0..self.suite.len()).collect();
        let comparisons = suite::par_map(&indices, |&i| {
            eval::compare_digest(
                model,
                self.suite[i].name.clone(),
                &self.suite_digests[i],
                policy,
                generator,
            )
        });
        let mut rows = Vec::new();
        let mut summary = SuiteSummary::new();
        for comparison in comparisons {
            rows.push(Fig8Row {
                benchmark: comparison.benchmark.clone(),
                static_mhz: comparison.baseline.effective_frequency_mhz,
                dynamic_mhz: comparison.dynamic.effective_frequency_mhz,
                speedup_percent: (comparison.speedup() - 1.0) * 100.0,
            });
            summary.push(comparison);
        }
        (rows, summary)
    }

    /// Evaluates one policy on one pre-captured suite digest.
    fn outcome_for_digest(
        &self,
        model: &TimingModel,
        digest: &TimingDigest,
        policy: &dyn ClockPolicy,
        generator: &ClockGenerator,
    ) -> idca_core::RunOutcome {
        idca_core::replay_digest(model, digest, policy, generator)
    }

    /// §IV-B: iso-throughput voltage scaling on a representative benchmark
    /// (the kernel whose speedup sits at the median of the Fig. 8 suite).
    /// The benchmark is simulated once, with every candidate operating point
    /// observing the same streaming pass.
    #[must_use]
    pub fn power_scaling(&self) -> VoltageScalingResult {
        let workload = self
            .suite
            .iter()
            .find(|w| w.name == "beebs_dijkstra")
            .expect("beebs_dijkstra exists");
        let lut = self.lut.clone();
        vfs::scale_for_iso_throughput_program(
            ProfileKind::CriticalRangeOptimized,
            &self.library,
            &self.power,
            &Simulator::new(SimConfig::default()),
            &workload.program,
            &move |model: &TimingModel| {
                Box::new(InstructionBased::new(
                    lut.scaled(model.operating_point().delay_scale),
                ))
            },
            &ClockGenerator::Ideal,
        )
        .expect("a feasible operating point exists")
    }

    /// Ablation studies over the design choices called out in DESIGN.md.
    #[must_use]
    pub fn ablations(&self) -> Ablations {
        let lut_policy = InstructionBased::new(self.lut.clone());
        let (_, ideal) = self.fig8_with(&lut_policy, &ClockGenerator::Ideal);
        let (_, quantized) = self.fig8_with(&lut_policy, &ClockGenerator::quantized_50ps());
        let (_, discrete) =
            self.fig8_with(&lut_policy, &ClockGenerator::discrete(8, 900.0, 2100.0));
        let (_, execute_only) =
            self.fig8_with(&ExecuteOnly::new(self.lut.clone()), &ClockGenerator::Ideal);
        let (_, genie) = self.fig8_with(
            &GenieOracle::new(self.model.clone()),
            &ClockGenerator::Ideal,
        );

        // Conventional (timing-wall) profile: both the baseline and the LUT
        // come from the conventional implementation.
        let conventional_summary = {
            let policy = InstructionBased::from_model(&self.conventional);
            let (_, summary) =
                self.suite_summary_with(&self.conventional, &policy, &ClockGenerator::Ideal);
            summary
        };

        // LUT built from a deliberately short characterization: count how
        // many violations slip through on the full suite. The truncated
        // characterization is a digest replay of the first 500 cycles of
        // the pass captured in `prepare` — bit-identical to re-simulating
        // behind a `TakeObserver`, with no simulator in the loop — and the
        // suite evaluation replays the captured benchmark digests.
        let truncated_lut_violations = {
            let short_digest = self.characterization_digest.truncated(500);
            let short_dta = DynamicTimingAnalysis::replay_digest(&self.model, &short_digest);
            let short_lut = DelayLut::from_dta(&short_dta, 1);
            let policy = InstructionBased::new(short_lut);
            suite::par_map(&self.suite_digests, |digest| {
                self.outcome_for_digest(&self.model, digest, &policy, &ClockGenerator::Ideal)
                    .violations
            })
            .into_iter()
            .sum()
        };

        let percent = |s: &SuiteSummary| (s.mean_speedup() - 1.0) * 100.0;
        Ablations {
            ideal_cg_percent: percent(&ideal),
            quantized_cg_percent: percent(&quantized),
            discrete_cg_percent: percent(&discrete),
            execute_only_percent: percent(&execute_only),
            conventional_profile_percent: percent(&conventional_summary),
            genie_percent: percent(&genie),
            truncated_lut_violations,
        }
    }

    /// The Monte Carlo PVT sweep: `seeds` generated programs × `corners`
    /// sampled PVT corners, two-phase — each program simulated exactly once
    /// into a timing digest (phase 1), every `(digest, corner)` pair then
    /// replayed through the PolicyObserver/AdaptiveObserver stack without a
    /// simulator in the loop (phase 2), both phases sharded across rayon
    /// workers. Unlike the other experiments this needs no characterization
    /// run, so it is an associated function rather than a method.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError`] when a seed's simulation fails (for example a
    /// cycle-limit overrun), naming the failing seed.
    pub fn pvt_sweep(config: &SweepConfig) -> Result<SweepReport, SweepError> {
        sweep::pvt_sweep(config)
    }

    /// [`Experiments::pvt_sweep`] with the per-phase wall-clock breakdown
    /// (the `repro bench` perf harness reports it).
    ///
    /// # Errors
    ///
    /// Returns [`SweepError`] when a seed's simulation fails.
    pub fn pvt_sweep_timed(config: &SweepConfig) -> Result<(SweepReport, SweepTiming), SweepError> {
        sweep::pvt_sweep_timed(config)
    }

    /// [`Experiments::pvt_sweep_timed`] with a persistent digest cache:
    /// valid cached digests skip phase 1's simulations, stale or corrupt
    /// entries are re-simulated and rewritten, and the report is
    /// byte-identical either way (`repro sweep --digest-cache DIR`).
    ///
    /// # Errors
    ///
    /// Returns [`SweepError`] when a seed's simulation fails.
    pub fn pvt_sweep_timed_with_cache(
        config: &SweepConfig,
        cache_dir: Option<&std::path::Path>,
    ) -> Result<(SweepReport, SweepTiming), SweepError> {
        sweep::pvt_sweep_timed_with_cache(config, cache_dir)
    }

    /// The conventional-clocking baseline outcome for a single benchmark
    /// (used by the power bench to report µW/MHz at 0.70 V).
    ///
    /// # Panics
    ///
    /// Panics if `benchmark` is not part of the Fig. 8 suite.
    #[must_use]
    pub fn baseline_outcome(&self, benchmark: &str) -> idca_core::RunOutcome {
        let index = self
            .suite
            .iter()
            .position(|w| w.name == benchmark)
            .unwrap_or_else(|| panic!("unknown benchmark {benchmark}"));
        self.outcome_for_digest(
            &self.model,
            &self.suite_digests[index],
            &StaticClock::of_model(&self.model),
            &ClockGenerator::Ideal,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiments_prepare_and_fig5_is_sane() {
        let exp = Experiments::prepare();
        let fig5 = exp.fig5();
        assert!(fig5.mean_delay_ps < fig5.static_period_ps);
        assert!(fig5.genie_speedup_percent > 20.0);
        assert!(fig5.histogram.count() > 5_000);
        let fig6 = exp.fig6();
        let total: f64 = fig6.iter().map(|r| r.percent).sum();
        assert!((total - 100.0).abs() < 1e-6);
    }
}
