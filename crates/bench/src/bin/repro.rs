//! `repro` — regenerates every table and figure of the paper's evaluation
//! section and prints paper-vs-measured rows (the source of EXPERIMENTS.md).
//!
//! Usage: `cargo run --release -p idca-bench --bin repro [-- --fig5 --table2 ...]`
//! With no flags, every experiment is reproduced. Unknown flags are
//! rejected (a typo like `--fig9` must not silently select nothing).
//!
//! The `sweep` subcommand runs the Monte Carlo PVT sweep instead:
//! `repro sweep --seeds N --corners M --seed S` prints a stable,
//! machine-readable `key=value` report that is byte-identical across thread
//! counts and repeated runs with the same seed. With `--shard K/N` it runs
//! only the `K`-th of `N` deterministic seed partitions and writes a
//! checksummed binary partial report (`--out`); `repro merge` folds the
//! partials back into the byte-identical single-process report, and
//! `repro serve` answers quantile/violation/speedup queries over a
//! directory of merged reports without ever re-running the replay engine.

use idca_bench::{
    merge_reports, paper, pvt_sweep_seed_range_timed_with_cache, Corpus, DigestCacheStats,
    Experiments, FaultSpec, InterruptSpec, QueryError, ServeSession, SweepConfig, SweepReport,
    SweepShard, SweepTiming,
};
use std::io::{BufRead, Read, Write};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

/// The accepted experiment flags with their descriptions.
const FLAGS: [(&str, &str); 9] = [
    (
        "--fig5",
        "per-cycle dynamic-delay histogram and genie bound",
    ),
    ("--fig6", "limiting-pipeline-stage shares"),
    ("--fig7", "per-stage dynamic delays of l.mul"),
    ("--fig8", "per-benchmark effective clock frequency"),
    ("--table1", "critical-range optimization max-delay factors"),
    ("--table2", "per-instruction worst-case dynamic delays"),
    ("--power", "iso-throughput voltage scaling (§IV-B)"),
    ("--ablations", "design-choice sensitivity studies"),
    ("--summary", "headline paper-vs-measured summary"),
];

fn print_help() {
    println!("repro — regenerates the paper's tables and figures (paper vs measured)");
    println!();
    println!("Usage: repro [FLAGS]");
    println!("       repro sweep [--seeds N] [--corners M] [--seed S] [--digest-cache DIR]");
    println!("                   [--faults SPEC] [--interrupts SPEC] [--shard K/N --out PATH]");
    println!("       repro merge OUT.sweep PARTIAL.sweep...");
    println!("       repro serve --corpus DIR [--digest-cache DIR]");
    println!("       repro bench [--seeds N] [--corners M] [--seed S] [--runs K] [--json] [--out PATH] [--digest-cache DIR]\n");
    println!("With no flags, every experiment is reproduced. Flags:");
    for (flag, description) in FLAGS {
        println!("  {flag:<16} {description}");
    }
    println!("  {:<16} print this help and exit", "--help");
    println!();
    print_sweep_help();
    println!();
    print_merge_help();
    println!();
    print_serve_help();
    println!();
    print_bench_help();
}

fn print_merge_help() {
    println!("merge — folds sharded partial reports into the full sweep report");
    println!("  usage: repro merge OUT.sweep PARTIAL.sweep...");
    println!("  validates that the partials describe one sweep, overlap nowhere and");
    println!("  cover every (seed, corner) job, writes the merged binary report to");
    println!("  OUT.sweep (atomically) and renders it to stdout — byte-identical to");
    println!("  the single-process `repro sweep` run of the same configuration");
}

fn print_serve_help() {
    println!("serve — long-running query service over merged sweep reports");
    println!(
        "  {:<16} directory of *.sweep report files to index (required)",
        "--corpus DIR"
    );
    println!(
        "  {:<16} warm digest cache to report statistics for",
        "--digest-cache"
    );
    println!("  reports are ingested once at startup; quantile / violation / speedup");
    println!("  queries (one per stdin line, see the `help` query) are answered from");
    println!("  the in-memory index without re-running any simulation or replay");
}

fn print_bench_help() {
    println!("bench — PVT-sweep throughput measurement (simulate-once / evaluate-many)");
    println!(
        "  {:<16} sweep size, like the sweep subcommand (defaults 100 x 8, seed 7)",
        "--seeds/..."
    );
    println!(
        "  {:<16} timed repetitions; the fastest is reported (default 3)",
        "--runs K"
    );
    println!(
        "  {:<16} also write the machine-readable report to BENCH_sweep.json",
        "--json"
    );
    println!("  {:<16} override the --json output path", "--out PATH");
    println!(
        "  {:<16} load/save phase-1 digests in DIR (see sweep --digest-cache)",
        "--digest-cache"
    );
    println!("  output: key=value throughput report (cycles/sec, jobs/sec, per-phase wall)");
    println!("  the JSON fields, their units and how CI consumes them are documented");
    println!("  in docs/BENCH_SCHEMA.md");
}

fn print_sweep_help() {
    println!("sweep — Monte Carlo PVT sweep: N generated programs x M sampled corners");
    println!(
        "  {:<16} number of generated programs (default 32)",
        "--seeds N"
    );
    println!(
        "  {:<16} number of sampled PVT corners (default 4)",
        "--corners M"
    );
    println!(
        "  {:<16} master seed driving programs and corners (default 49374)",
        "--seed S"
    );
    println!(
        "  {:<16} persist phase-1 timing digests in DIR, keyed by",
        "--digest-cache"
    );
    println!(
        "  {:<16} (program seed, generator-config hash, simulator version);",
        ""
    );
    println!(
        "  {:<16} warm entries skip the simulation phase entirely",
        ""
    );
    println!(
        "  {:<16} inject a deterministic fault scenario, SPEC is",
        "--faults SPEC"
    );
    println!(
        "  {:<16} key=value pairs like seed=1,droop-rate=0.3,spike-rate=0.01,",
        ""
    );
    println!(
        "  {:<16} droop-mag=0.15,spike-mag=0.25,shift-mag=0,penalty=8,",
        ""
    );
    println!(
        "  {:<16} detect-window=0.1; adds recovery/silent-risk columns",
        ""
    );
    println!(
        "  {:<16} drive an asynchronous interrupt-storm scenario, SPEC is",
        "--interrupts"
    );
    println!(
        "  {:<16} key=value pairs like seed=1,rate=0.002,timer=150,",
        ""
    );
    println!(
        "  {:<16} vector=0,penalty=4,surge=0.25; adds interrupt-entry and",
        ""
    );
    println!(
        "  {:<16} handler-cycle columns and per-policy entry violations",
        ""
    );
    println!(
        "  {:<16} run only the K-th of N deterministic seed partitions",
        "--shard K/N"
    );
    println!(
        "  {:<16} write the (partial) report in the checksummed binary",
        "--out PATH"
    );
    println!(
        "  {:<16} format for `repro merge` (required with --shard)",
        ""
    );
    println!("  output: stable machine-readable key=value report on stdout");
    println!("  (suppressed under --shard: a partial report's aggregates are");
    println!("  meaningless until merged)");
}

/// Creates a digest-cache directory (errors are fatal: an explicitly
/// requested cache that cannot exist should fail loudly, not silently run
/// uncached).
fn prepare_cache_dir(dir: &Path) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|error| {
        format!(
            "cannot create digest-cache directory {}: {error}",
            dir.display()
        )
    })
}

/// The sweep-shape flags shared verbatim by `repro sweep` and `repro
/// bench`, parsed and validated in exactly one place so the two
/// subcommands cannot drift (they once range-checked `--seeds`
/// differently).
struct SweepShapeArgs {
    config: SweepConfig,
    cache_dir: Option<PathBuf>,
}

impl SweepShapeArgs {
    fn new(defaults: SweepConfig) -> Self {
        SweepShapeArgs {
            config: defaults,
            cache_dir: None,
        }
    }

    /// Consumes one `flag value` pair if it is a shared flag; returns
    /// `false` (untouched) so the caller can try its subcommand-specific
    /// flags.
    fn consume(&mut self, flag: &str, value: &str) -> Result<bool, String> {
        match flag {
            "--digest-cache" => self.cache_dir = Some(PathBuf::from(value)),
            "--seeds" => self.config.seeds = parse_count(flag, value)?,
            "--corners" => self.config.corners = parse_count(flag, value)?,
            "--seed" => {
                self.config.master_seed = value
                    .parse()
                    .map_err(|_| format!("`{flag}` expects an unsigned integer, got `{value}`"))?;
            }
            "--faults" => {
                self.config.faults = Some(
                    FaultSpec::parse(value)
                        .map_err(|error| format!("invalid --faults `{value}`: {error}"))?,
                );
            }
            "--interrupts" => {
                self.config.interrupts = Some(
                    InterruptSpec::parse(value)
                        .map_err(|error| format!("invalid --interrupts `{value}`: {error}"))?,
                );
            }
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Post-parse validation: the job grid stays under the 1,000,000-job
    /// limit and an explicitly requested digest cache directory exists.
    fn finish(&self) -> Result<(), String> {
        let jobs = u64::from(self.config.seeds) * u64::from(self.config.corners);
        if jobs > 1_000_000 {
            return Err(format!(
                "seeds x corners = {jobs} jobs exceeds the 1000000-job limit"
            ));
        }
        if let Some(dir) = &self.cache_dir {
            prepare_cache_dir(dir)?;
        }
        Ok(())
    }
}

/// Shared `--seeds` / `--corners` range check (1..=100,000).
fn parse_count(flag: &str, value: &str) -> Result<u32, String> {
    value
        .parse::<u64>()
        .ok()
        .filter(|parsed| (1..=100_000).contains(parsed))
        .map(|parsed| parsed as u32)
        .ok_or_else(|| format!("`{flag}` must be an integer between 1 and 100000, got `{value}`"))
}

/// Shared `--shard K/N` validation (also exercised by `SweepShard::parse`
/// unit tests): rejects `0/N`, `K > N` and malformed specs with the
/// library's message.
fn parse_shard(value: &str) -> Result<SweepShard, String> {
    SweepShard::parse(value).map_err(|error| format!("invalid --shard `{value}`: {error}"))
}

/// Shared `--corpus DIR` validation: the directory must already exist
/// (serving an empty, silently auto-created corpus would mask a typo).
fn parse_corpus_dir(value: &str) -> Result<PathBuf, String> {
    let dir = PathBuf::from(value);
    if !dir.is_dir() {
        return Err(format!("--corpus directory {value} does not exist"));
    }
    Ok(dir)
}

/// Writes a binary sweep report atomically (stage + rename), mirroring the
/// digest cache: a crashed or interrupted shard leaves either the complete
/// report or nothing — never a truncated file for `repro merge` to trip
/// over.
fn write_report_atomic(path: &Path, report: &SweepReport) -> Result<(), String> {
    let bytes = report.to_bytes();
    let dir = match path.parent() {
        Some(parent) if !parent.as_os_str().is_empty() => parent,
        _ => Path::new("."),
    };
    let name = path
        .file_name()
        .ok_or_else(|| format!("{} is not a file path", path.display()))?;
    let staged = dir.join(format!(
        ".{}.{}.tmp",
        name.to_string_lossy(),
        std::process::id()
    ));
    let write = std::fs::write(&staged, &bytes)
        .and_then(|()| std::fs::rename(&staged, path))
        .map_err(|error| format!("cannot write {}: {error}", path.display()));
    if write.is_err() {
        std::fs::remove_file(&staged).ok();
    }
    write
}

/// Parses and runs the `sweep` subcommand.
fn run_sweep(args: &[String]) -> Result<ExitCode, String> {
    let mut shape = SweepShapeArgs::new(SweepConfig::default());
    let mut shard: Option<SweepShard> = None;
    let mut out: Option<PathBuf> = None;
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        if flag == "--help" || flag == "-h" {
            print_sweep_help();
            return Ok(ExitCode::SUCCESS);
        }
        let value = iter
            .next()
            .ok_or_else(|| format!("`{flag}` requires a value"))?;
        if shape.consume(flag, value)? {
            continue;
        }
        match flag.as_str() {
            "--shard" => shard = Some(parse_shard(value)?),
            "--out" => out = Some(PathBuf::from(value)),
            unknown => {
                return Err(format!(
                    "unknown sweep flag `{unknown}`\nrun `repro sweep --help` for the accepted flags"
                ));
            }
        }
    }
    shape.finish()?;
    let SweepShapeArgs { config, cache_dir } = shape;
    if shard.is_some() && out.is_none() {
        return Err("`--shard` requires `--out PATH` for the binary partial report".to_string());
    }
    let seed_range = match shard {
        Some(shard) => {
            let range = shard.seed_range(config.seeds);
            eprintln!(
                "running PVT sweep shard {shard}: seeds [{}, {}) of {} x {} corners (master seed {:#x})...",
                range.start, range.end, config.seeds, config.corners, config.master_seed
            );
            range
        }
        None => {
            eprintln!(
                "running PVT sweep: {} seeds x {} corners (master seed {:#x})...",
                config.seeds, config.corners, config.master_seed
            );
            0..config.seeds
        }
    };
    let (report, timing) =
        pvt_sweep_seed_range_timed_with_cache(&config, seed_range, cache_dir.as_deref())
            .map_err(|error| error.to_string())?;
    if cache_dir.is_some() {
        eprintln!(
            "digest cache: {} hits, {} simulated",
            timing.digest_cache_hits, timing.simulated_programs
        );
    }
    if let Some(path) = &out {
        write_report_atomic(path, &report)?;
        eprintln!("wrote {} ({} jobs)", path.display(), report.jobs.len());
    }
    // A partial report's aggregate statistics are meaningless until merged,
    // so only the full run renders to stdout.
    if shard.is_none() {
        print!("{}", report.render());
    }
    Ok(ExitCode::SUCCESS)
}

/// Parses and runs the `merge` subcommand: `repro merge OUT IN...`.
fn run_merge(args: &[String]) -> Result<ExitCode, String> {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_merge_help();
        return Ok(ExitCode::SUCCESS);
    }
    let [out, inputs @ ..] = args else {
        return Err("usage: repro merge OUT.sweep PARTIAL.sweep...".to_string());
    };
    if inputs.is_empty() {
        return Err("merge needs at least one partial report".to_string());
    }
    let mut parts = Vec::with_capacity(inputs.len());
    for input in inputs {
        let bytes =
            std::fs::read(input).map_err(|error| format!("cannot read {input}: {error}"))?;
        parts.push(SweepReport::from_bytes(&bytes).map_err(|error| format!("{input}: {error}"))?);
    }
    let merged = merge_reports(parts).map_err(|error| error.to_string())?;
    write_report_atomic(Path::new(out), &merged)?;
    eprintln!(
        "merged {} partials into {out} ({} jobs)",
        inputs.len(),
        merged.jobs.len()
    );
    print!("{}", merged.render());
    Ok(ExitCode::SUCCESS)
}

/// Parses and runs the `serve` subcommand: ingest a corpus of merged
/// reports once, then answer queries from the in-memory index.
fn run_serve(args: &[String]) -> Result<ExitCode, String> {
    let mut corpus_dir: Option<PathBuf> = None;
    let mut cache_dir: Option<PathBuf> = None;
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        if flag == "--help" || flag == "-h" {
            print_serve_help();
            return Ok(ExitCode::SUCCESS);
        }
        let value = iter
            .next()
            .ok_or_else(|| format!("`{flag}` requires a value"))?;
        match flag.as_str() {
            "--corpus" => corpus_dir = Some(parse_corpus_dir(value)?),
            "--digest-cache" => cache_dir = Some(PathBuf::from(value)),
            unknown => {
                return Err(format!(
                    "unknown serve flag `{unknown}`\nrun `repro serve --help` for the accepted flags"
                ));
            }
        }
    }
    let corpus_dir = corpus_dir.ok_or_else(|| "serve requires `--corpus DIR`".to_string())?;

    let mut report_files: Vec<PathBuf> = std::fs::read_dir(&corpus_dir)
        .map_err(|error| format!("cannot read corpus {}: {error}", corpus_dir.display()))?
        .filter_map(Result::ok)
        .map(|entry| entry.path())
        .filter(|path| path.extension().is_some_and(|e| e == "sweep"))
        .collect();
    report_files.sort();
    if report_files.is_empty() {
        return Err(format!(
            "corpus {} contains no *.sweep report files",
            corpus_dir.display()
        ));
    }
    let mut corpus = Corpus::new();
    for path in &report_files {
        let bytes = std::fs::read(path)
            .map_err(|error| format!("cannot read {}: {error}", path.display()))?;
        let report = SweepReport::from_bytes(&bytes)
            .map_err(|error| format!("{}: {error}", path.display()))?;
        corpus
            .ingest(report)
            .map_err(|error| format!("{}: {error}", path.display()))?;
    }
    let cache = match &cache_dir {
        Some(dir) => Some(
            DigestCacheStats::scan(dir)
                .map_err(|error| format!("cannot scan digest cache {}: {error}", dir.display()))?,
        ),
        None => None,
    };
    eprintln!(
        "serving {} reports ({} jobs, {} cycles); one query per line, `help` lists them",
        corpus.reports(),
        corpus.jobs(),
        corpus.cycles()
    );

    let session = ServeSession::new(corpus, cache);
    let stdin = std::io::stdin();
    let mut reader = std::io::BufReader::new(stdin.lock());
    let mut stdout = std::io::stdout();
    let mut buffer = Vec::with_capacity(256);
    loop {
        // Byte-level reads: stdin is untrusted input, so a binary paste
        // (invalid UTF-8), an unbounded line or a mid-line EOF must each
        // become a structured reply or a clean exit, never a panic or a
        // silently dropped session.
        buffer.clear();
        let read = (&mut reader)
            .take(MAX_QUERY_BYTES as u64 + 1)
            .read_until(b'\n', &mut buffer)
            .map_err(|error| format!("cannot read query: {error}"))?;
        if read == 0 {
            break; // clean EOF
        }
        let mut terminated = buffer.last() == Some(&b'\n');
        if terminated {
            buffer.pop();
        }
        if buffer.last() == Some(&b'\r') {
            buffer.pop();
        }
        let reply = if buffer.len() > MAX_QUERY_BYTES {
            // Drain the rest of the oversized line in bounded chunks so the
            // next read starts exactly at the next line boundary; bytes of
            // the *following* query are never consumed.
            let mut scratch = Vec::with_capacity(4096);
            while !terminated {
                scratch.clear();
                let n = (&mut reader)
                    .take(4096)
                    .read_until(b'\n', &mut scratch)
                    .map_err(|error| format!("cannot read query: {error}"))?;
                terminated = scratch.last() == Some(&b'\n');
                if n == 0 {
                    break;
                }
            }
            Err(QueryError::LineTooLong {
                limit: MAX_QUERY_BYTES,
            })
        } else {
            match std::str::from_utf8(&buffer) {
                Ok(line) => {
                    let trimmed = line.trim();
                    if trimmed == "quit" || trimmed == "exit" {
                        break;
                    }
                    session.query(line)
                }
                Err(_) => Err(QueryError::InvalidUtf8),
            }
        };
        match reply {
            Ok(reply) if reply.is_empty() => {}
            Ok(reply) => println!("{reply}"),
            Err(error) => println!("error: {error}"),
        }
        // Replies must reach a piped client promptly, not sit in the
        // block-buffered stdout until the session ends.
        stdout
            .flush()
            .map_err(|error| format!("cannot flush reply: {error}"))?;
        if !terminated {
            break; // mid-line EOF: the final unterminated query was answered
        }
    }
    Ok(ExitCode::SUCCESS)
}

/// Upper bound on one serve query line; real queries are tens of bytes, so
/// anything longer is a runaway or hostile writer and is answered with a
/// structured error instead of being buffered without limit.
const MAX_QUERY_BYTES: usize = 4096;

/// Milliseconds with microsecond resolution (stable fixed-point rendering).
fn ms(duration: Duration) -> f64 {
    duration.as_secs_f64() * 1e3
}

/// Parses and runs the `bench` subcommand: times the two-phase PVT sweep
/// and reports throughput, optionally as `BENCH_sweep.json` so CI can track
/// the perf trajectory and flag regressions.
fn run_bench(args: &[String]) -> Result<ExitCode, String> {
    let mut shape = SweepShapeArgs::new(SweepConfig {
        seeds: 100,
        corners: 8,
        master_seed: 7,
        ..SweepConfig::default()
    });
    let mut runs: u32 = 3;
    let mut write_json = false;
    let mut out_path = String::from("BENCH_sweep.json");
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--help" | "-h" => {
                print_bench_help();
                return Ok(ExitCode::SUCCESS);
            }
            "--json" => {
                write_json = true;
                continue;
            }
            _ => {}
        }
        let value = iter
            .next()
            .ok_or_else(|| format!("`{flag}` requires a value"))?;
        if shape.consume(flag, value)? {
            continue;
        }
        match flag.as_str() {
            "--out" => {
                out_path = value.clone();
                write_json = true;
            }
            "--runs" => {
                runs = value
                    .parse::<u64>()
                    .ok()
                    .filter(|parsed| (1..=100).contains(parsed))
                    .map(|parsed| parsed as u32)
                    .ok_or_else(|| format!("`--runs` must be between 1 and 100, got `{value}`"))?;
            }
            unknown => {
                return Err(format!(
                    "unknown bench flag `{unknown}`\nrun `repro bench --help` for the accepted flags"
                ));
            }
        }
    }
    shape.finish()?;
    let SweepShapeArgs { config, cache_dir } = shape;
    let jobs = u64::from(config.seeds) * u64::from(config.corners);
    eprintln!(
        "benchmarking PVT sweep: {} seeds x {} corners, {} timed runs...",
        config.seeds, config.corners, runs
    );
    // Take the fastest of `runs` repetitions (the usual wall-clock noise
    // filter); every repetition produces the identical report, so the
    // cycle totals can come from any of them.
    let mut best: Option<(u64, SweepTiming)> = None;
    for _ in 0..runs {
        let (report, timing) =
            Experiments::pvt_sweep_timed_with_cache(&config, cache_dir.as_deref())
                .map_err(|error| error.to_string())?;
        let evaluated = report.total_cycles();
        if best
            .as_ref()
            .is_none_or(|(_, t)| timing.total() < t.total())
        {
            best = Some((evaluated, timing));
        }
    }
    let (evaluated_cycles, timing) = best.expect("at least one timed run");
    let wall = timing.total().as_secs_f64();
    let jobs_per_sec = jobs as f64 / wall;
    let cycles_per_sec = evaluated_cycles as f64 / wall;
    // Banked-replay phase throughput: every digested cycle is evaluated
    // against every corner, so `evaluated_cycles` (summed over jobs) is the
    // cycle·corner count the replay phase pushed through its SIMD lanes.
    let replay_cycle_corners_per_sec = evaluated_cycles as f64 / timing.replay.as_secs_f64();

    println!("bench.schema=4");
    println!("bench.seeds={}", config.seeds);
    println!("bench.corners={}", config.corners);
    println!("bench.master_seed={}", config.master_seed);
    println!("bench.jobs={jobs}");
    println!("bench.evaluated_cycles={evaluated_cycles}");
    println!("bench.wall_ms={:.3}", ms(timing.total()));
    println!("bench.simulate_ms={:.3}", ms(timing.simulate));
    println!("bench.predecode_ms={:.3}", ms(timing.predecode));
    println!("bench.replay_ms={:.3}", ms(timing.replay));
    println!("bench.policy_replay_ms={:.3}", ms(timing.policy_replay));
    println!("bench.simulated_programs={}", timing.simulated_programs);
    println!("bench.digest_cache_hits={}", timing.digest_cache_hits);
    println!("bench.jobs_per_sec={jobs_per_sec:.1}");
    println!("bench.cycles_per_sec={cycles_per_sec:.0}");
    println!("bench.replay_cycle_corners_per_sec={replay_cycle_corners_per_sec:.0}");

    if write_json {
        let json = format!(
            "{{\n  \"schema\": 4,\n  \"seeds\": {},\n  \"corners\": {},\n  \"master_seed\": {},\n  \
             \"jobs\": {},\n  \"evaluated_cycles\": {},\n  \"wall_ms\": {:.3},\n  \
             \"simulate_ms\": {:.3},\n  \"predecode_ms\": {:.3},\n  \"replay_ms\": {:.3},\n  \
             \"policy_replay_ms\": {:.3},\n  \"simulated_programs\": {},\n  \
             \"digest_cache_hits\": {},\n  \"jobs_per_sec\": {:.1},\n  \
             \"cycles_per_sec\": {:.0},\n  \"replay_cycle_corners_per_sec\": {:.0}\n}}\n",
            config.seeds,
            config.corners,
            config.master_seed,
            jobs,
            evaluated_cycles,
            ms(timing.total()),
            ms(timing.simulate),
            ms(timing.predecode),
            ms(timing.replay),
            ms(timing.policy_replay),
            timing.simulated_programs,
            timing.digest_cache_hits,
            jobs_per_sec,
            cycles_per_sec,
            replay_cycle_corners_per_sec,
        );
        std::fs::write(&out_path, json)
            .map_err(|error| format!("cannot write {out_path}: {error}"))?;
        eprintln!("wrote {out_path}");
    }
    Ok(ExitCode::SUCCESS)
}

/// Renders a subcommand's structured error on stderr with a nonzero exit.
fn exit_with(result: Result<ExitCode, String>) -> ExitCode {
    match result {
        Ok(code) => code,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("sweep") => return exit_with(run_sweep(&args[1..])),
        Some("merge") => return exit_with(run_merge(&args[1..])),
        Some("serve") => return exit_with(run_serve(&args[1..])),
        Some("bench") => return exit_with(run_bench(&args[1..])),
        _ => {}
    }
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_help();
        return ExitCode::SUCCESS;
    }
    if let Some(unknown) = args
        .iter()
        .find(|a| !FLAGS.iter().any(|(flag, _)| flag == a))
    {
        eprintln!("error: unknown flag `{unknown}`");
        eprintln!("run `repro --help` for the accepted flags");
        return ExitCode::FAILURE;
    }
    let want = |flag: &str| args.is_empty() || args.iter().any(|a| a == flag);

    eprintln!(
        "preparing characterization run (seed {:#x})...",
        idca_bench::CHARACTERIZATION_SEED
    );
    let exp = Experiments::prepare();
    println!(
        "static timing limit: {:.0} ps ({:.1} MHz) at 0.70 V  [paper: {:.0} ps / 494 MHz]",
        exp.model.static_period_ps(),
        1.0e6 / exp.model.static_period_ps(),
        paper::STATIC_PERIOD_PS
    );
    println!(
        "characterization: {} cycles, {} retired instructions\n",
        exp.characterization.cycles, exp.characterization.retired
    );

    if want("--fig5") {
        let fig5 = exp.fig5();
        println!("== Fig. 5 — per-cycle dynamic maximum delay ==");
        println!(
            "  mean delay      : {:>7.0} ps   [paper {:>6.0} ps]",
            fig5.mean_delay_ps,
            paper::FIG5_MEAN_PS
        );
        println!(
            "  static limit    : {:>7.0} ps   [paper {:>6.0} ps]",
            fig5.static_period_ps,
            paper::STATIC_PERIOD_PS
        );
        println!(
            "  genie speedup   : {:>6.1} %    [paper {:>5.0} %]",
            fig5.genie_speedup_percent,
            paper::GENIE_SPEEDUP_PERCENT
        );
        println!("  histogram (25 ps bins):");
        print!("{}", fig5.histogram.to_ascii(50));
        println!();
    }

    if want("--fig6") {
        println!("== Fig. 6 — limiting pipeline stage ==");
        println!("  paper: EX 93 %, ADR 7 %, others < 1 %");
        for row in exp.fig6() {
            println!("  {:<5} {:>6.1} %", row.stage.label(), row.percent);
        }
        println!();
    }

    if want("--table1") {
        println!("== Table I — critical-range optimization max-delay factors ==");
        println!("  {:<16} {:>9} {:>8}", "instruction", "measured", "paper");
        for row in exp.table1() {
            match row.paper {
                Some(p) => println!("  {:<16} {:>9.2} {:>8.2}", row.class.label(), row.factor, p),
                None => println!("  {:<16} {:>9.2} {:>8}", row.class.label(), row.factor, "-"),
            }
        }
        let sta_ratio = exp.model.static_period_ps()
            / idca_timing::TimingProfile::new(idca_timing::ProfileKind::Conventional)
                .static_period_ps();
        println!(
            "  STA period increase from the optimization: {:.1} %  [paper 9 %]\n",
            (sta_ratio - 1.0) * 100.0
        );
    }

    if want("--table2") {
        println!("== Table II — dynamic instruction delay worst-cases ==");
        println!(
            "  {:<16} {:>12} {:>7} {:>14} {:>10} {:>7}",
            "instruction", "measured ps", "stage", "observations", "paper ps", "stage"
        );
        for row in exp.table2() {
            let reference = paper::TABLE2
                .iter()
                .find(|(label, _, _)| *label == row.class.label());
            let (paper_ps, paper_stage) = match reference {
                Some((_, ps, stage)) => (format!("{ps:.0}"), (*stage).to_string()),
                None => ("-".to_string(), "-".to_string()),
            };
            println!(
                "  {:<16} {:>12.0} {:>7} {:>14} {:>10} {:>7}",
                row.class.label(),
                row.max_delay_ps,
                row.stage.label(),
                row.observations,
                paper_ps,
                paper_stage
            );
        }
        println!();
    }

    if want("--fig7") {
        println!("== Fig. 7 — per-stage dynamic delays of l.mul ==");
        println!(
            "  {:<6} {:>13} {:>10} {:>10}",
            "stage", "observations", "mean ps", "max ps"
        );
        for row in exp.fig7() {
            println!(
                "  {:<6} {:>13} {:>10.0} {:>10.0}",
                row.stage.label(),
                row.observations,
                row.mean_ps,
                row.max_ps
            );
        }
        println!("  (paper: EX close to the static maximum with ~300 ps spread, other stages much lower)\n");
    }

    if want("--fig8") {
        println!("== Fig. 8 — effective clock frequency per benchmark ==");
        println!(
            "  {:<22} {:>11} {:>12} {:>9}",
            "benchmark", "static MHz", "dynamic MHz", "speedup"
        );
        let (rows, summary) = exp.fig8();
        for row in &rows {
            println!(
                "  {:<22} {:>11.1} {:>12.1} {:>8.1}%",
                row.benchmark, row.static_mhz, row.dynamic_mhz, row.speedup_percent
            );
        }
        println!(
            "  average: {:.1} -> {:.1} MHz, +{:.1} %   [paper: {:.0} -> {:.0} MHz, +{:.0} %]",
            summary.mean_baseline_frequency_mhz(),
            summary.mean_dynamic_frequency_mhz(),
            (summary.mean_speedup() - 1.0) * 100.0,
            paper::FIG8_BASELINE_MHZ,
            paper::FIG8_DYNAMIC_MHZ,
            paper::FIG8_SPEEDUP_PERCENT
        );
        println!(
            "  timing violations across the suite: {}\n",
            summary.total_violations()
        );
    }

    if want("--power") {
        println!("== §IV-B — voltage scaling at iso-throughput ==");
        let result = exp.power_scaling();
        println!(
            "  baseline : {:>4} mV  {:>7.1} MHz  {:>6.2} µW/MHz   [paper {:.1} µW/MHz]",
            result.baseline.voltage_mv,
            result.baseline.frequency_mhz,
            result.baseline.uw_per_mhz,
            paper::POWER_BASELINE_UW_PER_MHZ
        );
        println!(
            "  scaled   : {:>4} mV  {:>7.1} MHz  {:>6.2} µW/MHz   [paper {:.1} µW/MHz]",
            result.scaled.voltage_mv,
            result.scaled.frequency_mhz,
            result.scaled.uw_per_mhz,
            paper::POWER_SCALED_UW_PER_MHZ
        );
        println!(
            "  supply reduction {:>3} mV [paper ~{:.0} mV], efficiency gain {:>4.1} % [paper {:.0} %]\n",
            result.voltage_reduction_mv,
            paper::POWER_VOLTAGE_REDUCTION_MV,
            result.efficiency_gain_percent(),
            paper::POWER_GAIN_PERCENT
        );
    }

    if want("--ablations") {
        println!("== Ablations ==");
        let ablations = exp.ablations();
        println!(
            "  mean suite speedup, ideal clock generator      : {:>5.1} %",
            ablations.ideal_cg_percent
        );
        println!(
            "  mean suite speedup, 50 ps quantized generator  : {:>5.1} %",
            ablations.quantized_cg_percent
        );
        println!(
            "  mean suite speedup, 8-level discrete generator : {:>5.1} %",
            ablations.discrete_cg_percent
        );
        println!(
            "  mean suite speedup, execute-only monitoring    : {:>5.1} %",
            ablations.execute_only_percent
        );
        println!(
            "  mean suite speedup, conventional (wall) profile: {:>5.1} %",
            ablations.conventional_profile_percent
        );
        println!(
            "  mean suite speedup, genie oracle               : {:>5.1} %",
            ablations.genie_percent
        );
        println!(
            "  violations with a truncated-characterization LUT: {}",
            ablations.truncated_lut_violations
        );
        println!();
    }

    if want("--summary") {
        let fig5 = exp.fig5();
        let (_, summary) = exp.fig8();
        println!("== Headline summary ==");
        println!(
            "  genie bound        : +{:.1} %   [paper +50 %]",
            fig5.genie_speedup_percent
        );
        println!(
            "  instruction-based  : +{:.1} %   [paper +38 %]",
            (summary.mean_speedup() - 1.0) * 100.0
        );
    }

    ExitCode::SUCCESS
}
