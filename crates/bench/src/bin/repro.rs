//! `repro` — regenerates every table and figure of the paper's evaluation
//! section and prints paper-vs-measured rows (the source of EXPERIMENTS.md).
//!
//! Usage: `cargo run --release -p idca-bench --bin repro [-- --fig5 --table2 ...]`
//! With no flags, every experiment is reproduced. Unknown flags are
//! rejected (a typo like `--fig9` must not silently select nothing).
//!
//! The `sweep` subcommand runs the Monte Carlo PVT sweep instead:
//! `repro sweep --seeds N --corners M --seed S` prints a stable,
//! machine-readable `key=value` report that is byte-identical across thread
//! counts and repeated runs with the same seed.

use idca_bench::{paper, Experiments, SweepConfig, SweepTiming};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

/// The accepted experiment flags with their descriptions.
const FLAGS: [(&str, &str); 9] = [
    (
        "--fig5",
        "per-cycle dynamic-delay histogram and genie bound",
    ),
    ("--fig6", "limiting-pipeline-stage shares"),
    ("--fig7", "per-stage dynamic delays of l.mul"),
    ("--fig8", "per-benchmark effective clock frequency"),
    ("--table1", "critical-range optimization max-delay factors"),
    ("--table2", "per-instruction worst-case dynamic delays"),
    ("--power", "iso-throughput voltage scaling (§IV-B)"),
    ("--ablations", "design-choice sensitivity studies"),
    ("--summary", "headline paper-vs-measured summary"),
];

fn print_help() {
    println!("repro — regenerates the paper's tables and figures (paper vs measured)");
    println!();
    println!("Usage: repro [FLAGS]");
    println!("       repro sweep [--seeds N] [--corners M] [--seed S] [--digest-cache DIR]");
    println!("       repro bench [--seeds N] [--corners M] [--seed S] [--runs K] [--json] [--out PATH] [--digest-cache DIR]\n");
    println!("With no flags, every experiment is reproduced. Flags:");
    for (flag, description) in FLAGS {
        println!("  {flag:<16} {description}");
    }
    println!("  {:<16} print this help and exit", "--help");
    println!();
    print_sweep_help();
    println!();
    print_bench_help();
}

fn print_bench_help() {
    println!("bench — PVT-sweep throughput measurement (simulate-once / evaluate-many)");
    println!(
        "  {:<16} sweep size, like the sweep subcommand (defaults 100 x 8, seed 7)",
        "--seeds/..."
    );
    println!(
        "  {:<16} timed repetitions; the fastest is reported (default 3)",
        "--runs K"
    );
    println!(
        "  {:<16} also write the machine-readable report to BENCH_sweep.json",
        "--json"
    );
    println!("  {:<16} override the --json output path", "--out PATH");
    println!(
        "  {:<16} load/save phase-1 digests in DIR (see sweep --digest-cache)",
        "--digest-cache"
    );
    println!("  output: key=value throughput report (cycles/sec, jobs/sec, per-phase wall)");
    println!("  the JSON fields, their units and how CI consumes them are documented");
    println!("  in docs/BENCH_SCHEMA.md");
}

fn print_sweep_help() {
    println!("sweep — Monte Carlo PVT sweep: N generated programs x M sampled corners");
    println!(
        "  {:<16} number of generated programs (default 32)",
        "--seeds N"
    );
    println!(
        "  {:<16} number of sampled PVT corners (default 4)",
        "--corners M"
    );
    println!(
        "  {:<16} master seed driving programs and corners (default 49374)",
        "--seed S"
    );
    println!(
        "  {:<16} persist phase-1 timing digests in DIR, keyed by",
        "--digest-cache"
    );
    println!(
        "  {:<16} (program seed, generator-config hash, simulator version);",
        ""
    );
    println!(
        "  {:<16} warm entries skip the simulation phase entirely",
        ""
    );
    println!("  output: stable machine-readable key=value report on stdout");
}

/// Creates a digest-cache directory (errors are fatal: an explicitly
/// requested cache that cannot exist should fail loudly, not silently run
/// uncached).
fn prepare_cache_dir(dir: &PathBuf) -> Result<(), ExitCode> {
    std::fs::create_dir_all(dir).map_err(|error| {
        eprintln!(
            "error: cannot create digest-cache directory {}: {error}",
            dir.display()
        );
        ExitCode::FAILURE
    })
}

/// Parses and runs the `sweep` subcommand.
fn run_sweep(args: &[String]) -> ExitCode {
    let mut config = SweepConfig::default();
    let mut cache_dir: Option<PathBuf> = None;
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        if flag == "--help" || flag == "-h" {
            print_sweep_help();
            return ExitCode::SUCCESS;
        }
        let Some(value) = iter.next() else {
            eprintln!("error: `{flag}` requires a value");
            return ExitCode::FAILURE;
        };
        if flag == "--digest-cache" {
            cache_dir = Some(PathBuf::from(value));
            continue;
        }
        let parsed: Result<u64, _> = value.parse();
        let Ok(parsed) = parsed else {
            eprintln!("error: `{flag}` expects an unsigned integer, got `{value}`");
            return ExitCode::FAILURE;
        };
        match flag.as_str() {
            "--seeds" if (1..=100_000).contains(&parsed) => config.seeds = parsed as u32,
            "--corners" if (1..=100_000).contains(&parsed) => config.corners = parsed as u32,
            "--seed" => config.master_seed = parsed,
            "--seeds" | "--corners" => {
                eprintln!("error: `{flag}` must be between 1 and 100000");
                return ExitCode::FAILURE;
            }
            unknown => {
                eprintln!("error: unknown sweep flag `{unknown}`");
                eprintln!("run `repro sweep --help` for the accepted flags");
                return ExitCode::FAILURE;
            }
        }
    }
    let jobs = u64::from(config.seeds) * u64::from(config.corners);
    if jobs > 1_000_000 {
        eprintln!("error: seeds x corners = {jobs} jobs exceeds the 1000000-job limit");
        return ExitCode::FAILURE;
    }
    if let Some(dir) = &cache_dir {
        if let Err(code) = prepare_cache_dir(dir) {
            return code;
        }
    }
    eprintln!(
        "running PVT sweep: {} seeds x {} corners (master seed {:#x})...",
        config.seeds, config.corners, config.master_seed
    );
    let (report, timing) = Experiments::pvt_sweep_timed_with_cache(&config, cache_dir.as_deref());
    if cache_dir.is_some() {
        eprintln!(
            "digest cache: {} hits, {} simulated",
            timing.digest_cache_hits, timing.simulated_programs
        );
    }
    print!("{}", report.render());
    ExitCode::SUCCESS
}

/// Milliseconds with microsecond resolution (stable fixed-point rendering).
fn ms(duration: Duration) -> f64 {
    duration.as_secs_f64() * 1e3
}

/// Parses and runs the `bench` subcommand: times the two-phase PVT sweep
/// and reports throughput, optionally as `BENCH_sweep.json` so CI can track
/// the perf trajectory and flag regressions.
fn run_bench(args: &[String]) -> ExitCode {
    let mut config = SweepConfig {
        seeds: 100,
        corners: 8,
        master_seed: 7,
        ..SweepConfig::default()
    };
    let mut runs: u32 = 3;
    let mut write_json = false;
    let mut out_path = String::from("BENCH_sweep.json");
    let mut cache_dir: Option<PathBuf> = None;
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--help" | "-h" => {
                print_bench_help();
                return ExitCode::SUCCESS;
            }
            "--json" => {
                write_json = true;
                continue;
            }
            _ => {}
        }
        let Some(value) = iter.next() else {
            eprintln!("error: `{flag}` requires a value");
            return ExitCode::FAILURE;
        };
        if flag == "--out" {
            out_path = value.clone();
            write_json = true;
            continue;
        }
        if flag == "--digest-cache" {
            cache_dir = Some(PathBuf::from(value));
            continue;
        }
        let parsed: Result<u64, _> = value.parse();
        let Ok(parsed) = parsed else {
            eprintln!("error: `{flag}` expects an unsigned integer, got `{value}`");
            return ExitCode::FAILURE;
        };
        match flag.as_str() {
            "--seeds" if (1..=100_000).contains(&parsed) => config.seeds = parsed as u32,
            "--corners" if (1..=100_000).contains(&parsed) => config.corners = parsed as u32,
            "--seed" => config.master_seed = parsed,
            "--runs" if (1..=100).contains(&parsed) => runs = parsed as u32,
            "--seeds" | "--corners" => {
                eprintln!("error: `{flag}` must be between 1 and 100000");
                return ExitCode::FAILURE;
            }
            "--runs" => {
                eprintln!("error: `--runs` must be between 1 and 100");
                return ExitCode::FAILURE;
            }
            unknown => {
                eprintln!("error: unknown bench flag `{unknown}`");
                eprintln!("run `repro bench --help` for the accepted flags");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(dir) = &cache_dir {
        if let Err(code) = prepare_cache_dir(dir) {
            return code;
        }
    }
    let jobs = u64::from(config.seeds) * u64::from(config.corners);
    eprintln!(
        "benchmarking PVT sweep: {} seeds x {} corners, {} timed runs...",
        config.seeds, config.corners, runs
    );
    // Take the fastest of `runs` repetitions (the usual wall-clock noise
    // filter); every repetition produces the identical report, so the
    // cycle totals can come from any of them.
    let mut best: Option<(u64, SweepTiming)> = None;
    for _ in 0..runs {
        let (report, timing) =
            Experiments::pvt_sweep_timed_with_cache(&config, cache_dir.as_deref());
        let evaluated = report.total_cycles();
        if best
            .as_ref()
            .is_none_or(|(_, t)| timing.total() < t.total())
        {
            best = Some((evaluated, timing));
        }
    }
    let (evaluated_cycles, timing) = best.expect("at least one timed run");
    let wall = timing.total().as_secs_f64();
    let jobs_per_sec = jobs as f64 / wall;
    let cycles_per_sec = evaluated_cycles as f64 / wall;
    // Banked-replay phase throughput: every digested cycle is evaluated
    // against every corner, so `evaluated_cycles` (summed over jobs) is the
    // cycle·corner count the replay phase pushed through its SIMD lanes.
    let replay_cycle_corners_per_sec = evaluated_cycles as f64 / timing.replay.as_secs_f64();

    println!("bench.schema=3");
    println!("bench.seeds={}", config.seeds);
    println!("bench.corners={}", config.corners);
    println!("bench.master_seed={}", config.master_seed);
    println!("bench.jobs={jobs}");
    println!("bench.evaluated_cycles={evaluated_cycles}");
    println!("bench.wall_ms={:.3}", ms(timing.total()));
    println!("bench.simulate_ms={:.3}", ms(timing.simulate));
    println!("bench.predecode_ms={:.3}", ms(timing.predecode));
    println!("bench.replay_ms={:.3}", ms(timing.replay));
    println!("bench.simulated_programs={}", timing.simulated_programs);
    println!("bench.digest_cache_hits={}", timing.digest_cache_hits);
    println!("bench.jobs_per_sec={jobs_per_sec:.1}");
    println!("bench.cycles_per_sec={cycles_per_sec:.0}");
    println!("bench.replay_cycle_corners_per_sec={replay_cycle_corners_per_sec:.0}");

    if write_json {
        let json = format!(
            "{{\n  \"schema\": 3,\n  \"seeds\": {},\n  \"corners\": {},\n  \"master_seed\": {},\n  \
             \"jobs\": {},\n  \"evaluated_cycles\": {},\n  \"wall_ms\": {:.3},\n  \
             \"simulate_ms\": {:.3},\n  \"predecode_ms\": {:.3},\n  \"replay_ms\": {:.3},\n  \
             \"simulated_programs\": {},\n  \
             \"digest_cache_hits\": {},\n  \"jobs_per_sec\": {:.1},\n  \
             \"cycles_per_sec\": {:.0},\n  \"replay_cycle_corners_per_sec\": {:.0}\n}}\n",
            config.seeds,
            config.corners,
            config.master_seed,
            jobs,
            evaluated_cycles,
            ms(timing.total()),
            ms(timing.simulate),
            ms(timing.predecode),
            ms(timing.replay),
            timing.simulated_programs,
            timing.digest_cache_hits,
            jobs_per_sec,
            cycles_per_sec,
            replay_cycle_corners_per_sec,
        );
        if let Err(error) = std::fs::write(&out_path, json) {
            eprintln!("error: cannot write {out_path}: {error}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {out_path}");
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("sweep") {
        return run_sweep(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("bench") {
        return run_bench(&args[1..]);
    }
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_help();
        return ExitCode::SUCCESS;
    }
    if let Some(unknown) = args
        .iter()
        .find(|a| !FLAGS.iter().any(|(flag, _)| flag == a))
    {
        eprintln!("error: unknown flag `{unknown}`");
        eprintln!("run `repro --help` for the accepted flags");
        return ExitCode::FAILURE;
    }
    let want = |flag: &str| args.is_empty() || args.iter().any(|a| a == flag);

    eprintln!(
        "preparing characterization run (seed {:#x})...",
        idca_bench::CHARACTERIZATION_SEED
    );
    let exp = Experiments::prepare();
    println!(
        "static timing limit: {:.0} ps ({:.1} MHz) at 0.70 V  [paper: {:.0} ps / 494 MHz]",
        exp.model.static_period_ps(),
        1.0e6 / exp.model.static_period_ps(),
        paper::STATIC_PERIOD_PS
    );
    println!(
        "characterization: {} cycles, {} retired instructions\n",
        exp.characterization.cycles, exp.characterization.retired
    );

    if want("--fig5") {
        let fig5 = exp.fig5();
        println!("== Fig. 5 — per-cycle dynamic maximum delay ==");
        println!(
            "  mean delay      : {:>7.0} ps   [paper {:>6.0} ps]",
            fig5.mean_delay_ps,
            paper::FIG5_MEAN_PS
        );
        println!(
            "  static limit    : {:>7.0} ps   [paper {:>6.0} ps]",
            fig5.static_period_ps,
            paper::STATIC_PERIOD_PS
        );
        println!(
            "  genie speedup   : {:>6.1} %    [paper {:>5.0} %]",
            fig5.genie_speedup_percent,
            paper::GENIE_SPEEDUP_PERCENT
        );
        println!("  histogram (25 ps bins):");
        print!("{}", fig5.histogram.to_ascii(50));
        println!();
    }

    if want("--fig6") {
        println!("== Fig. 6 — limiting pipeline stage ==");
        println!("  paper: EX 93 %, ADR 7 %, others < 1 %");
        for row in exp.fig6() {
            println!("  {:<5} {:>6.1} %", row.stage.label(), row.percent);
        }
        println!();
    }

    if want("--table1") {
        println!("== Table I — critical-range optimization max-delay factors ==");
        println!("  {:<16} {:>9} {:>8}", "instruction", "measured", "paper");
        for row in exp.table1() {
            match row.paper {
                Some(p) => println!("  {:<16} {:>9.2} {:>8.2}", row.class.label(), row.factor, p),
                None => println!("  {:<16} {:>9.2} {:>8}", row.class.label(), row.factor, "-"),
            }
        }
        let sta_ratio = exp.model.static_period_ps()
            / idca_timing::TimingProfile::new(idca_timing::ProfileKind::Conventional)
                .static_period_ps();
        println!(
            "  STA period increase from the optimization: {:.1} %  [paper 9 %]\n",
            (sta_ratio - 1.0) * 100.0
        );
    }

    if want("--table2") {
        println!("== Table II — dynamic instruction delay worst-cases ==");
        println!(
            "  {:<16} {:>12} {:>7} {:>14} {:>10} {:>7}",
            "instruction", "measured ps", "stage", "observations", "paper ps", "stage"
        );
        for row in exp.table2() {
            let reference = paper::TABLE2
                .iter()
                .find(|(label, _, _)| *label == row.class.label());
            let (paper_ps, paper_stage) = match reference {
                Some((_, ps, stage)) => (format!("{ps:.0}"), (*stage).to_string()),
                None => ("-".to_string(), "-".to_string()),
            };
            println!(
                "  {:<16} {:>12.0} {:>7} {:>14} {:>10} {:>7}",
                row.class.label(),
                row.max_delay_ps,
                row.stage.label(),
                row.observations,
                paper_ps,
                paper_stage
            );
        }
        println!();
    }

    if want("--fig7") {
        println!("== Fig. 7 — per-stage dynamic delays of l.mul ==");
        println!(
            "  {:<6} {:>13} {:>10} {:>10}",
            "stage", "observations", "mean ps", "max ps"
        );
        for row in exp.fig7() {
            println!(
                "  {:<6} {:>13} {:>10.0} {:>10.0}",
                row.stage.label(),
                row.observations,
                row.mean_ps,
                row.max_ps
            );
        }
        println!("  (paper: EX close to the static maximum with ~300 ps spread, other stages much lower)\n");
    }

    if want("--fig8") {
        println!("== Fig. 8 — effective clock frequency per benchmark ==");
        println!(
            "  {:<22} {:>11} {:>12} {:>9}",
            "benchmark", "static MHz", "dynamic MHz", "speedup"
        );
        let (rows, summary) = exp.fig8();
        for row in &rows {
            println!(
                "  {:<22} {:>11.1} {:>12.1} {:>8.1}%",
                row.benchmark, row.static_mhz, row.dynamic_mhz, row.speedup_percent
            );
        }
        println!(
            "  average: {:.1} -> {:.1} MHz, +{:.1} %   [paper: {:.0} -> {:.0} MHz, +{:.0} %]",
            summary.mean_baseline_frequency_mhz(),
            summary.mean_dynamic_frequency_mhz(),
            (summary.mean_speedup() - 1.0) * 100.0,
            paper::FIG8_BASELINE_MHZ,
            paper::FIG8_DYNAMIC_MHZ,
            paper::FIG8_SPEEDUP_PERCENT
        );
        println!(
            "  timing violations across the suite: {}\n",
            summary.total_violations()
        );
    }

    if want("--power") {
        println!("== §IV-B — voltage scaling at iso-throughput ==");
        let result = exp.power_scaling();
        println!(
            "  baseline : {:>4} mV  {:>7.1} MHz  {:>6.2} µW/MHz   [paper {:.1} µW/MHz]",
            result.baseline.voltage_mv,
            result.baseline.frequency_mhz,
            result.baseline.uw_per_mhz,
            paper::POWER_BASELINE_UW_PER_MHZ
        );
        println!(
            "  scaled   : {:>4} mV  {:>7.1} MHz  {:>6.2} µW/MHz   [paper {:.1} µW/MHz]",
            result.scaled.voltage_mv,
            result.scaled.frequency_mhz,
            result.scaled.uw_per_mhz,
            paper::POWER_SCALED_UW_PER_MHZ
        );
        println!(
            "  supply reduction {:>3} mV [paper ~{:.0} mV], efficiency gain {:>4.1} % [paper {:.0} %]\n",
            result.voltage_reduction_mv,
            paper::POWER_VOLTAGE_REDUCTION_MV,
            result.efficiency_gain_percent(),
            paper::POWER_GAIN_PERCENT
        );
    }

    if want("--ablations") {
        println!("== Ablations ==");
        let ablations = exp.ablations();
        println!(
            "  mean suite speedup, ideal clock generator      : {:>5.1} %",
            ablations.ideal_cg_percent
        );
        println!(
            "  mean suite speedup, 50 ps quantized generator  : {:>5.1} %",
            ablations.quantized_cg_percent
        );
        println!(
            "  mean suite speedup, 8-level discrete generator : {:>5.1} %",
            ablations.discrete_cg_percent
        );
        println!(
            "  mean suite speedup, execute-only monitoring    : {:>5.1} %",
            ablations.execute_only_percent
        );
        println!(
            "  mean suite speedup, conventional (wall) profile: {:>5.1} %",
            ablations.conventional_profile_percent
        );
        println!(
            "  mean suite speedup, genie oracle               : {:>5.1} %",
            ablations.genie_percent
        );
        println!(
            "  violations with a truncated-characterization LUT: {}",
            ablations.truncated_lut_violations
        );
        println!();
    }

    if want("--summary") {
        let fig5 = exp.fig5();
        let (_, summary) = exp.fig8();
        println!("== Headline summary ==");
        println!(
            "  genie bound        : +{:.1} %   [paper +50 %]",
            fig5.genie_speedup_percent
        );
        println!(
            "  instruction-based  : +{:.1} %   [paper +38 %]",
            (summary.mean_speedup() - 1.0) * 100.0
        );
    }

    ExitCode::SUCCESS
}
